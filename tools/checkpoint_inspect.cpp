// checkpoint_inspect: inspect and diff quiescent checkpoint (.bgck) files.
//
//   checkpoint_inspect inspect RUN.bgck       header + state summary
//   checkpoint_inspect diff A.bgck B.bgck     exit 1 when the states differ
//
// Works on the raw byte image via bgp::inspect_checkpoint, so it never
// needs (or builds) a Network: a checkpoint written on one machine can be
// examined anywhere. `diff` compares the content digests -- two captures
// of the same converged state compare equal even across processes, while
// any RIB-level divergence flips rib_digest.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bgp/checkpoint.hpp"

using namespace bgpsim;

namespace {

constexpr const char* kUsage = R"(checkpoint_inspect -- bgpsim checkpoint (.bgck) inspection

  checkpoint_inspect inspect FILE       print header fields, router/session
                                        counts, RIB sizes and content digests
  checkpoint_inspect diff A B           compare two checkpoints field by
                                        field; exit 1 when they differ
)";

std::string read_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error{"cannot open '" + path + "'"};
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

bgp::CheckpointInfo load_info(const std::string& path) {
  return bgp::inspect_checkpoint(read_file(path));
}

int cmd_inspect(const std::string& path) {
  const auto info = load_info(path);
  std::printf("%s: checkpoint v%u (%s paths)\n", path.c_str(),
              static_cast<unsigned>(info.version),
              info.deep_copy_paths ? "deep-copy" : "interned");
  std::printf("config digest:     %016llx\n",
              static_cast<unsigned long long>(info.config_digest));
  std::printf("initial conv:      %.6f s\n", info.initial_convergence_s);
  std::printf("sim clock:         %.9f s  (%llu events executed)\n",
              static_cast<double>(info.sim_now_ns) * 1e-9,
              static_cast<unsigned long long>(info.executed_events));
  std::printf("updates sent:      %llu\n",
              static_cast<unsigned long long>(info.updates_sent));
  std::printf("routers:           %u (%u alive)  sessions: %llu\n", info.routers,
              info.alive_routers, static_cast<unsigned long long>(info.sessions));
  if (!info.deep_copy_paths) std::printf("distinct paths:    %u\n", info.distinct_paths);
  std::printf("routes:            loc-rib %llu  adj-in %llu  adj-out %llu\n",
              static_cast<unsigned long long>(info.loc_rib_routes),
              static_cast<unsigned long long>(info.adj_in_routes),
              static_cast<unsigned long long>(info.adj_out_routes));
  std::printf("state:             %zu bytes  digest %016llx\n", info.state_bytes,
              static_cast<unsigned long long>(info.state_digest));
  std::printf("rib digest:        %016llx\n",
              static_cast<unsigned long long>(info.rib_digest));
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_info(path_a);
  const auto b = load_info(path_b);
  int differences = 0;
  const auto diff_u64 = [&](const char* field, std::uint64_t va, std::uint64_t vb, bool hex) {
    if (va == vb) return;
    ++differences;
    if (hex) {
      std::printf("%-20s %016llx != %016llx\n", field, static_cast<unsigned long long>(va),
                  static_cast<unsigned long long>(vb));
    } else {
      std::printf("%-20s %llu != %llu\n", field, static_cast<unsigned long long>(va),
                  static_cast<unsigned long long>(vb));
    }
  };
  diff_u64("version", a.version, b.version, false);
  diff_u64("deep_copy_paths", a.deep_copy_paths ? 1 : 0, b.deep_copy_paths ? 1 : 0, false);
  diff_u64("config_digest", a.config_digest, b.config_digest, true);
  if (a.initial_convergence_s != b.initial_convergence_s) {
    ++differences;
    std::printf("%-20s %a != %a\n", "initial_conv_s", a.initial_convergence_s,
                b.initial_convergence_s);
  }
  diff_u64("sim_now_ns", static_cast<std::uint64_t>(a.sim_now_ns),
           static_cast<std::uint64_t>(b.sim_now_ns), false);
  diff_u64("executed_events", a.executed_events, b.executed_events, false);
  diff_u64("updates_sent", a.updates_sent, b.updates_sent, false);
  diff_u64("routers", a.routers, b.routers, false);
  diff_u64("alive_routers", a.alive_routers, b.alive_routers, false);
  diff_u64("sessions", a.sessions, b.sessions, false);
  diff_u64("distinct_paths", a.distinct_paths, b.distinct_paths, false);
  diff_u64("loc_rib_routes", a.loc_rib_routes, b.loc_rib_routes, false);
  diff_u64("adj_in_routes", a.adj_in_routes, b.adj_in_routes, false);
  diff_u64("adj_out_routes", a.adj_out_routes, b.adj_out_routes, false);
  diff_u64("state_bytes", a.state_bytes, b.state_bytes, false);
  diff_u64("state_digest", a.state_digest, b.state_digest, true);
  diff_u64("rib_digest", a.rib_digest, b.rib_digest, true);
  if (differences == 0) {
    std::printf("identical: %zu state bytes, rib digest %016llx\n", a.state_bytes,
                static_cast<unsigned long long>(a.rib_digest));
    return 0;
  }
  std::printf("%d field(s) differ\n", differences);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
    std::fputs(kUsage, cmd.empty() || cmd == "help" || cmd == "--help" ? stdout : stderr);
    return cmd.empty() || cmd == "help" || cmd == "--help" ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
