// Prints the exact results of a small fig01-style grid (240 nodes) so two
// builds can be diffed for behavioral identity.
//
// CI builds this twice -- once with interned AS paths (the default) and
// once with -DBGPSIM_DEEP_COPY_PATHS=ON (the pre-interning deep-copy
// storage) -- runs both and requires byte-identical output: the path
// representation must be invisible to the decision process. Floating-point
// fields are printed as hexfloats, so equality of the text is equality of
// the bits.
//
// Beyond the per-run counters, each run prints a digest over the full
// post-run Loc-RIB *content* (router, prefix, materialized hop sequence):
// counters alone would miss a storage bug that corrupts which hops a path
// resolves to while leaving the decision process's counts intact --
// exactly the failure mode a chunked-arena (or any path-storage) bug
// would produce.
//
// With --warm the grid runs through run_sweep_warm (converge once per
// (topology, scheme, seed) group, checkpoint, fan the failure fractions out
// from the snapshot) instead of run_sweep. CI diffs the two outputs: the
// checkpoint/restore cycle must be invisible down to the last RIB bit.
//
// With --par K every run executes on the partitioned conservative-window
// scheduler with K threads (K = 1 is the serial identity oracle: the same
// partitioned code path, single-threaded). CI diffs --par 1 against --par 4:
// the thread count must be invisible down to the last RIB bit.
//
// Usage: identity_check [--warm] [--par K] [> out.txt]
// Knobs: BGPSIM_N (nodes, default 240), BGPSIM_SEEDS (seeds per grid point),
// BGPSIM_FAILURES (comma-separated failure fractions, default "0.01,0.05")
// and BGPSIM_MRAIS (comma-separated constant MRAI seconds, default
// "0.5,2.25"). Large topologies need a tamer grid: at n ~ 900+ the skewed
// topology with MRAI 0.5 enters an instance-dependent path-exploration
// storm that exhausts the 32-bit interned path arena in the legacy and
// partitioned schedulers alike (pre-existing model-scale limit; the
// checkpoint bench pins small fractions for the same reason), so CI runs
// the n=1000 identity diff with BGPSIM_FAILURES=0.005,0.01 and
// BGPSIM_MRAIS=2.25.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/warmstart.hpp"

namespace {

// FNV-1a, same constants as PathTable's hop hash; folded over every
// (router, prefix, path) triple in iteration order (deterministic: flat
// RIBs iterate ascending).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

std::uint64_t rib_digest(bgpsim::bgp::Network& net) {
  using namespace bgpsim;
  std::uint64_t h = kFnvOffset;
  for (bgp::NodeId v = 0; v < net.size(); ++v) {
    const bgp::Router& r = net.router(v);
    if (!r.alive()) continue;
    for (const bgp::Prefix p : r.known_prefixes()) {
      const auto e = r.best(p);
      if (!e.has_value()) continue;
      mix(h, v);
      mix(h, p);
      mix(h, e->local ? 1 : 0);
      mix(h, e->learned_from);
      mix(h, e->path.length());
      for (const bgp::AsId as : e->path.hops()) mix(h, as);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  bool warm = false;
  std::size_t par = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--warm") == 0) {
      warm = true;
    } else if (std::strcmp(argv[a], "--par") == 0 && a + 1 < argc) {
      par = static_cast<std::size_t>(std::strtoul(argv[++a], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: identity_check [--warm] [--par K]\n");
      return 2;
    }
  }
  if (warm && par != 0) {
    std::fprintf(stderr, "identity_check: --warm and --par are mutually exclusive "
                         "(checkpoints require the serial scheduler)\n");
    return 2;
  }
  const std::size_t n = harness::bench_seeds(2);  // seeds per grid point
  std::size_t nodes = 240;
  if (const char* env = std::getenv("BGPSIM_N")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) nodes = static_cast<std::size_t>(v);
  }
  const auto list_env = [](const char* name, std::vector<double> defaults,
                           double lo, double hi) {
    const char* env = std::getenv(name);
    if (env == nullptr) return defaults;
    std::vector<double> out;
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end == p) break;  // no progress: trailing garbage, stop parsing
      if (v > lo && v < hi) out.push_back(v);
      p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty()) {
      std::fprintf(stderr, "identity_check: %s='%s' has no usable values in "
                           "(%g, %g); aborting\n", name, env, lo, hi);
      std::exit(2);
    }
    return out;
  };
  const auto failures = list_env("BGPSIM_FAILURES", {0.01, 0.05}, 0.0, 1.0);
  const auto mrais = list_env("BGPSIM_MRAIS", {0.5, 2.25}, 0.0, 1e6);

  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : failures) {
    for (const double mrai : mrais) {
      for (std::size_t i = 0; i < n; ++i) {
        harness::ExperimentConfig cfg;
        cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
        cfg.topology.n = nodes;
        cfg.topology.skew = topo::SkewSpec::s70_30();
        cfg.failure_fraction = failure;
        cfg.scheme = harness::SchemeSpec::constant(mrai);
        cfg.seed = 1 + i;
        cfg.par_threads = par;
        grid.push_back(cfg);
      }
    }
  }

  // Harvest the RIB digest while each run's Network is still alive. The
  // hook is read-only, so the measured results are untouched; run_sweep is
  // bit-identical to a serial loop, so digests land at fixed indices.
  std::vector<std::uint64_t> digests(grid.size(), 0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].on_complete = [&digests, i](bgp::Network& net, std::uint64_t) {
      digests[i] = rib_digest(net);
    };
  }

  const auto results = warm ? harness::run_sweep_warm(grid) : harness::run_sweep(grid);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf(
        "run %zu seed %" PRIu64 ": init %a conv %a rec %a msgs %" PRIu64 " adv %" PRIu64
        " wdr %" PRIu64 " total %" PRIu64 " proc %" PRIu64 " dropped %" PRIu64
        " events %" PRIu64 " routers %zu failed %zu valid %d audit '%s' rib %016" PRIx64
        "\n",
        i, grid[i].seed, r.initial_convergence_s, r.convergence_delay_s, r.recovery_delay_s,
        r.messages_after_failure, r.adverts_after_failure, r.withdrawals_after_failure,
        r.messages_total, r.messages_processed, r.batch_dropped, r.events, r.routers,
        r.failed_routers, r.routes_valid ? 1 : 0, r.audit_error.c_str(), digests[i]);
  }
  return 0;
}
