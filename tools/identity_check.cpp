// Prints the exact results of a small fig01-style grid (240 nodes) so two
// builds can be diffed for behavioral identity.
//
// CI builds this twice -- once with interned AS paths (the default) and
// once with -DBGPSIM_DEEP_COPY_PATHS=ON (the pre-interning deep-copy
// storage) -- runs both and requires byte-identical output: the path
// representation must be invisible to the decision process. Floating-point
// fields are printed as hexfloats, so equality of the text is equality of
// the bits.
//
// Usage: identity_check [> out.txt]   Knobs: BGPSIM_N, BGPSIM_SEEDS.
#include <cinttypes>
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

int main() {
  using namespace bgpsim;
  const std::size_t n = harness::bench_seeds(2);  // seeds per grid point

  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : {0.01, 0.05}) {
    for (const double mrai : {0.5, 2.25}) {
      for (std::size_t i = 0; i < n; ++i) {
        harness::ExperimentConfig cfg;
        cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
        cfg.topology.n = 240;
        cfg.topology.skew = topo::SkewSpec::s70_30();
        cfg.failure_fraction = failure;
        cfg.scheme = harness::SchemeSpec::constant(mrai);
        cfg.seed = 1 + i;
        grid.push_back(cfg);
      }
    }
  }

  const auto results = harness::run_sweep(grid);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf(
        "run %zu seed %" PRIu64 ": init %a conv %a rec %a msgs %" PRIu64 " adv %" PRIu64
        " wdr %" PRIu64 " total %" PRIu64 " proc %" PRIu64 " dropped %" PRIu64
        " events %" PRIu64 " routers %zu failed %zu valid %d audit '%s'\n",
        i, grid[i].seed, r.initial_convergence_s, r.convergence_delay_s, r.recovery_delay_s,
        r.messages_after_failure, r.adverts_after_failure, r.withdrawals_after_failure,
        r.messages_total, r.messages_processed, r.batch_dropped, r.events, r.routers,
        r.failed_routers, r.routes_valid ? 1 : 0, r.audit_error.c_str());
  }
  return 0;
}
