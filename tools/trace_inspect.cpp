// trace_inspect: inspect, export and diff bgpsim capture files.
//
//   trace_inspect summary RUN.bgtr            per-kind counts + histograms
//   trace_inspect summary RUN.bgtl            telemetry overview
//   trace_inspect filter RUN.bgtr --kind update-sent --router 3 --from 1.0
//   trace_inspect export RUN.bgtr --format perfetto --telemetry RUN.bgtl --out out.json
//   trace_inspect diff A.bgtr B.bgtr          exit 1 when the traces differ
//   trace_inspect merge RUN.bgtr --out M.bgtr reassemble a sharded par capture
//   trace_inspect par_profile RUN.bgtl        partition/scaling profile
//   trace_inspect telemetry RUN.bgtl --router 3 --metric unfinished_work
//
// Capture formats are autodetected by magic ("BGTR" binary trace, "BGTM"
// sharded-trace manifest, "BGTL" telemetry); every trace subcommand accepts
// a manifest and merges its shards transparently.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "harness/options.hpp"
#include "obs/binary_trace.hpp"
#include "obs/export.hpp"
#include "obs/stats.hpp"
#include "obs/telemetry.hpp"

using namespace bgpsim;

namespace {

constexpr const char* kUsage = R"(trace_inspect -- bgpsim trace / telemetry inspection

  trace_inspect summary FILE              counts, span, histograms (trace)
                                          or sample overview (telemetry)
  trace_inspect filter FILE [OPTS]        print matching events as text
      --kind NAME    --router ID    --from S    --to S    --limit N
  trace_inspect export FILE [OPTS]        convert a binary trace
      --format jsonl|perfetto (default jsonl)
      --telemetry FILE   merge telemetry counters (perfetto only)
      --out FILE         write there instead of stdout
  trace_inspect diff A B                  compare traces record by record;
                                          exit 1 (with the first divergence
                                          and differing count) on mismatch
  trace_inspect merge FILE [OPTS]         merge a sharded parallel capture
                                          (BGTM manifest) into a plain v1
                                          .bgtr, byte-identical to a serial
                                          capture of the same run
      --out FILE         output path (default FILE.merged.bgtr)
  trace_inspect par_profile FILE          per-partition scaling profile from
                                          a parallel run's telemetry file
  trace_inspect telemetry FILE [OPTS]     extract one per-router series
      --router ID (default 0)
      --metric unfinished_work|queue|level|busy|sent|received
      --format csv|json (default csv)

Trace FILEs may be plain .bgtr captures or the manifest a parallel run
writes (--par-threads N x --trace); shards are merged transparently.
)";

std::string detect_magic(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  char magic[4] = {};
  is.read(magic, 4);
  if (!is) return {};
  return std::string{magic, 4};
}

std::optional<bgp::TraceEvent::Kind> kind_from(const std::string& name) {
  for (std::size_t k = 0; k < bgp::TraceEvent::kNumKinds; ++k) {
    const auto kind = static_cast<bgp::TraceEvent::Kind>(k);
    if (name == bgp::to_string(kind)) return kind;
  }
  return std::nullopt;
}

int cmd_summary(const std::string& path) {
  const auto magic = detect_magic(path);
  const bool manifest = magic == std::string{obs::kTraceManifestMagic, 4};
  if (magic == std::string{obs::kTraceMagic, 4} || manifest) {
    const auto trace = obs::load_trace_any(path);
    obs::StatsSink stats;
    for (const auto& e : trace.events) stats.on_event(e);
    std::cout << path << ": trace v" << trace.version
              << (manifest ? " (merged from shards)" : "")
              << (trace.truncated ? " (TRUNCATED)" : "") << "\n"
              << stats.report();
    return 0;
  }
  if (magic == std::string{obs::kTelemetryMagic, 4}) {
    const auto t = obs::read_telemetry_file(path);
    std::cout << path << ": telemetry v" << t.version << "\n"
              << "samples: " << t.samples() << "  routers: " << t.n_routers
              << "  interval: " << t.interval.to_seconds() << "s"
              << "  per-router columns: " << (t.per_router ? "yes" : "no") << "\n";
    if (!t.times_s.empty()) {
      std::cout << "span: [" << t.times_s.front() << "s, " << t.times_s.back() << "s]\n";
      std::uint32_t peak = 0;
      std::size_t peak_at = 0;
      for (std::size_t i = 0; i < t.overloaded.size(); ++i) {
        if (t.overloaded[i] > peak) {
          peak = t.overloaded[i];
          peak_at = i;
        }
      }
      std::cout << "peak overloaded routers (unfinished work > "
                << t.overload_threshold.to_seconds() << "s): " << peak << " at t="
                << t.times_s[peak_at] << "s\n";
    }
    if (!t.level_residency_s.empty()) {
      std::cout << "MRAI level residency (router-seconds):";
      for (std::size_t l = 0; l < t.level_residency_s.size(); ++l) {
        std::cout << "  L" << l << "=" << t.level_residency_s[l];
      }
      std::cout << "\n";
    }
    if (t.has_partitions()) {
      std::cout << "partition profile: " << t.partitions.partitions << " partitions x "
                << t.partitions.windows() << " windows (see `trace_inspect par_profile`)\n";
    }
    return 0;
  }
  std::fprintf(stderr, "error: %s is neither a bgpsim trace nor telemetry file\n",
               path.c_str());
  return 2;
}

int cmd_filter(const std::string& path, const harness::Options& opts) {
  const auto trace = obs::load_trace_any(path);
  std::optional<bgp::TraceEvent::Kind> kind;
  if (const auto k = opts.get("kind")) {
    kind = kind_from(*k);
    if (!kind) {
      std::fprintf(stderr, "error: unknown --kind '%s'\n", k->c_str());
      return 2;
    }
  }
  std::optional<bgp::NodeId> router_id;
  if (const auto r = opts.get("router")) {
    router_id = static_cast<bgp::NodeId>(std::stoul(*r));
  }
  const double from_s = opts.get_double("from", -1.0);
  const double to_s = opts.get_double("to", 1e18);
  const auto limit = static_cast<std::uint64_t>(opts.get_int("limit", -1));

  std::uint64_t printed = 0;
  for (const auto& e : trace.events) {
    if (kind && e.kind != *kind) continue;
    if (router_id && e.router != *router_id) continue;
    const double at = e.at.to_seconds();
    if (at < from_s || at > to_s) continue;
    std::cout << e.to_string() << "\n";
    if (++printed == limit) break;
  }
  return 0;
}

int cmd_export(const std::string& path, const harness::Options& opts) {
  const auto trace = obs::load_trace_any(path);
  const auto format = opts.get_or("format", "jsonl");

  obs::TelemetryFile telemetry;
  obs::PerfettoOptions popts;
  if (const auto t = opts.get("telemetry")) {
    telemetry = obs::read_telemetry_file(*t);
    popts.telemetry = &telemetry;
  }

  std::ofstream file;
  std::ostream* os = &std::cout;
  const auto out = opts.get_or("out", "");
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 2;
    }
    os = &file;
  }

  if (format == "jsonl") {
    obs::write_jsonl(trace.events, *os);
  } else if (format == "perfetto") {
    obs::write_perfetto(trace.events, *os, popts);
  } else {
    std::fprintf(stderr, "error: unknown --format '%s' (jsonl|perfetto)\n", format.c_str());
    return 2;
  }
  os->flush();
  return os->good() ? 0 : 2;
}

// Record-by-record comparison (sharded captures are merged first). Reports
// the index of the first divergence plus the total differing-record count,
// and exits non-zero on any mismatch so CI can gate on it directly.
int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const auto a = obs::load_trace_any(a_path);
  const auto b = obs::load_trace_any(b_path);
  bgp::CountingSink ca;
  bgp::CountingSink cb;
  for (const auto& e : a.events) ca.on_event(e);
  for (const auto& e : b.events) cb.on_event(e);

  for (std::size_t k = 0; k < bgp::TraceEvent::kNumKinds; ++k) {
    const auto kind = static_cast<bgp::TraceEvent::Kind>(k);
    if (ca.count(kind) == cb.count(kind)) continue;
    std::printf("%-20s %12llu %12llu\n", bgp::to_string(kind),
                static_cast<unsigned long long>(ca.count(kind)),
                static_cast<unsigned long long>(cb.count(kind)));
  }

  const auto equal = [](const bgp::TraceEvent& x, const bgp::TraceEvent& y) {
    return x.at == y.at && x.kind == y.kind && x.router == y.router && x.peer == y.peer &&
           x.prefix == y.prefix && x.withdraw == y.withdraw &&
           x.batch_size == y.batch_size && x.path_len == y.path_len;
  };
  const std::size_t common = std::min(a.events.size(), b.events.size());
  std::size_t first_divergence = common;  // `common` = no divergence in overlap
  std::uint64_t differing = 0;
  for (std::size_t i = 0; i < common; ++i) {
    if (equal(a.events[i], b.events[i])) continue;
    if (differing == 0) first_divergence = i;
    ++differing;
  }
  const std::uint64_t tail =
      static_cast<std::uint64_t>(std::max(a.events.size(), b.events.size()) - common);

  if (differing == 0 && tail == 0) {
    std::printf("traces match: %llu events\n", static_cast<unsigned long long>(ca.total()));
    return 0;
  }
  if (differing > 0) {
    std::printf("first divergence at record %zu:\n  a: %s\n  b: %s\n", first_divergence,
                a.events[first_divergence].to_string().c_str(),
                b.events[first_divergence].to_string().c_str());
  } else {
    std::printf("first divergence at record %zu: only one trace has it\n", common);
  }
  std::printf("traces differ: %llu differing records, %llu length mismatch (%zu vs %zu events)\n",
              static_cast<unsigned long long>(differing),
              static_cast<unsigned long long>(tail), a.events.size(), b.events.size());
  return 1;
}

int cmd_merge(const std::string& path, const harness::Options& opts) {
  if (detect_magic(path) != std::string{obs::kTraceManifestMagic, 4}) {
    std::fprintf(stderr, "error: %s is not a sharded-trace manifest (BGTM)\n", path.c_str());
    return 2;
  }
  const auto out = opts.get_or("out", path + ".merged.bgtr");
  const std::uint64_t n = obs::write_merged_trace(path, out);
  std::printf("merged %llu events -> %s\n", static_cast<unsigned long long>(n), out.c_str());
  return 0;
}

int cmd_par_profile(const std::string& path) {
  if (detect_magic(path) != std::string{obs::kTelemetryMagic, 4}) {
    std::fprintf(stderr, "error: %s is not a telemetry file (BGTL)\n", path.c_str());
    return 2;
  }
  const auto t = obs::read_telemetry_file(path);
  if (!t.has_partitions()) {
    std::fprintf(stderr,
                 "error: %s carries no partition profile (captured from a serial run, "
                 "or written by a pre-v2 sampler)\n",
                 path.c_str());
    return 2;
  }
  const auto& p = t.partitions;
  std::printf("partitions: %zu  windows: %zu\n", p.partitions, p.windows());
  std::printf("imbalance factor: %.3f  barrier overhead: %.1f%%\n", p.imbalance_factor(),
              p.barrier_overhead_fraction() * 100.0);

  std::vector<double> busy(p.partitions, 0.0);
  std::vector<std::uint64_t> executed(p.partitions, 0);
  std::vector<std::uint64_t> msgs(p.partitions, 0);
  std::vector<std::uint64_t> bytes(p.partitions, 0);
  std::vector<std::uint64_t> reinterned(p.partitions, 0);
  for (std::size_t w = 0; w < p.windows(); ++w) {
    for (std::size_t q = 0; q < p.partitions; ++q) {
      const std::size_t i = w * p.partitions + q;
      busy[q] += p.busy_s[i];
      executed[q] += p.executed[i];
      msgs[q] += p.mailbox_msgs[i];
      bytes[q] += p.mailbox_bytes[i];
      reinterned[q] += p.reinterned[i];
    }
  }
  const auto critical = p.critical_histogram();
  std::printf("%4s %12s %12s %14s %14s %12s %10s\n", "part", "busy_s", "executed",
              "mailbox_msgs", "mailbox_bytes", "reinterned", "critical");
  for (std::size_t q = 0; q < p.partitions; ++q) {
    std::printf("%4zu %12.6f %12llu %14llu %14llu %12llu %10llu\n", q, busy[q],
                static_cast<unsigned long long>(executed[q]),
                static_cast<unsigned long long>(msgs[q]),
                static_cast<unsigned long long>(bytes[q]),
                static_cast<unsigned long long>(reinterned[q]),
                static_cast<unsigned long long>(critical[q]));
  }
  return 0;
}

int cmd_telemetry(const std::string& path, const harness::Options& opts) {
  const auto t = obs::read_telemetry_file(path);
  const auto router = static_cast<bgp::NodeId>(opts.get_int("router", 0));
  const auto metric_name = opts.get_or("metric", "unfinished_work");

  std::optional<obs::RouterMetric> metric;
  for (int m = 0; m <= static_cast<int>(obs::RouterMetric::kUpdatesReceived); ++m) {
    const auto rm = static_cast<obs::RouterMetric>(m);
    if (metric_name == obs::to_string(rm)) metric = rm;
  }
  if (!metric) {
    std::fprintf(stderr, "error: unknown --metric '%s'\n", metric_name.c_str());
    return 2;
  }
  const auto series = t.series(router, *metric);
  if (series.empty() && (!t.per_router || router >= t.n_routers)) {
    std::fprintf(stderr, "error: no per-router series for router %u in %s\n",
                 router, path.c_str());
    return 2;
  }

  const auto format = opts.get_or("format", "csv");
  if (format == "csv") {
    std::printf("t_s,%s\n", metric_name.c_str());
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("%.6f,%.6g\n", t.times_s[i], series[i]);
    }
  } else if (format == "json") {
    std::printf("{\"router\":%u,\"metric\":\"%s\",\"t_s\":[", router, metric_name.c_str());
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("%s%.6f", i ? "," : "", t.times_s[i]);
    }
    std::printf("],\"values\":[");
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::printf("%s%.6g", i ? "," : "", series[i]);
    }
    std::printf("]}\n");
  } else {
    std::fprintf(stderr, "error: unknown --format '%s' (csv|json)\n", format.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto opts = harness::Options::parse(argc - 1, argv + 1);
    if (opts.flag("help") || opts.positional().empty()) {
      std::fputs(kUsage, opts.flag("help") ? stdout : stderr);
      return opts.flag("help") ? 0 : 2;
    }
    const auto unknown = opts.unknown_keys({"kind", "router", "from", "to", "limit", "format",
                                            "telemetry", "metric", "out", "help"});
    if (!unknown.empty()) {
      std::fprintf(stderr, "unknown option --%s (try --help)\n", unknown.front().c_str());
      return 2;
    }

    const auto& pos = opts.positional();
    const std::string& cmd = pos[0];
    const auto need_file = [&]() -> const std::string& {
      if (pos.size() < 2) throw std::invalid_argument{"missing FILE argument"};
      return pos[1];
    };

    if (cmd == "summary") return cmd_summary(need_file());
    if (cmd == "filter") return cmd_filter(need_file(), opts);
    if (cmd == "export") return cmd_export(need_file(), opts);
    if (cmd == "merge") return cmd_merge(need_file(), opts);
    if (cmd == "par_profile") return cmd_par_profile(need_file());
    if (cmd == "telemetry") return cmd_telemetry(need_file(), opts);
    if (cmd == "diff") {
      if (pos.size() < 3) throw std::invalid_argument{"diff needs two trace files"};
      return cmd_diff(pos[1], pos[2]);
    }
    std::fprintf(stderr, "unknown command '%s' (try --help)\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s (try --help)\n", e.what());
    return 2;
  }
}
