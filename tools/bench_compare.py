#!/usr/bin/env python3
"""Compare bgpsim BENCH_*.json files and gate CI on regressions.

Two subcommands:

  regress BASELINE CANDIDATE [--tolerance 0.15]
      Compares a freshly produced bench JSON against the checked-in
      baseline. Simulation-result fields (event/message/route counts,
      identity flags) must match the baseline EXACTLY -- they are
      machine-independent, so any drift means the decision process
      changed, which is a hard failure. Throughput/wall-clock fields may
      regress by at most --tolerance (default 15%).

  memratio INTERNED DEEPCOPY [--min-ratio 4.0]
      Compares two scale-suite runs (the default interned build vs the
      -DBGPSIM_DEEP_COPY_PATHS=ON baseline) and requires the interned
      build to use at least --min-ratio times fewer bytes per stored
      route at every common n, and -- now that the chunked path arena
      removed the realloc spikes -- a per-point peak RSS no higher than
      the deep-copy build's (points are independent: scale_suite resets
      VmHWM before each run).

Exit status: 0 = all gates pass, 1 = regression / mismatch, 2 = usage or
malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_compare: {path}: expected a JSON object, got {type(data).__name__}",
              file=sys.stderr)
        sys.exit(2)
    data["__path__"] = path
    return data


def require_key(data, key):
    """Fetch a required key, exiting with a clear message instead of a
    KeyError traceback when a bench JSON is missing a field (e.g. produced
    by an older binary)."""
    if key not in data:
        path = data.get("__path__", "<bench json>")
        print(f"bench_compare: {path}: missing required key {key!r}", file=sys.stderr)
        sys.exit(2)
    return data[key]


def require_point_key(point, key, label):
    if key not in point:
        print(f"bench_compare: {label}: missing required key {key!r}", file=sys.stderr)
        sys.exit(2)
    return point[key]


class Gate:
    def __init__(self):
        self.failures = []

    def exact(self, name, base, cand):
        if base != cand:
            self.failures.append(
                f"IDENTITY MISMATCH {name}: baseline {base!r} != candidate {cand!r}")
        else:
            print(f"  ok  {name}: {cand!r} (exact)")

    def require(self, name, cond, detail):
        if not cond:
            self.failures.append(f"FAILED {name}: {detail}")
        else:
            print(f"  ok  {name}: {detail}")

    def throughput(self, name, base, cand, tolerance):
        # Higher is better; candidate may be slower by at most `tolerance`.
        if base <= 0:
            print(f"  --  {name}: no baseline, skipped")
            return
        ratio = cand / base
        verdict = ratio >= 1.0 - tolerance
        line = f"{name}: {cand:g} vs baseline {base:g} ({ratio:.2%})"
        if verdict:
            print(f"  ok  {line}")
        else:
            self.failures.append(f"THROUGHPUT REGRESSION {line}, tolerance {tolerance:.0%}")

    def finish(self):
        if self.failures:
            print()
            for f in self.failures:
                print(f, file=sys.stderr)
            return 1
        print("bench_compare: all gates passed")
        return 0


def regress_fig01(base, cand, tolerance, gate):
    for field in ("nodes", "seeds_per_point", "runs", "events_total"):
        gate.exact(field, base.get(field), cand.get(field))
    gate.require(
        "parallel_identical_to_serial",
        cand.get("parallel_identical_to_serial") is True,
        f"candidate flag = {cand.get('parallel_identical_to_serial')}")
    gate.throughput("serial_events_per_s", base.get("serial_events_per_s", 0),
                    cand.get("serial_events_per_s", 0), tolerance)
    gate.throughput("parallel_events_per_s", base.get("parallel_events_per_s", 0),
                    cand.get("parallel_events_per_s", 0), tolerance)


def regress_scale(base, cand, tolerance, gate):
    gate.exact("mode", base.get("mode"), cand.get("mode"))
    base_by_n = {require_point_key(p, "n", "baseline point"): p
                 for p in require_key(base, "points")}
    common = 0
    for p in require_key(cand, "points"):
        n = require_point_key(p, "n", "candidate point")
        bp = base_by_n.get(n)
        if bp is None:
            print(f"  --  n={n}: not in baseline, skipped")
            continue
        common += 1
        for field in ("events", "messages", "routes"):
            gate.exact(f"n={n}.{field}", bp.get(field), p.get(field))
        # Memory is a tracked resource: treat bytes/route like inverse
        # throughput (candidate may grow by at most `tolerance`).
        gate.throughput(f"n={n}.routes_per_byte",
                        1.0 / require_point_key(bp, "bytes_per_route", f"baseline n={n}"),
                        1.0 / require_point_key(p, "bytes_per_route", f"candidate n={n}"),
                        tolerance)
        # peak_rss_bytes must be present (older binaries silently carried
        # the process-wide high-water mark forward between points); the
        # interned-vs-deepcopy bound itself is gated by `memratio`, which
        # compares runs from the same machine.
        require_point_key(p, "peak_rss_bytes", f"candidate n={n}")
        wall_b = bp.get("converge_wall_s", 0) + bp.get("failure_wall_s", 0)
        wall_c = p.get("converge_wall_s", 0) + p.get("failure_wall_s", 0)
        if wall_b > 0 and wall_c > 0:
            gate.throughput(f"n={n}.events_per_wall_s",
                            require_point_key(bp, "events", f"baseline n={n}") / wall_b,
                            require_point_key(p, "events", f"candidate n={n}") / wall_c,
                            tolerance)
    gate.require("common points", common > 0, f"{common} n-values compared")


def regress_obs(base, cand, tolerance, gate):
    # The simulation itself must be untouched by observability: exact event
    # totals, and the instrumented pass must reproduce the disabled pass
    # bit-for-bit (protocol fields).
    for field in ("nodes", "seeds_per_point", "runs", "events_total"):
        gate.exact(field, base.get(field), cand.get(field))
    gate.require(
        "results_identical",
        cand.get("results_identical") is True,
        f"candidate flag = {cand.get('results_identical')}")
    # The zero-cost-when-off guarantee: disabled-mode throughput must stay
    # within tolerance of the recorded baseline.
    gate.throughput("disabled_events_per_s",
                    require_key(base, "disabled_events_per_s"),
                    require_key(cand, "disabled_events_per_s"), tolerance)
    overhead = require_key(cand, "overhead_ratio")
    gate.require("overhead_ratio", overhead < 3.0,
                 f"instrumented/disabled wall = {overhead:.2f}x (sanity bound 3x)")
    # Parallel-mode claims: the par passes (disabled and sharded-capture
    # instrumented alike) must reproduce the serial protocol results
    # bit-for-bit, the par event totals are machine-independent, and the
    # instrumented-par overhead must stay under 5% -- the sharded sink plus
    # exact barrier sampling were designed to be off the partition workers'
    # critical path.
    gate.exact("par_threads", base.get("par_threads"), cand.get("par_threads"))
    gate.exact("par_events_total", base.get("par_events_total"),
               cand.get("par_events_total"))
    gate.require(
        "par_results_identical",
        cand.get("par_results_identical") is True,
        f"candidate flag = {cand.get('par_results_identical')}")
    par_overhead = require_key(cand, "par_overhead_ratio")
    gate.require("par_overhead_ratio", par_overhead < 1.05,
                 f"par instrumented/disabled wall = {par_overhead:.3f}x (need < 1.05x)")


def regress_checkpoint(base, cand, tolerance, gate):
    # The warm-start machinery must be invisible in the results: exact event
    # totals and run/group counts, and the warm sweep must reproduce the
    # cold sweep bit-for-bit.
    for field in ("nodes", "seeds_per_point", "runs", "groups", "events_total"):
        gate.exact(field, base.get(field), cand.get(field))
    gate.require(
        "warm_identical_to_cold",
        cand.get("warm_identical_to_cold") is True,
        f"candidate flag = {cand.get('warm_identical_to_cold')}")
    # The subsystem's raison d'etre: warm must stay decisively faster than
    # cold (converging once per group instead of once per run).
    speedup = require_key(cand, "speedup")
    gate.require("speedup", speedup >= 2.0,
                 f"cold/warm wall = {speedup:.2f}x (need >= 2x)")
    # Absolute throughput of both paths, within the usual tolerance.
    events = require_key(cand, "events_total")
    for wall in ("cold_wall_s", "warm_wall_s"):
        base_wall = require_key(base, wall)
        cand_wall = require_key(cand, wall)
        if base_wall > 0 and cand_wall > 0:
            gate.throughput(f"events_per_{wall}", events / base_wall,
                            events / cand_wall, tolerance)


def regress_par(base, cand, tolerance, gate):
    # The parallel scheduler must be invisible in the results: exact node
    # and event totals, every thread count bit-identical to the serial
    # oracle, and the audit green.
    for field in ("nodes", "events_total"):
        gate.exact(field, base.get(field), cand.get(field))
    gate.require(
        "identical_across_threads",
        cand.get("identical_across_threads") is True,
        f"candidate flag = {cand.get('identical_across_threads')}")
    gate.require(
        "routes_valid",
        cand.get("routes_valid") is True,
        f"candidate flag = {cand.get('routes_valid')}")
    require_key(cand, "scaling_efficiency")
    # The subsystem's raison d'etre: the 8-thread converge wall must stay
    # decisively below the 1-thread wall -- but only on hosts that actually
    # have the cores (the flag is recorded by the candidate run itself).
    if cand.get("gate_applicable") is True:
        speedup = require_key(cand, "speedup")
        gate.require("speedup", speedup >= 2.0,
                     f"1-thread/8-thread converge wall = {speedup:.2f}x (need >= 2x)")
    else:
        print(f"  --  speedup gate skipped: candidate host has "
              f"{cand.get('host_cpus')} cpu(s) (< 8)")
    # Partition profile of the 8-thread run: present and sane. The values
    # themselves are host-dependent wall-clock ratios, so only invariants
    # are gated (max/mean >= 1 by construction; overhead is a fraction).
    gate.require("par_windows_t8", require_key(cand, "par_windows_t8") > 0,
                 f"windows = {cand.get('par_windows_t8')}")
    imbalance = require_key(cand, "imbalance_factor_t8")
    gate.require("imbalance_factor_t8", imbalance >= 1.0,
                 f"imbalance = {imbalance:.3f} (>= 1 by construction)")
    barrier = require_key(cand, "barrier_overhead_t8")
    gate.require("barrier_overhead_t8", 0.0 <= barrier <= 1.0,
                 f"barrier overhead = {barrier:.3f} (fraction)")
    # Serial-oracle throughput within the usual tolerance (the partitioned
    # code path must not tax the single-threaded case).
    events = require_key(cand, "events_total")
    base_wall = require_key(base, "converge_wall_s_t1")
    cand_wall = require_key(cand, "converge_wall_s_t1")
    if base_wall > 0 and cand_wall > 0:
        gate.throughput("events_per_converge_wall_s_t1", events / base_wall,
                        events / cand_wall, tolerance)


def cmd_regress(args):
    base = load(args.baseline)
    cand = load(args.candidate)
    gate = Gate()
    gate.exact("suite", base.get("suite"), cand.get("suite"))
    suite = base.get("suite")
    print(f"bench_compare: suite={suite}, tolerance={args.tolerance:.0%}")
    if suite == "fig01_sweep":
        regress_fig01(base, cand, args.tolerance, gate)
    elif suite == "scale":
        regress_scale(base, cand, args.tolerance, gate)
    elif suite == "obs_overhead":
        regress_obs(base, cand, args.tolerance, gate)
    elif suite == "checkpoint":
        regress_checkpoint(base, cand, args.tolerance, gate)
    elif suite == "par":
        regress_par(base, cand, args.tolerance, gate)
    else:
        print(f"bench_compare: unknown suite {suite!r}", file=sys.stderr)
        return 2
    return gate.finish()


def cmd_memratio(args):
    interned = load(args.interned)
    deep = load(args.deepcopy)
    gate = Gate()
    gate.require("interned mode", interned.get("mode") == "interned",
                 f"mode = {interned.get('mode')}")
    gate.require("deepcopy mode", deep.get("mode") == "deepcopy",
                 f"mode = {deep.get('mode')}")
    deep_by_n = {require_point_key(p, "n", "deepcopy point"): p
                 for p in require_key(deep, "points")}
    common = 0
    for p in require_key(interned, "points"):
        n = require_point_key(p, "n", "interned point")
        dp = deep_by_n.get(n)
        if dp is None:
            continue
        common += 1
        # The storage refactor must not change what is stored, only how.
        for field in ("events", "messages", "routes"):
            gate.exact(f"n={n}.{field}", dp.get(field), p.get(field))
        deep_bpr = require_point_key(dp, "bytes_per_route", f"deepcopy n={n}")
        int_bpr = require_point_key(p, "bytes_per_route", f"interned n={n}")
        ratio = deep_bpr / int_bpr
        gate.require(
            f"n={n}.bytes_per_route ratio",
            ratio >= args.min_ratio,
            f"deepcopy {deep_bpr:.1f} / interned {int_bpr:.1f} "
            f"= {ratio:.2f}x (need >= {args.min_ratio:g}x)")
        # The chunked arena's whole point: interning must not cost more
        # peak RSS than deep copies at any scale (the old monolithic
        # arena's realloc doubling lost this at n=4000).
        deep_rss = require_point_key(dp, "peak_rss_bytes", f"deepcopy n={n}")
        int_rss = require_point_key(p, "peak_rss_bytes", f"interned n={n}")
        gate.require(
            f"n={n}.peak_rss interned <= deepcopy",
            int_rss <= deep_rss,
            f"interned {int_rss / 2**20:.1f} MiB vs deepcopy {deep_rss / 2**20:.1f} MiB")
    gate.require("common points", common > 0, f"{common} n-values compared")
    return gate.finish()


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    reg = sub.add_parser("regress", help="baseline vs fresh candidate")
    reg.add_argument("baseline")
    reg.add_argument("candidate")
    reg.add_argument("--tolerance", type=float, default=0.15,
                     help="allowed throughput/memory regression (default 0.15)")
    reg.set_defaults(func=cmd_regress)

    mem = sub.add_parser("memratio", help="interned vs deep-copy bytes/route")
    mem.add_argument("interned")
    mem.add_argument("deepcopy")
    mem.add_argument("--min-ratio", type=float, default=4.0,
                     help="required deepcopy/interned bytes-per-route ratio (default 4)")
    mem.set_defaults(func=cmd_memratio)

    args = ap.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
