#!/usr/bin/env python3
"""Compare bgpsim BENCH_*.json files and gate CI on regressions.

Two subcommands:

  regress BASELINE CANDIDATE [--tolerance 0.15]
      Compares a freshly produced bench JSON against the checked-in
      baseline. Simulation-result fields (event/message/route counts,
      identity flags) must match the baseline EXACTLY -- they are
      machine-independent, so any drift means the decision process
      changed, which is a hard failure. Throughput/wall-clock fields may
      regress by at most --tolerance (default 15%).

  memratio INTERNED DEEPCOPY [--min-ratio 4.0]
      Compares two scale-suite runs (the default interned build vs the
      -DBGPSIM_DEEP_COPY_PATHS=ON baseline) and requires the interned
      build to use at least --min-ratio times fewer bytes per stored
      route at every common n.

Exit status: 0 = all gates pass, 1 = regression / mismatch, 2 = usage or
malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


class Gate:
    def __init__(self):
        self.failures = []

    def exact(self, name, base, cand):
        if base != cand:
            self.failures.append(
                f"IDENTITY MISMATCH {name}: baseline {base!r} != candidate {cand!r}")
        else:
            print(f"  ok  {name}: {cand!r} (exact)")

    def require(self, name, cond, detail):
        if not cond:
            self.failures.append(f"FAILED {name}: {detail}")
        else:
            print(f"  ok  {name}: {detail}")

    def throughput(self, name, base, cand, tolerance):
        # Higher is better; candidate may be slower by at most `tolerance`.
        if base <= 0:
            print(f"  --  {name}: no baseline, skipped")
            return
        ratio = cand / base
        verdict = ratio >= 1.0 - tolerance
        line = f"{name}: {cand:g} vs baseline {base:g} ({ratio:.2%})"
        if verdict:
            print(f"  ok  {line}")
        else:
            self.failures.append(f"THROUGHPUT REGRESSION {line}, tolerance {tolerance:.0%}")

    def finish(self):
        if self.failures:
            print()
            for f in self.failures:
                print(f, file=sys.stderr)
            return 1
        print("bench_compare: all gates passed")
        return 0


def regress_fig01(base, cand, tolerance, gate):
    for field in ("nodes", "seeds_per_point", "runs", "events_total"):
        gate.exact(field, base.get(field), cand.get(field))
    gate.require(
        "parallel_identical_to_serial",
        cand.get("parallel_identical_to_serial") is True,
        f"candidate flag = {cand.get('parallel_identical_to_serial')}")
    gate.throughput("serial_events_per_s", base.get("serial_events_per_s", 0),
                    cand.get("serial_events_per_s", 0), tolerance)
    gate.throughput("parallel_events_per_s", base.get("parallel_events_per_s", 0),
                    cand.get("parallel_events_per_s", 0), tolerance)


def regress_scale(base, cand, tolerance, gate):
    gate.exact("mode", base.get("mode"), cand.get("mode"))
    base_by_n = {p["n"]: p for p in base.get("points", [])}
    common = 0
    for p in cand.get("points", []):
        bp = base_by_n.get(p["n"])
        if bp is None:
            print(f"  --  n={p['n']}: not in baseline, skipped")
            continue
        common += 1
        for field in ("events", "messages", "routes"):
            gate.exact(f"n={p['n']}.{field}", bp.get(field), p.get(field))
        # Memory is a tracked resource: treat bytes/route like inverse
        # throughput (candidate may grow by at most `tolerance`).
        gate.throughput(f"n={p['n']}.routes_per_byte",
                        1.0 / bp["bytes_per_route"], 1.0 / p["bytes_per_route"], tolerance)
        wall_b = bp.get("converge_wall_s", 0) + bp.get("failure_wall_s", 0)
        wall_c = p.get("converge_wall_s", 0) + p.get("failure_wall_s", 0)
        if wall_b > 0 and wall_c > 0:
            gate.throughput(f"n={p['n']}.events_per_wall_s",
                            bp["events"] / wall_b, p["events"] / wall_c, tolerance)
    gate.require("common points", common > 0, f"{common} n-values compared")


def cmd_regress(args):
    base = load(args.baseline)
    cand = load(args.candidate)
    gate = Gate()
    gate.exact("suite", base.get("suite"), cand.get("suite"))
    suite = base.get("suite")
    print(f"bench_compare: suite={suite}, tolerance={args.tolerance:.0%}")
    if suite == "fig01_sweep":
        regress_fig01(base, cand, args.tolerance, gate)
    elif suite == "scale":
        regress_scale(base, cand, args.tolerance, gate)
    else:
        print(f"bench_compare: unknown suite {suite!r}", file=sys.stderr)
        return 2
    return gate.finish()


def cmd_memratio(args):
    interned = load(args.interned)
    deep = load(args.deepcopy)
    gate = Gate()
    gate.require("interned mode", interned.get("mode") == "interned",
                 f"mode = {interned.get('mode')}")
    gate.require("deepcopy mode", deep.get("mode") == "deepcopy",
                 f"mode = {deep.get('mode')}")
    deep_by_n = {p["n"]: p for p in deep.get("points", [])}
    common = 0
    for p in interned.get("points", []):
        dp = deep_by_n.get(p["n"])
        if dp is None:
            continue
        common += 1
        # The storage refactor must not change what is stored, only how.
        for field in ("events", "messages", "routes"):
            gate.exact(f"n={p['n']}.{field}", dp.get(field), p.get(field))
        ratio = dp["bytes_per_route"] / p["bytes_per_route"]
        gate.require(
            f"n={p['n']}.bytes_per_route ratio",
            ratio >= args.min_ratio,
            f"deepcopy {dp['bytes_per_route']:.1f} / interned {p['bytes_per_route']:.1f} "
            f"= {ratio:.2f}x (need >= {args.min_ratio:g}x)")
    gate.require("common points", common > 0, f"{common} n-values compared")
    return gate.finish()


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    reg = sub.add_parser("regress", help="baseline vs fresh candidate")
    reg.add_argument("baseline")
    reg.add_argument("candidate")
    reg.add_argument("--tolerance", type=float, default=0.15,
                     help="allowed throughput/memory regression (default 0.15)")
    reg.set_defaults(func=cmd_regress)

    mem = sub.add_parser("memratio", help="interned vs deep-copy bytes/route")
    mem.add_argument("interned")
    mem.add_argument("deepcopy")
    mem.add_argument("--min-ratio", type=float, default=4.0,
                     help="required deepcopy/interned bytes-per-route ratio (default 4)")
    mem.set_defaults(func=cmd_memratio)

    args = ap.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
