// bgpsim_run: command-line front end for the experiment harness.
//
//   bgpsim_run --topo skew70-30 --n 120 --failure 0.10 --scheme dynamic --seeds 3
//   bgpsim_run --mrai 0.5 --batching --csv
//   bgpsim_run --help
//
// Prints one row per seed plus a mean row (or CSV with --csv). Exit status
// is non-zero if any run fails the route audit.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "bgp/checkpoint.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/parallel.hpp"
#include "harness/profile.hpp"
#include "harness/resume.hpp"
#include "harness/table.hpp"
#include "harness/warmstart.hpp"
#include "obs/binary_trace.hpp"
#include "obs/telemetry.hpp"
#include "schemes/dynamic_mrai.hpp"

using namespace bgpsim;

namespace {

constexpr const char* kUsage = R"(bgpsim_run -- BGP convergence experiments (DSN'06 reproduction)

Topology:
  --topo KIND       skew70-30 (default) | skew50-50 | skew85-15 |
                    skew50-50-dense | internet | waxman | ba | glp | hier
  --n N             nodes (default 120); for hier: number of ASes
Failure:
  --failure F       fraction of routers, contiguous at grid centre (default 0.10)
Scheme:
  --scheme S        const (default) | degree | dynamic | extent
  --mrai X          constant MRAI seconds (default 0.5; 0 disables)
  --low X / --high X / --threshold D   degree-dependent parameters
  --batching        enable the paper's batching scheme
Protocol knobs:
  --queue Q         fifo (default) | batched | tcp
  --per-dest-mrai   per-destination MRAI timers
  --withdrawal-mrai rate-limit withdrawals too
  --no-jitter       disable RFC 1771 timer jitter
  --ssld            sender-side loop detection
  --detection X     failure detection delay seconds (default 0)
  --damping [HL]    route-flap damping, optional half-life seconds (default 30)
  --prefixes K      prefixes per origin (default 1)
  --recovery        also measure re-convergence after the region recovers
  --policy          Gao-Rexford policy routing (degree-inferred relations)
Observability (captures the base-seed run; see tools/trace_inspect):
  --trace FILE      stream every trace event to a binary .bgtr file; with
                    --par-threads N this writes FILE (a manifest) plus
                    FILE.shard0..N-1 -- reassemble with `trace_inspect merge`
  --telemetry FILE  periodic per-router/network samples to a .bgtl file
                    (composes with every mode, including --par-threads,
                    --warm and --restore)
  --sample-interval S   telemetry sampling period seconds (default 0.1)
  --profile FILE    sweep wall-clock/utilization profile as JSON
Checkpointing (quiescent snapshots; see DESIGN.md and tools/checkpoint_inspect):
  --checkpoint FILE write the base seed's converged state to a .bgck file,
                    then run its failure phase warm from that snapshot
  --restore FILE    warm-start the base seed from an existing .bgck snapshot
                    (must match the configured topology/scheme/seed)
  --warm            converge once per converged-state group, snapshot, and
                    run every failure scenario from the snapshot
                    (bit-identical to the cold sweep, much faster)
  --journal FILE    journal per-run results to JSONL as the sweep progresses
  --resume          with --journal: execute only runs missing from the journal
Run control:
  --seeds K         replicas (default 3)    --seed S  base seed (default 1)
  --par-threads N   intra-run partition threads (default: BGPSIM_PAR_THREADS,
                    else 0 = classic serial scheduler; 1 = the partitioned
                    serial oracle; see DESIGN.md "Parallel execution")
  --csv             CSV output              --help    this text
)";

harness::TopologySpec topo_from(const std::string& name, std::size_t n) {
  harness::TopologySpec t;
  t.n = n;
  using Kind = harness::TopologySpec::Kind;
  if (name == "skew70-30") {
    t.skew = topo::SkewSpec::s70_30();
  } else if (name == "skew50-50") {
    t.skew = topo::SkewSpec::s50_50();
  } else if (name == "skew85-15") {
    t.skew = topo::SkewSpec::s85_15();
  } else if (name == "skew50-50-dense") {
    t.skew = topo::SkewSpec::s50_50_dense();
  } else if (name == "internet") {
    t.kind = Kind::kInternetLike;
  } else if (name == "waxman") {
    t.kind = Kind::kWaxman;
  } else if (name == "ba") {
    t.kind = Kind::kBarabasiAlbert;
  } else if (name == "glp") {
    t.kind = Kind::kGlp;
  } else if (name == "hier") {
    t.kind = Kind::kHierarchical;
    t.hier.num_ases = n;
    t.hier.max_total_routers = n * 5 / 2;
  } else {
    throw std::invalid_argument{"unknown --topo '" + name + "'"};
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto opts = harness::Options::parse(argc - 1, argv + 1);
    if (opts.flag("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto unknown = opts.unknown_keys(
        {"topo", "n", "failure", "scheme", "mrai", "low", "high", "threshold", "batching",
         "queue", "per-dest-mrai", "withdrawal-mrai", "no-jitter", "ssld", "detection",
         "damping", "prefixes", "recovery", "policy", "seeds", "seed", "csv", "help",
         "trace", "telemetry", "sample-interval", "profile", "checkpoint", "restore",
         "warm", "journal", "resume", "par-threads"});
    if (!unknown.empty()) {
      std::fprintf(stderr, "unknown option --%s (try --help)\n", unknown.front().c_str());
      return 2;
    }

    harness::ExperimentConfig cfg;
    cfg.topology =
        topo_from(opts.get_or("topo", "skew70-30"),
                  static_cast<std::size_t>(opts.get_int("n", 120)));
    cfg.failure_fraction = opts.get_double("failure", 0.10);
    cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

    const auto scheme = opts.get_or("scheme", "const");
    if (scheme == "const") {
      cfg.scheme = harness::SchemeSpec::constant(opts.get_double("mrai", 0.5));
    } else if (scheme == "degree") {
      cfg.scheme = harness::SchemeSpec::degree_dependent(
          opts.get_double("low", 0.5), opts.get_double("high", 2.25),
          static_cast<std::size_t>(opts.get_int("threshold", 5)));
    } else if (scheme == "dynamic") {
      cfg.scheme = harness::SchemeSpec::dynamic_mrai();
    } else if (scheme == "extent") {
      cfg.scheme = harness::SchemeSpec::extent_mrai();
    } else {
      throw std::invalid_argument{"unknown --scheme '" + scheme + "'"};
    }
    cfg.scheme.batching = opts.flag("batching");

    const auto queue = opts.get_or("queue", "fifo");
    if (queue == "batched") {
      cfg.bgp.queue = bgp::QueueDiscipline::kBatched;
    } else if (queue == "tcp") {
      cfg.bgp.queue = bgp::QueueDiscipline::kTcpBatch;
    } else if (queue != "fifo") {
      throw std::invalid_argument{"unknown --queue '" + queue + "'"};
    }
    cfg.bgp.per_destination_mrai = opts.flag("per-dest-mrai");
    cfg.bgp.mrai_applies_to_withdrawals = opts.flag("withdrawal-mrai");
    cfg.bgp.jitter_timers = !opts.flag("no-jitter");
    cfg.bgp.sender_side_loop_detection = opts.flag("ssld");
    cfg.bgp.failure_detection_delay = sim::SimTime::seconds(opts.get_double("detection", 0.0));
    if (opts.flag("damping")) {
      cfg.bgp.damping.enabled = true;
      cfg.bgp.damping.half_life_s = opts.get_double("damping", 30.0);
    }
    cfg.bgp.prefixes_per_origin = static_cast<std::uint32_t>(opts.get_int("prefixes", 1));
    cfg.measure_recovery = opts.flag("recovery");
    cfg.topology.policy_routing = opts.flag("policy");

    const auto seeds = static_cast<std::size_t>(opts.get_int("seeds", 3));
    const auto trace_path = opts.get_or("trace", "");
    const auto telemetry_path = opts.get_or("telemetry", "");
    const auto profile_path = opts.get_or("profile", "");
    const double sample_interval = opts.get_double("sample-interval", 0.1);
    const auto checkpoint_path = opts.get_or("checkpoint", "");
    const auto restore_path = opts.get_or("restore", "");
    const bool warm = opts.flag("warm");
    const auto journal_path = opts.get_or("journal", "");
    const bool resume = opts.flag("resume");
    const auto par_threads = static_cast<std::size_t>(opts.get_int("par-threads", 0));

    const bool checkpointing = !checkpoint_path.empty() || !restore_path.empty() || warm ||
                               !journal_path.empty();
    if (par_threads != 0 && (checkpointing || resume)) {
      // The .bgck/journal formats describe legacy serial state only; the
      // harness would silently fall back, so fail loudly instead.
      throw std::invalid_argument{
          "--par-threads cannot be combined with checkpoint/warm/journal options"};
    }
    if (!checkpoint_path.empty() && !restore_path.empty()) {
      throw std::invalid_argument{"--checkpoint and --restore are mutually exclusive"};
    }
    if (warm && (!checkpoint_path.empty() || !restore_path.empty())) {
      throw std::invalid_argument{"--warm cannot be combined with --checkpoint/--restore"};
    }
    if (resume && journal_path.empty()) {
      throw std::invalid_argument{"--resume requires --journal FILE"};
    }
    if ((!checkpoint_path.empty() || warm) && !trace_path.empty()) {
      // Snapshot *capture* converges on a throwaway network that is torn
      // down right after the checkpoint is taken, so a trace attached there
      // would record only part of the cold phase and then dangle. Telemetry
      // is fine -- the sampler starts fresh at restore time and covers the
      // failure phase, which is all a warm run simulates. To trace a warm
      // failure phase, capture the snapshot first and rerun with --restore.
      throw std::invalid_argument{
          "--trace cannot be combined with snapshot capture (--checkpoint/--warm): "
          "the converge pass is discarded after the snapshot; use --restore to "
          "trace the warm failure phase"};
    }
    if (checkpointing && !profile_path.empty()) {
      // The sweep profiler instruments run_sweep_profiled only; the
      // checkpointing drivers never fill it, so the JSON would be empty.
      throw std::invalid_argument{
          "--profile cannot be combined with checkpointing options"};
    }

    cfg.par_threads = par_threads;
    std::vector<harness::ExperimentConfig> cfgs(std::max<std::size_t>(seeds, 1), cfg);
    for (std::size_t i = 0; i < cfgs.size(); ++i) cfgs[i].seed = cfg.seed + i;

    // Capture hooks go on the base-seed config only, so no other run (or
    // pool thread) ever touches the sink/sampler.
    std::unique_ptr<obs::BinaryTraceSink> trace_sink;
    std::unique_ptr<obs::ShardedTraceWriter> shard_writer;
    std::unique_ptr<obs::TelemetrySampler> sampler;
    // Set around converge_snapshot below: that pass builds a throwaway
    // network (destroyed right after capture), and an observer bound to it
    // would dangle into the warm run that follows.
    bool in_snapshot_converge = false;
    if (!trace_path.empty() || !telemetry_path.empty()) {
      cfgs[0].instrument = [&](bgp::Network& net, std::uint64_t) {
        if (in_snapshot_converge) return;
        if (!trace_path.empty()) {
          if (net.parallel()) {
            // Partition workers emit concurrently, so each partition gets
            // its own shard; `trace_inspect merge` (or export/diff, which
            // merge transparently) reconstructs the serial-identical trace.
            shard_writer =
                std::make_unique<obs::ShardedTraceWriter>(trace_path, net.par_threads());
            net.set_sharded_trace_sink(shard_writer.get());
          } else {
            trace_sink = std::make_unique<obs::BinaryTraceSink>(trace_path);
            net.set_trace_sink(trace_sink.get());
          }
        }
        if (!telemetry_path.empty()) {
          obs::TelemetryConfig tc;
          tc.interval = sim::SimTime::seconds(sample_interval);
          if (auto* dyn = dynamic_cast<schemes::DynamicMrai*>(&net.mrai())) {
            tc.mrai_level = [dyn](bgp::NodeId v) { return dyn->level(v); };
          }
          sampler = std::make_unique<obs::TelemetrySampler>(net, tc);
        }
      };
      cfgs[0].on_phase = [&](harness::RunPhase) {
        if (sampler) sampler->start();
      };
      cfgs[0].on_complete = [&](bgp::Network& net, std::uint64_t) {
        if (sampler) {
          sampler->write_file(telemetry_path);
          std::fprintf(stderr, "telemetry: %zu samples x %zu routers -> %s\n",
                       sampler->samples(), sampler->routers(), telemetry_path.c_str());
          sampler.reset();
        }
        if (trace_sink) {
          net.set_trace_sink(nullptr);
          trace_sink->close();
          std::fprintf(stderr, "trace: %llu events -> %s\n",
                       static_cast<unsigned long long>(trace_sink->events_written()),
                       trace_path.c_str());
          trace_sink.reset();
        }
        if (shard_writer) {
          net.set_sharded_trace_sink(nullptr);
          shard_writer->close();
          std::fprintf(stderr,
                       "trace: %llu events -> %s + %zu shards "
                       "(reassemble: trace_inspect merge %s)\n",
                       static_cast<unsigned long long>(shard_writer->events_written()),
                       trace_path.c_str(), shard_writer->partitions(), trace_path.c_str());
          shard_writer.reset();
        }
      };
    }

    harness::SweepProfile profile;
    std::vector<harness::RunResult> runs;
    if (!journal_path.empty()) {
      harness::ResumeOptions ropt;
      ropt.journal_path = journal_path;
      ropt.resume = resume;
      ropt.warm = warm;
      runs = harness::run_sweep_resumable(cfgs, ropt);
    } else if (!restore_path.empty()) {
      harness::Snapshot snap;
      snap.checkpoint = bgp::read_checkpoint_file(restore_path);
      runs.reserve(cfgs.size());
      runs.push_back(harness::run_experiment_from(cfgs[0], snap));
      // Other seeds converge to different states; they run cold.
      for (std::size_t i = 1; i < cfgs.size(); ++i)
        runs.push_back(harness::run_experiment(cfgs[i]));
    } else if (!checkpoint_path.empty()) {
      in_snapshot_converge = true;
      const auto snap = harness::converge_snapshot(cfgs[0]);
      in_snapshot_converge = false;
      bgp::write_checkpoint_file(checkpoint_path, snap.checkpoint);
      std::fprintf(stderr, "checkpoint: %zu state bytes -> %s\n", snap.checkpoint.state.size(),
                   checkpoint_path.c_str());
      runs.reserve(cfgs.size());
      runs.push_back(harness::run_experiment_from(cfgs[0], snap));
      for (std::size_t i = 1; i < cfgs.size(); ++i)
        runs.push_back(harness::run_experiment(cfgs[i]));
    } else if (warm) {
      runs = harness::run_sweep_warm(cfgs);
    } else {
      runs = profile_path.empty() ? harness::run_sweep(cfgs)
                                  : harness::run_sweep_profiled(cfgs, profile);
    }
    if (!profile_path.empty()) profile.write_json_file(profile_path);
    const auto result = harness::aggregate_runs(std::move(runs));

    const bool csv = opts.flag("csv");
    if (csv) {
      std::printf("seed,delay_s,messages,adverts,withdrawals,dropped,routers,failed,valid\n");
      for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const auto& r = result.runs[i];
        std::printf("%llu,%.3f,%llu,%llu,%llu,%llu,%zu,%zu,%d\n",
                    static_cast<unsigned long long>(cfg.seed + i),
                    r.convergence_delay_s,
                    static_cast<unsigned long long>(r.messages_after_failure),
                    static_cast<unsigned long long>(r.adverts_after_failure),
                    static_cast<unsigned long long>(r.withdrawals_after_failure),
                    static_cast<unsigned long long>(r.batch_dropped), r.routers,
                    r.failed_routers, r.routes_valid ? 1 : 0);
      }
    } else {
      harness::Table table{{"seed", "delay(s)", "recovery(s)", "messages", "dropped", "valid"}};
      for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const auto& r = result.runs[i];
        table.add_row({std::to_string(cfg.seed + i), harness::Table::fmt(r.convergence_delay_s),
                       cfg.measure_recovery ? harness::Table::fmt(r.recovery_delay_s) : "-",
                       std::to_string(r.messages_after_failure),
                       std::to_string(r.batch_dropped), r.routes_valid ? "yes" : "NO"});
      }
      table.add_row({"mean", harness::Table::fmt(result.delay.mean), "",
                     harness::Table::fmt(result.messages.mean, 0), "",
                     result.valid_fraction == 1.0 ? "yes" : "NO"});
      table.print(std::cout);
    }
    if (result.valid_fraction != 1.0) {
      for (const auto& r : result.runs) {
        if (!r.routes_valid) std::fprintf(stderr, "audit: %s\n", r.audit_error.c_str());
      }
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s (try --help)\n", e.what());
    return 2;
  }
}
