// Router-to-thread partitioners for intra-run parallel simulation.
//
// Both partitioners are deterministic pure functions of their inputs: the
// parallel scheduler's reproducibility argument (DESIGN.md "Parallel
// execution") requires that the partition assignment depends only on the
// topology and k, never on thread timing or iteration order of hash
// containers.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace bgpsim::topo {

struct PartitionResult {
  /// part_of[v] in [0, k) for every node v.
  std::vector<std::uint32_t> part_of;
  std::size_t k = 1;
  /// Undirected edges whose endpoints land in different partitions.
  std::size_t cut_edges = 0;
  std::size_t max_size = 0;
  std::size_t min_size = 0;
};

/// Splits [0, n) into k contiguous ID ranges of near-equal size (sizes
/// differ by at most one). Ignores topology; useful as a baseline and for
/// topologies whose IDs are already locality-ordered (grids).
PartitionResult partition_contiguous(std::size_t n, std::size_t k);

/// METIS-lite greedy edge-cut partitioner: grows each partition by BFS from
/// the lowest-numbered unassigned node, preferring the frontier node with
/// the best internal-minus-external edge score (2 * assigned-neighbor count
/// - degree, the Fiduccia-Mattheyses move gain), until the partition
/// reaches its quota (n/k rounded up for the first n%k partitions -- sizes
/// differ by at most one, so balance is always within the 10% bound).
/// Deterministic: ties break on lowest node ID.
PartitionResult partition_greedy(const std::vector<std::vector<std::uint32_t>>& adj,
                                 std::size_t k);

/// Counts cut edges and size extremes for an assignment (used by both
/// partitioners and by tests).
void finalize_stats(PartitionResult& r,
                    const std::vector<std::vector<std::uint32_t>>& adj);

}  // namespace bgpsim::topo
