#include "topo/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "topo/degree_sequence.hpp"

namespace bgpsim::topo {

namespace {

std::vector<std::int64_t> sample_as_sizes(const HierParams& p, sim::Rng& rng) {
  std::vector<std::int64_t> sizes(p.num_ases);
  for (auto& s : sizes) s = rng.bounded_pareto(p.size_alpha, p.min_as_size, p.max_as_size);
  auto total = std::accumulate(sizes.begin(), sizes.end(), std::int64_t{0});
  if (total > static_cast<std::int64_t>(p.max_total_routers)) {
    const double scale = static_cast<double>(p.max_total_routers) / static_cast<double>(total);
    for (auto& s : sizes) s = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(static_cast<double>(s) * scale)));
  }
  return sizes;
}

}  // namespace

HierTopology hierarchical(const HierParams& params, sim::Rng& rng) {
  if (params.num_ases < 2) throw std::invalid_argument{"hierarchical: need >= 2 ASes"};

  HierTopology topo;
  auto sizes = sample_as_sizes(params, rng);
  // Sort descending so AS 0 is the largest (highest inter-AS degree).
  std::sort(sizes.begin(), sizes.end(), std::greater<>());

  // Inter-AS degree sequence: Internet-like, highest degrees to largest
  // ASes. The target average is clamped into the range the truncated power
  // law can reach (small degree caps compress it).
  const int max_deg = std::min(params.max_inter_as_degree, static_cast<int>(params.num_ases) - 1);
  const double hi_avg = power_law_mean(0.15, max_deg);
  const double lo_avg = power_law_mean(5.5, max_deg);
  const double target =
      std::clamp(params.target_avg_inter_as_degree, lo_avg + 1e-6, hi_avg - 1e-6);
  auto degrees = internet_like_sequence(params.num_ases, max_deg, target, rng);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  topo.as_graph = realize_degree_sequence(degrees, rng);

  // Geography: AS centres random on the grid; AS radius ~ sqrt(size) so the
  // covered area is proportional to the AS size (paper: perfect correlation).
  topo.as_graph.place_randomly(params.grid, params.grid, rng);
  const double radius_unit = params.grid / 50.0;  // radius of a single-router AS

  topo.routers_of_as.resize(params.num_ases);
  for (AsId as = 0; as < params.num_ases; ++as) {
    const Point c = topo.as_graph.position(as);
    const double radius = radius_unit * std::sqrt(static_cast<double>(sizes[as]));
    for (std::int64_t k = 0; k < sizes[as]; ++k) {
      const auto id = static_cast<NodeId>(topo.as_of_router.size());
      topo.as_of_router.push_back(as);
      topo.routers_of_as[as].push_back(id);
      // Uniform point in the disk (sqrt for uniform area density), clamped
      // to the grid.
      const double ang = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double r = radius * std::sqrt(rng.uniform(0.0, 1.0));
      Point p{c.x + r * std::cos(ang), c.y + r * std::sin(ang)};
      p.x = std::clamp(p.x, 0.0, params.grid);
      p.y = std::clamp(p.y, 0.0, params.grid);
      topo.router_pos.push_back(p);
    }
  }

  // iBGP: full mesh inside each AS.
  for (AsId as = 0; as < params.num_ases; ++as) {
    const auto& rs = topo.routers_of_as[as];
    for (std::size_t i = 0; i < rs.size(); ++i) {
      for (std::size_t j = i + 1; j < rs.size(); ++j) {
        topo.sessions.push_back({rs[i], rs[j], /*ebgp=*/false});
      }
    }
  }

  // eBGP: one session per AS-level edge; border routers chosen round-robin.
  std::vector<std::size_t> next_border(params.num_ases, 0);
  auto pick_border = [&](AsId as) {
    const auto& rs = topo.routers_of_as[as];
    const NodeId r = rs[next_border[as] % rs.size()];
    ++next_border[as];
    return r;
  };
  for (const auto& [a, b] : topo.as_graph.edges()) {
    topo.sessions.push_back({pick_border(a), pick_border(b), /*ebgp=*/true});
  }

  topo.origin_router.resize(params.num_ases);
  for (AsId as = 0; as < params.num_ases; ++as) {
    topo.origin_router[as] = topo.routers_of_as[as].front();
  }
  return topo;
}

}  // namespace bgpsim::topo
