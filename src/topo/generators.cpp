#include "topo/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace bgpsim::topo {

namespace {

/// Joins the connected components of g with the geographically shortest
/// inter-component links (keeps Waxman graphs plausible after patching).
void connect_components(Graph& g) {
  const std::size_t n = g.size();
  std::vector<std::size_t> comp(n, SIZE_MAX);
  std::size_t num_comp = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (comp[start] != SIZE_MAX) continue;
    std::vector<NodeId> stack{start};
    comp[start] = num_comp;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v)) {
        if (comp[w] == SIZE_MAX) {
          comp[w] = num_comp;
          stack.push_back(w);
        }
      }
    }
    ++num_comp;
  }
  while (num_comp > 1) {
    // Merge component of node 0 with the closest node outside it.
    double best = std::numeric_limits<double>::max();
    NodeId ba = 0;
    NodeId bb = 0;
    for (NodeId a = 0; a < n; ++a) {
      if (comp[a] != comp[0]) continue;
      for (NodeId b = 0; b < n; ++b) {
        if (comp[b] == comp[0]) continue;
        const double d = distance(g.position(a), g.position(b));
        if (d < best) {
          best = d;
          ba = a;
          bb = b;
        }
      }
    }
    g.add_edge(ba, bb);
    const std::size_t absorbed = comp[bb];
    for (auto& c : comp) {
      if (c == absorbed) c = comp[0];
    }
    --num_comp;
  }
}

}  // namespace

Graph waxman(const WaxmanParams& params, sim::Rng& rng) {
  Graph g{params.n};
  g.place_randomly(params.grid, params.grid, rng);
  const double scale = params.beta * params.grid * std::numbers::sqrt2;
  for (NodeId i = 0; i < params.n; ++i) {
    for (NodeId j = i + 1; j < params.n; ++j) {
      const double d = distance(g.position(i), g.position(j));
      if (rng.bernoulli(params.alpha * std::exp(-d / scale))) g.add_edge(i, j);
    }
  }
  connect_components(g);
  return g;
}

Graph barabasi_albert(const BaParams& params, sim::Rng& rng) {
  if (params.m < 1 || params.n <= params.m) {
    throw std::invalid_argument{"barabasi_albert: need n > m >= 1"};
  }
  Graph g{params.n};
  g.place_randomly(params.grid, params.grid, rng);
  // Seed: a small clique of m+1 nodes.
  const auto seed = static_cast<NodeId>(params.m + 1);
  for (NodeId i = 0; i < seed; ++i) {
    for (NodeId j = i + 1; j < seed; ++j) g.add_edge(i, j);
  }
  for (NodeId v = seed; v < params.n; ++v) {
    std::vector<double> weights(v);
    for (NodeId u = 0; u < v; ++u) weights[u] = static_cast<double>(g.degree(u));
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < params.m && guard++ < 50 * params.m) {
      const auto u = static_cast<NodeId>(rng.weighted_index(weights));
      if (g.add_edge(v, u)) {
        weights[u] = 0.0;  // at most one edge to each target
        ++added;
      }
    }
  }
  return g;
}

Graph glp(const GlpParams& params, sim::Rng& rng) {
  if (params.beta >= 1.0) throw std::invalid_argument{"glp: beta must be < 1"};
  if (params.m < 1 || params.n <= params.m) throw std::invalid_argument{"glp: need n > m >= 1"};
  Graph g{params.n};
  g.place_randomly(params.grid, params.grid, rng);
  const auto seed = static_cast<NodeId>(params.m + 1);
  for (NodeId i = 0; i < seed; ++i) {
    for (NodeId j = i + 1; j < seed; ++j) g.add_edge(i, j);
  }
  NodeId active = seed;  // nodes [0, active) are in the graph
  auto pref_weights = [&](NodeId limit) {
    std::vector<double> w(limit);
    for (NodeId u = 0; u < limit; ++u) {
      w[u] = std::max(static_cast<double>(g.degree(u)) - params.beta, 1e-9);
    }
    return w;
  };
  while (active < params.n) {
    if (rng.bernoulli(params.p)) {
      // Add m links between existing nodes, preferentially at both ends.
      for (std::size_t k = 0; k < params.m; ++k) {
        auto w = pref_weights(active);
        std::size_t guard = 0;
        while (guard++ < 100) {
          const auto a = static_cast<NodeId>(rng.weighted_index(w));
          const auto b = static_cast<NodeId>(rng.weighted_index(w));
          if (g.add_edge(a, b)) break;
        }
      }
    } else {
      const NodeId v = active++;
      auto w = pref_weights(v);
      std::size_t added = 0;
      std::size_t guard = 0;
      while (added < params.m && guard++ < 50 * params.m) {
        const auto u = static_cast<NodeId>(rng.weighted_index(w));
        if (g.add_edge(v, u)) {
          w[u] = 1e-9;
          ++added;
        }
      }
    }
  }
  connect_components(g);
  return g;
}

}  // namespace bgpsim::topo
