// BRITE-style flat AS-level topology generators.
//
// The paper generated topologies with a modified BRITE, which supports
// Waxman, Barabasi-Albert and GLP models alongside explicit degree
// distributions. These generators are provided for generality (tests,
// examples, sensitivity studies); the headline experiments use the skewed
// degree sequences from degree_sequence.hpp.
//
// All generators return a *connected* graph with nodes already placed on
// the grid.
#pragma once

#include <cstddef>

#include "sim/random.hpp"
#include "topo/graph.hpp"

namespace bgpsim::topo {

struct WaxmanParams {
  std::size_t n = 120;
  double alpha = 0.15;  ///< overall link probability scale
  double beta = 0.4;    ///< distance sensitivity (larger => longer links likelier)
  double grid = 1000.0;
};

/// Waxman random graph: nodes placed on the grid, edge (i,j) added with
/// probability alpha * exp(-d(i,j) / (beta * L)), then components joined by
/// shortest bridging links so the result is connected.
Graph waxman(const WaxmanParams& params, sim::Rng& rng);

struct BaParams {
  std::size_t n = 120;
  std::size_t m = 2;  ///< links added per new node
  double grid = 1000.0;
};

/// Barabasi-Albert preferential attachment (incremental growth, each new
/// node connects to m distinct existing nodes with probability proportional
/// to their degree).
Graph barabasi_albert(const BaParams& params, sim::Rng& rng);

struct GlpParams {
  std::size_t n = 120;
  std::size_t m = 2;    ///< links per growth event
  double p = 0.45;      ///< probability of adding links between existing nodes
  double beta = 0.64;   ///< GLP preference shift, < 1
  double grid = 1000.0;
};

/// Generalized Linear Preference model (Bu & Towsley): with probability p,
/// m new links are added between existing nodes; otherwise a new node joins
/// with m links. Preference weight of node v is (degree(v) - beta).
Graph glp(const GlpParams& params, sim::Rng& rng);

}  // namespace bgpsim::topo
