#include "topo/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace bgpsim::topo {

namespace {

std::vector<std::size_t> quotas(std::size_t n, std::size_t k) {
  std::vector<std::size_t> q(k, n / k);
  for (std::size_t p = 0; p < n % k; ++p) ++q[p];
  return q;
}

}  // namespace

void finalize_stats(PartitionResult& r,
                    const std::vector<std::vector<std::uint32_t>>& adj) {
  std::vector<std::size_t> sizes(r.k, 0);
  for (const std::uint32_t p : r.part_of) ++sizes.at(p);
  r.max_size = *std::max_element(sizes.begin(), sizes.end());
  r.min_size = *std::min_element(sizes.begin(), sizes.end());
  r.cut_edges = 0;
  for (std::uint32_t v = 0; v < adj.size(); ++v) {
    for (const std::uint32_t w : adj[v]) {
      if (v < w && r.part_of[v] != r.part_of[w]) ++r.cut_edges;
    }
  }
}

PartitionResult partition_contiguous(std::size_t n, std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("partition: need 0 < k <= n");
  PartitionResult r;
  r.k = k;
  r.part_of.resize(n);
  const auto quota = quotas(n, k);
  std::size_t v = 0;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < quota[p]; ++i) r.part_of[v++] = static_cast<std::uint32_t>(p);
  }
  finalize_stats(r, {});
  r.min_size = *std::min_element(quota.begin(), quota.end());
  r.max_size = *std::max_element(quota.begin(), quota.end());
  return r;
}

PartitionResult partition_greedy(const std::vector<std::vector<std::uint32_t>>& adj,
                                 std::size_t k) {
  const std::size_t n = adj.size();
  if (k == 0 || k > n) throw std::invalid_argument("partition: need 0 < k <= n");
  PartitionResult r;
  r.k = k;
  constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;
  r.part_of.assign(n, kUnassigned);
  const auto quota = quotas(n, k);

  // gain[v] = number of v's neighbors already inside the partition being
  // grown. Rebuilt (cheaply, by incremental bumps) for each partition.
  std::vector<std::uint32_t> gain(n, 0);
  std::size_t next_seed = 0;  // lowest possibly-unassigned node
  for (std::size_t p = 0; p < k; ++p) {
    std::vector<std::uint32_t> frontier;  // unassigned nodes adjacent to p
    std::size_t taken = 0;
    while (taken < quota[p]) {
      // Pick the frontier node with the best FM-style score: edges into the
      // growing partition minus edges still outside it (2*gain - degree).
      // Gain alone ties on every frontier node right after a seed and the
      // ID tie-break then drags in low-ID bridge nodes from other
      // communities; penalizing external edges keeps the cut tight. Ties
      // break on lowest ID; if the frontier is empty (disconnected
      // remainder), seed from the lowest unassigned ID.
      std::uint32_t pick = kUnassigned;
      std::int64_t best_score = 0;
      for (const std::uint32_t f : frontier) {
        if (r.part_of[f] != kUnassigned) continue;  // stale entry
        const std::int64_t score = std::int64_t{2} * gain[f] -
                                   static_cast<std::int64_t>(adj[f].size());
        if (pick == kUnassigned || score > best_score ||
            (score == best_score && f < pick)) {
          pick = f;
          best_score = score;
        }
      }
      if (pick == kUnassigned) {
        while (next_seed < n && r.part_of[next_seed] != kUnassigned) ++next_seed;
        pick = static_cast<std::uint32_t>(next_seed);
      }
      r.part_of[pick] = static_cast<std::uint32_t>(p);
      ++taken;
      for (const std::uint32_t w : adj[pick]) {
        if (r.part_of[w] != kUnassigned) continue;
        if (gain[w] == 0) frontier.push_back(w);
        ++gain[w];
      }
    }
    // Reset gains touched by this partition before growing the next one.
    for (const std::uint32_t f : frontier) gain[f] = 0;
  }
  finalize_stats(r, adj);
  return r;
}

}  // namespace bgpsim::topo
