// Topology serialisation.
//
// Two formats:
//  - the native text format (positions + edges), for saving generated
//    topologies and replaying experiments on the exact same graph;
//  - the CAIDA "as-rel" format (`<as>|<as>|<-1|0>`, '#' comments), the
//    de-facto interchange format for measured Internet AS topologies
//    (paper ref [18] published its data this way). AS numbers are remapped
//    to dense node ids; business relationships (provider-customer /
//    peer-peer) are preserved for policy-routing runs.
#pragma once

#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "topo/graph.hpp"

namespace bgpsim::topo {

/// Native format:
///   bgpsim-graph v1 <n>
///   pos <id> <x> <y>      (n lines)
///   edge <a> <b>          (m lines)
void save_graph(const Graph& g, std::ostream& os);

/// Parses the native format; throws std::invalid_argument on malformed
/// input (bad header, out-of-range ids, duplicate edges).
Graph load_graph(std::istream& is);

/// Business relationship of an edge, from the lower-node-id endpoint's
/// perspective is NOT meaningful -- use provider_of below.
enum class Relationship { kPeerPeer, kProviderCustomer };

struct AsRelGraph {
  Graph graph{0};
  /// Original AS number of each dense node id.
  std::vector<std::uint64_t> as_number;
  /// For provider-customer edges: provider node id, keyed by edge (see
  /// edge_key). Peer-peer edges are absent from this map.
  std::unordered_map<std::uint64_t, NodeId> provider;

  static std::uint64_t edge_key(NodeId a, NodeId b) {
    const auto lo = a < b ? a : b;
    const auto hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  Relationship relationship(NodeId a, NodeId b) const {
    return provider.contains(edge_key(a, b)) ? Relationship::kProviderCustomer
                                             : Relationship::kPeerPeer;
  }
  /// True if `p` is the provider on the (p, c) edge.
  bool is_provider(NodeId p, NodeId c) const {
    const auto it = provider.find(edge_key(p, c));
    return it != provider.end() && it->second == p;
  }
};

/// Parses CAIDA as-rel: lines `<provider>|<customer>|-1` or
/// `<peer>|<peer>|0`; '#' starts a comment. Duplicate links keep the first
/// relationship. Nodes are positioned on a grid afterwards by the caller if
/// needed (positions default to the origin).
AsRelGraph load_as_rel(std::istream& is);

}  // namespace bgpsim::topo
