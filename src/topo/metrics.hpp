// Structural graph metrics.
//
// Used to characterise generated topologies (tests assert the generators
// hit the paper's structural targets; the topology_explorer example prints
// them). All functions are O(n*m) or better -- fine for the paper-scale
// graphs this library targets.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/graph.hpp"

namespace bgpsim::topo {

/// histogram[d] = number of nodes with degree d (up to max_degree()).
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Average local clustering coefficient (nodes with degree < 2 contribute
/// 0, as is conventional).
double clustering_coefficient(const Graph& g);

/// Number of connected components.
std::size_t num_components(const Graph& g);

/// Longest shortest path, in hops. Returns 0 for graphs with < 2 nodes and
/// SIZE_MAX if the graph is disconnected.
std::size_t diameter(const Graph& g);

/// Mean shortest-path length over all connected ordered pairs.
double average_path_length(const Graph& g);

/// Pearson correlation of degrees across edge endpoints (Newman's degree
/// assortativity); 0 when undefined (fewer than 2 edges or zero variance).
double degree_assortativity(const Graph& g);

}  // namespace bgpsim::topo
