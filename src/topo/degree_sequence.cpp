#include "topo/degree_sequence.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bgpsim::topo {

double SkewSpec::expected_average() const {
  const double low_avg = (static_cast<double>(low_min) + static_cast<double>(low_max)) / 2.0;
  double high_avg = 0.0;
  double total_w = 0.0;
  for (std::size_t i = 0; i < high_degrees.size(); ++i) {
    high_avg += static_cast<double>(high_degrees[i]) * high_weights.at(i);
    total_w += high_weights.at(i);
  }
  high_avg /= total_w;
  return frac_low * low_avg + (1.0 - frac_low) * high_avg;
}

std::vector<int> skewed_sequence(std::size_t n, const SkewSpec& spec, sim::Rng& rng) {
  if (spec.high_degrees.empty() || spec.high_degrees.size() != spec.high_weights.size()) {
    throw std::invalid_argument{"skewed_sequence: bad high-degree spec"};
  }
  const auto num_low = static_cast<std::size_t>(
      std::llround(spec.frac_low * static_cast<double>(n)));
  std::vector<int> degrees;
  degrees.reserve(n);
  for (std::size_t i = 0; i < num_low; ++i) {
    degrees.push_back(static_cast<int>(rng.uniform_int(spec.low_min, spec.low_max)));
  }
  for (std::size_t i = num_low; i < n; ++i) {
    degrees.push_back(spec.high_degrees[rng.weighted_index(spec.high_weights)]);
  }
  rng.shuffle(degrees);
  return degrees;
}

double power_law_mean(double gamma, int max_degree) {
  double num = 0.0;
  double den = 0.0;
  for (int d = 1; d <= max_degree; ++d) {
    const double p = std::pow(static_cast<double>(d), -gamma);
    num += static_cast<double>(d) * p;
    den += p;
  }
  return num / den;
}

std::vector<int> internet_like_sequence(std::size_t n, int max_degree, double target_avg,
                                        sim::Rng& rng) {
  if (max_degree < 2) throw std::invalid_argument{"internet_like_sequence: max_degree < 2"};
  // The mean is monotonically decreasing in gamma; bisect for the target.
  double lo = 0.1;
  double hi = 6.0;
  if (target_avg >= power_law_mean(lo, max_degree) ||
      target_avg <= power_law_mean(hi, max_degree)) {
    throw std::invalid_argument{"internet_like_sequence: target average out of range"};
  }
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (power_law_mean(mid, max_degree) > target_avg) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double gamma = 0.5 * (lo + hi);
  std::vector<double> weights(static_cast<std::size_t>(max_degree));
  for (int d = 1; d <= max_degree; ++d) {
    weights[static_cast<std::size_t>(d - 1)] = std::pow(static_cast<double>(d), -gamma);
  }
  std::vector<int> degrees(n);
  for (auto& d : degrees) d = static_cast<int>(rng.weighted_index(weights)) + 1;
  return degrees;
}

namespace {

/// Builds a spanning tree respecting degree capacities. Nodes are attached
/// in descending-degree order, which guarantees the already-attached set
/// always has spare capacity when sum(degrees) >= 2(n-1).
void build_spanning_tree(Graph& g, const std::vector<int>& degrees, std::vector<int>& remaining,
                         sim::Rng& rng) {
  const std::size_t n = degrees.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);  // randomise ties before the stable sort
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return degrees[a] > degrees[b]; });

  std::vector<NodeId> attached{order[0]};
  for (std::size_t k = 1; k < n; ++k) {
    const NodeId v = order[k];
    std::vector<NodeId> eligible;
    for (const NodeId u : attached) {
      if (remaining[u] > 0) eligible.push_back(u);
    }
    if (eligible.empty()) {
      throw std::invalid_argument{"realize_degree_sequence: sequence cannot span the graph"};
    }
    const NodeId u =
        eligible[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1))];
    g.add_edge(v, u);
    --remaining[v];
    --remaining[u];
    attached.push_back(v);
  }
}

/// Tries to place the stub pair (a, b) via a degree-preserving swap with an
/// existing edge. Returns true on success.
bool swap_in_pair(Graph& g, NodeId a, NodeId b, sim::Rng& rng) {
  auto edges = g.edges();
  rng.shuffle(edges);
  for (const auto& [u, v] : edges) {
    if (u == a || u == b || v == a || v == b) continue;
    if (!g.has_edge(a, u) && !g.has_edge(b, v)) {
      g.remove_edge(u, v);
      g.add_edge(a, u);
      g.add_edge(b, v);
      return true;
    }
    if (!g.has_edge(a, v) && !g.has_edge(b, u)) {
      g.remove_edge(u, v);
      g.add_edge(a, v);
      g.add_edge(b, u);
      return true;
    }
  }
  return false;
}

}  // namespace

Graph realize_degree_sequence(std::vector<int> degrees, sim::Rng& rng, RealizeStats* stats) {
  const std::size_t n = degrees.size();
  if (n < 2) throw std::invalid_argument{"realize_degree_sequence: need >= 2 nodes"};
  for (auto& d : degrees) {
    if (d < 1) d = 1;
    if (d > static_cast<int>(n) - 1) {
      throw std::invalid_argument{"realize_degree_sequence: degree exceeds n-1"};
    }
  }
  long long total = std::accumulate(degrees.begin(), degrees.end(), 0LL);
  if (total % 2 != 0) {
    // Bump one of the lowest-degree nodes to make the total even.
    auto it = std::min_element(degrees.begin(), degrees.end());
    ++*it;
    ++total;
  }
  if (total < 2LL * (static_cast<long long>(n) - 1)) {
    throw std::invalid_argument{"realize_degree_sequence: too few stubs for connectivity"};
  }

  Graph g{n};
  std::vector<int> remaining = degrees;
  build_spanning_tree(g, degrees, remaining, rng);

  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < remaining[v]; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);

  std::vector<NodeId> leftover;
  while (!stubs.empty()) {
    const NodeId a = stubs.back();
    stubs.pop_back();
    bool matched = false;
    // Scan from the back (cheap erase) for a compatible partner.
    for (std::size_t i = stubs.size(); i-- > 0;) {
      const NodeId b = stubs[i];
      if (b != a && !g.has_edge(a, b)) {
        g.add_edge(a, b);
        stubs.erase(stubs.begin() + static_cast<std::ptrdiff_t>(i));
        matched = true;
        break;
      }
    }
    if (!matched) leftover.push_back(a);
  }

  // Leftover stubs come in pairs (the total stub count is even). Each pair
  // is either a self-pair or an already-present edge; resolve by rewiring.
  for (std::size_t i = 0; i + 1 < leftover.size(); i += 2) {
    const NodeId a = leftover[i];
    const NodeId b = leftover[i + 1];
    if (a != b && g.add_edge(a, b)) continue;
    if (swap_in_pair(g, a, b, rng)) {
      if (stats) ++stats->swaps;
    } else {
      if (stats) stats->dropped_stubs += 2;
    }
  }
  if (leftover.size() % 2 != 0 && stats) ++stats->dropped_stubs;

  return g;
}

}  // namespace bgpsim::topo
