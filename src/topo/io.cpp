#include "topo/io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bgpsim::topo {

void save_graph(const Graph& g, std::ostream& os) {
  // Full round-trip precision for the positions.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "bgpsim-graph v1 " << g.size() << "\n";
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto p = g.position(v);
    os << "pos " << v << " " << p.x << " " << p.y << "\n";
  }
  for (const auto& [a, b] : g.edges()) {
    os << "edge " << a << " " << b << "\n";
  }
}

Graph load_graph(std::istream& is) {
  std::string magic;
  std::string version;
  std::size_t n = 0;
  if (!(is >> magic >> version >> n) || magic != "bgpsim-graph" || version != "v1") {
    throw std::invalid_argument{"load_graph: bad header"};
  }
  Graph g{n};
  std::string kind;
  while (is >> kind) {
    if (kind == "pos") {
      NodeId v = 0;
      Point p;
      if (!(is >> v >> p.x >> p.y) || v >= n) {
        throw std::invalid_argument{"load_graph: bad pos line"};
      }
      g.set_position(v, p);
    } else if (kind == "edge") {
      NodeId a = 0;
      NodeId b = 0;
      if (!(is >> a >> b) || a >= n || b >= n) {
        throw std::invalid_argument{"load_graph: bad edge line"};
      }
      if (!g.add_edge(a, b)) {
        throw std::invalid_argument{"load_graph: self-loop or duplicate edge"};
      }
    } else {
      throw std::invalid_argument{"load_graph: unknown record '" + kind + "'"};
    }
  }
  return g;
}

AsRelGraph load_as_rel(std::istream& is) {
  struct Link {
    std::uint64_t a;
    std::uint64_t b;
    int rel;
  };
  std::vector<Link> links;
  // Ordered map so dense ids are assigned deterministically (by AS number).
  std::map<std::uint64_t, NodeId> id_of;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    // Trim whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls{line};
    std::string field;
    Link link{};
    bool ok = true;
    try {
      if (!std::getline(ls, field, '|')) ok = false;
      if (ok) link.a = std::stoull(field);
      if (ok && !std::getline(ls, field, '|')) ok = false;
      if (ok) link.b = std::stoull(field);
      if (ok && !std::getline(ls, field, '|')) ok = false;
      if (ok) link.rel = std::stoi(field);
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok || (link.rel != 0 && link.rel != -1) || link.a == link.b) {
      throw std::invalid_argument{"load_as_rel: malformed line " + std::to_string(lineno)};
    }
    links.push_back(link);
    id_of.try_emplace(link.a, 0);
    id_of.try_emplace(link.b, 0);
  }

  AsRelGraph out;
  out.as_number.reserve(id_of.size());
  NodeId next = 0;
  for (auto& [asn, id] : id_of) {
    id = next++;
    out.as_number.push_back(asn);
  }
  out.graph = Graph{id_of.size()};
  for (const auto& link : links) {
    const NodeId a = id_of[link.a];
    const NodeId b = id_of[link.b];
    if (!out.graph.add_edge(a, b)) continue;  // duplicate link: keep the first
    if (link.rel == -1) {
      // CAIDA convention: <provider>|<customer>|-1.
      out.provider[AsRelGraph::edge_key(a, b)] = a;
    }
  }
  return out;
}

}  // namespace bgpsim::topo
