// Simple undirected graph with optional 2-D node positions.
//
// Nodes are dense indices [0, size). Self-loops and parallel edges are
// rejected (BGP sessions are simple). Positions live on the paper's
// 1000x1000 grid and drive geographic failure selection.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace bgpsim::topo {

using NodeId = std::uint32_t;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

class Graph {
 public:
  explicit Graph(std::size_t n) : adj_(n), pos_(n) {}

  std::size_t size() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_keys_.size(); }

  /// Adds an undirected edge; returns false (and does nothing) for
  /// self-loops and duplicates.
  bool add_edge(NodeId a, NodeId b);
  bool remove_edge(NodeId a, NodeId b);
  bool has_edge(NodeId a, NodeId b) const { return edge_keys_.contains(key(a, b)); }

  std::size_t degree(NodeId v) const { return adj_.at(v).size(); }
  const std::vector<NodeId>& neighbors(NodeId v) const { return adj_.at(v); }

  double average_degree() const;
  std::size_t max_degree() const;
  bool is_connected() const;

  /// All edges, each once, as (min, max) pairs in deterministic order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  void set_position(NodeId v, Point p) { pos_.at(v) = p; }
  Point position(NodeId v) const { return pos_.at(v); }

  /// Places every node uniformly at random on [0,width) x [0,height).
  void place_randomly(double width, double height, sim::Rng& rng);

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    const auto lo = a < b ? a : b;
    const auto hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  std::vector<std::vector<NodeId>> adj_;
  std::unordered_set<std::uint64_t> edge_keys_;
  std::vector<Point> pos_;
};

}  // namespace bgpsim::topo
