#include "topo/graph.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace bgpsim::topo {

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

bool Graph::add_edge(NodeId a, NodeId b) {
  if (a == b || a >= size() || b >= size()) return false;
  if (!edge_keys_.insert(key(a, b)).second) return false;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  if (edge_keys_.erase(key(a, b)) == 0) return false;
  std::erase(adj_[a], b);
  std::erase(adj_[b], a);
  return true;
}

double Graph::average_degree() const {
  if (size() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / static_cast<double>(size());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : adj_) best = std::max(best, nbrs.size());
  return best;
}

bool Graph::is_connected() const {
  if (size() == 0) return true;
  std::vector<bool> seen(size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const NodeId w : adj_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        frontier.push_back(w);
      }
    }
  }
  return visited == size();
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId v = 0; v < size(); ++v) {
    for (const NodeId w : adj_[v]) {
      if (v < w) out.emplace_back(v, w);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Graph::place_randomly(double width, double height, sim::Rng& rng) {
  for (NodeId v = 0; v < size(); ++v) {
    set_position(v, Point{rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
}

}  // namespace bgpsim::topo
