#include "topo/relations.hpp"

#include <cstdlib>

namespace bgpsim::topo {

AsRelGraph infer_relations(const Graph& g, std::size_t peer_tolerance,
                           std::size_t peer_min_degree) {
  AsRelGraph out;
  out.graph = Graph{g.size()};
  out.as_number.resize(g.size());
  for (NodeId v = 0; v < g.size(); ++v) {
    out.as_number[v] = v;
    out.graph.set_position(v, g.position(v));
  }
  for (const auto& [a, b] : g.edges()) {
    out.graph.add_edge(a, b);
    const auto da = g.degree(a);
    const auto db = g.degree(b);
    const auto diff = da > db ? da - db : db - da;
    if (diff <= peer_tolerance && da >= peer_min_degree && db >= peer_min_degree) {
      continue;  // peering between comparable, well-connected ASes
    }
    // Strict total order on (degree desc, id asc) orients the edge.
    const bool a_is_provider = da > db || (da == db && a < b);
    out.provider[AsRelGraph::edge_key(a, b)] = a_is_provider ? a : b;
  }

  // Tier-1 completion: mesh the provider-less ASes with peerings.
  std::vector<NodeId> tops;
  for (NodeId v = 0; v < g.size(); ++v) {
    bool has_provider = false;
    for (const NodeId w : out.graph.neighbors(v)) {
      const auto it = out.provider.find(AsRelGraph::edge_key(v, w));
      if (it != out.provider.end() && it->second == w) {
        has_provider = true;
        break;
      }
    }
    if (!has_provider) tops.push_back(v);
  }
  for (std::size_t i = 0; i < tops.size(); ++i) {
    for (std::size_t j = i + 1; j < tops.size(); ++j) {
      out.graph.add_edge(tops[i], tops[j]);  // no provider entry => peering
    }
  }
  return out;
}

}  // namespace bgpsim::topo
