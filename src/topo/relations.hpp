// Business-relationship inference for generated topologies.
//
// Measured AS graphs come annotated (see load_as_rel); generated ones need
// relations synthesised. The heuristic mirrors what relationship-inference
// algorithms recover from the real Internet: on each link the
// better-connected endpoint acts as the provider, and links between
// similarly-connected ASes are settlement-free peerings. Orientation
// follows a strict total order on (degree, id), so the provider-customer
// digraph is acyclic -- the precondition for Gao-Rexford convergence.
#pragma once

#include "topo/graph.hpp"
#include "topo/io.hpp"

namespace bgpsim::topo {

/// Annotates `g` with inferred relations. An edge becomes a settlement-free
/// peering only between comparable, well-connected ASes: endpoint degrees
/// within `peer_tolerance` of each other AND both at least
/// `peer_min_degree` (stub ASes buy transit; they do not provide it to each
/// other). Every other edge is provider-customer with the higher-degree
/// endpoint (ties: lower id) as the provider.
///
/// Finally, the provider-less ASes (the "tier 1" of the inferred
/// hierarchy) are joined into a full peering mesh, mirroring the real
/// Internet's transit-free clique -- without it, subtrees under different
/// tops would be mutually unreachable over valley-free paths. These added
/// links are the only edges not present in `g`.
AsRelGraph infer_relations(const Graph& g, std::size_t peer_tolerance = 0,
                           std::size_t peer_min_degree = 4);

}  // namespace bgpsim::topo
