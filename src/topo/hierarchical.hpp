// Hierarchical "realistic" topologies: multiple routers per AS.
//
// Mirrors the paper's section 3.1 construction for the Fig-13 experiments:
//  - AS sizes (router counts) drawn from a heavy-tailed (bounded Pareto)
//    distribution on [1, 100];
//  - geographic area of an AS proportional to its size, routers placed in a
//    disk around the AS centre;
//  - inter-AS degree sequence follows the Internet-like distribution
//    (capped at 40, average ~3.4), with the highest degrees assigned to the
//    largest ASes;
//  - BGP sessions: full iBGP mesh inside every AS, one eBGP session per
//    AS-level adjacency (border routers chosen round-robin so large ASes
//    spread eBGP load across routers).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "topo/graph.hpp"

namespace bgpsim::topo {

using AsId = std::uint32_t;

struct HierParams {
  std::size_t num_ases = 120;
  std::int64_t min_as_size = 1;
  std::int64_t max_as_size = 100;
  double size_alpha = 1.5;              ///< bounded-Pareto shape for AS sizes
  std::size_t max_total_routers = 400;  ///< sizes are rescaled if exceeded
  int max_inter_as_degree = 40;
  double target_avg_inter_as_degree = 3.4;
  double grid = 1000.0;
};

struct HierTopology {
  struct Session {
    NodeId a = 0;
    NodeId b = 0;
    bool ebgp = false;
  };

  Graph as_graph{0};                            ///< AS-level adjacency (positions = AS centres)
  std::vector<AsId> as_of_router;               ///< router -> AS
  std::vector<std::vector<NodeId>> routers_of_as;
  std::vector<Point> router_pos;
  std::vector<Session> sessions;                ///< iBGP mesh + eBGP links
  std::vector<NodeId> origin_router;            ///< per AS: router that originates its prefix

  std::size_t num_routers() const { return as_of_router.size(); }
  std::size_t num_ases() const { return routers_of_as.size(); }
};

HierTopology hierarchical(const HierParams& params, sim::Rng& rng);

}  // namespace bgpsim::topo
