// Degree-sequence construction and realisation.
//
// The paper's topologies are defined by simple "skewed" degree
// distributions ("70-30", "50-50", "85-15": a fraction of low-degree nodes
// with degree U{1..3} plus a fraction of high-degree nodes chosen to hit a
// target average degree), and by an Internet-derived distribution capped at
// degree 40 with average ~3.4. `realize_degree_sequence` turns any such
// sequence into a *connected simple* graph: a spanning structure is built
// first (guaranteeing connectivity), remaining stubs are matched at random,
// and stuck stub pairs are resolved by degree-preserving edge swaps.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.hpp"
#include "topo/graph.hpp"

namespace bgpsim::topo {

/// Parameters of an "X-Y" skewed degree distribution (paper section 3.1).
struct SkewSpec {
  double frac_low = 0.7;          ///< fraction of low-degree nodes
  int low_min = 1;                ///< low nodes draw degree U{low_min..low_max}
  int low_max = 3;
  std::vector<int> high_degrees;  ///< candidate degrees for high nodes
  std::vector<double> high_weights;

  /// "70-30": 70% degree U{1..3}, 30% degree 8 -> average 3.8.
  static SkewSpec s70_30() { return SkewSpec{0.70, 1, 3, {8}, {1.0}}; }
  /// "50-50": 50% degree U{1..3}, 50% degree 5 or 6 -> average 3.8.
  static SkewSpec s50_50() { return SkewSpec{0.50, 1, 3, {5, 6}, {0.4, 0.6}}; }
  /// "85-15": 85% degree U{1..3}, 15% degree 14 -> average 3.8.
  static SkewSpec s85_15() { return SkewSpec{0.85, 1, 3, {14}, {1.0}}; }
  /// "50-50" with high degree 13/14 -> average 7.6 (paper Fig 5).
  static SkewSpec s50_50_dense() { return SkewSpec{0.50, 1, 3, {13, 14}, {0.8, 0.2}}; }

  /// Expected average degree implied by the spec.
  double expected_average() const;
};

/// Draws a degree sequence of length n from a skew spec. The number of low
/// nodes is exactly round(frac_low * n); positions of low/high nodes within
/// the sequence are randomised.
std::vector<int> skewed_sequence(std::size_t n, const SkewSpec& spec, sim::Rng& rng);

/// Power-law degree sequence P(d) ~ d^-gamma on [1, max_degree], with gamma
/// chosen (by bisection) so the distribution mean equals target_avg. This
/// mirrors the paper's use of the measured Internet AS degree distribution
/// capped at 40 with average ~3.4 (~70% of ASes have degree < 4).
std::vector<int> internet_like_sequence(std::size_t n, int max_degree, double target_avg,
                                        sim::Rng& rng);

/// Mean of the truncated power law P(d) ~ d^-gamma on [1, max_degree].
/// Exposed so callers can clamp a target average into the feasible range.
double power_law_mean(double gamma, int max_degree);

/// Statistics from realising a degree sequence.
struct RealizeStats {
  std::size_t dropped_stubs = 0;  ///< stubs abandoned (degree shortfall)
  std::size_t swaps = 0;          ///< degree-preserving rewires performed
};

/// Realises `degrees` as a connected simple graph. The sequence may be
/// adjusted minimally (odd total bumped by one; zero degrees raised to one).
/// Throws std::invalid_argument if the sequence cannot support a connected
/// graph (sum < 2(n-1)) or any degree exceeds n-1.
Graph realize_degree_sequence(std::vector<int> degrees, sim::Rng& rng,
                              RealizeStats* stats = nullptr);

}  // namespace bgpsim::topo
