#include "topo/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace bgpsim::topo {

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (NodeId v = 0; v < g.size(); ++v) ++hist[g.degree(v)];
  return hist;
}

double clustering_coefficient(const Graph& g) {
  if (g.size() == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto& nbrs = g.neighbors(v);
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (g.has_edge(nbrs[i], nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
  }
  return total / static_cast<double>(g.size());
}

namespace {

/// BFS distances from `start`; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId start) {
  std::vector<std::size_t> dist(g.size(), std::numeric_limits<std::size_t>::max());
  std::deque<NodeId> q{start};
  dist[start] = 0;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    for (const NodeId w : g.neighbors(v)) {
      if (dist[w] == std::numeric_limits<std::size_t>::max()) {
        dist[w] = dist[v] + 1;
        q.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

std::size_t num_components(const Graph& g) {
  std::vector<bool> seen(g.size(), false);
  std::size_t components = 0;
  for (NodeId start = 0; start < g.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<NodeId> q{start};
    seen[start] = true;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop_front();
      for (const NodeId w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          q.push_back(w);
        }
      }
    }
  }
  return components;
}

std::size_t diameter(const Graph& g) {
  if (g.size() < 2) return 0;
  std::size_t best = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (const auto d : dist) {
      if (d == std::numeric_limits<std::size_t>::max()) return d;  // disconnected
      best = std::max(best, d);
    }
  }
  return best;
}

double average_path_length(const Graph& g) {
  if (g.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (NodeId w = 0; w < g.size(); ++w) {
      if (w == v || dist[w] == std::numeric_limits<std::size_t>::max()) continue;
      total += static_cast<double>(dist[w]);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

double degree_assortativity(const Graph& g) {
  const auto edges = g.edges();
  if (edges.size() < 2) return 0.0;
  // Pearson correlation over the (deg(a), deg(b)) pairs, symmetrised.
  double sx = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto m = static_cast<double>(2 * edges.size());
  for (const auto& [a, b] : edges) {
    const auto da = static_cast<double>(g.degree(a));
    const auto db = static_cast<double>(g.degree(b));
    sx += da + db;
    sxx += da * da + db * db;
    sxy += 2.0 * da * db;
  }
  const double mean = sx / m;
  const double var = sxx / m - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sxy / m - mean * mean;
  return cov / var;
}

}  // namespace bgpsim::topo
