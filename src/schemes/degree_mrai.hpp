// Degree-dependent MRAI (paper section 4.2).
//
// The convergence behaviour for large failures is dominated by the
// high-degree nodes (they receive the most updates and overload first), so
// the scheme assigns a larger static MRAI to nodes whose degree reaches a
// threshold and a smaller one to everybody else.
#pragma once

#include <memory>
#include <vector>

#include "bgp/mrai.hpp"
#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace bgpsim::schemes {

/// Builds a per-node FixedMrai from node degrees: degree >= threshold gets
/// high_mrai, else low_mrai.
std::shared_ptr<bgp::FixedMrai> degree_dependent_mrai(const std::vector<std::size_t>& degrees,
                                                      std::size_t high_degree_threshold,
                                                      sim::SimTime low_mrai,
                                                      sim::SimTime high_mrai);

/// Convenience overload reading degrees from a flat topology graph.
std::shared_ptr<bgp::FixedMrai> degree_dependent_mrai(const topo::Graph& g,
                                                      std::size_t high_degree_threshold,
                                                      sim::SimTime low_mrai,
                                                      sim::SimTime high_mrai);

}  // namespace bgpsim::schemes
