#include "schemes/dynamic_mrai.hpp"

#include "sim/wire.hpp"

namespace bgpsim::schemes {

DynamicMrai::DynamicMrai(DynamicMraiParams params) : params_{std::move(params)} {
  if (params_.levels.empty()) throw std::invalid_argument{"DynamicMrai: no levels"};
  for (std::size_t i = 1; i < params_.levels.size(); ++i) {
    if (params_.levels[i] <= params_.levels[i - 1]) {
      throw std::invalid_argument{"DynamicMrai: levels must be strictly increasing"};
    }
  }
  if (params_.down_th >= params_.up_th) {
    throw std::invalid_argument{"DynamicMrai: downTh must be < upTh"};
  }
}

bool DynamicMrai::over_up_threshold(bgp::Router& r) const {
  switch (params_.monitor) {
    case DynamicMraiParams::Monitor::kUnfinishedWork:
      return r.unfinished_work() > params_.up_th;
    case DynamicMraiParams::Monitor::kUtilization:
      return r.recent_utilization() > params_.up_util;
    case DynamicMraiParams::Monitor::kMessageRate:
      return r.recent_message_rate() > params_.up_rate;
  }
  return false;
}

bool DynamicMrai::under_down_threshold(bgp::Router& r) const {
  switch (params_.monitor) {
    case DynamicMraiParams::Monitor::kUnfinishedWork:
      return r.unfinished_work() < params_.down_th;
    case DynamicMraiParams::Monitor::kUtilization:
      return r.recent_utilization() < params_.down_util;
    case DynamicMraiParams::Monitor::kMessageRate:
      return r.recent_message_rate() < params_.down_rate;
  }
  return false;
}

void DynamicMrai::assert_single_thread() const {
  if (parallel_ok_) return;  // Network::enable_parallel vouches for the usage
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (!owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed) &&
      expected != self) {
    throw std::logic_error{
        "DynamicMrai: instance used from more than one thread -- build one "
        "controller per run; never share one across parallel sweep runs"};
  }
}

void DynamicMrai::prepare_parallel(std::size_t nodes) {
  assert_single_thread();  // still single-threaded at this point
  if (level_.size() < nodes) level_.resize(nodes, 0);
  parallel_ok_ = true;
}

sim::SimTime DynamicMrai::interval(bgp::Router& r, bgp::NodeId /*peer*/) {
  assert_single_thread();
  if (r.id() >= level_.size()) level_.resize(r.id() + 1, 0);
  if (params_.min_degree > 0 && r.degree() < params_.min_degree) {
    return params_.levels.front();
  }
  std::size_t& lvl = level_[r.id()];
  if (over_up_threshold(r)) {
    if (lvl + 1 < params_.levels.size()) {
      ++lvl;
      ups_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (under_down_threshold(r)) {
    if (lvl > 0) {
      --lvl;
      downs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return params_.levels[lvl];
}

void DynamicMrai::reset() {
  assert_single_thread();
  for (auto& l : level_) l = 0;
  ups_.store(0, std::memory_order_relaxed);
  downs_.store(0, std::memory_order_relaxed);
}

void DynamicMrai::save_state(std::string& out) const {
  out.clear();
  sim::wire::Writer w{out};
  w.u64(ups_.load(std::memory_order_relaxed));
  w.u64(downs_.load(std::memory_order_relaxed));
  w.u64(level_.size());
  for (const std::size_t l : level_) w.u64(l);
}

void DynamicMrai::load_state(std::string_view state) {
  assert_single_thread();
  sim::wire::Reader rd{state};
  const std::uint64_t ups = rd.u64();
  const std::uint64_t downs = rd.u64();
  const std::uint64_t n = rd.u64();
  std::vector<std::size_t> levels(n);
  for (auto& l : levels) {
    l = static_cast<std::size_t>(rd.u64());
    if (l >= params_.levels.size()) {
      throw std::runtime_error{"DynamicMrai: checkpoint level out of range"};
    }
  }
  if (!rd.done()) throw std::runtime_error{"DynamicMrai: trailing checkpoint bytes"};
  ups_.store(ups, std::memory_order_relaxed);
  downs_.store(downs, std::memory_order_relaxed);
  level_ = std::move(levels);
}

std::size_t DynamicMrai::level(bgp::NodeId node) const {
  return node < level_.size() ? level_[node] : 0;
}

}  // namespace bgpsim::schemes
