// Failure-extent-driven MRAI (the paper's section-5 future-work sketch:
// "a scheme that can accurately and quickly set the MRAI consistent with
// the extent of failure without significant overhead").
//
// Signal: the number of selected routes a router has *lost* in the recent
// window (Loc-RIB removals, exponentially decayed). A large contiguous
// failure withdraws many prefixes at once, so this count tracks the failure
// extent directly and almost immediately -- unlike the queue-based dynamic
// scheme, which has to wait for the backlog to build. The MRAI level is set
// by threshold lookup (not one step per timer restart), so a large failure
// jumps straight to the top level.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bgp/mrai.hpp"
#include "bgp/router.hpp"
#include "sim/time.hpp"

namespace bgpsim::schemes {

struct ExtentMraiParams {
  std::vector<sim::SimTime> levels{sim::SimTime::seconds(0.5), sim::SimTime::seconds(1.25),
                                   sim::SimTime::seconds(2.25)};
  /// levels[i+1] is used once recent route losses reach thresholds[i];
  /// must have exactly levels.size()-1 strictly increasing entries.
  std::vector<double> loss_thresholds{3.0, 8.0};
};

class ExtentMrai final : public bgp::MraiController {
 public:
  explicit ExtentMrai(ExtentMraiParams params);

  sim::SimTime interval(bgp::Router& r, bgp::NodeId peer) override;

  /// Level the router would currently use (for tests/inspection).
  std::size_t level_for(bgp::Router& r) const;

 private:
  ExtentMraiParams params_;
};

}  // namespace bgpsim::schemes
