// The paper's dynamic MRAI scheme (section 4.3).
//
// Each node switches between a small set of MRAI levels (default
// {0.5, 1.25, 2.25} s, chosen in the paper from the measured optima for
// small / 5% / 10-20% failures). The overload signal is "unfinished work":
// input-queue length times the mean processing delay. When a timer is
// restarted after an update was sent -- the only moment the paper allows the
// MRAI to change -- the node steps one level up if the signal exceeds upTh,
// or one level down if it is below downTh. Running timers are never
// modified.
//
// The two alternative monitors the paper sketches (CPU utilization and
// received-message rate) are selectable via Monitor.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bgp/mrai.hpp"
#include "bgp/router.hpp"
#include "sim/time.hpp"

namespace bgpsim::schemes {

struct DynamicMraiParams {
  std::vector<sim::SimTime> levels{sim::SimTime::seconds(0.5), sim::SimTime::seconds(1.25),
                                   sim::SimTime::seconds(2.25)};
  sim::SimTime up_th = sim::SimTime::seconds(0.65);
  sim::SimTime down_th = sim::SimTime::seconds(0.05);

  enum class Monitor { kUnfinishedWork, kUtilization, kMessageRate };
  Monitor monitor = Monitor::kUnfinishedWork;
  // Thresholds for the alternative monitors.
  double up_util = 0.75;
  double down_util = 0.10;
  double up_rate = 40.0;   ///< messages/second
  double down_rate = 4.0;

  /// Only apply the scheme at nodes with at least this many sessions; other
  /// nodes stay at levels[0]. 0 = everywhere (paper found high-degree-only
  /// gave "effectively the same" results).
  std::size_t min_degree = 0;
};

/// NOT thread-safe: `level_`/`ups_`/`downs_` are mutated on every interval()
/// call with no synchronization, so each simulation run must own its own
/// instance (harness::build_scheme constructs one per run). The first
/// mutating call pins the instance to the calling thread and any later call
/// from a different thread throws std::logic_error -- a shared-instance bug
/// in a parallel sweep fails loudly instead of silently corrupting levels.
class DynamicMrai final : public bgp::MraiController {
 public:
  explicit DynamicMrai(DynamicMraiParams params);

  sim::SimTime interval(bgp::Router& r, bgp::NodeId peer) override;

  /// Intra-run parallel hardening: presizes `level_` (so no on-demand
  /// resize can race across partition threads -- each entry is only ever
  /// touched by its router's owning thread), switches the up/down counters
  /// to relaxed atomics (stats only; interval() never reads them) and
  /// disables the single-thread pin.
  void prepare_parallel(std::size_t nodes) override;

  /// Drops every node back to the lowest level (used between the cold-start
  /// convergence and the failure, matching the paper's "the MRAI is set to
  /// 0.5 seconds in the beginning").
  void reset();

  /// Checkpoint hooks: the adaptive state is (per-node level, up/down
  /// transition counters). Parameters are configuration, not state.
  void save_state(std::string& out) const override;
  void load_state(std::string_view state) override;

  std::size_t level(bgp::NodeId node) const;
  std::uint64_t ups() const { return ups_.load(std::memory_order_relaxed); }
  std::uint64_t downs() const { return downs_.load(std::memory_order_relaxed); }
  const DynamicMraiParams& params() const { return params_; }

 private:
  bool over_up_threshold(bgp::Router& r) const;
  bool under_down_threshold(bgp::Router& r) const;
  /// Pins the instance to the first mutating thread; throws on cross-thread
  /// use (one controller per run, never shared between parallel runs).
  void assert_single_thread() const;

  DynamicMraiParams params_;
  std::vector<std::size_t> level_;  // grown on demand, indexed by node id
  // Relaxed atomics so the parallel mode's concurrent interval() calls can
  // bump them without a data race; interval() results never depend on them,
  // so the relaxed ordering cannot perturb simulation behavior.
  std::atomic<std::uint64_t> ups_{0};
  std::atomic<std::uint64_t> downs_{0};
  bool parallel_ok_ = false;  ///< set by prepare_parallel; disables the pin
  mutable std::atomic<std::thread::id> owner_{std::thread::id{}};
};

}  // namespace bgpsim::schemes
