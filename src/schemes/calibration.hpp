// Analytic parameter selection for the MRAI schemes -- the theory the
// paper's section 5 calls for ("In order to use this type of scheme in real
// networks, it is necessary to develop a suitable theory for choosing
// various parameters. This work is currently ongoing.").
//
// The queueing argument: during re-convergence after a failure of extent f
// (fraction of a network with n prefixes), a router of degree d receives on
// the order of d x r x (f n) updates per MRAI round, where r is the number
// of updates per affected prefix per round a neighbor emits (r ~ 1 with
// Adj-RIB-Out deduplication). The router stays un-overloaded iff it can
// process one round's arrivals within one MRAI:
//
//      M*(f)  >=  d_max x f x n x E[proc]
//
// Below M* queues grow without bound (the left branch of the paper's
// V-curve); above it delay rises linearly with M (the right branch), so M*
// is the knee. The estimator returns that knee, and suggest_dynamic_params
// builds a DynamicMraiParams level set from the knees of three
// representative failure sizes, with thresholds scaled the same way the
// paper chose theirs (upTh comparable to half the smallest non-trivial
// knee, downTh a small fraction of it).
//
// bench/abl13_parameter_theory compares these predictions against the
// measured optima; predictions land within a small constant factor (~2-3x,
// always on the low side because exploration needs more than one update
// per prefix per round) and order the paper's topologies correctly --
// enough to seed the dynamic scheme without a measurement campaign.
#pragma once

#include <cstddef>

#include "schemes/dynamic_mrai.hpp"
#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace bgpsim::schemes {

/// Estimated delay-optimal constant MRAI for a failure of fraction
/// `failure_fraction` in a network of `num_prefixes` destinations whose
/// busiest router has degree `max_degree`, with mean per-update processing
/// delay `mean_processing`.
sim::SimTime estimate_optimal_mrai(std::size_t max_degree, std::size_t num_prefixes,
                                   double failure_fraction, sim::SimTime mean_processing);

/// Builds a full dynamic-MRAI parameter set from the analytic knees at
/// `small`, `medium` and `large` failure fractions (defaults: the paper's
/// 1% / 5% / 15% regimes). Levels are clamped to at least `floor` (0.5 s by
/// default, the smallest MRAI the paper considers deployable) and forced to
/// be strictly increasing.
struct CalibrationInput {
  std::size_t max_degree = 8;
  std::size_t num_prefixes = 120;
  sim::SimTime mean_processing = sim::SimTime::from_us(15500);
  double small = 0.01;
  double medium = 0.05;
  double large = 0.15;
  sim::SimTime floor = sim::SimTime::seconds(0.5);
};

DynamicMraiParams suggest_dynamic_params(const CalibrationInput& input);

/// Convenience: reads max_degree from a flat topology graph.
DynamicMraiParams suggest_dynamic_params(const topo::Graph& g,
                                         sim::SimTime mean_processing);

}  // namespace bgpsim::schemes
