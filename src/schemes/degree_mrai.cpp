#include "schemes/degree_mrai.hpp"

namespace bgpsim::schemes {

std::shared_ptr<bgp::FixedMrai> degree_dependent_mrai(const std::vector<std::size_t>& degrees,
                                                      std::size_t high_degree_threshold,
                                                      sim::SimTime low_mrai,
                                                      sim::SimTime high_mrai) {
  std::vector<sim::SimTime> per_node;
  per_node.reserve(degrees.size());
  for (const auto d : degrees) {
    per_node.push_back(d >= high_degree_threshold ? high_mrai : low_mrai);
  }
  return std::make_shared<bgp::FixedMrai>(low_mrai, std::move(per_node));
}

std::shared_ptr<bgp::FixedMrai> degree_dependent_mrai(const topo::Graph& g,
                                                      std::size_t high_degree_threshold,
                                                      sim::SimTime low_mrai,
                                                      sim::SimTime high_mrai) {
  std::vector<std::size_t> degrees(g.size());
  for (topo::NodeId v = 0; v < g.size(); ++v) degrees[v] = g.degree(v);
  return degree_dependent_mrai(degrees, high_degree_threshold, low_mrai, high_mrai);
}

}  // namespace bgpsim::schemes
