#include "schemes/extent_mrai.hpp"

namespace bgpsim::schemes {

ExtentMrai::ExtentMrai(ExtentMraiParams params) : params_{std::move(params)} {
  if (params_.levels.empty()) throw std::invalid_argument{"ExtentMrai: no levels"};
  if (params_.loss_thresholds.size() + 1 != params_.levels.size()) {
    throw std::invalid_argument{"ExtentMrai: need one threshold per level transition"};
  }
  for (std::size_t i = 1; i < params_.loss_thresholds.size(); ++i) {
    if (params_.loss_thresholds[i] <= params_.loss_thresholds[i - 1]) {
      throw std::invalid_argument{"ExtentMrai: thresholds must be strictly increasing"};
    }
  }
}

std::size_t ExtentMrai::level_for(bgp::Router& r) const {
  const double losses = r.recent_route_losses();
  std::size_t level = 0;
  for (const double th : params_.loss_thresholds) {
    if (losses >= th) {
      ++level;
    } else {
      break;
    }
  }
  return level;
}

sim::SimTime ExtentMrai::interval(bgp::Router& r, bgp::NodeId /*peer*/) {
  return params_.levels[level_for(r)];
}

}  // namespace bgpsim::schemes
