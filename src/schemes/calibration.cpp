#include "schemes/calibration.hpp"

#include <algorithm>

namespace bgpsim::schemes {

sim::SimTime estimate_optimal_mrai(std::size_t max_degree, std::size_t num_prefixes,
                                   double failure_fraction, sim::SimTime mean_processing) {
  // One MRAI round delivers ~max_degree updates per affected prefix to the
  // busiest router; it must clear them within the round.
  const double affected = failure_fraction * static_cast<double>(num_prefixes);
  const double work_s =
      static_cast<double>(max_degree) * affected * mean_processing.to_seconds();
  return sim::SimTime::seconds(work_s);
}

DynamicMraiParams suggest_dynamic_params(const CalibrationInput& input) {
  DynamicMraiParams params;
  auto knee = [&](double f) {
    const auto m =
        estimate_optimal_mrai(input.max_degree, input.num_prefixes, f, input.mean_processing);
    return std::max(m, input.floor);
  };
  auto l0 = knee(input.small);
  auto l1 = knee(input.medium);
  auto l2 = knee(input.large);
  // Strictly increasing levels (the controller requires it).
  if (l1 <= l0) l1 = l0 + sim::SimTime::from_ms(250);
  if (l2 <= l1) l2 = l1 + sim::SimTime::from_ms(250);
  params.levels = {l0, l1, l2};
  // Overload thresholds: a queue worth half a small-failure round of work
  // should trigger escalation; an almost-empty queue de-escalates.
  params.up_th = l1 * 0.5;
  params.down_th = l0 * 0.1;
  if (params.down_th >= params.up_th) params.down_th = params.up_th * 0.1;
  return params;
}

DynamicMraiParams suggest_dynamic_params(const topo::Graph& g,
                                         sim::SimTime mean_processing) {
  CalibrationInput input;
  input.max_degree = g.max_degree();
  input.num_prefixes = g.size();
  input.mean_processing = mean_processing;
  return suggest_dynamic_params(input);
}

}  // namespace bgpsim::schemes
