#include "obs/binary_trace.hpp"

#include <cstring>
#include <stdexcept>

namespace bgpsim::obs {

namespace {

constexpr std::size_t kHeaderSize = 24;
constexpr std::uint8_t kPayloadV1 = 30;

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

BinaryTraceSink::BinaryTraceSink(const std::string& path) : path_{path} {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error{"BinaryTraceSink: cannot open " + path};
  }
  unsigned char header[kHeaderSize] = {};
  std::memcpy(header, kTraceMagic, 4);
  put_u16(header + 4, kTraceVersion);
  put_u16(header + 6, 0);
  put_u64(header + 8, 0);  // event count, patched on close
  put_u64(header + 16, kHeaderSize);
  std::fwrite(header, 1, kHeaderSize, file_);
}

BinaryTraceSink::~BinaryTraceSink() { close(); }

void BinaryTraceSink::on_event(const bgp::TraceEvent& event) {
  if (file_ == nullptr) return;
  unsigned char rec[1 + kPayloadV1];
  rec[0] = kPayloadV1;
  rec[1] = static_cast<unsigned char>(event.kind);
  rec[2] = event.withdraw ? 1 : 0;
  put_u64(rec + 3, static_cast<std::uint64_t>(event.at.ns()));
  put_u32(rec + 11, event.router);
  put_u32(rec + 15, event.peer);
  put_u32(rec + 19, event.prefix);
  put_u32(rec + 23, static_cast<std::uint32_t>(event.batch_size));
  put_u32(rec + 27, event.path_len);
  std::fwrite(rec, 1, sizeof(rec), file_);
  ++written_;
}

void BinaryTraceSink::close() {
  if (file_ == nullptr) return;
  unsigned char count[8];
  put_u64(count, written_);
  std::fseek(file_, 8, SEEK_SET);
  std::fwrite(count, 1, 8, file_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceFile read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"read_trace_file: cannot open " + path};

  TraceFile out;
  unsigned char header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize ||
      std::memcmp(header, kTraceMagic, 4) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: " + path + " is not a bgpsim trace"};
  }
  out.version = get_u16(header + 4);
  if (out.version == 0 || out.version > kTraceVersion) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: unsupported trace version " +
                             std::to_string(out.version)};
  }
  const std::uint64_t declared = get_u64(header + 8);
  const std::uint64_t first = get_u64(header + 16);
  if (first < kHeaderSize || std::fseek(f, static_cast<long>(first), SEEK_SET) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: malformed header in " + path};
  }
  if (declared > 0) out.events.reserve(declared);

  for (;;) {
    unsigned char len;
    if (std::fread(&len, 1, 1, f) != 1) break;  // clean EOF
    unsigned char payload[255];
    if (std::fread(payload, 1, len, f) != len) {
      out.truncated = true;  // writer died mid-record
      break;
    }
    if (len < kPayloadV1) {
      out.truncated = true;  // shorter than any known layout
      break;
    }
    bgp::TraceEvent ev;
    const auto kind = payload[0];
    if (kind >= bgp::TraceEvent::kNumKinds) {
      out.truncated = true;
      break;
    }
    ev.kind = static_cast<bgp::TraceEvent::Kind>(kind);
    ev.withdraw = (payload[1] & 1) != 0;
    ev.at = sim::SimTime::from_ns(static_cast<std::int64_t>(get_u64(payload + 2)));
    ev.router = get_u32(payload + 10);
    ev.peer = get_u32(payload + 14);
    ev.prefix = get_u32(payload + 18);
    ev.batch_size = get_u32(payload + 22);
    ev.path_len = get_u32(payload + 26);
    out.events.push_back(ev);
  }
  std::fclose(f);
  if (declared != out.events.size()) out.truncated = true;
  return out;
}

}  // namespace bgpsim::obs
