#include "obs/binary_trace.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace bgpsim::obs {

namespace {

constexpr std::size_t kHeaderSize = 24;
constexpr std::uint8_t kPayloadV1 = 30;
constexpr std::uint8_t kPayloadV2 = 46;  ///< v1 + u32 epoch + u64 key + u32 emit

std::string dir_of(const std::string& p) {
  const auto slash = p.find_last_of('/');
  return slash == std::string::npos ? std::string{} : p.substr(0, slash + 1);
}

std::string base_of(const std::string& p) {
  const auto slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::FILE* open_bgtr(const std::string& path, std::uint16_t version) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return nullptr;
  unsigned char header[kHeaderSize] = {};
  std::memcpy(header, kTraceMagic, 4);
  put_u16(header + 4, version);
  put_u16(header + 6, 0);
  put_u64(header + 8, 0);  // event count, patched on close
  put_u64(header + 16, kHeaderSize);
  std::fwrite(header, 1, kHeaderSize, f);
  return f;
}

void patch_count_and_close(std::FILE* f, std::uint64_t written) {
  unsigned char count[8];
  put_u64(count, written);
  std::fseek(f, 8, SEEK_SET);
  std::fwrite(count, 1, 8, f);
  std::fclose(f);
}

void encode_v1(unsigned char* p, const bgp::TraceEvent& event) {
  p[0] = static_cast<unsigned char>(event.kind);
  p[1] = event.withdraw ? 1 : 0;
  put_u64(p + 2, static_cast<std::uint64_t>(event.at.ns()));
  put_u32(p + 10, event.router);
  put_u32(p + 14, event.peer);
  put_u32(p + 18, event.prefix);
  put_u32(p + 22, static_cast<std::uint32_t>(event.batch_size));
  put_u32(p + 26, event.path_len);
}

bool decode_v1(const unsigned char* p, bgp::TraceEvent& ev) {
  const auto kind = p[0];
  if (kind >= bgp::TraceEvent::kNumKinds) return false;
  ev.kind = static_cast<bgp::TraceEvent::Kind>(kind);
  ev.withdraw = (p[1] & 1) != 0;
  ev.at = sim::SimTime::from_ns(static_cast<std::int64_t>(get_u64(p + 2)));
  ev.router = get_u32(p + 10);
  ev.peer = get_u32(p + 14);
  ev.prefix = get_u32(p + 18);
  ev.batch_size = get_u32(p + 22);
  ev.path_len = get_u32(p + 26);
  return true;
}

std::string shard_path(const std::string& manifest_path, std::size_t i) {
  return manifest_path + ".shard" + std::to_string(i);
}

}  // namespace

BinaryTraceSink::BinaryTraceSink(const std::string& path) : path_{path} {
  file_ = open_bgtr(path, kTraceVersion);
  if (file_ == nullptr) {
    throw std::runtime_error{"BinaryTraceSink: cannot open " + path};
  }
}

BinaryTraceSink::~BinaryTraceSink() { close(); }

void BinaryTraceSink::on_event(const bgp::TraceEvent& event) {
  if (file_ == nullptr) return;
  unsigned char rec[1 + kPayloadV1];
  rec[0] = kPayloadV1;
  encode_v1(rec + 1, event);
  std::fwrite(rec, 1, sizeof(rec), file_);
  ++written_;
}

void BinaryTraceSink::close() {
  if (file_ == nullptr) return;
  patch_count_and_close(file_, written_);
  file_ = nullptr;
}

ShardedTraceWriter::ShardedTraceWriter(const std::string& path, std::size_t partitions)
    : path_{path} {
  if (partitions == 0) {
    throw std::invalid_argument{"ShardedTraceWriter: need at least one partition"};
  }
  // Manifest first: a run that dies mid-capture leaves a manifest pointing
  // at truncated shards, which the readers tolerate.
  std::FILE* mf = std::fopen(path.c_str(), "wb");
  if (mf == nullptr) {
    throw std::runtime_error{"ShardedTraceWriter: cannot open " + path};
  }
  unsigned char head[12] = {};
  std::memcpy(head, kTraceManifestMagic, 4);
  put_u16(head + 4, kTraceManifestVersion);
  put_u16(head + 6, 0);
  put_u32(head + 8, static_cast<std::uint32_t>(partitions));
  std::fwrite(head, 1, sizeof(head), mf);
  for (std::size_t i = 0; i < partitions; ++i) {
    const std::string name = base_of(shard_path(path, i));
    unsigned char len[2];
    put_u16(len, static_cast<std::uint16_t>(name.size()));
    std::fwrite(len, 1, 2, mf);
    std::fwrite(name.data(), 1, name.size(), mf);
  }
  const bool ok = std::ferror(mf) == 0;
  std::fclose(mf);
  if (!ok) throw std::runtime_error{"ShardedTraceWriter: write failed for " + path};

  files_.resize(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    files_[i].file = open_bgtr(shard_path(path, i), kTraceShardVersion);
    if (files_[i].file == nullptr) {
      close();
      throw std::runtime_error{"ShardedTraceWriter: cannot open " + shard_path(path, i)};
    }
  }
}

ShardedTraceWriter::~ShardedTraceWriter() { close(); }

void ShardedTraceWriter::on_event(std::size_t partition, const bgp::TraceEvent& event,
                                  const bgp::TraceOrder& order) {
  Shard& s = files_[partition];
  if (s.file == nullptr) return;
  unsigned char rec[1 + kPayloadV2];
  rec[0] = kPayloadV2;
  encode_v1(rec + 1, event);
  put_u32(rec + 1 + kPayloadV1, order.epoch);
  put_u64(rec + 1 + kPayloadV1 + 4, order.key);
  put_u32(rec + 1 + kPayloadV1 + 12, order.emit);
  std::fwrite(rec, 1, sizeof(rec), s.file);
  ++s.written;
}

void ShardedTraceWriter::close() {
  for (Shard& s : files_) {
    if (s.file == nullptr) continue;
    patch_count_and_close(s.file, s.written);
    s.file = nullptr;
  }
}

std::uint64_t ShardedTraceWriter::events_written() const {
  std::uint64_t total = 0;
  for (const Shard& s : files_) total += s.written;
  return total;
}

TraceFile read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"read_trace_file: cannot open " + path};

  TraceFile out;
  unsigned char header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize ||
      std::memcmp(header, kTraceMagic, 4) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: " + path + " is not a bgpsim trace"};
  }
  out.version = get_u16(header + 4);
  if (out.version == 0 || out.version > kTraceShardVersion) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: unsupported trace version " +
                             std::to_string(out.version)};
  }
  const std::uint64_t declared = get_u64(header + 8);
  const std::uint64_t first = get_u64(header + 16);
  if (first < kHeaderSize || std::fseek(f, static_cast<long>(first), SEEK_SET) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_file: malformed header in " + path};
  }
  if (declared > 0) out.events.reserve(declared);

  for (;;) {
    unsigned char len;
    if (std::fread(&len, 1, 1, f) != 1) break;  // clean EOF
    unsigned char payload[255];
    if (std::fread(payload, 1, len, f) != len) {
      out.truncated = true;  // writer died mid-record
      break;
    }
    if (len < kPayloadV1) {
      out.truncated = true;  // shorter than any known layout
      break;
    }
    bgp::TraceEvent ev;
    if (!decode_v1(payload, ev)) {
      out.truncated = true;
      break;
    }
    out.events.push_back(ev);
  }
  std::fclose(f);
  if (declared != out.events.size()) out.truncated = true;
  return out;
}

TraceShardFile read_trace_shard(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"read_trace_shard: cannot open " + path};

  TraceShardFile out;
  unsigned char header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize ||
      std::memcmp(header, kTraceMagic, 4) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_shard: " + path + " is not a bgpsim trace"};
  }
  out.version = get_u16(header + 4);
  if (out.version != kTraceShardVersion) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_shard: " + path + " is not a trace shard (version " +
                             std::to_string(out.version) + ")"};
  }
  const std::uint64_t declared = get_u64(header + 8);
  const std::uint64_t first = get_u64(header + 16);
  if (first < kHeaderSize || std::fseek(f, static_cast<long>(first), SEEK_SET) != 0) {
    std::fclose(f);
    throw std::runtime_error{"read_trace_shard: malformed header in " + path};
  }
  if (declared > 0) {
    out.events.reserve(declared);
    out.orders.reserve(declared);
  }

  for (;;) {
    unsigned char len;
    if (std::fread(&len, 1, 1, f) != 1) break;  // clean EOF
    unsigned char payload[255];
    if (std::fread(payload, 1, len, f) != len) {
      out.truncated = true;  // writer died mid-record
      break;
    }
    if (len < kPayloadV2) {
      out.truncated = true;  // a shard record without its merge stamp
      break;
    }
    bgp::TraceEvent ev;
    if (!decode_v1(payload, ev)) {
      out.truncated = true;
      break;
    }
    bgp::TraceOrder ord;
    ord.epoch = get_u32(payload + kPayloadV1);
    ord.key = get_u64(payload + kPayloadV1 + 4);
    ord.emit = get_u32(payload + kPayloadV1 + 12);
    out.events.push_back(ev);
    out.orders.push_back(ord);
  }
  std::fclose(f);
  if (declared != out.events.size()) out.truncated = true;
  return out;
}

TraceManifest read_trace_manifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"read_trace_manifest: cannot open " + path};

  const auto fail = [&](const std::string& why) -> TraceManifest {
    std::fclose(f);
    throw std::runtime_error{"read_trace_manifest: " + path + ": " + why};
  };

  unsigned char head[12];
  if (std::fread(head, 1, sizeof(head), f) != sizeof(head) ||
      std::memcmp(head, kTraceManifestMagic, 4) != 0) {
    return fail("not a bgpsim trace manifest");
  }
  TraceManifest out;
  out.version = get_u16(head + 4);
  if (out.version == 0 || out.version > kTraceManifestVersion) {
    return fail("unsupported manifest version " + std::to_string(out.version));
  }
  const std::uint32_t count = get_u32(head + 8);
  const std::string dir = dir_of(path);
  for (std::uint32_t i = 0; i < count; ++i) {
    unsigned char len_buf[2];
    if (std::fread(len_buf, 1, 2, f) != 2) return fail("truncated shard list");
    const std::uint16_t len = get_u16(len_buf);
    std::string name(len, '\0');
    if (len != 0 && std::fread(name.data(), 1, len, f) != len) {
      return fail("truncated shard name");
    }
    out.shard_paths.push_back(dir + name);
  }
  std::fclose(f);
  return out;
}

TraceFile read_merged_trace(const std::string& manifest_path) {
  const TraceManifest man = read_trace_manifest(manifest_path);

  struct Stamped {
    bgp::TraceEvent ev;
    bgp::TraceOrder ord;
  };
  TraceFile out;
  out.version = kTraceShardVersion;
  std::vector<Stamped> all;
  for (const std::string& sp : man.shard_paths) {
    TraceShardFile shard = read_trace_shard(sp);
    if (shard.truncated) out.truncated = true;
    for (std::size_t i = 0; i < shard.events.size(); ++i) {
      all.push_back(Stamped{shard.events[i], shard.orders[i]});
    }
  }
  // (epoch, at, key, emit) tuples are globally unique and shared with the
  // serial K=1 capture, so a plain sort reconstructs the serial emission
  // order exactly (stability is irrelevant: no ties exist).
  std::sort(all.begin(), all.end(), [](const Stamped& a, const Stamped& b) {
    if (a.ord.epoch != b.ord.epoch) return a.ord.epoch < b.ord.epoch;
    if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
    if (a.ord.key != b.ord.key) return a.ord.key < b.ord.key;
    return a.ord.emit < b.ord.emit;
  });
  out.events.reserve(all.size());
  for (const Stamped& s : all) out.events.push_back(s.ev);
  return out;
}

std::uint64_t write_merged_trace(const std::string& manifest_path,
                                 const std::string& out_path) {
  const TraceFile merged = read_merged_trace(manifest_path);
  BinaryTraceSink sink{out_path};
  for (const bgp::TraceEvent& ev : merged.events) sink.on_event(ev);
  sink.close();
  return sink.events_written();
}

TraceFile load_trace_any(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"load_trace_any: cannot open " + path};
  char magic[4] = {};
  const std::size_t got = std::fread(magic, 1, 4, f);
  std::fclose(f);
  if (got == 4 && std::memcmp(magic, kTraceManifestMagic, 4) == 0) {
    return read_merged_trace(path);
  }
  return read_trace_file(path);
}

}  // namespace bgpsim::obs
