// Time-series telemetry sampler and its on-disk format.
//
// A TelemetrySampler rides the scheduler (sim::PeriodicTask) and, at every
// tick, appends one row to a set of column-oriented buffers:
//
//   network rollups   overloaded-router count (unfinished work > threshold,
//                     the paper's upTh by default), interval deltas of
//                     updates sent / work items processed / RIB changes,
//                     deepest input queue
//   per-router        unfinished work (s), input-queue depth, dynamic-MRAI
//                     level, CPU busy fraction, cumulative updates sent and
//                     received
//
// plus dynamic-MRAI level *residency*: total router-seconds per level and a
// log-bucketed histogram of contiguous-stay durations.
//
// Sampling is strictly read-only with respect to the simulation: it uses
// the Router's const peek accessors, so a run with the sampler attached
// produces bit-identical protocol results (messages, convergence delays,
// RIB contents) to the same run without it. Only two scheduler artifacts
// differ: the executed-event count (the ticks are events) and the
// quiescence timestamp, which rounds up to the final tick -- so phase
// boundaries shift by at most one interval while every relative measurement
// stays exact (bench/obs_overhead.cpp enforces this).
//
// Parallel mode samples exactly, not approximately: the sampler registers
// as the Network's WindowObserver and publishes its next due instant as a
// due-time ceiling, so run_par() ends a window exactly on each sample
// instant. A sample stamped D therefore reflects precisely the events with
// t < D, at every thread count -- the sample columns are bit-identical
// across K >= 1 (the sampler-determinism test enforces K=1 vs K=4). With
// partition profiling on (enabled automatically when the sampler attaches
// to a parallel network), the file also carries the per-window ParProfile
// columns; those include host wall-clock busy times and are excluded from
// the determinism claim.
//
// write_file() serializes everything into a versioned little-endian binary
// ("BGTL"); read_telemetry_file() loads it back, and trace_inspect exports
// it as CSV/JSON or extracts single series.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/network.hpp"
#include "obs/histogram.hpp"
#include "sim/periodic.hpp"

namespace bgpsim::obs {

inline constexpr char kTelemetryMagic[4] = {'B', 'G', 'T', 'L'};
/// v2 appends the optional partition-profile section (flags bit 1).
inline constexpr std::uint16_t kTelemetryVersion = 2;

struct TelemetryConfig {
  sim::SimTime interval = sim::SimTime::seconds(0.1);
  /// Unfinished-work overload threshold for the rollup (paper's upTh).
  sim::SimTime overload_threshold = sim::SimTime::seconds(0.65);
  /// Record per-router columns (off = rollups only, O(1) memory per tick).
  bool per_router = true;
  /// Optional dynamic-MRAI level lookup (e.g. [&m](NodeId v) { return
  /// m.level(v); }); absent => the level column stays 0.
  std::function<std::size_t(bgp::NodeId)> mrai_level;
};

/// The column names trace_inspect understands, in storage order.
enum class RouterMetric : std::uint8_t {
  kUnfinishedWork,  ///< seconds
  kQueueDepth,
  kMraiLevel,
  kBusyFraction,
  kUpdatesSent,  ///< cumulative
  kUpdatesReceived,  ///< cumulative
};
const char* to_string(RouterMetric m);

class TelemetrySampler final : public bgp::WindowObserver {
 public:
  TelemetrySampler(bgp::Network& net, TelemetryConfig cfg);
  ~TelemetrySampler() override;

  /// First sample one interval from now; self-terminates at quiescence.
  /// Call again before the next run_to_quiescence() phase to keep sampling
  /// (idempotent while ticking; harness users wire this to
  /// ExperimentConfig::on_phase).
  void start();

  /// Forgets every accumulated sample, baseline and histogram, as if the
  /// sampler were freshly constructed (the window-observer registration is
  /// kept). The next start() re-baselines from the network's then-current
  /// counters -- warm-start/restore paths call this so a replayed failure's
  /// telemetry begins cleanly at restore time.
  void reset();

  std::size_t samples() const { return times_s_.size(); }
  std::size_t routers() const { return n_routers_; }
  const TelemetryConfig& config() const { return cfg_; }

  // Rollup columns (one entry per sample).
  const std::vector<double>& times_s() const { return times_s_; }
  const std::vector<std::uint32_t>& overloaded() const { return overloaded_; }
  const std::vector<std::uint64_t>& sent_delta() const { return sent_delta_; }
  const std::vector<std::uint64_t>& processed_delta() const { return processed_delta_; }
  const std::vector<std::uint64_t>& rib_delta() const { return rib_delta_; }
  const std::vector<std::uint32_t>& max_queue() const { return max_queue_; }

  /// Per-router series for one metric (length = samples()); only valid when
  /// cfg.per_router.
  std::vector<double> series(bgp::NodeId router, RouterMetric m) const;

  /// Router-seconds spent at each dynamic-MRAI level (index = level).
  const std::vector<double>& level_residency_s() const { return level_residency_s_; }
  /// Contiguous per-router level-stay durations, log-bucketed (min 1 ms).
  const LogHistogram& level_stay_hist() const { return level_stay_hist_; }

  /// Serializes to the BGTL binary format. Throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  friend struct TelemetryFile;
  void sample();
  /// One tick's worth of column appends, stamped `now`. The serial periodic
  /// task passes the scheduler clock; the parallel window observer passes
  /// each due point as its window boundary reaches it.
  void sample_at(sim::SimTime now);

  // WindowObserver (parallel mode). Due points <= tmin are stamped before a
  // window runs; due_ceiling() makes run_par() end a window exactly on the
  // next due point, which on_window_end then stamps. Either way a sample at
  // D sees exactly the events with t < D -- see the header comment.
  void on_window_start(sim::SimTime tmin) override;
  void on_window_end(sim::SimTime window_end) override;
  sim::SimTime due_ceiling() const override {
    return started_ ? next_due_ : sim::SimTime::max();
  }

  bgp::Network& net_;
  TelemetryConfig cfg_;
  sim::PeriodicTask task_;
  std::size_t n_routers_;
  bool started_ = false;
  bool observer_registered_ = false;
  sim::SimTime next_due_;  ///< parallel mode: next pending sample time

  std::vector<double> times_s_;
  std::vector<std::uint32_t> overloaded_;
  std::vector<std::uint64_t> sent_delta_;
  std::vector<std::uint64_t> processed_delta_;
  std::vector<std::uint64_t> rib_delta_;
  std::vector<std::uint32_t> max_queue_;
  std::uint64_t last_sent_ = 0;
  std::uint64_t last_processed_ = 0;
  std::uint64_t last_rib_ = 0;

  // Row-major [sample * n_routers + router].
  std::vector<float> unfinished_work_s_;
  std::vector<std::uint32_t> queue_depth_;
  std::vector<std::uint8_t> mrai_level_;
  std::vector<float> busy_frac_;
  std::vector<std::uint32_t> cum_sent_;
  std::vector<std::uint32_t> cum_recv_;

  std::vector<double> level_residency_s_;
  LogHistogram level_stay_hist_{1e-3};
  std::vector<std::uint8_t> prev_level_;
  std::vector<double> level_since_s_;
};

/// In-memory image of a BGTL file (same columns as the sampler).
struct TelemetryFile {
  std::uint16_t version = 0;
  bool per_router = false;
  std::uint32_t n_routers = 0;
  sim::SimTime interval;
  sim::SimTime overload_threshold;

  std::vector<double> times_s;
  std::vector<std::uint32_t> overloaded;
  std::vector<std::uint64_t> sent_delta;
  std::vector<std::uint64_t> processed_delta;
  std::vector<std::uint64_t> rib_delta;
  std::vector<std::uint32_t> max_queue;

  std::vector<float> unfinished_work_s;
  std::vector<std::uint32_t> queue_depth;
  std::vector<std::uint8_t> mrai_level;
  std::vector<float> busy_frac;
  std::vector<std::uint32_t> cum_sent;
  std::vector<std::uint32_t> cum_recv;

  std::vector<double> level_residency_s;

  /// v2 partition-profile section (empty for serial/unprofiled runs); the
  /// summary helpers -- imbalance_factor(), barrier_overhead_fraction(),
  /// critical_histogram() -- live on bgp::ParProfile.
  bgp::ParProfile partitions;
  bool has_partitions() const { return !partitions.empty(); }

  std::size_t samples() const { return times_s.size(); }
  /// Per-router series for one metric, as doubles.
  std::vector<double> series(bgp::NodeId router, RouterMetric m) const;
};

/// Loads a BGTL file; throws std::runtime_error on a missing/malformed file.
TelemetryFile read_telemetry_file(const std::string& path);

}  // namespace bgpsim::obs
