// Time-series telemetry sampler and its on-disk format.
//
// A TelemetrySampler rides the scheduler (sim::PeriodicTask) and, at every
// tick, appends one row to a set of column-oriented buffers:
//
//   network rollups   overloaded-router count (unfinished work > threshold,
//                     the paper's upTh by default), interval deltas of
//                     updates sent / work items processed / RIB changes,
//                     deepest input queue
//   per-router        unfinished work (s), input-queue depth, dynamic-MRAI
//                     level, CPU busy fraction, cumulative updates sent and
//                     received
//
// plus dynamic-MRAI level *residency*: total router-seconds per level and a
// log-bucketed histogram of contiguous-stay durations.
//
// Sampling is strictly read-only with respect to the simulation: it uses
// the Router's const peek accessors, so a run with the sampler attached
// produces bit-identical protocol results (messages, convergence delays,
// RIB contents) to the same run without it. Only two scheduler artifacts
// differ: the executed-event count (the ticks are events) and the
// quiescence timestamp, which rounds up to the final tick -- so phase
// boundaries shift by at most one interval while every relative measurement
// stays exact (bench/obs_overhead.cpp enforces this).
//
// write_file() serializes everything into a versioned little-endian binary
// ("BGTL"); read_telemetry_file() loads it back, and trace_inspect exports
// it as CSV/JSON or extracts single series.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/network.hpp"
#include "obs/histogram.hpp"
#include "sim/periodic.hpp"

namespace bgpsim::obs {

inline constexpr char kTelemetryMagic[4] = {'B', 'G', 'T', 'L'};
inline constexpr std::uint16_t kTelemetryVersion = 1;

struct TelemetryConfig {
  sim::SimTime interval = sim::SimTime::seconds(0.1);
  /// Unfinished-work overload threshold for the rollup (paper's upTh).
  sim::SimTime overload_threshold = sim::SimTime::seconds(0.65);
  /// Record per-router columns (off = rollups only, O(1) memory per tick).
  bool per_router = true;
  /// Optional dynamic-MRAI level lookup (e.g. [&m](NodeId v) { return
  /// m.level(v); }); absent => the level column stays 0.
  std::function<std::size_t(bgp::NodeId)> mrai_level;
};

/// The column names trace_inspect understands, in storage order.
enum class RouterMetric : std::uint8_t {
  kUnfinishedWork,  ///< seconds
  kQueueDepth,
  kMraiLevel,
  kBusyFraction,
  kUpdatesSent,  ///< cumulative
  kUpdatesReceived,  ///< cumulative
};
const char* to_string(RouterMetric m);

class TelemetrySampler {
 public:
  TelemetrySampler(bgp::Network& net, TelemetryConfig cfg);

  /// First sample one interval from now; self-terminates at quiescence.
  /// Call again before the next run_to_quiescence() phase to keep sampling
  /// (idempotent while ticking; harness users wire this to
  /// ExperimentConfig::on_phase).
  void start();

  std::size_t samples() const { return times_s_.size(); }
  std::size_t routers() const { return n_routers_; }
  const TelemetryConfig& config() const { return cfg_; }

  // Rollup columns (one entry per sample).
  const std::vector<double>& times_s() const { return times_s_; }
  const std::vector<std::uint32_t>& overloaded() const { return overloaded_; }
  const std::vector<std::uint64_t>& sent_delta() const { return sent_delta_; }
  const std::vector<std::uint64_t>& processed_delta() const { return processed_delta_; }
  const std::vector<std::uint64_t>& rib_delta() const { return rib_delta_; }
  const std::vector<std::uint32_t>& max_queue() const { return max_queue_; }

  /// Per-router series for one metric (length = samples()); only valid when
  /// cfg.per_router.
  std::vector<double> series(bgp::NodeId router, RouterMetric m) const;

  /// Router-seconds spent at each dynamic-MRAI level (index = level).
  const std::vector<double>& level_residency_s() const { return level_residency_s_; }
  /// Contiguous per-router level-stay durations, log-bucketed (min 1 ms).
  const LogHistogram& level_stay_hist() const { return level_stay_hist_; }

  /// Serializes to the BGTL binary format. Throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  friend struct TelemetryFile;
  void sample();
  /// One tick's worth of column appends, stamped `now`. The serial periodic
  /// task passes the scheduler clock; the parallel window observer passes
  /// each elapsed due point (see on_window).
  void sample_at(sim::SimTime now);
  /// Parallel mode: invoked at every window barrier. Samples once per due
  /// point the window passed. Router state is read at the barrier, not at
  /// the exact due time, so parallel telemetry is an approximation within
  /// one lookahead window (and is excluded from the bit-identity claims --
  /// see DESIGN.md "Parallel execution").
  void on_window(sim::SimTime window_end);

  bgp::Network& net_;
  TelemetryConfig cfg_;
  sim::PeriodicTask task_;
  std::size_t n_routers_;
  bool started_ = false;
  sim::SimTime next_due_;  ///< parallel mode: next pending sample time

  std::vector<double> times_s_;
  std::vector<std::uint32_t> overloaded_;
  std::vector<std::uint64_t> sent_delta_;
  std::vector<std::uint64_t> processed_delta_;
  std::vector<std::uint64_t> rib_delta_;
  std::vector<std::uint32_t> max_queue_;
  std::uint64_t last_sent_ = 0;
  std::uint64_t last_processed_ = 0;
  std::uint64_t last_rib_ = 0;

  // Row-major [sample * n_routers + router].
  std::vector<float> unfinished_work_s_;
  std::vector<std::uint32_t> queue_depth_;
  std::vector<std::uint8_t> mrai_level_;
  std::vector<float> busy_frac_;
  std::vector<std::uint32_t> cum_sent_;
  std::vector<std::uint32_t> cum_recv_;

  std::vector<double> level_residency_s_;
  LogHistogram level_stay_hist_{1e-3};
  std::vector<std::uint8_t> prev_level_;
  std::vector<double> level_since_s_;
};

/// In-memory image of a BGTL file (same columns as the sampler).
struct TelemetryFile {
  std::uint16_t version = 0;
  bool per_router = false;
  std::uint32_t n_routers = 0;
  sim::SimTime interval;
  sim::SimTime overload_threshold;

  std::vector<double> times_s;
  std::vector<std::uint32_t> overloaded;
  std::vector<std::uint64_t> sent_delta;
  std::vector<std::uint64_t> processed_delta;
  std::vector<std::uint64_t> rib_delta;
  std::vector<std::uint32_t> max_queue;

  std::vector<float> unfinished_work_s;
  std::vector<std::uint32_t> queue_depth;
  std::vector<std::uint8_t> mrai_level;
  std::vector<float> busy_frac;
  std::vector<std::uint32_t> cum_sent;
  std::vector<std::uint32_t> cum_recv;

  std::vector<double> level_residency_s;

  std::size_t samples() const { return times_s.size(); }
  /// Per-router series for one metric, as doubles.
  std::vector<double> series(bgp::NodeId router, RouterMetric m) const;
};

/// Loads a BGTL file; throws std::runtime_error on a missing/malformed file.
TelemetryFile read_telemetry_file(const std::string& path);

}  // namespace bgpsim::obs
