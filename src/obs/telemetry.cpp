#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace bgpsim::obs {

namespace {

// Little-endian scalar I/O through std::FILE (shared shape with
// binary_trace.cpp; kept local -- both are trivial and the formats evolve
// independently).
template <typename T>
void write_scalar(std::FILE* f, T v) {
  unsigned char buf[sizeof(T)];
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xFF);
  }
  std::fwrite(buf, 1, sizeof(T), f);
}

template <typename T>
bool read_scalar(std::FILE* f, T& v) {
  unsigned char buf[sizeof(T)];
  if (std::fread(buf, 1, sizeof(T), f) != sizeof(T)) return false;
  std::uint64_t bits = 0;
  for (std::size_t i = sizeof(T); i > 0; --i) bits = (bits << 8) | buf[i - 1];
  std::memcpy(&v, &bits, sizeof(T));
  return true;
}

template <typename T>
void write_column(std::FILE* f, const std::vector<T>& col) {
  for (const T v : col) write_scalar(f, v);
}

template <typename T>
bool read_column(std::FILE* f, std::vector<T>& col, std::size_t n) {
  col.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!read_scalar(f, col[i])) return false;
  }
  return true;
}

}  // namespace

const char* to_string(RouterMetric m) {
  switch (m) {
    case RouterMetric::kUnfinishedWork:
      return "unfinished_work";
    case RouterMetric::kQueueDepth:
      return "queue";
    case RouterMetric::kMraiLevel:
      return "level";
    case RouterMetric::kBusyFraction:
      return "busy";
    case RouterMetric::kUpdatesSent:
      return "sent";
    case RouterMetric::kUpdatesReceived:
      return "received";
  }
  return "?";
}

TelemetrySampler::TelemetrySampler(bgp::Network& net, TelemetryConfig cfg)
    : net_{net},
      cfg_{std::move(cfg)},
      task_{net.scheduler(), cfg_.interval, [this] { sample(); }},
      n_routers_{net.size()} {
  prev_level_.assign(n_routers_, 0);
  level_since_s_.assign(n_routers_, 0.0);
}

TelemetrySampler::~TelemetrySampler() {
  if (observer_registered_) net_.set_window_observer(nullptr);
}

void TelemetrySampler::start() {
  if (!started_) {
    // Baselines only on the first call: a restart (next run phase) keeps the
    // delta columns continuous across the quiescent gap.
    started_ = true;
    last_sent_ = net_.metrics().updates_sent;
    last_processed_ = net_.metrics().messages_processed;
    last_rib_ = net_.metrics().rib_changes;
    const double now_s = net_.now().to_seconds();
    std::fill(level_since_s_.begin(), level_since_s_.end(), now_s);
    if (net_.parallel() && !observer_registered_) {
      // A partitioned heap has no single queue for a periodic event, so the
      // sampler rides the window barriers instead; due_ceiling() turns each
      // due point into a barrier, making the samples exact (see header).
      // Profiling rides along: a telemetry file from a parallel run always
      // carries the partition columns.
      net_.set_window_observer(this);
      observer_registered_ = true;
      net_.enable_par_profile();
    }
  }
  if (net_.parallel()) {
    next_due_ = net_.now() + cfg_.interval;
    return;
  }
  task_.start();
}

void TelemetrySampler::reset() {
  started_ = false;
  next_due_ = sim::SimTime{};
  times_s_.clear();
  overloaded_.clear();
  sent_delta_.clear();
  processed_delta_.clear();
  rib_delta_.clear();
  max_queue_.clear();
  last_sent_ = 0;
  last_processed_ = 0;
  last_rib_ = 0;
  unfinished_work_s_.clear();
  queue_depth_.clear();
  mrai_level_.clear();
  busy_frac_.clear();
  cum_sent_.clear();
  cum_recv_.clear();
  level_residency_s_.clear();
  level_stay_hist_.reset();
  prev_level_.assign(n_routers_, 0);
  level_since_s_.assign(n_routers_, 0.0);
}

void TelemetrySampler::on_window_start(sim::SimTime tmin) {
  if (!started_) return;
  // Everything executed so far has t < the previous window end (all dues up
  // to which were already stamped); everything pending has t >= tmin. A due
  // point D <= tmin stamped here therefore reflects exactly the events with
  // t < D.
  while (next_due_ <= tmin) {
    sample_at(next_due_);
    next_due_ = next_due_ + cfg_.interval;
  }
}

void TelemetrySampler::on_window_end(sim::SimTime window_end) {
  if (!started_) return;
  // run_par() clamped the window end down to due_ceiling() when that fell
  // inside the window, so the only due point a finished window can cover
  // lands exactly on its end -- where events with t < D have all executed
  // and none at or after D has.
  while (next_due_ <= window_end) {
    sample_at(next_due_);
    next_due_ = next_due_ + cfg_.interval;
  }
}

void TelemetrySampler::sample() { sample_at(net_.scheduler().now()); }

void TelemetrySampler::sample_at(sim::SimTime now) {
  const double now_s = now.to_seconds();
  times_s_.push_back(now_s);

  const auto& m = net_.metrics();
  sent_delta_.push_back(m.updates_sent - last_sent_);
  processed_delta_.push_back(m.messages_processed - last_processed_);
  rib_delta_.push_back(m.rib_changes - last_rib_);
  last_sent_ = m.updates_sent;
  last_processed_ = m.messages_processed;
  last_rib_ = m.rib_changes;

  std::uint32_t overloaded = 0;
  std::uint32_t deepest = 0;
  const double interval_s = cfg_.interval.to_seconds();
  for (bgp::NodeId v = 0; v < n_routers_; ++v) {
    const auto& r = net_.router(v);
    const auto work = r.alive() ? r.unfinished_work() : sim::SimTime::zero();
    const auto queue = r.alive() ? r.input_queue_length() : 0;
    if (work > cfg_.overload_threshold) ++overloaded;
    deepest = std::max(deepest, static_cast<std::uint32_t>(queue));

    const std::size_t lvl = cfg_.mrai_level ? cfg_.mrai_level(v) : 0;
    if (lvl >= level_residency_s_.size()) level_residency_s_.resize(lvl + 1, 0.0);
    level_residency_s_[lvl] += interval_s;
    if (static_cast<std::uint8_t>(lvl) != prev_level_[v]) {
      level_stay_hist_.add(std::max(now_s - level_since_s_[v], 0.0));
      prev_level_[v] = static_cast<std::uint8_t>(lvl);
      level_since_s_[v] = now_s;
    }

    if (cfg_.per_router) {
      unfinished_work_s_.push_back(static_cast<float>(work.to_seconds()));
      queue_depth_.push_back(static_cast<std::uint32_t>(queue));
      mrai_level_.push_back(static_cast<std::uint8_t>(lvl));
      // Decay to the sample instant, not the router's scheduler clock: in
      // parallel mode the partition clocks at a window boundary depend on
      // the partitioning, but `now` does not.
      busy_frac_.push_back(
          r.alive() ? static_cast<float>(r.utilization_estimate_at(now)) : 0.0f);
      cum_sent_.push_back(static_cast<std::uint32_t>(r.updates_sent()));
      cum_recv_.push_back(static_cast<std::uint32_t>(r.updates_received()));
    }
  }
  overloaded_.push_back(overloaded);
  max_queue_.push_back(deepest);
}

std::vector<double> TelemetrySampler::series(bgp::NodeId router, RouterMetric m) const {
  std::vector<double> out;
  if (!cfg_.per_router || router >= n_routers_) return out;
  const std::size_t rows = times_s_.size();
  out.reserve(rows);
  for (std::size_t s = 0; s < rows; ++s) {
    const std::size_t i = s * n_routers_ + router;
    switch (m) {
      case RouterMetric::kUnfinishedWork:
        out.push_back(unfinished_work_s_[i]);
        break;
      case RouterMetric::kQueueDepth:
        out.push_back(queue_depth_[i]);
        break;
      case RouterMetric::kMraiLevel:
        out.push_back(mrai_level_[i]);
        break;
      case RouterMetric::kBusyFraction:
        out.push_back(busy_frac_[i]);
        break;
      case RouterMetric::kUpdatesSent:
        out.push_back(cum_sent_[i]);
        break;
      case RouterMetric::kUpdatesReceived:
        out.push_back(cum_recv_[i]);
        break;
    }
  }
  return out;
}

void TelemetrySampler::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error{"TelemetrySampler: cannot write " + path};
  }
  const bgp::ParProfile& prof = net_.par_profile();
  const bool with_partitions = net_.parallel() && !prof.empty();
  std::uint16_t flags = cfg_.per_router ? 1 : 0;
  if (with_partitions) flags |= 2;
  std::fwrite(kTelemetryMagic, 1, 4, f);
  write_scalar<std::uint16_t>(f, kTelemetryVersion);
  write_scalar<std::uint16_t>(f, flags);
  write_scalar<std::uint32_t>(f, static_cast<std::uint32_t>(n_routers_));
  write_scalar<std::int64_t>(f, cfg_.interval.ns());
  write_scalar<std::int64_t>(f, cfg_.overload_threshold.ns());
  write_scalar<std::uint64_t>(f, times_s_.size());

  write_column(f, times_s_);
  write_column(f, overloaded_);
  write_column(f, sent_delta_);
  write_column(f, processed_delta_);
  write_column(f, rib_delta_);
  write_column(f, max_queue_);
  if (cfg_.per_router) {
    write_column(f, unfinished_work_s_);
    write_column(f, queue_depth_);
    write_column(f, mrai_level_);
    write_column(f, busy_frac_);
    write_column(f, cum_sent_);
    write_column(f, cum_recv_);
  }
  write_scalar<std::uint32_t>(f, static_cast<std::uint32_t>(level_residency_s_.size()));
  write_column(f, level_residency_s_);
  if (with_partitions) {
    write_scalar<std::uint32_t>(f, static_cast<std::uint32_t>(prof.partitions));
    write_scalar<std::uint64_t>(f, prof.windows());
    write_column(f, prof.window_start_s);
    write_column(f, prof.window_end_s);
    write_column(f, prof.busy_s);
    write_column(f, prof.executed);
    write_column(f, prof.mailbox_msgs);
    write_column(f, prof.mailbox_bytes);
    write_column(f, prof.reinterned);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw std::runtime_error{"TelemetrySampler: write failed for " + path};
}

std::vector<double> TelemetryFile::series(bgp::NodeId router, RouterMetric m) const {
  std::vector<double> out;
  if (!per_router || router >= n_routers) return out;
  const std::size_t rows = times_s.size();
  out.reserve(rows);
  for (std::size_t s = 0; s < rows; ++s) {
    const std::size_t i = s * n_routers + router;
    switch (m) {
      case RouterMetric::kUnfinishedWork:
        out.push_back(unfinished_work_s[i]);
        break;
      case RouterMetric::kQueueDepth:
        out.push_back(queue_depth[i]);
        break;
      case RouterMetric::kMraiLevel:
        out.push_back(mrai_level[i]);
        break;
      case RouterMetric::kBusyFraction:
        out.push_back(busy_frac[i]);
        break;
      case RouterMetric::kUpdatesSent:
        out.push_back(cum_sent[i]);
        break;
      case RouterMetric::kUpdatesReceived:
        out.push_back(cum_recv[i]);
        break;
    }
  }
  return out;
}

TelemetryFile read_telemetry_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"read_telemetry_file: cannot open " + path};

  const auto fail = [&](const std::string& why) -> TelemetryFile {
    std::fclose(f);
    throw std::runtime_error{"read_telemetry_file: " + path + ": " + why};
  };

  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kTelemetryMagic, 4) != 0) {
    return fail("not a bgpsim telemetry file");
  }
  TelemetryFile t;
  std::uint16_t flags = 0;
  std::int64_t interval_ns = 0;
  std::int64_t threshold_ns = 0;
  std::uint64_t n_samples = 0;
  if (!read_scalar(f, t.version) || !read_scalar(f, flags) || !read_scalar(f, t.n_routers) ||
      !read_scalar(f, interval_ns) || !read_scalar(f, threshold_ns) ||
      !read_scalar(f, n_samples)) {
    return fail("truncated header");
  }
  if (t.version == 0 || t.version > kTelemetryVersion) {
    return fail("unsupported version " + std::to_string(t.version));
  }
  t.per_router = (flags & 1) != 0;
  t.interval = sim::SimTime::from_ns(interval_ns);
  t.overload_threshold = sim::SimTime::from_ns(threshold_ns);

  const auto n = static_cast<std::size_t>(n_samples);
  const std::size_t cells = n * t.n_routers;
  bool ok = read_column(f, t.times_s, n) && read_column(f, t.overloaded, n) &&
            read_column(f, t.sent_delta, n) && read_column(f, t.processed_delta, n) &&
            read_column(f, t.rib_delta, n) && read_column(f, t.max_queue, n);
  if (ok && t.per_router) {
    ok = read_column(f, t.unfinished_work_s, cells) && read_column(f, t.queue_depth, cells) &&
         read_column(f, t.mrai_level, cells) && read_column(f, t.busy_frac, cells) &&
         read_column(f, t.cum_sent, cells) && read_column(f, t.cum_recv, cells);
  }
  std::uint32_t n_levels = 0;
  ok = ok && read_scalar(f, n_levels) && read_column(f, t.level_residency_s, n_levels);
  if (ok && (flags & 2) != 0) {
    std::uint32_t n_parts = 0;
    std::uint64_t n_windows = 0;
    ok = read_scalar(f, n_parts) && read_scalar(f, n_windows);
    if (ok) {
      auto& p = t.partitions;
      p.partitions = n_parts;
      const auto w = static_cast<std::size_t>(n_windows);
      const std::size_t wk = w * n_parts;
      ok = read_column(f, p.window_start_s, w) && read_column(f, p.window_end_s, w) &&
           read_column(f, p.busy_s, wk) && read_column(f, p.executed, wk) &&
           read_column(f, p.mailbox_msgs, wk) && read_column(f, p.mailbox_bytes, wk) &&
           read_column(f, p.reinterned, wk);
    }
  }
  if (!ok) return fail("truncated columns");
  std::fclose(f);
  return t;
}

}  // namespace bgpsim::obs
