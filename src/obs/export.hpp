// Trace exporters: JSONL and Chrome/Perfetto trace_event JSON.
//
// write_jsonl() emits one self-describing JSON object per event, one per
// line -- the format for jq/pandas pipelines.
//
// write_perfetto() emits the Chrome trace_event format (JSON object with a
// "traceEvents" array, timestamps in microseconds) loadable directly in
// ui.perfetto.dev or chrome://tracing. Mapping:
//
//   pid            router id (one "process" track group per router, named
//                  via process_name metadata)
//   tid 0 ("cpu")  batch slices: complete "X" events pairing kBatchStarted
//                  with kBatchProcessed, plus instants for every point
//                  event on that router (RIB change, send/receive, ...)
//   tid peer+1     MRAI spans towards that peer: "X" events pairing
//                  kMraiStarted with kMraiExpired
//   pid n_routers  synthetic "network" track holding rollup counters when a
//                  telemetry file is supplied
//   pid n_routers+1  synthetic "partitions" track group when the telemetry
//                  file carries a parallel-run partition profile: one thread
//                  per partition with an "X" slice per conservative window
//                  (ts/dur in sim time, args = busy wall-time, executed
//                  events, mailbox traffic, re-interned paths)
//
// Spans still open at the end of the trace are closed at the final event's
// timestamp so a truncated capture stays loadable.
#pragma once

#include <iosfwd>
#include <vector>

#include "bgp/trace.hpp"
#include "obs/telemetry.hpp"

namespace bgpsim::obs {

/// One JSON object per line: all TraceEvent fields in fixed order.
void write_jsonl(const std::vector<bgp::TraceEvent>& events, std::ostream& os);

struct PerfettoOptions {
  /// Merge telemetry columns in as "C" counter events (per-router
  /// unfinished-work / queue-depth counters plus network rollups).
  const TelemetryFile* telemetry = nullptr;
};

void write_perfetto(const std::vector<bgp::TraceEvent>& events, std::ostream& os,
                    const PerfettoOptions& opts = {});

}  // namespace bgpsim::obs
