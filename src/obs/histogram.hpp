// Log-bucketed histogram.
//
// Fixed-size (no allocation after construction), power-of-two bucket edges
// anchored at a configurable minimum: bucket 0 holds values <= min, bucket i
// holds (min * 2^(i-1), min * 2^i]. This shape covers batch sizes (min = 1,
// buckets 1, 2, 4, ...) and processing/residency delays (min = 1 ms, buckets
// up to tens of minutes) with ~30 counters each, which is what the telemetry
// subsystem stores per metric.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

namespace bgpsim::obs {

class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// `min` is the upper edge of bucket 0 (must be > 0).
  explicit LogHistogram(double min = 1.0) : min_{min > 0 ? min : 1.0} {}

  void add(double value, std::uint64_t weight = 1) {
    counts_[bucket_of(value)] += weight;
    total_ += weight;
    sum_ += value * static_cast<double>(weight);
    if (total_ == weight || value < min_seen_) min_seen_ = value;
    if (total_ == weight || value > max_seen_) max_seen_ = value;
  }

  std::size_t bucket_of(double value) const {
    if (value <= min_) return 0;
    const double b = std::ceil(std::log2(value / min_));
    return std::min<std::size_t>(static_cast<std::size_t>(b), kBuckets - 1);
  }

  /// Bucket edges: values in bucket i satisfy lower(i) < v <= upper(i)
  /// (lower(0) is 0 by convention).
  double lower(std::size_t i) const { return i == 0 ? 0.0 : min_ * std::exp2(static_cast<double>(i - 1)); }
  double upper(std::size_t i) const { return min_ * std::exp2(static_cast<double>(i)); }

  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }
  double min_seen() const { return total_ == 0 ? 0.0 : min_seen_; }
  double max_seen() const { return total_ == 0 ? 0.0 : max_seen_; }

  /// Upper edge of the bucket containing the q-th quantile (q in [0, 1]);
  /// a bucket-resolution approximation, exact enough for p50/p99 summaries.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (static_cast<double>(seen) >= target) return upper(i);
    }
    return upper(kBuckets - 1);
  }

  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.total_ > 0) {
      if (total_ == 0 || other.min_seen_ < min_seen_) min_seen_ = other.min_seen_;
      if (total_ == 0 || other.max_seen_ > max_seen_) max_seen_ = other.max_seen_;
    }
    total_ += other.total_;
    sum_ += other.sum_;
  }

  void reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0.0;
    min_seen_ = 0.0;
    max_seen_ = 0.0;
  }

  /// One "( lo, hi ] count" row per non-empty bucket.
  std::string to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      os << "(" << lower(i) << ", " << upper(i) << "]: " << counts_[i] << "\n";
    }
    return std::move(os).str();
  }

 private:
  double min_;
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace bgpsim::obs
