// Streaming trace statistics.
//
// StatsSink folds every event into O(1) state as it arrives: per-kind
// counts, a log-bucketed batch-size histogram, a processing-delay histogram
// (kBatchStarted -> kBatchProcessed per router) and an MRAI-round-trip
// histogram (kMraiStarted -> kMraiExpired per router/peer). It is the
// aggregation backend for `trace_inspect summary` and cheap enough to
// attach to full-scale runs where recording every event would not fit.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "bgp/trace.hpp"
#include "obs/histogram.hpp"

namespace bgpsim::obs {

class StatsSink final : public bgp::TraceSink {
 public:
  void on_event(const bgp::TraceEvent& event) override;

  std::uint64_t count(bgp::TraceEvent::Kind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total() const { return total_; }

  sim::SimTime first_at() const { return first_at_; }
  sim::SimTime last_at() const { return last_at_; }

  /// Updates per processing batch (from kBatchProcessed).
  const LogHistogram& batch_sizes() const { return batch_sizes_; }
  /// Batch pickup-to-completion wall time in seconds.
  const LogHistogram& processing_delay_s() const { return processing_delay_s_; }
  /// MRAI start-to-expiry time in seconds.
  const LogHistogram& mrai_round_s() const { return mrai_round_s_; }

  /// Human-readable multi-line report (the `trace_inspect summary` body).
  std::string report() const;

 private:
  std::array<std::uint64_t, bgp::TraceEvent::kNumKinds> counts_{};
  std::uint64_t total_ = 0;
  sim::SimTime first_at_;
  sim::SimTime last_at_;

  LogHistogram batch_sizes_{1.0};
  LogHistogram processing_delay_s_{1e-4};
  LogHistogram mrai_round_s_{1e-2};
  std::map<bgp::NodeId, sim::SimTime> batch_open_;
  std::map<std::pair<bgp::NodeId, bgp::NodeId>, sim::SimTime> mrai_open_;
};

}  // namespace bgpsim::obs
