// Binary on-disk trace capture.
//
// BinaryTraceSink streams TraceEvents into a compact length-prefixed file:
//
//   header (24 bytes):  magic "BGTR" | u16 version | u16 reserved
//                       | u64 event_count (patched on close; 0 = truncated,
//                         read until EOF) | u64 first_event_offset
//   record:             u8 payload_length | payload
//   payload v1 (30 B):  u8 kind | u8 flags (bit0 withdraw) | i64 at_ns
//                       | u32 router | u32 peer | u32 prefix
//                       | u32 batch_size | u32 path_len
//
// All integers little-endian. The length prefix lets a v1 reader skip
// fields a later version appends, and lets the reader detect truncation
// (a partial record at EOF) instead of decoding garbage. ~31 MB per 10^6
// events; a CountingSink-grade cost when writing (one buffered fwrite).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bgp/trace.hpp"

namespace bgpsim::obs {

inline constexpr char kTraceMagic[4] = {'B', 'G', 'T', 'R'};
inline constexpr std::uint16_t kTraceVersion = 1;

/// TraceSink that appends every event to `path`. Throws std::runtime_error
/// if the file cannot be opened. close() (or destruction) flushes and
/// patches the header's event count.
class BinaryTraceSink final : public bgp::TraceSink {
 public:
  explicit BinaryTraceSink(const std::string& path);
  ~BinaryTraceSink() override;

  BinaryTraceSink(const BinaryTraceSink&) = delete;
  BinaryTraceSink& operator=(const BinaryTraceSink&) = delete;

  void on_event(const bgp::TraceEvent& event) override;

  /// Flushes, patches the header, closes the file. Idempotent.
  void close();

  std::uint64_t events_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

struct TraceFile {
  std::uint16_t version = 0;
  /// True when the header count was never patched (writer died) or the last
  /// record was cut short; `events` then holds every complete record.
  bool truncated = false;
  std::vector<bgp::TraceEvent> events;
};

/// Reads a trace written by BinaryTraceSink. Throws std::runtime_error on a
/// missing file, bad magic, or unsupported (newer-major) layout.
TraceFile read_trace_file(const std::string& path);

}  // namespace bgpsim::obs
