// Binary on-disk trace capture.
//
// BinaryTraceSink streams TraceEvents into a compact length-prefixed file:
//
//   header (24 bytes):  magic "BGTR" | u16 version | u16 reserved
//                       | u64 event_count (patched on close; 0 = truncated,
//                         read until EOF) | u64 first_event_offset
//   record:             u8 payload_length | payload
//   payload v1 (30 B):  u8 kind | u8 flags (bit0 withdraw) | i64 at_ns
//                       | u32 router | u32 peer | u32 prefix
//                       | u32 batch_size | u32 path_len
//
// All integers little-endian. The length prefix lets a v1 reader skip
// fields a later version appends, and lets the reader detect truncation
// (a partial record at EOF) instead of decoding garbage. ~31 MB per 10^6
// events; a CountingSink-grade cost when writing (one buffered fwrite).
//
// Parallel capture (ShardedTraceWriter) writes one shard file per
// partition -- no cross-thread contention -- plus a manifest at the user's
// path:
//
//   manifest ("BGTM"):  magic | u16 version | u16 reserved | u32 shards
//                       | per shard: u16 name_len | basename bytes
//   shard:              a BGTR file at version 2 whose records append the
//                       deterministic merge stamp to the v1 payload
//   payload v2 (46 B):  payload v1 | u32 epoch | u64 key | u32 emit
//
// Shards live next to the manifest as "<path>.shard<N>". Each shard is
// emitted in ascending (epoch, at, key, emit) order and the stamps are a
// pure function of simulation history (bgp::TraceOrder), so the k-way merge
// (read_merged_trace / write_merged_trace) reconstructs the serial K=1
// event sequence -- and thus a byte-identical v1 trace -- at any partition
// count.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bgp/trace.hpp"

namespace bgpsim::obs {

inline constexpr char kTraceMagic[4] = {'B', 'G', 'T', 'R'};
inline constexpr std::uint16_t kTraceVersion = 1;
/// Shard layout: v1 payload + (epoch, key, emit) merge stamp.
inline constexpr std::uint16_t kTraceShardVersion = 2;
inline constexpr char kTraceManifestMagic[4] = {'B', 'G', 'T', 'M'};
inline constexpr std::uint16_t kTraceManifestVersion = 1;

/// TraceSink that appends every event to `path`. Throws std::runtime_error
/// if the file cannot be opened. close() (or destruction) flushes and
/// patches the header's event count.
class BinaryTraceSink final : public bgp::TraceSink {
 public:
  explicit BinaryTraceSink(const std::string& path);
  ~BinaryTraceSink() override;

  BinaryTraceSink(const BinaryTraceSink&) = delete;
  BinaryTraceSink& operator=(const BinaryTraceSink&) = delete;

  void on_event(const bgp::TraceEvent& event) override;

  /// Flushes, patches the header, closes the file. Idempotent.
  void close();

  std::uint64_t events_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

/// Parallel-capture sink: one BGTR v2 shard per partition plus a "BGTM"
/// manifest at `path`. The manifest is written up front, so a crashed run
/// leaves a manifest pointing at truncated-but-readable shards (same
/// philosophy as the v1 truncation tolerance). close() (or destruction)
/// patches every shard header.
class ShardedTraceWriter final : public bgp::ShardedTraceSink {
 public:
  ShardedTraceWriter(const std::string& path, std::size_t partitions);
  ~ShardedTraceWriter() override;

  ShardedTraceWriter(const ShardedTraceWriter&) = delete;
  ShardedTraceWriter& operator=(const ShardedTraceWriter&) = delete;

  void on_event(std::size_t partition, const bgp::TraceEvent& event,
                const bgp::TraceOrder& order) override;

  /// Flushes and closes every shard. Idempotent.
  void close();

  std::uint64_t events_written() const;
  std::size_t partitions() const { return files_.size(); }
  const std::string& path() const { return path_; }

 private:
  // Cache-line padded: each partition thread bumps its own `written` on
  // every event, and unpadded 16-byte slots would false-share across the
  // hottest path in a parallel capture.
  struct alignas(64) Shard {
    std::FILE* file = nullptr;
    std::uint64_t written = 0;
  };
  std::string path_;
  std::vector<Shard> files_;
};

struct TraceFile {
  std::uint16_t version = 0;
  /// True when the header count was never patched (writer died) or the last
  /// record was cut short; `events` then holds every complete record.
  bool truncated = false;
  std::vector<bgp::TraceEvent> events;
};

/// Reads a trace written by BinaryTraceSink (or one shard's events, stamps
/// dropped). Throws std::runtime_error on a missing file, bad magic, or
/// unsupported (newer-major) layout.
TraceFile read_trace_file(const std::string& path);

/// One shard with its merge stamps (orders[i] belongs to events[i]).
struct TraceShardFile {
  std::uint16_t version = 0;
  bool truncated = false;
  std::vector<bgp::TraceEvent> events;
  std::vector<bgp::TraceOrder> orders;
};

/// Reads a BGTR v2 shard, tolerating truncation like read_trace_file.
/// Throws on a missing file, bad magic, or a pre-shard (v1) version.
TraceShardFile read_trace_shard(const std::string& path);

/// Parsed "BGTM" manifest; shard paths are resolved relative to the
/// manifest's directory.
struct TraceManifest {
  std::uint16_t version = 0;
  std::vector<std::string> shard_paths;
};

/// Reads a manifest written by ShardedTraceWriter. Throws on a missing
/// file, bad magic, or unsupported version.
TraceManifest read_trace_manifest(const std::string& path);

/// Reads every shard named by the manifest at `path` and k-way merges them
/// by (epoch, at, key, emit) into the serial event order. `truncated` is
/// set if any shard was truncated (the merge then covers the surviving
/// records).
TraceFile read_merged_trace(const std::string& manifest_path);

/// Merges the shards behind `manifest_path` and writes the result as a
/// plain v1 trace at `out_path` -- byte-identical to a serial capture of
/// the same run. Returns the number of events written.
std::uint64_t write_merged_trace(const std::string& manifest_path,
                                 const std::string& out_path);

/// Loads either a plain/v2 BGTR file or, transparently, a BGTM manifest
/// (merging its shards). This is what the inspection tooling uses so every
/// subcommand accepts both capture modes.
TraceFile load_trace_any(const std::string& path);

}  // namespace bgpsim::obs
