#include "obs/stats.hpp"

#include <iomanip>
#include <sstream>

namespace bgpsim::obs {

void StatsSink::on_event(const bgp::TraceEvent& event) {
  using Kind = bgp::TraceEvent::Kind;
  ++counts_[static_cast<std::size_t>(event.kind)];
  if (total_ == 0) first_at_ = event.at;
  last_at_ = event.at;
  ++total_;

  switch (event.kind) {
    case Kind::kBatchStarted:
      batch_open_[event.router] = event.at;
      break;
    case Kind::kBatchProcessed: {
      batch_sizes_.add(static_cast<double>(event.batch_size));
      const auto it = batch_open_.find(event.router);
      if (it != batch_open_.end()) {
        processing_delay_s_.add((event.at - it->second).to_seconds());
        batch_open_.erase(it);
      }
      break;
    }
    case Kind::kMraiStarted:
      mrai_open_[{event.router, event.peer}] = event.at;
      break;
    case Kind::kMraiExpired: {
      const auto it = mrai_open_.find({event.router, event.peer});
      if (it != mrai_open_.end()) {
        mrai_round_s_.add((event.at - it->second).to_seconds());
        mrai_open_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

std::string StatsSink::report() const {
  std::ostringstream os;
  os << "events: " << total_;
  if (total_ > 0) {
    os << "  span: [" << first_at_.to_seconds() << "s, " << last_at_.to_seconds() << "s]";
  }
  os << "\n";
  for (std::size_t k = 0; k < bgp::TraceEvent::kNumKinds; ++k) {
    if (counts_[k] == 0) continue;
    os << "  " << std::setw(12) << counts_[k] << "  "
       << bgp::to_string(static_cast<bgp::TraceEvent::Kind>(k)) << "\n";
  }
  const auto hist = [&os](const char* title, const LogHistogram& h) {
    if (h.empty()) return;
    os << title << ": n=" << h.total() << " mean=" << h.mean() << " p50<=" << h.quantile(0.5)
       << " p99<=" << h.quantile(0.99) << " max=" << h.max_seen() << "\n";
  };
  hist("batch size", batch_sizes_);
  hist("processing delay (s)", processing_delay_s_);
  hist("mrai round (s)", mrai_round_s_);
  return std::move(os).str();
}

}  // namespace bgpsim::obs
