#include "obs/export.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

namespace bgpsim::obs {

namespace {

double to_us(sim::SimTime t) { return static_cast<double>(t.ns()) / 1000.0; }

// Emits a double without trailing-zero noise but with enough precision to
// keep nanosecond timestamps distinct.
std::string num(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return std::move(os).str();
}

}  // namespace

void write_jsonl(const std::vector<bgp::TraceEvent>& events, std::ostream& os) {
  for (const auto& e : events) {
    os << "{\"t_ns\":" << e.at.ns() << ",\"kind\":\"" << bgp::to_string(e.kind)
       << "\",\"router\":" << e.router << ",\"peer\":" << e.peer
       << ",\"prefix\":" << e.prefix << ",\"withdraw\":" << (e.withdraw ? "true" : "false")
       << ",\"batch_size\":" << e.batch_size << ",\"path_len\":" << e.path_len << "}\n";
  }
}

void write_perfetto(const std::vector<bgp::TraceEvent>& events, std::ostream& os,
                    const PerfettoOptions& opts) {
  using Kind = bgp::TraceEvent::Kind;

  const double end_us = events.empty() ? 0.0 : to_us(events.back().at);

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };

  // Track metadata: one process per router (collected as events stream by),
  // a "cpu" thread per router, and one MRAI thread per (router, peer) pair.
  std::map<bgp::NodeId, bool> seen_router;
  std::map<std::pair<bgp::NodeId, bgp::NodeId>, bool> seen_mrai_track;
  const auto ensure_router = [&](bgp::NodeId r) {
    if (seen_router[r]) return;
    seen_router[r] = true;
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(r) +
         ",\"args\":{\"name\":\"router " + std::to_string(r) + "\"}}");
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(r) +
         ",\"tid\":0,\"args\":{\"name\":\"cpu\"}}");
  };
  const auto ensure_mrai_track = [&](bgp::NodeId r, bgp::NodeId peer) {
    const auto key = std::make_pair(r, peer);
    if (seen_mrai_track[key]) return;
    seen_mrai_track[key] = true;
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(r) +
         ",\"tid\":" + std::to_string(peer + 1) + ",\"args\":{\"name\":\"mrai->" +
         std::to_string(peer) + "\"}}");
  };

  // Open spans awaiting their closing event.
  std::map<std::pair<bgp::NodeId, bgp::NodeId>, double> mrai_open;  // -> start us
  std::map<bgp::NodeId, std::pair<double, std::size_t>> batch_open;  // -> start us, size

  const auto emit_mrai_span = [&](bgp::NodeId r, bgp::NodeId peer, double start,
                                  double end) {
    ensure_mrai_track(r, peer);
    emit("{\"ph\":\"X\",\"cat\":\"mrai\",\"name\":\"mrai\",\"pid\":" + std::to_string(r) +
         ",\"tid\":" + std::to_string(peer + 1) + ",\"ts\":" + num(start) +
         ",\"dur\":" + num(std::max(end - start, 0.0)) + "}");
  };
  const auto emit_batch_span = [&](bgp::NodeId r, double start, double end,
                                   std::size_t size) {
    emit("{\"ph\":\"X\",\"cat\":\"batch\",\"name\":\"batch\",\"pid\":" + std::to_string(r) +
         ",\"tid\":0,\"ts\":" + num(start) + ",\"dur\":" + num(std::max(end - start, 0.0)) +
         ",\"args\":{\"size\":" + std::to_string(size) + "}}");
  };

  for (const auto& e : events) {
    ensure_router(e.router);
    switch (e.kind) {
      case Kind::kMraiStarted: {
        const auto key = std::make_pair(e.router, e.peer);
        const auto it = mrai_open.find(key);
        if (it != mrai_open.end()) {  // restart: close the old span here
          emit_mrai_span(e.router, e.peer, it->second, to_us(e.at));
        }
        mrai_open[key] = to_us(e.at);
        break;
      }
      case Kind::kMraiExpired: {
        const auto key = std::make_pair(e.router, e.peer);
        const auto it = mrai_open.find(key);
        if (it != mrai_open.end()) {
          emit_mrai_span(e.router, e.peer, it->second, to_us(e.at));
          mrai_open.erase(it);
        }
        break;
      }
      case Kind::kBatchStarted:
        batch_open[e.router] = {to_us(e.at), e.batch_size};
        break;
      case Kind::kBatchProcessed: {
        const auto it = batch_open.find(e.router);
        if (it != batch_open.end()) {
          emit_batch_span(e.router, it->second.first, to_us(e.at), e.batch_size);
          batch_open.erase(it);
        }
        break;
      }
      default: {
        std::string args = "{";
        if (e.kind == Kind::kUpdateSent || e.kind == Kind::kUpdateReceived) {
          args += "\"peer\":" + std::to_string(e.peer) +
                  ",\"prefix\":" + std::to_string(e.prefix) +
                  ",\"withdraw\":" + (e.withdraw ? std::string{"true"} : std::string{"false"}) +
                  ",\"path_len\":" + std::to_string(e.path_len);
        } else if (e.kind == Kind::kRibChanged || e.kind == Kind::kOriginated ||
                   e.kind == Kind::kRouteSuppressed || e.kind == Kind::kRouteReused) {
          args += "\"prefix\":" + std::to_string(e.prefix);
        } else if (e.kind == Kind::kPeerDown || e.kind == Kind::kSessionEstablished) {
          args += "\"peer\":" + std::to_string(e.peer);
        }
        args += "}";
        emit("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"bgp\",\"name\":\"" +
             std::string{bgp::to_string(e.kind)} + "\",\"pid\":" + std::to_string(e.router) +
             ",\"tid\":0,\"ts\":" + num(to_us(e.at)) + ",\"args\":" + args + "}");
        break;
      }
    }
  }

  // Close spans left open (truncated trace or MRAI running at quiescence).
  for (const auto& [key, start] : mrai_open) {
    emit_mrai_span(key.first, key.second, start, std::max(end_us, start));
  }
  for (const auto& [r, open] : batch_open) {
    emit_batch_span(r, open.first, std::max(end_us, open.first), open.second);
  }

  if (opts.telemetry != nullptr) {
    const auto& t = *opts.telemetry;
    const std::string net_pid = std::to_string(t.n_routers);
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + net_pid +
         ",\"args\":{\"name\":\"network\"}}");
    for (std::size_t s = 0; s < t.samples(); ++s) {
      const double ts = t.times_s[s] * 1e6;
      emit("{\"ph\":\"C\",\"pid\":" + net_pid + ",\"name\":\"overloaded\",\"ts\":" + num(ts) +
           ",\"args\":{\"routers\":" + std::to_string(t.overloaded[s]) + "}}");
      emit("{\"ph\":\"C\",\"pid\":" + net_pid + ",\"name\":\"max_queue\",\"ts\":" + num(ts) +
           ",\"args\":{\"depth\":" + std::to_string(t.max_queue[s]) + "}}");
      if (!t.per_router) continue;
      for (bgp::NodeId r = 0; r < t.n_routers; ++r) {
        const std::size_t i = s * t.n_routers + r;
        emit("{\"ph\":\"C\",\"pid\":" + std::to_string(r) +
             ",\"name\":\"unfinished_work_s\",\"ts\":" + num(ts) + ",\"args\":{\"s\":" +
             num(t.unfinished_work_s[i]) + "}}");
        emit("{\"ph\":\"C\",\"pid\":" + std::to_string(r) + ",\"name\":\"queue\",\"ts\":" +
             num(ts) + ",\"args\":{\"depth\":" + std::to_string(t.queue_depth[i]) + "}}");
      }
    }
    if (t.has_partitions()) {
      const auto& p = t.partitions;
      const std::string part_pid = std::to_string(t.n_routers + 1);
      emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + part_pid +
           ",\"args\":{\"name\":\"partitions\"}}");
      for (std::size_t q = 0; q < p.partitions; ++q) {
        emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + part_pid +
             ",\"tid\":" + std::to_string(q) + ",\"args\":{\"name\":\"partition " +
             std::to_string(q) + "\"}}");
      }
      for (std::size_t w = 0; w < p.windows(); ++w) {
        const double start = p.window_start_s[w] * 1e6;
        const double dur = std::max((p.window_end_s[w] - p.window_start_s[w]) * 1e6, 0.0);
        for (std::size_t q = 0; q < p.partitions; ++q) {
          const std::size_t i = w * p.partitions + q;
          emit("{\"ph\":\"X\",\"cat\":\"window\",\"name\":\"window\",\"pid\":" + part_pid +
               ",\"tid\":" + std::to_string(q) + ",\"ts\":" + num(start) +
               ",\"dur\":" + num(dur) + ",\"args\":{\"busy_s\":" + num(p.busy_s[i]) +
               ",\"executed\":" + std::to_string(p.executed[i]) +
               ",\"mailbox_msgs\":" + std::to_string(p.mailbox_msgs[i]) +
               ",\"mailbox_bytes\":" + std::to_string(p.mailbox_bytes[i]) +
               ",\"reinterned\":" + std::to_string(p.reinterned[i]) + "}}");
        }
      }
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace bgpsim::obs
