#include "bgp/path_table.hpp"

#include <algorithm>

namespace bgpsim::bgp {

namespace {
constexpr std::size_t kInitialBuckets = 256;  // power of two
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

PathTable::PathTable() {
  slots_.push_back(Slot{0, 0, hash_hops({})});
  index_.assign(kInitialBuckets, kEmptyBucket);
  index_mask_ = kInitialBuckets - 1;
  index_[slots_[0].hash & index_mask_] = kEmptyPathId;
}

std::uint64_t PathTable::hash_hops(std::span<const AsId> hops) {
  // FNV-1a over the hop words; good enough dispersion for power-of-two
  // bucket counts and trivially portable.
  std::uint64_t h = kFnvOffset;
  for (const AsId as : hops) {
    h ^= as;
    h *= kFnvPrime;
  }
  return h;
}

PathId PathTable::find_or_intern(std::span<const AsId> hops, std::uint64_t h) {
  std::size_t b = h & index_mask_;
  while (index_[b] != kEmptyBucket) {
    const PathId cand = index_[b];
    const Slot& s = slots_[cand];
    if (s.hash == h && s.len == hops.size() &&
        std::equal(hops.begin(), hops.end(), arena_.begin() + s.offset)) {
      return cand;
    }
    b = (b + 1) & index_mask_;
  }
  const auto id = static_cast<PathId>(slots_.size());
  Slot s;
  s.offset = static_cast<std::uint32_t>(arena_.size());
  s.len = static_cast<std::uint32_t>(hops.size());
  s.hash = h;
  arena_.insert(arena_.end(), hops.begin(), hops.end());
  slots_.push_back(s);
  index_[b] = id;
  // Keep the open-addressed index under ~70% load.
  if (slots_.size() * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  return id;
}

void PathTable::rehash(std::size_t new_buckets) {
  index_.assign(new_buckets, kEmptyBucket);
  index_mask_ = new_buckets - 1;
  for (PathId id = 0; id < slots_.size(); ++id) {
    std::size_t b = slots_[id].hash & index_mask_;
    while (index_[b] != kEmptyBucket) b = (b + 1) & index_mask_;
    index_[b] = id;
  }
}

PathId PathTable::intern(std::span<const AsId> hops) {
  return find_or_intern(hops, hash_hops(hops));
}

PathId PathTable::prepend(PathId base, AsId head) {
  // Fast path: hash incrementally and look up without building the hop
  // sequence; only a miss materializes the new path (into the arena).
  const Slot& bs = slots_[base];
  std::uint64_t h = kFnvOffset;
  h ^= head;
  h *= kFnvPrime;
  for (std::uint32_t i = 0; i < bs.len; ++i) {
    h ^= arena_[bs.offset + i];
    h *= kFnvPrime;
  }
  std::size_t b = h & index_mask_;
  while (index_[b] != kEmptyBucket) {
    const PathId cand = index_[b];
    const Slot& s = slots_[cand];
    if (s.hash == h && s.len == bs.len + 1 && arena_[s.offset] == head &&
        std::equal(arena_.begin() + s.offset + 1, arena_.begin() + s.offset + s.len,
                   arena_.begin() + slots_[base].offset)) {
      return cand;
    }
    b = (b + 1) & index_mask_;
  }
  // Miss: append head + base hops to the arena. Copy via indices, not the
  // span from hops(base) -- insert() may reallocate the arena.
  const auto id = static_cast<PathId>(slots_.size());
  Slot s;
  s.offset = static_cast<std::uint32_t>(arena_.size());
  s.len = bs.len + 1;
  s.hash = h;
  const std::uint32_t base_off = bs.offset;
  const std::uint32_t base_len = bs.len;
  // Grow geometrically: an exact-size reserve here would reallocate (and
  // copy) the whole arena on every miss.
  if (arena_.capacity() < arena_.size() + base_len + 1) {
    arena_.reserve(std::max(arena_.size() + base_len + 1, arena_.capacity() * 2));
  }
  arena_.push_back(head);
  for (std::uint32_t i = 0; i < base_len; ++i) arena_.push_back(arena_[base_off + i]);
  slots_.push_back(s);
  index_[b] = id;
  if (slots_.size() * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  return id;
}

bool PathTable::contains(PathId id, AsId as) const {
  const auto h = hops(id);
  for (const AsId hop : h) {
    if (hop == as) return true;
  }
  return false;
}

AsPath PathTable::as_path(PathId id) const {
  const auto h = hops(id);
  return AsPath{std::vector<AsId>{h.begin(), h.end()}};
}

std::size_t PathTable::memory_bytes() const {
  return arena_.capacity() * sizeof(AsId) + slots_.capacity() * sizeof(Slot) +
         index_.capacity() * sizeof(std::uint32_t);
}

void PathTable::clear() {
  arena_.clear();
  slots_.clear();
  slots_.push_back(Slot{0, 0, hash_hops({})});
  index_.assign(kInitialBuckets, kEmptyBucket);
  index_mask_ = kInitialBuckets - 1;
  index_[slots_[0].hash & index_mask_] = kEmptyPathId;
}

}  // namespace bgpsim::bgp
