#include "bgp/path_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bgpsim::bgp {

namespace {
constexpr std::size_t kInitialBuckets = 256;  // power of two
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::size_t buckets_for(std::size_t slots) {
  // Smallest power-of-two bucket count keeping the open-addressed index
  // under its ~70% growth trigger (see find_or_intern).
  std::size_t b = kInitialBuckets;
  while (slots * 10 >= b * 7) b *= 2;
  return b;
}
}  // namespace

PathTable::PathTable(std::uint32_t chunk_hop_bits, std::uint32_t max_chunks) {
  // Packed (chunk, offset) addressing needs both halves to fit one 32-bit
  // word; clamp rather than trust the caller.
  chunk_bits_ = std::clamp<std::uint32_t>(chunk_hop_bits, 1, 31);
  chunk_hops_ = 1u << chunk_bits_;
  chunk_mask_ = chunk_hops_ - 1;
  const auto addressable =
      static_cast<std::uint32_t>(std::uint64_t{1} << (32 - chunk_bits_));
  max_chunks_ = max_chunks == 0 ? addressable : std::min(max_chunks, addressable);

  slots_.push_back(Slot{0, 0, hash_hops({})});
  index_.assign(kInitialBuckets, kEmptyBucket);
  index_mask_ = kInitialBuckets - 1;
  index_[slots_[0].hash & index_mask_] = kEmptyPathId;
}

std::uint64_t PathTable::hash_hops(std::span<const AsId> hops) {
  // FNV-1a over the hop words; good enough dispersion for power-of-two
  // bucket counts and trivially portable.
  std::uint64_t h = kFnvOffset;
  for (const AsId as : hops) {
    h ^= as;
    h *= kFnvPrime;
  }
  return h;
}

AsId* PathTable::alloc_hops(std::size_t len, std::uint32_t& packed) {
  if (len > chunk_hops_) {
    throw std::length_error{"PathTable: path of " + std::to_string(len) +
                            " hops exceeds the " + std::to_string(chunk_hops_) +
                            "-hop block size"};
  }
  if (chunks_.empty() || chunk_used_ + len > chunk_hops_) {
    // A path never straddles blocks (hops() hands out one contiguous
    // span), so the current block's tail is retired unused.
    if (chunks_.size() >= max_chunks_) {
      throw std::length_error{
          "PathTable: hop arena full: " + std::to_string(chunks_.size()) + "/" +
          std::to_string(max_chunks_) + " blocks of " + std::to_string(chunk_hops_) +
          " hops in use, " + std::to_string(slots_.size()) +
          " distinct paths interned (" + std::to_string(total_hops_) +
          " hops); the packed 32-bit (chunk, offset) addressing admits no more. "
          "Rebuild with -DBGPSIM_DEEP_COPY_PATHS=ON to trade memory for "
          "unbounded per-route path storage, or raise chunk_hop_bits"};
    }
    chunks_.emplace_back(new AsId[chunk_hops_]);  // uninitialized storage
    chunk_used_ = 0;
  }
  packed = (static_cast<std::uint32_t>(chunks_.size() - 1) << chunk_bits_) | chunk_used_;
  AsId* dst = chunks_.back().get() + chunk_used_;
  chunk_used_ += static_cast<std::uint32_t>(len);
  total_hops_ += len;
  return dst;
}

PathId PathTable::find_or_intern(std::span<const AsId> hops, std::uint64_t h) {
  std::size_t b = h & index_mask_;
  while (index_[b] != kEmptyBucket) {
    const PathId cand = index_[b];
    const Slot& s = slots_[cand];
    if (s.hash == h && s.len == hops.size() &&
        std::equal(hops.begin(), hops.end(), hop_ptr(s))) {
      return cand;
    }
    b = (b + 1) & index_mask_;
  }
  if (slots_.size() >= kInvalidPathId) {
    throw std::length_error{
        "PathTable: id space exhausted: " + std::to_string(slots_.size()) +
        " distinct paths interned (cap 2^32 - 1), " + std::to_string(chunks_.size()) +
        "/" + std::to_string(max_chunks_) +
        " hop blocks in use. Rebuild with -DBGPSIM_DEEP_COPY_PATHS=ON to bypass "
        "interning entirely"};
  }
  const auto id = static_cast<PathId>(slots_.size());
  Slot s;
  s.len = static_cast<std::uint32_t>(hops.size());
  s.hash = h;
  // Safe even when `hops` aliases this table's own arena: blocks never
  // move, so the source span stays valid across the allocation.
  AsId* dst = alloc_hops(hops.size(), s.offset);
  std::copy(hops.begin(), hops.end(), dst);
  slots_.push_back(s);
  index_[b] = id;
  // Keep the open-addressed index under ~70% load.
  if (slots_.size() * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  return id;
}

void PathTable::rehash(std::size_t new_buckets) {
  index_.assign(new_buckets, kEmptyBucket);
  index_mask_ = new_buckets - 1;
  for (PathId id = 0; id < slots_.size(); ++id) {
    std::size_t b = slots_[id].hash & index_mask_;
    while (index_[b] != kEmptyBucket) b = (b + 1) & index_mask_;
    index_[b] = id;
  }
}

PathId PathTable::intern(std::span<const AsId> hops) {
  return find_or_intern(hops, hash_hops(hops));
}

PathId PathTable::prepend(PathId base, AsId head) {
  // Fast path: hash incrementally and look up without building the hop
  // sequence; only a miss materializes the new path (into the arena).
  // Copy the base slot -- slots_ may push_back below -- but the base hops
  // themselves are stable: blocks never move.
  const Slot bs = slots_[base];
  const AsId* base_hops = hop_ptr(bs);
  std::uint64_t h = kFnvOffset;
  h ^= head;
  h *= kFnvPrime;
  for (std::uint32_t i = 0; i < bs.len; ++i) {
    h ^= base_hops[i];
    h *= kFnvPrime;
  }
  std::size_t b = h & index_mask_;
  while (index_[b] != kEmptyBucket) {
    const PathId cand = index_[b];
    const Slot& s = slots_[cand];
    if (s.hash == h && s.len == bs.len + 1) {
      const AsId* cand_hops = hop_ptr(s);
      if (cand_hops[0] == head &&
          std::equal(cand_hops + 1, cand_hops + s.len, base_hops)) {
        return cand;
      }
    }
    b = (b + 1) & index_mask_;
  }
  if (slots_.size() >= kInvalidPathId) {
    throw std::length_error{
        "PathTable: id space exhausted: " + std::to_string(slots_.size()) +
        " distinct paths interned (cap 2^32 - 1), " + std::to_string(chunks_.size()) +
        "/" + std::to_string(max_chunks_) +
        " hop blocks in use. Rebuild with -DBGPSIM_DEEP_COPY_PATHS=ON to bypass "
        "interning entirely"};
  }
  const auto id = static_cast<PathId>(slots_.size());
  Slot s;
  s.len = bs.len + 1;
  s.hash = h;
  AsId* dst = alloc_hops(s.len, s.offset);
  dst[0] = head;
  std::copy(base_hops, base_hops + bs.len, dst + 1);
  slots_.push_back(s);
  index_[b] = id;
  if (slots_.size() * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  return id;
}

bool PathTable::contains(PathId id, AsId as) const {
  const auto h = hops(id);
  for (const AsId hop : h) {
    if (hop == as) return true;
  }
  return false;
}

AsPath PathTable::as_path(PathId id) const {
  const auto h = hops(id);
  return AsPath{std::vector<AsId>{h.begin(), h.end()}};
}

std::size_t PathTable::memory_bytes() const {
  // Blocks are charged whole: a partially filled block still costs its
  // full footprint, which is what RSS sees.
  return chunks_.size() * (static_cast<std::size_t>(chunk_hops_) * sizeof(AsId)) +
         chunks_.capacity() * sizeof(chunks_[0]) + slots_.capacity() * sizeof(Slot) +
         index_.capacity() * sizeof(std::uint32_t);
}

double PathTable::capacity_remaining() const {
  const double id_rem =
      1.0 - static_cast<double>(slots_.size()) / static_cast<double>(kInvalidPathId);
  const std::size_t hops_used =
      chunks_.empty() ? 0
                      : (chunks_.size() - 1) * static_cast<std::size_t>(chunk_hops_) +
                            chunk_used_;
  const double hop_cap =
      static_cast<double>(max_chunks_) * static_cast<double>(chunk_hops_);
  const double hop_rem = 1.0 - static_cast<double>(hops_used) / hop_cap;
  return std::max(0.0, std::min(id_rem, hop_rem));
}

void PathTable::clear() {
  chunks_.clear();  // releases every hop block
  chunk_used_ = 0;
  total_hops_ = 0;
  slots_.clear();
  slots_.push_back(Slot{0, 0, hash_hops({})});
  index_.assign(kInitialBuckets, kEmptyBucket);
  index_mask_ = kInitialBuckets - 1;
  index_[slots_[0].hash & index_mask_] = kEmptyPathId;
}

void PathTable::shrink_to_fit() {
  chunks_.shrink_to_fit();
  slots_.shrink_to_fit();
  // clear()'s index_.assign() keeps the grown bucket array (capacity is
  // reused across epochs); a shrink must both rehash the bucket count down
  // to what the surviving slots need and release the overshoot.
  const std::size_t want = buckets_for(slots_.size());
  if (want < index_.size()) rehash(want);
  index_.shrink_to_fit();
}

}  // namespace bgpsim::bgp
