// Structured event tracing.
//
// A Network can be given a TraceSink; the protocol then reports every
// interesting event (update sent/received, batch processed, Loc-RIB
// change, MRAI start/expiry, session teardown, router failure). Tracing is
// strictly pay-for-use: with no sink installed the routers skip event
// construction entirely.
//
// Sinks included: CountingSink (per-kind totals, cheap enough to leave on),
// RecordingSink (bounded in-memory log for tests/inspection) and
// StreamSink (human-readable text, optionally filtered by kind).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::bgp {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kOriginated,      ///< router installed its local prefix
    kUpdateSent,      ///< advertisement or withdrawal put on the wire
    kUpdateReceived,  ///< update delivered into the input queue
    kBatchStarted,    ///< CPU picked up a processing batch
    kBatchProcessed,  ///< CPU finished a processing batch
    kRibChanged,      ///< Loc-RIB best route changed
    kMraiStarted,     ///< MRAI timer (re)started towards a peer
    kMraiExpired,     ///< MRAI timer fired
    kPeerDown,        ///< session to a dead peer torn down
    kRouterFailed,    ///< the router itself died
    kRouterRecovered, ///< the router came back up (cold RIBs)
    kSessionEstablished,  ///< session (re)established; full table resent
    kRouteSuppressed, ///< flap damping suppressed a (peer, prefix)
    kRouteReused,     ///< flap damping released a suppressed route
    kCount,           ///< sentinel -- keep last, never emitted
  };
  /// Derived from the kCount sentinel so adding a Kind automatically grows
  /// every per-kind array (CountingSink, exporters, the binary format).
  static constexpr std::size_t kNumKinds = static_cast<std::size_t>(Kind::kCount);

  Kind kind = Kind::kOriginated;
  sim::SimTime at;
  NodeId router = 0;
  NodeId peer = 0;        ///< valid for Sent/Received/Mrai*/PeerDown
  Prefix prefix = 0;      ///< valid for Sent/Received/RibChanged/Originated
  bool withdraw = false;  ///< valid for Sent/Received
  std::size_t batch_size = 0;  ///< valid for BatchProcessed
  std::uint32_t path_len = 0;  ///< AS-path hop count (Sent/Received adverts)

  std::string to_string() const;
};

const char* to_string(TraceEvent::Kind kind);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Deterministic ordering stamp attached to every parallel-mode trace
/// event. The tuple (epoch, at, key, emit) is globally unique, independent
/// of the partition count, and sorting shard contents by it reproduces the
/// serial (K=1) emission order exactly:
///   epoch  bumped at every harness entry point (start / fail / recover /
///          each run phase) -- counts only main-thread calls, so it is
///          K-independent and dominates the comparison,
///   at     the event's simulation timestamp,
///   key    the 40-bit (lane, seq) scheduler key of the executing event
///          (a pure function of history), or a global injection sequence
///          for events emitted outside any scheduled callback,
///   emit   emission index within one (at, key) callback.
struct TraceOrder {
  std::uint32_t epoch = 0;
  std::uint64_t key = 0;
  std::uint32_t emit = 0;
};

/// Parallel-mode trace receiver: one on_event stream per partition, each
/// called only from that partition's worker thread during a window (and
/// from the barrier thread between windows), so implementations need no
/// locking as long as per-partition state is kept separate.
class ShardedTraceSink {
 public:
  virtual ~ShardedTraceSink() = default;
  virtual void on_event(std::size_t partition, const TraceEvent& event,
                        const TraceOrder& order) = 0;
};

/// Counts events per kind.
class CountingSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    ++counts_[static_cast<std::size_t>(event.kind)];
  }

  std::uint64_t count(TraceEvent::Kind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total() const;
  void reset() { counts_.fill(0); }

 private:
  std::array<std::uint64_t, TraceEvent::kNumKinds> counts_{};
};

/// Records events in memory, up to a cap. Two overflow policies:
/// kKeepOldest (default) stores the first max_events and counts the rest;
/// kDropOldest overwrites the oldest stored event ring-buffer style, so a
/// bounded sink on a long run keeps the convergence *tail* -- usually the
/// interesting part -- instead of the cold start.
class RecordingSink final : public TraceSink {
 public:
  enum class Overflow : std::uint8_t { kKeepOldest, kDropOldest };

  explicit RecordingSink(std::size_t max_events = 100'000,
                         Overflow policy = Overflow::kKeepOldest)
      : max_events_{max_events}, policy_{policy} {}

  void on_event(const TraceEvent& event) override {
    if (events_.size() < max_events_) {
      events_.push_back(event);
      return;
    }
    ++overflow_;
    if (policy_ == Overflow::kDropOldest && max_events_ > 0) {
      events_[next_] = event;
      next_ = (next_ + 1) % max_events_;
    }
  }

  /// Raw storage. Chronological under kKeepOldest; under kDropOldest the
  /// ring may be rotated once it has wrapped -- use snapshot() for ordered
  /// access.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Stored events in chronological order, whatever the policy.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(next_), events_.end());
    out.insert(out.end(), events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
  }

  std::uint64_t overflow() const { return overflow_; }
  Overflow policy() const { return policy_; }
  void clear() {
    events_.clear();
    next_ = 0;
    overflow_ = 0;
  }

 private:
  std::size_t max_events_;
  Overflow policy_;
  std::size_t next_ = 0;  ///< ring write position once full (kDropOldest)
  std::vector<TraceEvent> events_;
  std::uint64_t overflow_ = 0;
};

/// Writes one line per event to a stream; optionally only a single kind.
class StreamSink final : public TraceSink {
 public:
  explicit StreamSink(std::ostream& os, std::optional<TraceEvent::Kind> only = std::nullopt)
      : os_{os}, only_{only} {}

  void on_event(const TraceEvent& event) override;

 private:
  std::ostream& os_;
  std::optional<TraceEvent::Kind> only_;
};

/// Fans an event out to several sinks.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_{std::move(sinks)} {}

  void on_event(const TraceEvent& event) override {
    for (auto* s : sinks_) s->on_event(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace bgpsim::bgp
