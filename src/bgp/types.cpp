#include "bgp/types.hpp"

namespace bgpsim::bgp {

std::string AsPath::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(hops_[i]);
  }
  out += ']';
  return out;
}

int relation_rank(PeerRelation rel) {
  switch (rel) {
    case PeerRelation::kCustomer:
      return 0;
    case PeerRelation::kNone:
    case PeerRelation::kPeer:
      return 1;
    case PeerRelation::kProvider:
      return 2;
  }
  return 1;
}

bool better_route(const RouteEntry& a, const RouteEntry& b) {
  if (a.local != b.local) return a.local;
  const int ra = relation_rank(a.learned_rel);
  const int rb = relation_rank(b.learned_rel);
  if (ra != rb) return ra < rb;
  if (a.as_hops() != b.as_hops()) return a.as_hops() < b.as_hops();
  if (a.ebgp_learned != b.ebgp_learned) return a.ebgp_learned;
  return a.learned_from < b.learned_from;
}

}  // namespace bgpsim::bgp
