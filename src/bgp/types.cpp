#include "bgp/types.hpp"

namespace bgpsim::bgp {

std::string AsPath::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(hops_[i]);
  }
  out += ']';
  return out;
}

int relation_rank(PeerRelation rel) {
  switch (rel) {
    case PeerRelation::kCustomer:
      return 0;
    case PeerRelation::kNone:
    case PeerRelation::kPeer:
      return 1;
    case PeerRelation::kProvider:
      return 2;
  }
  return 1;
}

bool better_route(const RouteEntry& a, const RouteEntry& b) {
  return better_route_by(a, b, [](const RouteEntry& e) { return e.path.length(); });
}

}  // namespace bgpsim::bgp
