// Core BGP value types: AS paths, routes, update messages.
//
// The model is a path-vector protocol over AS-level paths: one prefix per
// AS (the prefix id *is* the origin AS id), shortest-AS-path route
// selection, no policy (paper section 3.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace bgpsim::bgp {

using NodeId = topo::NodeId;  ///< router index within a Network
using AsId = std::uint32_t;
using Prefix = std::uint32_t;  ///< one prefix per AS; equals the origin AsId

/// Handle to a path interned in a PathTable (see path_table.hpp). Value 0
/// is always the canonical empty path.
using PathId = std::uint32_t;
inline constexpr PathId kEmptyPathId = 0;

/// An AS-level path as carried in UPDATE messages. Empty paths are valid:
/// they appear on iBGP advertisements of locally-originated prefixes.
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<AsId> hops) : hops_{std::move(hops)} {}

  std::size_t length() const { return hops_.size(); }
  bool empty() const { return hops_.empty(); }

  bool contains(AsId as) const {
    return std::find(hops_.begin(), hops_.end(), as) != hops_.end();
  }

  /// Returns a copy with `as` prepended (eBGP export).
  AsPath prepended(AsId as) const {
    std::vector<AsId> h;
    h.reserve(hops_.size() + 1);
    h.push_back(as);
    h.insert(h.end(), hops_.begin(), hops_.end());
    return AsPath{std::move(h)};
  }

  const std::vector<AsId>& hops() const { return hops_; }

  bool operator==(const AsPath&) const = default;

  std::string to_string() const;

 private:
  std::vector<AsId> hops_;
};

/// Business relationship of a BGP session, from the local router's point of
/// view ("the peer is my ..."). kNone = policy-free routing (the paper's
/// setup); the others enable Gao-Rexford policy routing: prefer
/// customer-learned routes, export peer/provider-learned routes only to
/// customers (valley-free paths).
enum class PeerRelation : std::uint8_t { kNone, kCustomer, kPeer, kProvider };

/// Gao-Rexford preference rank (lower preferred): customer-learned routes
/// first, then peer-learned (and policy-free), then provider-learned.
int relation_rank(PeerRelation rel);

/// A Loc-RIB entry: the currently selected best route for a prefix.
struct RouteEntry {
  AsPath path;             ///< as received (no local-AS prepend)
  NodeId learned_from = 0; ///< peer the route came from (unused when local)
  bool ebgp_learned = false;
  bool local = false;      ///< locally originated
  PeerRelation learned_rel = PeerRelation::kNone;  ///< relation of the sender

  std::size_t as_hops() const { return local ? 0 : path.length(); }

  bool operator==(const RouteEntry&) const = default;
};

/// Returns true if `a` is strictly preferred over `b`: local origin first,
/// then the Gao-Rexford relation rank (a no-op in policy-free networks),
/// then shortest AS path, then eBGP over iBGP, then lowest sender id
/// (deterministic tie-break).
bool better_route(const RouteEntry& a, const RouteEntry& b);

/// The decision-process comparator, parameterized over how a candidate's
/// AS-hop count is obtained. better_route() and the router's internal
/// (PathRef-holding) RIB comparison both instantiate this, so there is
/// exactly one definition of the route-preference order.
template <typename E, typename HopsFn>
bool better_route_by(const E& a, const E& b, HopsFn&& hops) {
  if (a.local != b.local) return a.local;
  const int ra = relation_rank(a.learned_rel);
  const int rb = relation_rank(b.learned_rel);
  if (ra != rb) return ra < rb;
  const std::size_t ha = a.local ? 0 : hops(a);
  const std::size_t hb = b.local ? 0 : hops(b);
  if (ha != hb) return ha < hb;
  if (a.ebgp_learned != b.ebgp_learned) return a.ebgp_learned;
  return a.learned_from < b.learned_from;
}

/// The path representation carried by UPDATE messages and stored in RIB
/// slots: an interned PathId by default, or an owning AsPath when built
/// with -DBGPSIM_DEEP_COPY_PATHS=ON (the pre-interning baseline, kept for
/// cross-check tests). Manipulated via the path_* helpers in
/// path_table.hpp; a default-constructed PathRef is the empty path in both
/// modes.
#ifdef BGPSIM_DEEP_COPY_PATHS
using PathRef = AsPath;
#else
using PathRef = PathId;
#endif

struct UpdateMessage {
  NodeId from = 0;
  NodeId to = 0;
  Prefix prefix = 0;
  bool withdraw = false;
  PathRef path{};  ///< meaningful only when !withdraw
};

}  // namespace bgpsim::bgp
