// Hash-consed AS-path storage.
//
// Every distinct AS path in a simulation is stored exactly once in a
// PathTable arena; routers, RIBs and in-flight messages hold 32-bit PathId
// handles instead of owning vector<AsId> copies. Interning makes path
// equality an integer compare and collapses the O(n^2 * path-length) heap
// footprint of deep-copied RIBs to O(distinct paths) -- the memory wall
// identified by the distributed-BGP-simulation feasibility studies
// (arXiv:1209.0943) long before CPU becomes the constraint.
//
// Hop storage is a *chunked* arena: paths live contiguously inside
// fixed-size blocks (1 MiB of AsIds by default) and a new block is started
// when the current one cannot hold the next path whole. The arena therefore
// never reallocates: every span returned by hops() is stable for the
// table's lifetime, interning a span that aliases the table's own storage
// is well-defined, and growth costs one block -- not a GB-scale copy --
// at production scale. Slots address hops as (chunk, offset) packed into
// one 32-bit word, which caps the arena at 2^32 stored hops; growth past
// the cap throws instead of silently wrapping the packed offset.
//
// Lifetime: a PathTable lives inside one Network and is reclaimed wholesale
// with it (epoch reclamation -- paths are never freed individually; a
// simulation run's working set of distinct paths is small and stable).
// clear() resets the table to its initial state for explicit reuse and
// releases every hop block; epoch compaction (Network::compact_paths)
// rebuilds into a fresh table and retires the old table's blocks wholesale.
//
// Building with -DBGPSIM_DEEP_COPY_PATHS=ON switches the protocol back to
// the original deep-copied AsPath storage. The flag exists so tests can
// cross-check that interning changes nothing about protocol behavior; the
// PathRef aliases below let one protocol implementation serve both modes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/types.hpp"

namespace bgpsim::bgp {

/// Sentinel that is never handed out as a live PathId (the open-addressed
/// index reserves it as its empty-bucket marker, and intern() fails loudly
/// before ids reach it). Remap/memo tables use it as "not seen yet".
inline constexpr PathId kInvalidPathId = 0xFFFFFFFFu;

// PathId / kEmptyPathId / PathRef live in types.hpp (UpdateMessage carries
// a PathRef). Ids are dense, starting at 0 for the empty path; equality of
// ids is equality of paths (hash-consing invariant: every PathId in
// circulation came from intern()/prepend()).
class PathTable {
 public:
  /// Default chunk geometry: 2^18 hops = 1 MiB of AsIds per block.
  static constexpr std::uint32_t kDefaultChunkHopBits = 18;

  /// `chunk_hop_bits` sets the block size (2^bits hops per block) and
  /// `max_chunks` the block-count cap; 0 derives the largest cap the packed
  /// 32-bit (chunk, offset) addressing allows, i.e. 2^32 total hops. Tests
  /// shrink both to exercise the boundary and cap guards cheaply.
  explicit PathTable(std::uint32_t chunk_hop_bits = kDefaultChunkHopBits,
                     std::uint32_t max_chunks = 0);

  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;
  PathTable(PathTable&&) noexcept = default;
  PathTable& operator=(PathTable&&) noexcept = default;

  /// Returns the id of the canonical copy of `hops`, interning it first if
  /// this is the first time the table sees that hop sequence. `hops` may
  /// alias this table's own storage (e.g. a span obtained from hops()):
  /// blocks never move, so the copy into the arena is well-defined.
  /// Throws std::length_error when the path exceeds one block or the table
  /// is at its structural hop/id cap (never silently wraps).
  PathId intern(std::span<const AsId> hops);
  PathId intern(const AsPath& path) {
    return intern(std::span<const AsId>{path.hops()});
  }

  /// Interns the path equal to hops(base) with `head` prepended (the eBGP
  /// export operation). O(length) only on first sight, O(1) equality after.
  PathId prepend(PathId base, AsId head);

  /// Stable for the table's lifetime (until clear() or destruction): the
  /// chunked arena never reallocates, so later intern()/prepend() calls
  /// cannot invalidate a returned span.
  std::span<const AsId> hops(PathId id) const {
    const Slot& s = slots_[id];
    return {hop_ptr(s), s.len};
  }
  std::uint32_t length(PathId id) const { return slots_[id].len; }
  bool empty(PathId id) const { return slots_[id].len == 0; }
  bool contains(PathId id, AsId as) const;
  /// Materializes an owning AsPath (introspection/test surface only).
  AsPath as_path(PathId id) const;

  /// Number of distinct paths interned (>= 1: the empty path).
  std::size_t size() const { return slots_.size(); }
  /// Total hops stored across all distinct paths.
  std::size_t arena_hops() const { return total_hops_; }
  /// Hop blocks currently allocated (lazy: a fresh table holds none).
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Hops per block (fixed at construction).
  std::uint32_t chunk_hops() const { return chunk_hops_; }
  /// Heap bytes owned by the table: full blocks (chunk-granular -- a
  /// partially filled block costs its whole footprint), the block pointer
  /// vector, slots and the hash index.
  std::size_t memory_bytes() const;

  /// Fraction [0, 1] of structural capacity still available, taking the
  /// tighter of the two hard caps (32-bit id space and the packed
  /// (chunk, offset) hop-arena addressing). The harness warns on stderr
  /// when this drops below 10% so an impending std::length_error is
  /// predictable instead of a surprise mid-sweep.
  double capacity_remaining() const;

  /// Epoch reclamation: drops every interned path except the canonical
  /// empty one and releases all hop blocks. All outstanding PathIds other
  /// than kEmptyPathId become invalid -- callers reset their RIBs alongside
  /// (run teardown).
  void clear();

  /// Trims capacity overshoot everywhere: slot/block-pointer vectors and
  /// the hash index, which is also rehashed down to the smallest bucket
  /// count the current size needs (clear() leaves the grown index in place
  /// for cheap reuse; this releases it).
  void shrink_to_fit();

 private:
  struct Slot {
    std::uint32_t offset = 0;  ///< (chunk index << chunk_hop_bits) | in-chunk offset
    std::uint32_t len = 0;
    std::uint64_t hash = 0;
  };

  /// First hop of `s`; nullptr for the empty path (which owns no storage,
  /// so no block need exist to resolve it).
  const AsId* hop_ptr(const Slot& s) const {
    if (s.len == 0) return nullptr;
    return chunks_[s.offset >> chunk_bits_].get() + (s.offset & chunk_mask_);
  }

  static std::uint64_t hash_hops(std::span<const AsId> hops);
  /// Looks `hops` (with hash `h`) up in the open-addressed index; interns
  /// and returns a fresh id on miss.
  PathId find_or_intern(std::span<const AsId> hops, std::uint64_t h);
  void rehash(std::size_t new_buckets);
  /// Reserves `len` contiguous hops (starting a new block when the current
  /// one cannot hold them whole), writes the packed (chunk, offset) address
  /// into `packed` and returns the destination. Throws std::length_error
  /// when len exceeds one block or the block cap is reached.
  AsId* alloc_hops(std::size_t len, std::uint32_t& packed);

  static constexpr std::uint32_t kEmptyBucket = kInvalidPathId;

  std::uint32_t chunk_bits_ = kDefaultChunkHopBits;
  std::uint32_t chunk_hops_ = 1u << kDefaultChunkHopBits;
  std::uint32_t chunk_mask_ = (1u << kDefaultChunkHopBits) - 1;
  std::uint32_t max_chunks_ = 1u << (32 - kDefaultChunkHopBits);
  std::vector<std::unique_ptr<AsId[]>> chunks_;  ///< fixed-size hop blocks
  std::uint32_t chunk_used_ = 0;  ///< hops used in chunks_.back()
  std::size_t total_hops_ = 0;    ///< sum of slot lens (excludes block tails)
  std::vector<Slot> slots_;       ///< PathId -> {packed offset, len, hash}
  std::vector<std::uint32_t> index_;  ///< open addressing: bucket -> PathId
  std::size_t index_mask_ = 0;
};

// --- path_* helpers: manipulate a PathRef in either build mode -------------
//
// The BGP core (RIB slots, UpdateMessage, WorkItem) stores PathRef values
// and manipulates them only through the helpers below, so the same
// protocol source compiles against interned ids (default) or deep-copied
// AsPath values (-DBGPSIM_DEEP_COPY_PATHS=ON, the pre-interning baseline
// kept for cross-check tests and the bytes/route comparison).

#ifdef BGPSIM_DEEP_COPY_PATHS

inline PathRef path_make(PathTable&, const AsPath& p) { return p; }
inline PathRef path_make(PathTable&, std::vector<AsId> hops) {
  return AsPath{std::move(hops)};
}
inline PathRef path_prepend(PathTable&, const PathRef& r, AsId head) {
  return r.prepended(head);
}
inline bool path_contains(const PathTable&, const PathRef& r, AsId as) {
  return r.contains(as);
}
inline std::size_t path_length(const PathTable&, const PathRef& r) {
  return r.length();
}
inline AsPath path_materialize(const PathTable&, const PathRef& r) { return r; }
inline PathRef path_empty() { return AsPath{}; }

#else

inline PathRef path_make(PathTable& t, const AsPath& p) { return t.intern(p); }
inline PathRef path_make(PathTable& t, std::vector<AsId> hops) {
  return t.intern(std::span<const AsId>{hops});
}
inline PathRef path_prepend(PathTable& t, PathRef r, AsId head) {
  return t.prepend(r, head);
}
inline bool path_contains(const PathTable& t, PathRef r, AsId as) {
  return t.contains(r, as);
}
inline std::size_t path_length(const PathTable& t, PathRef r) {
  return t.length(r);
}
inline AsPath path_materialize(const PathTable& t, PathRef r) {
  return t.as_path(r);
}
inline constexpr PathRef path_empty() { return kEmptyPathId; }

#endif

}  // namespace bgpsim::bgp
