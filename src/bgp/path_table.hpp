// Hash-consed AS-path storage.
//
// Every distinct AS path in a simulation is stored exactly once in a
// PathTable arena; routers, RIBs and in-flight messages hold 32-bit PathId
// handles instead of owning vector<AsId> copies. Interning makes path
// equality an integer compare and collapses the O(n^2 * path-length) heap
// footprint of deep-copied RIBs to O(distinct paths) -- the memory wall
// identified by the distributed-BGP-simulation feasibility studies
// (arXiv:1209.0943) long before CPU becomes the constraint.
//
// Lifetime: a PathTable lives inside one Network and is reclaimed wholesale
// with it (epoch reclamation -- paths are never freed individually; a
// simulation run's working set of distinct paths is small and stable).
// clear() resets the table to its initial state for explicit reuse.
//
// Building with -DBGPSIM_DEEP_COPY_PATHS=ON switches the protocol back to
// the original deep-copied AsPath storage. The flag exists so tests can
// cross-check that interning changes nothing about protocol behavior; the
// PathRef aliases below let one protocol implementation serve both modes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/types.hpp"

namespace bgpsim::bgp {

// PathId / kEmptyPathId / PathRef live in types.hpp (UpdateMessage carries
// a PathRef). Ids are dense, starting at 0 for the empty path; equality of
// ids is equality of paths (hash-consing invariant: every PathId in
// circulation came from intern()/prepend()).
class PathTable {
 public:
  PathTable();

  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;
  PathTable(PathTable&&) noexcept = default;
  PathTable& operator=(PathTable&&) noexcept = default;

  /// Returns the id of the canonical copy of `hops`, interning it first if
  /// this is the first time the table sees that hop sequence.
  PathId intern(std::span<const AsId> hops);
  PathId intern(const AsPath& path) {
    return intern(std::span<const AsId>{path.hops()});
  }

  /// Interns the path equal to hops(base) with `head` prepended (the eBGP
  /// export operation). O(length) only on first sight, O(1) equality after.
  PathId prepend(PathId base, AsId head);

  std::span<const AsId> hops(PathId id) const {
    const Slot& s = slots_[id];
    return {arena_.data() + s.offset, s.len};
  }
  std::uint32_t length(PathId id) const { return slots_[id].len; }
  bool empty(PathId id) const { return slots_[id].len == 0; }
  bool contains(PathId id, AsId as) const;
  /// Materializes an owning AsPath (introspection/test surface only).
  AsPath as_path(PathId id) const;

  /// Number of distinct paths interned (>= 1: the empty path).
  std::size_t size() const { return slots_.size(); }
  /// Total hops stored across all distinct paths.
  std::size_t arena_hops() const { return arena_.size(); }
  /// Heap bytes owned by the table (arena + slots + hash index).
  std::size_t memory_bytes() const;

  /// Epoch reclamation: drops every interned path except the canonical
  /// empty one. All outstanding PathIds other than kEmptyPathId become
  /// invalid -- callers reset their RIBs alongside (run teardown).
  void clear();

  /// Trims capacity overshoot from geometric growth (post-compaction).
  void shrink_to_fit() {
    arena_.shrink_to_fit();
    slots_.shrink_to_fit();
  }

 private:
  struct Slot {
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
    std::uint64_t hash = 0;
  };

  static std::uint64_t hash_hops(std::span<const AsId> hops);
  /// Looks `hops` (with hash `h`) up in the open-addressed index; interns
  /// and returns a fresh id on miss.
  PathId find_or_intern(std::span<const AsId> hops, std::uint64_t h);
  void rehash(std::size_t new_buckets);

  static constexpr std::uint32_t kEmptyBucket = 0xFFFFFFFFu;

  std::vector<AsId> arena_;   ///< concatenated hop storage
  std::vector<Slot> slots_;   ///< PathId -> {offset, len, hash}
  std::vector<std::uint32_t> index_;  ///< open addressing: bucket -> PathId
  std::size_t index_mask_ = 0;
};

// --- path_* helpers: manipulate a PathRef in either build mode -------------
//
// The BGP core (RIB slots, UpdateMessage, WorkItem) stores PathRef values
// and manipulates them only through the helpers below, so the same
// protocol source compiles against interned ids (default) or deep-copied
// AsPath values (-DBGPSIM_DEEP_COPY_PATHS=ON, the pre-interning baseline
// kept for cross-check tests and the bytes/route comparison).

#ifdef BGPSIM_DEEP_COPY_PATHS

inline PathRef path_make(PathTable&, const AsPath& p) { return p; }
inline PathRef path_make(PathTable&, std::vector<AsId> hops) {
  return AsPath{std::move(hops)};
}
inline PathRef path_prepend(PathTable&, const PathRef& r, AsId head) {
  return r.prepended(head);
}
inline bool path_contains(const PathTable&, const PathRef& r, AsId as) {
  return r.contains(as);
}
inline std::size_t path_length(const PathTable&, const PathRef& r) {
  return r.length();
}
inline AsPath path_materialize(const PathTable&, const PathRef& r) { return r; }
inline PathRef path_empty() { return AsPath{}; }

#else

inline PathRef path_make(PathTable& t, const AsPath& p) { return t.intern(p); }
inline PathRef path_make(PathTable& t, std::vector<AsId> hops) {
  return t.intern(std::span<const AsId>{hops});
}
inline PathRef path_prepend(PathTable& t, PathRef r, AsId head) {
  return t.prepend(r, head);
}
inline bool path_contains(const PathTable& t, PathRef r, AsId as) {
  return t.contains(r, as);
}
inline std::size_t path_length(const PathTable& t, PathRef r) {
  return t.length(r);
}
inline AsPath path_materialize(const PathTable& t, PathRef r) {
  return t.as_path(r);
}
inline constexpr PathRef path_empty() { return kEmptyPathId; }

#endif

}  // namespace bgpsim::bgp
