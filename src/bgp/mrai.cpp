#include "bgp/mrai.hpp"

#include "bgp/router.hpp"

namespace bgpsim::bgp {

sim::SimTime FixedMrai::interval(Router& r, NodeId /*peer*/) {
  if (!per_node_.empty() && r.id() < per_node_.size()) return per_node_[r.id()];
  return default_;
}

}  // namespace bgpsim::bgp
