// BGP model configuration knobs.
//
// Defaults reproduce the paper's experimental setup (section 3.2): 25 ms
// one-way link delay, per-update processing delay U(1 ms, 30 ms), per-peer
// MRAI with RFC 1771 jitter (reduction of up to 25%), withdrawals exempt
// from the MRAI, FIFO update processing.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace bgpsim::bgp {

/// Route-flap damping (RFC 2439), the other classic BGP stability
/// mechanism of the paper's era. Each (peer, prefix) accumulates a penalty
/// on withdrawals and attribute changes, decaying exponentially; routes
/// whose penalty crosses `suppress_threshold` are excluded from the
/// decision process until it decays below `reuse_threshold`. The defaults
/// follow common router configs but with a half-life scaled to simulation
/// timescales. During large failures damping prunes path exploration
/// (fewer updates, often an earlier aggregate convergence) at the price of
/// per-prefix reachability gaps when the last surviving route is
/// suppressed -- bench abl09_flap_damping and damping_test.cpp show both
/// sides.
struct DampingConfig {
  bool enabled = false;
  double withdrawal_penalty = 1.0;
  double attribute_change_penalty = 0.5;
  double suppress_threshold = 3.0;
  double reuse_threshold = 1.0;
  double max_penalty = 16.0;
  double half_life_s = 30.0;
};

/// Input-queue discipline at a router.
///  - kFifo: default BGP, strict arrival order.
///  - kBatched: the paper's scheme (section 4.4): per-destination logical
///    queues, all updates for one destination processed together, stale
///    updates from the same neighbor deleted unprocessed.
///  - kTcpBatch: the "batching carried out in BGP routers today" the paper
///    contrasts against (section 4.4, last paragraph): one TCP buffer's
///    worth of consecutive updates from a single peer is processed as one
///    batch (route changes pushed once per batch); nothing is deleted, and
///    same-destination hits within a batch are a matter of luck.
enum class QueueDiscipline { kFifo, kBatched, kTcpBatch };

/// How the work caused by a peer session going down is charged.
/// kPerPeer: one processing-delay draw removes all routes from the peer
/// (route scan modelled as one unit of work). kPerPrefix: one draw per
/// affected prefix (heavier, stresses the queue immediately).
enum class TeardownCost { kPerPeer, kPerPrefix };

struct BgpConfig {
  sim::SimTime link_delay = sim::SimTime::from_ms(25);
  sim::SimTime proc_min = sim::SimTime::from_ms(1);
  sim::SimTime proc_max = sim::SimTime::from_ms(30);
  bool jitter_timers = true;
  /// Per-destination MRAI timers instead of the per-peer scheme that the
  /// paper (and the Internet) uses. Kept for ablation.
  bool per_destination_mrai = false;
  /// RFC 1771 exempts withdrawals from the MRAI; true rate-limits them too.
  bool mrai_applies_to_withdrawals = false;
  QueueDiscipline queue = QueueDiscipline::kFifo;
  TeardownCost teardown = TeardownCost::kPerPeer;
  /// Improved batching (paper section 5, future work: "remove
  /// conflicting/superfluous updates"): queued updates that would not
  /// change the Adj-RIB-In are recognised by a cheap pre-filter and charged
  /// no processing time. Only meaningful with kBatched.
  bool free_redundant_updates = false;
  /// Deshpande/Sikdar (GLOBECOM'04) baseline: in per-destination MRAI mode,
  /// the timer is applied to a destination only after its route has changed
  /// at least this many times in the recent window (0 = always apply).
  int dest_mrai_min_changes = 0;
  /// kTcpBatch: maximum updates from one peer per processing batch (one
  /// "TCP buffer" worth).
  std::size_t tcp_batch_limit = 16;
  /// Session-failure detection delay (BGP hold timer). The paper assumes
  /// immediate detection (0); with a positive value each survivor notices a
  /// dead peer after U(0.5, 1.0) x this delay.
  sim::SimTime failure_detection_delay = sim::SimTime::zero();
  /// Sender-side loop detection (SSLD): do not advertise a route to an
  /// eBGP peer whose AS already appears in the path -- the peer would
  /// reject it anyway. Off by default (the paper models receiver-side
  /// checks only).
  bool sender_side_loop_detection = false;
  /// Route-flap damping (off by default; the paper does not model it).
  DampingConfig damping{};
  /// Number of prefixes each origin announces (default 1, the paper's
  /// one-prefix-per-AS model). Larger values scale the routing-table size
  /// the way the paper's closing discussion anticipates for the real
  /// Internet.
  std::uint32_t prefixes_per_origin = 1;
  /// Origination times are spread uniformly over this window at start-up so
  /// the cold-start convergence is not artificially synchronised.
  sim::SimTime origination_spread = sim::SimTime::seconds(1.0);

  sim::SimTime mean_processing_delay() const {
    return sim::SimTime::from_ns((proc_min.ns() + proc_max.ns()) / 2);
  }
};

}  // namespace bgpsim::bgp
