// Network-wide counters used to measure convergence delay and message load.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.hpp"

namespace bgpsim::bgp {

struct NetMetrics {
  std::uint64_t updates_sent = 0;       ///< advertisements + withdrawals
  std::uint64_t adverts_sent = 0;
  std::uint64_t withdrawals_sent = 0;
  std::uint64_t messages_processed = 0; ///< work items that paid processing cost
  std::uint64_t batch_dropped = 0;      ///< stale items deleted by batching
  std::uint64_t rib_changes = 0;        ///< Loc-RIB best-route changes
  sim::SimTime last_rib_change;         ///< time of the most recent Loc-RIB change
  sim::SimTime last_activity;           ///< most recent send or processing completion
};

/// Exponentially-decayed accumulator, used for the utilization- and
/// message-rate-based dynamic-MRAI variants (paper section 4.3). `add`
/// folds an amount in at time `now`; `rate` reads the decayed per-second
/// average. tau is the decay time constant in seconds.
class DecayingRate {
 public:
  explicit DecayingRate(double tau_seconds) : tau_{tau_seconds} {}

  void add(sim::SimTime now, double amount) {
    decay_to(now);
    value_ += amount;
  }

  /// Decayed amount per second of window (e.g. busy-seconds per second for
  /// utilization, messages per second for arrival rate).
  double rate(sim::SimTime now) {
    decay_to(now);
    return value_ / tau_;
  }

  /// Decayed raw accumulation (e.g. "events in the recent window").
  double value(sim::SimTime now) {
    decay_to(now);
    return value_;
  }

  /// Read-only variants: compute the decayed value without folding the
  /// decay into the stored state. Mathematically these match rate()/value(),
  /// but exp(-a)*exp(-b) != exp(-(a+b)) in floating point -- so observers
  /// (the telemetry sampler) MUST use these to leave the simulation's own
  /// later reads bit-identical to an unobserved run.
  double peek_rate(sim::SimTime now) const { return peek_value(now) / tau_; }
  double peek_value(sim::SimTime now) const {
    const double dt = (now - last_).to_seconds();
    return dt > 0 ? value_ * std::exp(-dt / tau_) : value_;
  }

  /// Exact internal state for checkpointing. The decay timeline is
  /// (value, last-decay-time); tau is configuration, not state, so a
  /// restored accumulator must have been constructed with the same tau.
  struct Persisted {
    double value = 0.0;
    sim::SimTime last;
  };
  Persisted persisted() const { return Persisted{value_, last_}; }
  void restore(const Persisted& p) {
    value_ = p.value;
    last_ = p.last;
  }

 private:
  void decay_to(sim::SimTime now) {
    const double dt = (now - last_).to_seconds();
    if (dt > 0) {
      value_ *= std::exp(-dt / tau_);
      last_ = now;
    }
  }

  double tau_;
  double value_ = 0.0;
  sim::SimTime last_;
};

}  // namespace bgpsim::bgp
