// MRAI selection policies.
//
// A router consults its network's MraiController every time it is about to
// (re)start an MRAI timer -- this is exactly the hook the paper's dynamic
// scheme uses ("the change takes effect only when the timers are restarted
// after an update has been sent", section 4.3). Constant and per-node
// (degree-dependent) MRAIs are FixedMrai; the adaptive controller lives in
// schemes/dynamic_mrai.hpp.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::bgp {

class Router;

class MraiController {
 public:
  virtual ~MraiController() = default;

  /// Base (un-jittered) MRAI for router `r`'s timer towards `peer`.
  /// Called at every timer (re)start; may update internal adaptive state.
  virtual sim::SimTime interval(Router& r, NodeId peer) = 0;

  /// Called once by Network::enable_parallel before any interval() call:
  /// interval() will be invoked concurrently from partition worker threads
  /// (never twice concurrently for the same router). Controllers with
  /// shared mutable state presize/harden it here; stateless controllers
  /// need nothing.
  virtual void prepare_parallel(std::size_t /*nodes*/) {}

  /// Checkpoint hooks: controllers with adaptive state (DynamicMrai)
  /// serialize it into an opaque blob; stateless controllers keep the
  /// defaults (empty blob, and a loud failure if asked to load one --
  /// that means the checkpoint was taken under a different scheme).
  virtual void save_state(std::string& out) const { out.clear(); }
  virtual void load_state(std::string_view state) {
    if (!state.empty()) {
      throw std::runtime_error{"MraiController: checkpoint carries scheme state this controller cannot load"};
    }
  }
};

/// Constant MRAI, optionally overridden per node (used for the paper's
/// degree-dependent scheme, section 4.2).
class FixedMrai final : public MraiController {
 public:
  explicit FixedMrai(sim::SimTime value) : default_{value} {}
  FixedMrai(sim::SimTime default_value, std::vector<sim::SimTime> per_node)
      : default_{default_value}, per_node_{std::move(per_node)} {}

  sim::SimTime interval(Router& r, NodeId peer) override;

 private:
  sim::SimTime default_;
  std::vector<sim::SimTime> per_node_;  ///< empty => default for everyone
};

}  // namespace bgpsim::bgp
