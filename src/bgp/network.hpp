// The simulated BGP network: owns the scheduler, RNG, routers and links.
//
// Two constructors mirror the paper's two families of topologies: a flat
// graph (one BGP router per AS, every edge an eBGP session) and a
// hierarchical HierTopology (multi-router ASes, iBGP full mesh + eBGP
// border sessions).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/metrics.hpp"
#include "bgp/mrai.hpp"
#include "bgp/path_table.hpp"
#include "bgp/router.hpp"
#include "bgp/trace.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/graph.hpp"
#include "topo/hierarchical.hpp"
#include "topo/io.hpp"

namespace bgpsim::bgp {

/// Barrier-thread hook into the conservative-window driver. All three
/// methods run with the workers parked, so const peeks at router state are
/// race-free. The due-time ceiling lets a sampler shorten a window so that
/// its next sample instant lands exactly on a barrier -- that is what makes
/// parallel telemetry exact rather than an approximation (see
/// obs::TelemetrySampler).
class WindowObserver {
 public:
  virtual ~WindowObserver() = default;
  /// Called after the mailbox drain and next-window computation, before any
  /// window event runs. Every event executed so far has t < the previous
  /// window end, and every pending event has t >= tmin -- so sample instants
  /// <= tmin can be taken here exactly.
  virtual void on_window_start(sim::SimTime tmin) = 0;
  /// Called after the window's events have run and metrics merged; every
  /// event with t < window_end has executed, none at or after it has.
  virtual void on_window_end(sim::SimTime window_end) = 0;
  /// Next instant the observer wants a barrier at, or SimTime::max() for no
  /// ceiling. run_par() clamps a window end down to this when it falls
  /// strictly inside the window.
  virtual sim::SimTime due_ceiling() const = 0;
};

/// Per-window, per-partition execution profile collected by run_par() when
/// enable_par_profile() is on. Row-major [window * partitions + p] columns;
/// busy times are host wall-clock (nondeterministic), everything else is a
/// pure function of the simulation.
struct ParProfile {
  std::size_t partitions = 0;
  std::vector<double> window_start_s;  ///< per window: tmin, sim seconds
  std::vector<double> window_end_s;    ///< per window: (possibly clamped) end
  std::vector<double> busy_s;          ///< wall-clock inside run_until
  std::vector<std::uint64_t> executed;       ///< events run this window
  std::vector<std::uint64_t> mailbox_msgs;   ///< cross-partition msgs drained into p
  std::vector<std::uint64_t> mailbox_bytes;  ///< approx bytes of those envelopes
  std::vector<std::uint64_t> reinterned;     ///< paths re-interned at the drain

  std::size_t windows() const { return window_start_s.size(); }
  bool empty() const { return window_start_s.empty(); }

  /// Mean over windows of (slowest partition busy time / mean partition
  /// busy time); 1.0 = perfectly balanced. Returns 0 when empty.
  double imbalance_factor() const;
  /// Fraction of total worker wall-time spent waiting at barriers:
  /// 1 - sum(busy) / (partitions * sum of per-window max busy). 0 when empty.
  double barrier_overhead_fraction() const;
  /// Per-partition count of windows in which it was the slowest (the
  /// critical partition).
  std::vector<std::uint64_t> critical_histogram() const;
};

class Network {
 public:
  /// Flat network: node i is AS i's single router and originates prefix i.
  Network(const topo::Graph& g, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  /// Hierarchical network from a multi-router-AS topology.
  Network(const topo::HierTopology& h, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  /// Policy-routing network from an annotated AS graph (e.g. CAIDA as-rel
  /// data): sessions carry Gao-Rexford relations, selection prefers
  /// customer routes, and exports are valley-free.
  Network(const topo::AsRelGraph& ar, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Switches this network to partitioned parallel execution with
  /// `threads` worker threads (clamped to the router count). Must be
  /// called before start(); spawns threads - 1 workers (the calling thread
  /// drives partition 0 and the window barriers). threads == 1 runs the
  /// identical partitioned code path single-threaded -- that is the serial
  /// identity oracle the K-thread runs are compared against; threads == 0
  /// is a no-op (legacy serial scheduler, byte-for-byte the historical
  /// behavior). See DESIGN.md "Parallel execution".
  void enable_parallel(std::size_t threads);
  bool parallel() const { return par_k_ != 0; }
  std::size_t par_threads() const { return par_k_; }

  /// Schedules every origin's initial announcement (spread over
  /// cfg.origination_spread) -- call once before running.
  void start();

  /// Runs the event loop until no events remain; returns the time of the
  /// last event. Quiescence is the path table's epoch boundary: with no
  /// updates in flight, only RIB slots hold PathRefs, so the table is
  /// compacted down to the live set before returning (convergence churn
  /// interns millions of transient exploration paths that nothing
  /// references once the network settles).
  sim::SimTime run_to_quiescence() {
    const sim::SimTime t = par_k_ == 0 ? sched_.run() : run_par();
    // Sample fill before compaction: convergence churn is when the intern
    // arena peaks, and compact_paths() erases the evidence.
    const double cap = min_path_capacity_remaining();
    if (cap < path_capacity_low_water_) path_capacity_low_water_ = cap;
    compact_paths();
    return t;
  }

  /// Lowest min_path_capacity_remaining() observed at any quiescence point
  /// (pre-compaction) -- the run's closest approach to arena exhaustion.
  /// 1.0 in deep-copy builds and before the first quiescence.
  double path_capacity_low_water() const { return path_capacity_low_water_; }

  /// Current simulation time: the legacy scheduler's clock, or in parallel
  /// mode the furthest partition clock (at quiescence all partitions have
  /// drained, so this is the time of the globally last event).
  sim::SimTime now() const;
  /// Total executed events across all partitions (== the legacy
  /// scheduler's count in serial mode).
  std::uint64_t executed_events() const;
  /// Moves every partition clock (or the legacy clock) forward to `t`;
  /// requires quiescence (throws if events are pending before `t`). The
  /// harness uses this to align clocks before injecting a failure in
  /// parallel mode.
  void advance_all(sim::SimTime t);

  /// Rebuilds the path table from the paths RIBs still reference and
  /// remaps every stored PathRef (ids are opaque handles, so behavior is
  /// unchanged). Only valid when no update messages are in flight; a no-op
  /// in deep-copy builds.
  void compact_paths();

  /// Fails `victims` at the current simulation time: the routers die and
  /// every surviving neighbor's session drops immediately.
  void fail_nodes(const std::vector<NodeId>& victims);

  /// Brings previously-failed routers back up at the current simulation
  /// time: cold RIBs, sessions to live peers re-established (each side
  /// resends its full table), own prefixes re-originated.
  void recover_nodes(const std::vector<NodeId>& nodes);

  std::size_t size() const { return routers_.size(); }
  Router& router(NodeId id) { return *routers_.at(id); }
  const Router& router(NodeId id) const { return *routers_.at(id); }
  std::vector<NodeId> alive_nodes() const;
  topo::Point position(NodeId id) const { return positions_.at(id); }
  const std::vector<topo::Point>& positions() const { return positions_; }

  sim::Scheduler& scheduler() { return sched_; }
  sim::Rng& rng() { return rng_; }
  const BgpConfig& config() const { return cfg_; }
  /// The network-wide AS-path intern table: one canonical copy per distinct
  /// path; every PathRef held by routers/messages resolves against it.
  PathTable& paths() { return paths_; }
  const PathTable& paths() const { return paths_; }
  /// Number of distinct prefixes that can exist in this network (#origin
  /// ASes x prefixes_per_origin). Routers size their flat RIBs from this.
  std::size_t prefix_space() const { return prefix_space_; }
  /// Router-id space (flat RIB session lookup is NodeId-indexed).
  std::size_t node_space() const { return node_space_; }
  /// True when sessions carry Gao-Rexford relations (affects what the
  /// route audit may assume about reachability).
  bool policy_routing() const { return policy_routing_; }
  NetMetrics& metrics() { return metrics_; }
  const NetMetrics& metrics() const { return metrics_; }
  MraiController& mrai() { return *mrai_; }

  /// Sends `msg` over the (from -> to) link; delivery after link_delay.
  void transmit(UpdateMessage msg);

  /// Parallel-mode send: delivery at `at` ordered by `key` (the sender's
  /// per-session lane key). In-partition messages go straight into the
  /// receiver's event queue; cross-partition ones are buffered in the
  /// (src partition, dst partition) mailbox and scheduled at the next
  /// window barrier (they cannot fire inside the current window:
  /// at >= window_end by the lookahead argument).
  void transmit_par(UpdateMessage msg, sim::SimTime at, std::uint64_t key);

  /// Installs the parallel-mode window observer (non-owning; nullptr to
  /// remove). The telemetry sampler hooks this instead of a scheduled
  /// periodic event, which a partitioned heap cannot support; its due-time
  /// ceiling turns window barriers into exact sample instants.
  void set_window_observer(WindowObserver* obs) { window_observer_ = obs; }

  /// Turns on per-window partition profiling (see ParProfile). Only
  /// meaningful in parallel mode; zero-cost until the next run when off.
  void enable_par_profile() { par_profile_enabled_ = true; }
  bool par_profile_enabled() const { return par_profile_enabled_; }
  const ParProfile& par_profile() const { return par_profile_; }

  /// Tightest path-table capacity across partitions (== paths()'s in
  /// serial mode); the harness warns when this drops under 10%.
  double min_path_capacity_remaining() const;

  /// Installs a trace sink (non-owning; pass nullptr to disable). With no
  /// sink, routers skip event construction entirely. Rejected in parallel
  /// mode: a single sink would be hit concurrently from every worker --
  /// install a ShardedTraceSink instead.
  void set_trace_sink(TraceSink* sink) {
    if (sink != nullptr && par_k_ != 0) {
      throw std::logic_error{
          "Network: a plain TraceSink would race across partition workers in "
          "parallel mode; use set_sharded_trace_sink()"};
    }
    trace_ = sink;
  }
  /// Installs the parallel-mode sharded trace sink (non-owning; nullptr to
  /// disable). Each partition's events go to its own shard stream, stamped
  /// with a deterministic TraceOrder (see trace.hpp); requires parallel
  /// mode.
  void set_sharded_trace_sink(ShardedTraceSink* sink) {
    if (sink != nullptr && par_k_ == 0) {
      throw std::logic_error{
          "Network: set_sharded_trace_sink() requires parallel mode"};
    }
    shard_trace_ = sink;
  }
  bool tracing() const { return trace_ != nullptr || shard_trace_ != nullptr; }
  void emit_trace(const TraceEvent& event) {
    if (trace_ != nullptr) {
      trace_->on_event(event);
    } else if (shard_trace_ != nullptr) {
      emit_trace_par(event);
    }
  }

 private:
  /// Serializes/restores the full quiescent network state (checkpoint.cpp).
  friend struct CheckpointCodec;

  /// One conservative-window execution unit: a slice of the routers with
  /// their own event queue, clock, metrics shard and path-intern table
  /// (per-partition arenas: interning needs no locks because only the
  /// owning thread touches a partition's table during a window).
  struct Partition {
    sim::Scheduler sched;
    NetMetrics metrics;
    PathTable paths;
    std::vector<NodeId> members;
    /// Trace-emission context, touched only by the partition's own thread:
    /// tracks the (at, key) of the last traced callback so repeated
    /// emissions within one callback get consecutive TraceOrder::emit
    /// indices. (at, key) pairs never repeat -- per-lane sequences are
    /// monotone -- so a plain last-value compare suffices.
    struct ShardCtx {
      sim::SimTime last_at;
      std::uint64_t last_key = ~std::uint64_t{0};
      std::uint32_t emit = 0;
    } shard;
  };

  /// A cross-partition message parked until the window barrier. In interned
  /// builds the hop sequence is materialized from the sender's table at
  /// send time and re-interned into the receiver's table at drain time
  /// (PathIds are partition-local).
  struct Envelope {
    sim::SimTime at;
    std::uint64_t key;
    UpdateMessage msg;
    std::vector<AsId> hops;
  };

  /// Conservative-window driver: runs windows until every partition heap
  /// drains; returns the time of the globally last event.
  sim::SimTime run_par();
  void worker_loop(std::size_t part);
  void drain_mailboxes();
  void merge_metrics();
  void schedule_delivery(Partition& part, sim::SimTime at, std::uint64_t key,
                         UpdateMessage msg);
  /// Routes one parallel-mode trace event to its partition's shard with a
  /// deterministic (epoch, key, emit) ordering stamp.
  void emit_trace_par(const TraceEvent& event);
  /// Marks the start of a main-thread injection phase (start / fail /
  /// recover): bumps the trace epoch and routes emissions through the
  /// global injection sequence instead of scheduler keys.
  void begin_injection();
  void end_injection();
  /// Grows/reset the per-window profiling scratch (barrier thread only).
  void ensure_profile_scratch();

  BgpConfig cfg_;
  std::shared_ptr<MraiController> mrai_;
  sim::Scheduler sched_;
  sim::Rng rng_;
  std::uint64_t seed_ = 0;
  PathTable paths_;
  std::size_t prefix_space_ = 0;
  std::size_t node_space_ = 0;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<topo::Point> positions_;
  NetMetrics metrics_;
  TraceSink* trace_ = nullptr;
  ShardedTraceSink* shard_trace_ = nullptr;
  bool policy_routing_ = false;
  double path_capacity_low_water_ = 1.0;

  // --- parallel execution state (empty/idle when par_k_ == 0) ---
  std::size_t par_k_ = 0;  ///< partition count; 0 = legacy serial mode
  sim::SimTime lookahead_;  ///< = cfg_.link_delay (min cross-partition latency)
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::uint32_t> part_of_;  ///< NodeId -> partition
  std::vector<sim::Rng> par_rngs_;      ///< per-router streams (splitmix64 of seed, id)
  std::vector<std::vector<Envelope>> mailbox_;  ///< [src * k + dst]
  WindowObserver* window_observer_ = nullptr;
  std::vector<std::thread> workers_;  ///< k - 1 threads; main drives partition 0
  std::mutex par_mu_;
  std::condition_variable par_cv_;
  std::uint64_t window_gen_ = 0;  ///< bumped to release workers into a window
  std::size_t workers_done_ = 0;
  sim::SimTime window_limit_;
  bool shutdown_ = false;

  // --- parallel trace ordering (main/barrier thread writes, workers read
  // between the window-release and window-done mutex hand-offs) ---
  bool injecting_ = false;      ///< inside start()/fail_nodes()/recover_nodes()
  std::uint32_t trace_epoch_ = 0;   ///< bumped per harness entry point
  std::uint64_t injection_seq_ = 0; ///< global order of injection-time events

  // --- partition profiling (barrier thread owns everything except
  // busy_ns_[p], written by partition p under the barrier hand-off) ---
  bool par_profile_enabled_ = false;
  ParProfile par_profile_;
  std::vector<std::uint64_t> busy_ns_;          ///< per partition, this window
  std::vector<std::uint64_t> prev_executed_;    ///< per partition, at window start
  std::vector<std::uint64_t> drain_msgs_;       ///< per dst partition, this round
  std::vector<std::uint64_t> drain_bytes_;
  std::vector<std::uint64_t> drain_reinterned_;
};

}  // namespace bgpsim::bgp
