// The simulated BGP network: owns the scheduler, RNG, routers and links.
//
// Two constructors mirror the paper's two families of topologies: a flat
// graph (one BGP router per AS, every edge an eBGP session) and a
// hierarchical HierTopology (multi-router ASes, iBGP full mesh + eBGP
// border sessions).
#pragma once

#include <memory>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/metrics.hpp"
#include "bgp/mrai.hpp"
#include "bgp/path_table.hpp"
#include "bgp/router.hpp"
#include "bgp/trace.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/graph.hpp"
#include "topo/hierarchical.hpp"
#include "topo/io.hpp"

namespace bgpsim::bgp {

class Network {
 public:
  /// Flat network: node i is AS i's single router and originates prefix i.
  Network(const topo::Graph& g, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  /// Hierarchical network from a multi-router-AS topology.
  Network(const topo::HierTopology& h, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  /// Policy-routing network from an annotated AS graph (e.g. CAIDA as-rel
  /// data): sessions carry Gao-Rexford relations, selection prefers
  /// customer routes, and exports are valley-free.
  Network(const topo::AsRelGraph& ar, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
          std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Schedules every origin's initial announcement (spread over
  /// cfg.origination_spread) -- call once before running.
  void start();

  /// Runs the event loop until no events remain; returns the time of the
  /// last event. Quiescence is the path table's epoch boundary: with no
  /// updates in flight, only RIB slots hold PathRefs, so the table is
  /// compacted down to the live set before returning (convergence churn
  /// interns millions of transient exploration paths that nothing
  /// references once the network settles).
  sim::SimTime run_to_quiescence() {
    const sim::SimTime t = sched_.run();
    compact_paths();
    return t;
  }

  /// Rebuilds the path table from the paths RIBs still reference and
  /// remaps every stored PathRef (ids are opaque handles, so behavior is
  /// unchanged). Only valid when no update messages are in flight; a no-op
  /// in deep-copy builds.
  void compact_paths();

  /// Fails `victims` at the current simulation time: the routers die and
  /// every surviving neighbor's session drops immediately.
  void fail_nodes(const std::vector<NodeId>& victims);

  /// Brings previously-failed routers back up at the current simulation
  /// time: cold RIBs, sessions to live peers re-established (each side
  /// resends its full table), own prefixes re-originated.
  void recover_nodes(const std::vector<NodeId>& nodes);

  std::size_t size() const { return routers_.size(); }
  Router& router(NodeId id) { return *routers_.at(id); }
  const Router& router(NodeId id) const { return *routers_.at(id); }
  std::vector<NodeId> alive_nodes() const;
  topo::Point position(NodeId id) const { return positions_.at(id); }
  const std::vector<topo::Point>& positions() const { return positions_; }

  sim::Scheduler& scheduler() { return sched_; }
  sim::Rng& rng() { return rng_; }
  const BgpConfig& config() const { return cfg_; }
  /// The network-wide AS-path intern table: one canonical copy per distinct
  /// path; every PathRef held by routers/messages resolves against it.
  PathTable& paths() { return paths_; }
  const PathTable& paths() const { return paths_; }
  /// Number of distinct prefixes that can exist in this network (#origin
  /// ASes x prefixes_per_origin). Routers size their flat RIBs from this.
  std::size_t prefix_space() const { return prefix_space_; }
  /// Router-id space (flat RIB session lookup is NodeId-indexed).
  std::size_t node_space() const { return node_space_; }
  /// True when sessions carry Gao-Rexford relations (affects what the
  /// route audit may assume about reachability).
  bool policy_routing() const { return policy_routing_; }
  NetMetrics& metrics() { return metrics_; }
  const NetMetrics& metrics() const { return metrics_; }
  MraiController& mrai() { return *mrai_; }

  /// Sends `msg` over the (from -> to) link; delivery after link_delay.
  void transmit(UpdateMessage msg);

  /// Installs a trace sink (non-owning; pass nullptr to disable). With no
  /// sink, routers skip event construction entirely.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  bool tracing() const { return trace_ != nullptr; }
  void emit_trace(const TraceEvent& event) {
    if (trace_ != nullptr) trace_->on_event(event);
  }

 private:
  /// Serializes/restores the full quiescent network state (checkpoint.cpp).
  friend struct CheckpointCodec;

  BgpConfig cfg_;
  std::shared_ptr<MraiController> mrai_;
  sim::Scheduler sched_;
  sim::Rng rng_;
  PathTable paths_;
  std::size_t prefix_space_ = 0;
  std::size_t node_space_ = 0;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<topo::Point> positions_;
  NetMetrics metrics_;
  TraceSink* trace_ = nullptr;
  bool policy_routing_ = false;
};

}  // namespace bgpsim::bgp
