#include "bgp/trace.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

namespace bgpsim::bgp {

// to_string's switch has no default, so -Werror=switch turns a Kind added
// without a name into a build failure; the static_assert documents that
// kNumKinds is sentinel-derived, not hand-maintained.
static_assert(TraceEvent::kNumKinds == static_cast<std::size_t>(TraceEvent::Kind::kCount),
              "kNumKinds must be derived from the kCount sentinel");

const char* to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kOriginated:
      return "originated";
    case TraceEvent::Kind::kUpdateSent:
      return "update-sent";
    case TraceEvent::Kind::kUpdateReceived:
      return "update-received";
    case TraceEvent::Kind::kBatchStarted:
      return "batch-started";
    case TraceEvent::Kind::kBatchProcessed:
      return "batch-processed";
    case TraceEvent::Kind::kRibChanged:
      return "rib-changed";
    case TraceEvent::Kind::kMraiStarted:
      return "mrai-started";
    case TraceEvent::Kind::kMraiExpired:
      return "mrai-expired";
    case TraceEvent::Kind::kPeerDown:
      return "peer-down";
    case TraceEvent::Kind::kRouterFailed:
      return "router-failed";
    case TraceEvent::Kind::kRouterRecovered:
      return "router-recovered";
    case TraceEvent::Kind::kSessionEstablished:
      return "session-established";
    case TraceEvent::Kind::kRouteSuppressed:
      return "route-suppressed";
    case TraceEvent::Kind::kRouteReused:
      return "route-reused";
    case TraceEvent::Kind::kCount:
      break;  // sentinel, never emitted
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << at.to_seconds() << "s r" << router << " " << bgp::to_string(kind);
  switch (kind) {
    case Kind::kUpdateSent:
    case Kind::kUpdateReceived:
      os << (withdraw ? " withdraw" : " advert") << " prefix " << prefix << " peer " << peer;
      if (!withdraw) os << " len " << path_len;
      break;
    case Kind::kRibChanged:
    case Kind::kOriginated:
      os << " prefix " << prefix;
      break;
    case Kind::kMraiStarted:
    case Kind::kMraiExpired:
    case Kind::kPeerDown:
    case Kind::kSessionEstablished:
      os << " peer " << peer;
      break;
    case Kind::kRouteSuppressed:
    case Kind::kRouteReused:
      os << " prefix " << prefix << " peer " << peer;
      break;
    case Kind::kBatchStarted:
    case Kind::kBatchProcessed:
      os << " batch " << batch_size;
      break;
    case Kind::kRouterFailed:
    case Kind::kRouterRecovered:
    case Kind::kCount:
      break;
  }
  return std::move(os).str();
}

std::uint64_t CountingSink::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void StreamSink::on_event(const TraceEvent& event) {
  if (only_ && event.kind != *only_) return;
  os_ << event.to_string() << '\n';
}

}  // namespace bgpsim::bgp
