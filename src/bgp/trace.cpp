#include "bgp/trace.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

namespace bgpsim::bgp {

const char* to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kOriginated:
      return "originated";
    case TraceEvent::Kind::kUpdateSent:
      return "update-sent";
    case TraceEvent::Kind::kUpdateReceived:
      return "update-received";
    case TraceEvent::Kind::kBatchProcessed:
      return "batch-processed";
    case TraceEvent::Kind::kRibChanged:
      return "rib-changed";
    case TraceEvent::Kind::kMraiStarted:
      return "mrai-started";
    case TraceEvent::Kind::kMraiExpired:
      return "mrai-expired";
    case TraceEvent::Kind::kPeerDown:
      return "peer-down";
    case TraceEvent::Kind::kRouterFailed:
      return "router-failed";
    case TraceEvent::Kind::kRouterRecovered:
      return "router-recovered";
    case TraceEvent::Kind::kSessionEstablished:
      return "session-established";
    case TraceEvent::Kind::kRouteSuppressed:
      return "route-suppressed";
    case TraceEvent::Kind::kRouteReused:
      return "route-reused";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << at.to_seconds() << "s r" << router << " " << bgp::to_string(kind);
  switch (kind) {
    case Kind::kUpdateSent:
    case Kind::kUpdateReceived:
      os << (withdraw ? " withdraw" : " advert") << " prefix " << prefix << " peer " << peer;
      if (!withdraw) os << " len " << path_len;
      break;
    case Kind::kRibChanged:
    case Kind::kOriginated:
      os << " prefix " << prefix;
      break;
    case Kind::kMraiStarted:
    case Kind::kMraiExpired:
    case Kind::kPeerDown:
    case Kind::kSessionEstablished:
      os << " peer " << peer;
      break;
    case Kind::kRouteSuppressed:
    case Kind::kRouteReused:
      os << " prefix " << prefix << " peer " << peer;
      break;
    case Kind::kBatchProcessed:
      os << " batch " << batch_size;
      break;
    case Kind::kRouterFailed:
    case Kind::kRouterRecovered:
      break;
  }
  return std::move(os).str();
}

std::uint64_t CountingSink::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void StreamSink::on_event(const TraceEvent& event) {
  if (only_ && event.kind != *only_) return;
  os_ << event.to_string() << '\n';
}

}  // namespace bgpsim::bgp
