#include "bgp/input_queue.hpp"

namespace bgpsim::bgp {

void InputQueue::push(WorkItem item) {
  ++size_;
  switch (mode_) {
    case QueueDiscipline::kFifo:
      fifo_.push_back(std::move(item));
      return;
    case QueueDiscipline::kBatched: {
      const Prefix key = item.kind == WorkItem::Kind::kPeerDown ? kTeardownKey : item.prefix;
      auto [it, inserted] = by_dest_.try_emplace(key);
      if (inserted || it->second.empty()) dest_order_.push_back(key);
      it->second.push_back(std::move(item));
      return;
    }
    case QueueDiscipline::kTcpBatch: {
      auto [it, inserted] = by_peer_.try_emplace(item.from);
      if (inserted || it->second.empty()) peer_order_.push_back(item.from);
      it->second.push_back(std::move(item));
      return;
    }
  }
}

std::vector<WorkItem> InputQueue::pop_batch(std::uint64_t& dropped) {
  std::vector<WorkItem> out;
  if (size_ == 0) return out;
  switch (mode_) {
    case QueueDiscipline::kFifo:
      out.push_back(std::move(fifo_.front()));
      fifo_.pop_front();
      --size_;
      return out;
    case QueueDiscipline::kBatched:
      return pop_destination_batch(dropped);
    case QueueDiscipline::kTcpBatch:
      return pop_peer_batch();
  }
  return out;
}

std::vector<WorkItem> InputQueue::pop_destination_batch(std::uint64_t& dropped) {
  std::vector<WorkItem> out;
  const Prefix key = dest_order_.front();
  dest_order_.pop_front();
  auto& items = by_dest_[key];
  size_ -= items.size();
  // Keep only the newest item per neighbor, preserving arrival order of the
  // survivors; everything older is stale. (For the teardown pseudo-
  // destination this just collapses duplicate teardowns from one peer.)
  std::unordered_map<NodeId, std::size_t> last_index;
  for (std::size_t i = 0; i < items.size(); ++i) last_index[items[i].from] = i;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (last_index[items[i].from] == i) {
      out.push_back(std::move(items[i]));
    } else {
      ++dropped;
    }
  }
  items.clear();
  return out;
}

std::vector<WorkItem> InputQueue::pop_peer_batch() {
  std::vector<WorkItem> out;
  const NodeId peer = peer_order_.front();
  peer_order_.pop_front();
  auto& items = by_peer_[peer];
  while (!items.empty() && out.size() < tcp_limit_) {
    out.push_back(std::move(items.front()));
    items.pop_front();
    --size_;
  }
  // Round-robin: a peer with remaining updates goes to the back of the line.
  if (!items.empty()) peer_order_.push_back(peer);
  return out;
}

void InputQueue::clear() {
  fifo_.clear();
  dest_order_.clear();
  by_dest_.clear();
  peer_order_.clear();
  by_peer_.clear();
  size_ = 0;
}

}  // namespace bgpsim::bgp
