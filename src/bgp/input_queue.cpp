#include "bgp/input_queue.hpp"

namespace bgpsim::bgp {

std::vector<WorkItem>& InputQueue::dest_slot(Prefix key) {
  if (key == kTeardownKey) return teardown_;
  if (key >= by_dest_.size()) by_dest_.resize(static_cast<std::size_t>(key) + 1);
  return by_dest_[key];
}

void InputQueue::push(WorkItem item) {
  ++size_;
  switch (mode_) {
    case QueueDiscipline::kFifo:
      fifo_.push_back(std::move(item));
      return;
    case QueueDiscipline::kBatched: {
      const Prefix key = item.kind == WorkItem::Kind::kPeerDown ? kTeardownKey : item.prefix;
      auto& slot = dest_slot(key);
      if (slot.empty()) dest_order_.push_back(key);
      slot.push_back(std::move(item));
      return;
    }
    case QueueDiscipline::kTcpBatch: {
      if (item.from >= by_peer_.size()) {
        by_peer_.resize(static_cast<std::size_t>(item.from) + 1);
      }
      auto& slot = by_peer_[item.from];
      if (slot.empty()) peer_order_.push_back(item.from);
      slot.push_back(std::move(item));
      return;
    }
  }
}

std::vector<WorkItem> InputQueue::pop_batch(std::uint64_t& dropped) {
  std::vector<WorkItem> out;
  if (size_ == 0) return out;
  switch (mode_) {
    case QueueDiscipline::kFifo:
      out.push_back(std::move(fifo_.front()));
      fifo_.pop_front();
      --size_;
      return out;
    case QueueDiscipline::kBatched:
      return pop_destination_batch(dropped);
    case QueueDiscipline::kTcpBatch:
      return pop_peer_batch();
  }
  return out;
}

std::vector<WorkItem> InputQueue::pop_destination_batch(std::uint64_t& dropped) {
  std::vector<WorkItem> out;
  const Prefix key = dest_order_.front();
  dest_order_.pop_front();
  auto& items = dest_slot(key);
  size_ -= items.size();
  // Keep only the newest item per neighbor, preserving arrival order of the
  // survivors; everything older is stale. (For the teardown pseudo-
  // destination this just collapses duplicate teardowns from one peer.)
  // The scratch vectors are sender-indexed and stamp-versioned: no hashing,
  // no clearing between batches.
  ++stamp_;
  for (const auto& item : items) {
    if (item.from >= last_index_.size()) {
      last_index_.resize(static_cast<std::size_t>(item.from) + 1, 0);
      last_stamp_.resize(static_cast<std::size_t>(item.from) + 1, 0);
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    last_index_[items[i].from] = i;
    last_stamp_[items[i].from] = stamp_;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (last_stamp_[items[i].from] == stamp_ && last_index_[items[i].from] == i) {
      out.push_back(std::move(items[i]));
    } else {
      ++dropped;
    }
  }
  items.clear();
  return out;
}

std::vector<WorkItem> InputQueue::pop_peer_batch() {
  std::vector<WorkItem> out;
  const NodeId peer = peer_order_.front();
  peer_order_.pop_front();
  auto& items = by_peer_[peer];
  while (!items.empty() && out.size() < tcp_limit_) {
    out.push_back(std::move(items.front()));
    items.pop_front();
    --size_;
  }
  // Round-robin: a peer with remaining updates goes to the back of the line.
  if (!items.empty()) peer_order_.push_back(peer);
  return out;
}

void InputQueue::clear() {
  fifo_.clear();
  // Only slots still holding items need resetting (capacity is retained so
  // the next convergence episode does not re-allocate).
  for (const Prefix key : dest_order_) dest_slot(key).clear();
  dest_order_.clear();
  for (const NodeId peer : peer_order_) by_peer_[peer].clear();
  peer_order_.clear();
  size_ = 0;
}

}  // namespace bgpsim::bgp
