#include "bgp/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "bgp/network.hpp"
#include "sim/wire.hpp"

namespace bgpsim::bgp {

namespace {

using sim::wire::Reader;
using sim::wire::Writer;

#ifdef BGPSIM_DEEP_COPY_PATHS
constexpr bool kDeepCopyBuild = true;
#else
constexpr bool kDeepCopyBuild = false;
#endif

// Same FNV-1a constants as PathTable's hop hash and tools/identity_check.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

void write_pathref(Writer& w, const PathTable& t, const PathRef& ref) {
#ifdef BGPSIM_DEEP_COPY_PATHS
  (void)t;
  w.u32(static_cast<std::uint32_t>(ref.length()));
  for (const AsId as : ref.hops()) w.u32(as);
#else
  (void)t;
  w.u32(ref);
#endif
}

PathRef read_pathref(Reader& rd, const PathTable& t) {
#ifdef BGPSIM_DEEP_COPY_PATHS
  (void)t;
  const std::uint32_t len = rd.u32();
  std::vector<AsId> hops(len);
  for (auto& h : hops) h = rd.u32();
  return AsPath{std::move(hops)};
#else
  const PathId id = rd.u32();
  if (id >= t.size()) throw std::runtime_error{"checkpoint: path id out of range"};
  return id;
#endif
}

}  // namespace

// Friend of Network and Router: walks their private state in a fixed,
// deterministic order (flat maps iterate ascending) so save -> restore ->
// save reproduces the blob byte for byte.
struct CheckpointCodec {
  static void verify_quiescent(const Network& net) {
    if (!net.sched_.empty()) {
      throw std::logic_error{"checkpoint: network is not quiescent (events pending)"};
    }
    // Belt and braces: with an empty heap none of these can hold, but a
    // cheap scan turns a scheduler-accounting bug into a loud failure
    // instead of a silently wrong checkpoint.
    for (const auto& rp : net.routers_) {
      const Router& r = *rp;
      if (!r.queue_.empty() || r.cpu_busy_) {
        throw std::logic_error{"checkpoint: router mid-processing at capture"};
      }
      for (const auto& s : r.sessions_) {
        if (s.timer_running || !s.pending.empty() || !s.dest_pending.empty()) {
          throw std::logic_error{"checkpoint: MRAI state pending at capture"};
        }
      }
    }
  }

  static void save(const Network& net, std::string& out) {
    verify_quiescent(net);
    Writer w{out};
    w.u8(kDeepCopyBuild ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(net.routers_.size()));
    const auto qs = net.sched_.quiescent_state();
    w.time(qs.now);
    w.u64(qs.next_seq);
    w.u64(qs.executed);
    w.str(net.rng_.save_state());
    const NetMetrics& m = net.metrics_;
    w.u64(m.updates_sent);
    w.u64(m.adverts_sent);
    w.u64(m.withdrawals_sent);
    w.u64(m.messages_processed);
    w.u64(m.batch_dropped);
    w.u64(m.rib_changes);
    w.time(m.last_rib_change);
    w.time(m.last_activity);
    std::string scheme;
    net.mrai_->save_state(scheme);
    w.str(scheme);
    // Path dictionary (interned builds): every distinct path in id order.
    // Restore re-interns in the same order, which reproduces the identical
    // dense numbering -- so the u32 ids stored in the RIB sections below
    // resolve to the same hop sequences after restore.
#ifdef BGPSIM_DEEP_COPY_PATHS
    w.u32(0);
#else
    const PathTable& t = net.paths_;
    w.u32(static_cast<std::uint32_t>(t.size()));
    for (PathId id = 1; id < static_cast<PathId>(t.size()); ++id) {
      const auto hops = t.hops(id);
      w.u32(static_cast<std::uint32_t>(hops.size()));
      for (const AsId as : hops) w.u32(as);
    }
#endif
    for (const auto& r : net.routers_) save_router(*r, net.paths_, w);
  }

  static void load(Network& net, std::string_view state) {
    if (!net.sched_.empty()) {
      throw std::logic_error{"checkpoint: restore requires an idle network"};
    }
    Reader rd{state};
    const bool deep = rd.u8() != 0;
    if (deep != kDeepCopyBuild) {
      throw std::runtime_error{
          "checkpoint: path-storage mode mismatch (captured by a different build)"};
    }
    const std::uint32_t nrouters = rd.u32();
    if (nrouters != net.routers_.size()) {
      throw std::runtime_error{"checkpoint: router count mismatch (different topology?)"};
    }
    sim::Scheduler::QuiescentState qs;
    qs.now = rd.time();
    qs.next_seq = rd.u64();
    qs.executed = rd.u64();
    net.sched_.restore_quiescent(qs);
    net.rng_.load_state(std::string{rd.str()});
    NetMetrics& m = net.metrics_;
    m.updates_sent = rd.u64();
    m.adverts_sent = rd.u64();
    m.withdrawals_sent = rd.u64();
    m.messages_processed = rd.u64();
    m.batch_dropped = rd.u64();
    m.rib_changes = rd.u64();
    m.last_rib_change = rd.time();
    m.last_activity = rd.time();
    net.mrai_->load_state(rd.str());
    const std::uint32_t path_count = rd.u32();
#ifdef BGPSIM_DEEP_COPY_PATHS
    if (path_count != 0) {
      throw std::runtime_error{"checkpoint: unexpected path dictionary in deep-copy mode"};
    }
#else
    net.paths_.clear();
    std::vector<AsId> hops;
    for (PathId id = 1; id < path_count; ++id) {
      const std::uint32_t len = rd.u32();
      hops.resize(len);
      for (auto& h : hops) h = rd.u32();
      const PathId got = net.paths_.intern(std::span<const AsId>{hops});
      if (got != id) {
        throw std::runtime_error{"checkpoint: path dictionary is not canonically ordered"};
      }
    }
#endif
    for (auto& r : net.routers_) load_router(*r, net.paths_, rd);
    if (!rd.done()) throw std::runtime_error{"checkpoint: trailing bytes in state"};
  }

  static void save_router(const Router& r, const PathTable& paths, Writer& w) {
    w.u8(r.alive_ ? 1 : 0);
    w.u64(r.updates_sent_);
    w.u64(r.updates_received_);
    const auto tracker = [&w](const DecayingRate& d) {
      const auto p = d.persisted();
      w.f64(p.value);
      w.time(p.last);
    };
    tracker(r.busy_tracker_);
    tracker(r.msg_tracker_);
    tracker(r.loss_tracker_);
    w.u32(static_cast<std::uint32_t>(r.loc_rib_.size()));
    r.loc_rib_.for_each([&](Prefix p, const Router::RibRoute& e) {
      w.u32(p);
      write_pathref(w, paths, e.path);
      w.u32(e.learned_from);
      w.u8(static_cast<std::uint8_t>((e.ebgp_learned ? 1 : 0) | (e.local ? 2 : 0)));
      w.u8(static_cast<std::uint8_t>(e.learned_rel));
    });
    w.u32(static_cast<std::uint32_t>(r.sessions_.size()));
    for (const auto& s : r.sessions_) {
      w.u8(s.up ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(s.adj_in.size()));
      s.adj_in.for_each([&](Prefix p, const PathRef& ref) {
        w.u32(p);
        write_pathref(w, paths, ref);
      });
      w.u32(static_cast<std::uint32_t>(s.adj_out.size()));
      s.adj_out.for_each([&](Prefix p, const PathRef& ref) {
        w.u32(p);
        write_pathref(w, paths, ref);
      });
      w.u32(static_cast<std::uint32_t>(s.damping.size()));
      s.damping.for_each([&](Prefix p, const Router::DampState& d) {
        w.u32(p);
        w.f64(d.penalty);
        w.time(d.last_decay);
        w.u8(d.suppressed ? 1 : 0);
      });
    }
    w.u32(static_cast<std::uint32_t>(r.change_counts_.size()));
    r.change_counts_.for_each([&](Prefix p, const Router::ChangeCount& c) {
      w.u32(p);
      const auto pe = c.rate.persisted();
      w.f64(pe.value);
      w.time(pe.last);
    });
  }

  static void load_router(Router& r, PathTable& paths, Reader& rd) {
    r.alive_ = rd.u8() != 0;
    r.updates_sent_ = rd.u64();
    r.updates_received_ = rd.u64();
    const auto tracker = [&rd](DecayingRate& d) {
      DecayingRate::Persisted p;
      p.value = rd.f64();
      p.last = rd.time();
      d.restore(p);
    };
    tracker(r.busy_tracker_);
    tracker(r.msg_tracker_);
    tracker(r.loss_tracker_);
    r.loc_rib_.clear();
    const std::uint32_t nrib = rd.u32();
    for (std::uint32_t i = 0; i < nrib; ++i) {
      const Prefix p = rd.u32();
      Router::RibRoute e;
      e.path = read_pathref(rd, paths);
      e.learned_from = rd.u32();
      const std::uint8_t flags = rd.u8();
      e.ebgp_learned = (flags & 1) != 0;
      e.local = (flags & 2) != 0;
      e.learned_rel = static_cast<PeerRelation>(rd.u8());
      r.loc_rib_.insert_or_assign(p, std::move(e));
    }
    const std::uint32_t nsess = rd.u32();
    if (nsess != r.sessions_.size()) {
      throw std::runtime_error{"checkpoint: session count mismatch (different topology?)"};
    }
    for (auto& s : r.sessions_) {
      s.up = rd.u8() != 0;
      // Quiescence invariant: no timers running at capture, so all timer
      // state restores to "idle" -- pre-restore handles stay stale because
      // Scheduler::restore_quiescent leaves slot generations alone.
      s.timer_running = false;
      s.timer = sim::EventHandle{};
      s.pending.clear();
      s.dest_pending.clear();
      s.dest_timers.clear();
      s.adj_in.clear();
      const std::uint32_t nin = rd.u32();
      for (std::uint32_t i = 0; i < nin; ++i) {
        const Prefix p = rd.u32();
        s.adj_in.insert_or_assign(p, read_pathref(rd, paths));
      }
      s.adj_out.clear();
      const std::uint32_t nout = rd.u32();
      for (std::uint32_t i = 0; i < nout; ++i) {
        const Prefix p = rd.u32();
        s.adj_out.insert_or_assign(p, read_pathref(rd, paths));
      }
      s.damping.clear();
      const std::uint32_t nd = rd.u32();
      for (std::uint32_t i = 0; i < nd; ++i) {
        const Prefix p = rd.u32();
        Router::DampState d;
        d.penalty = rd.f64();
        d.last_decay = rd.time();
        d.suppressed = rd.u8() != 0;
        s.damping.insert_or_assign(p, std::move(d));
      }
    }
    r.change_counts_.clear();
    const std::uint32_t nc = rd.u32();
    for (std::uint32_t i = 0; i < nc; ++i) {
      const Prefix p = rd.u32();
      DecayingRate::Persisted pe;
      pe.value = rd.f64();
      pe.last = rd.time();
      r.change_counts_[p].rate.restore(pe);
    }
    r.queue_.clear();
    r.cpu_busy_ = false;
  }
};

Checkpoint capture_checkpoint(const Network& net, std::uint64_t config_digest,
                              double initial_convergence_s) {
  if (net.parallel()) {
    throw std::runtime_error{
        "checkpoint: capture requires the legacy serial scheduler (the .bgck "
        "format does not describe partitioned clocks, lanes or per-router RNG "
        "streams); run without --par-threads"};
  }
  Checkpoint ck;
  ck.config_digest = config_digest;
  ck.initial_convergence_s = initial_convergence_s;
  CheckpointCodec::save(net, ck.state);
  return ck;
}

void restore_checkpoint(Network& net, const Checkpoint& ck,
                        std::uint64_t expected_config_digest) {
  if (net.parallel()) {
    throw std::runtime_error{
        "checkpoint: restore requires the legacy serial scheduler; run "
        "without --par-threads"};
  }
  if (ck.config_digest != expected_config_digest) {
    throw std::runtime_error{
        "checkpoint: configuration digest mismatch (captured for a different run)"};
  }
  CheckpointCodec::load(net, ck.state);
}

std::string encode_checkpoint(const Checkpoint& ck) {
  std::string out;
  out.append(kCheckpointMagic, 4);
  Writer w{out};
  w.u16(kCheckpointVersion);
  w.u16(kDeepCopyBuild ? kCheckpointFlagDeepCopyPaths : 0);
  w.u64(ck.config_digest);
  w.f64(ck.initial_convergence_s);
  w.str(ck.state);
  return out;
}

namespace {

/// Parses and validates the header; returns a reader positioned at the
/// length-prefixed state together with the decoded metadata.
struct Header {
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::uint64_t config_digest = 0;
  double initial_convergence_s = 0.0;
  std::string_view state;
};

Header decode_header(std::string_view bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0) {
    throw std::runtime_error{"checkpoint: not a .bgck file (bad magic)"};
  }
  Reader rd{bytes.substr(4)};
  Header h;
  h.version = rd.u16();
  if (h.version == 0 || h.version > kCheckpointVersion) {
    throw std::runtime_error{"checkpoint: unsupported version " + std::to_string(h.version)};
  }
  h.flags = rd.u16();
  h.config_digest = rd.u64();
  h.initial_convergence_s = rd.f64();
  h.state = rd.str();
  if (!rd.done()) throw std::runtime_error{"checkpoint: trailing bytes after state"};
  return h;
}

}  // namespace

Checkpoint decode_checkpoint(std::string_view bytes) {
  const Header h = decode_header(bytes);
  const bool deep = (h.flags & kCheckpointFlagDeepCopyPaths) != 0;
  if (deep != kDeepCopyBuild) {
    throw std::runtime_error{
        "checkpoint: path-storage mode mismatch (captured by a different build)"};
  }
  Checkpoint ck;
  ck.config_digest = h.config_digest;
  ck.initial_convergence_s = h.initial_convergence_s;
  ck.state = std::string{h.state};
  return ck;
}

void write_checkpoint_file(const std::string& path, const Checkpoint& ck) {
  const std::string bytes = encode_checkpoint(ck);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error{"checkpoint: cannot open " + path + " for writing"};
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error{"checkpoint: short write to " + path};
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error{"checkpoint: cannot open " + path};
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof buf, f);
    bytes.append(buf, got);
    if (got < sizeof buf) break;
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) throw std::runtime_error{"checkpoint: read error on " + path};
  return decode_checkpoint(bytes);
}

// Build-independent summary: decodes either path-storage mode by branching
// on the header flag at runtime (the inspect CLI must be able to describe
// any .bgck file, including ones from the other build).
CheckpointInfo inspect_checkpoint(std::string_view bytes) {
  const Header h = decode_header(bytes);
  CheckpointInfo info;
  info.version = h.version;
  info.deep_copy_paths = (h.flags & kCheckpointFlagDeepCopyPaths) != 0;
  info.config_digest = h.config_digest;
  info.initial_convergence_s = h.initial_convergence_s;
  info.state_bytes = h.state.size();
  info.state_digest = kFnvOffset;
  for (const char c : h.state) mix(info.state_digest, static_cast<unsigned char>(c));

  Reader rd{h.state};
  const bool deep = rd.u8() != 0;
  if (deep != info.deep_copy_paths) {
    throw std::runtime_error{"checkpoint: header/state mode disagreement"};
  }
  info.routers = rd.u32();
  info.sim_now_ns = rd.i64();
  (void)rd.u64();  // next_seq
  info.executed_events = rd.u64();
  (void)rd.str();  // rng
  info.updates_sent = rd.u64();
  for (int i = 0; i < 5; ++i) (void)rd.u64();  // remaining counters
  (void)rd.i64();                              // last_rib_change
  (void)rd.i64();                              // last_activity
  (void)rd.str();                              // scheme blob
  const std::uint32_t path_count = rd.u32();
  info.distinct_paths = path_count;
  std::vector<std::vector<AsId>> dict;
  if (path_count > 0) {
    dict.resize(path_count);  // id 0 is the empty path
    for (std::uint32_t id = 1; id < path_count; ++id) {
      const std::uint32_t len = rd.u32();
      dict[id].resize(len);
      for (auto& hop : dict[id]) hop = rd.u32();
    }
  }
  // Reads one serialized path reference; returns the materialized hops.
  std::vector<AsId> scratch;
  const auto read_hops = [&]() -> const std::vector<AsId>& {
    if (deep) {
      const std::uint32_t len = rd.u32();
      scratch.resize(len);
      for (auto& hop : scratch) hop = rd.u32();
      return scratch;
    }
    const std::uint32_t id = rd.u32();
    if (id >= dict.size()) throw std::runtime_error{"checkpoint: path id out of range"};
    return dict[id];
  };

  info.rib_digest = kFnvOffset;
  for (std::uint32_t v = 0; v < info.routers; ++v) {
    const bool alive = rd.u8() != 0;
    if (alive) ++info.alive_routers;
    (void)rd.u64();  // updates_sent
    (void)rd.u64();  // updates_received
    for (int t = 0; t < 3; ++t) {
      (void)rd.f64();
      (void)rd.i64();
    }
    const std::uint32_t nrib = rd.u32();
    info.loc_rib_routes += nrib;
    for (std::uint32_t i = 0; i < nrib; ++i) {
      const Prefix p = rd.u32();
      const auto& hops = read_hops();
      const std::uint32_t learned_from = rd.u32();
      const std::uint8_t flags = rd.u8();
      (void)rd.u8();  // relation
      if (!alive) continue;  // same filter as identity_check's rib_digest
      mix(info.rib_digest, v);
      mix(info.rib_digest, p);
      mix(info.rib_digest, (flags & 2) != 0 ? 1 : 0);  // local
      mix(info.rib_digest, learned_from);
      mix(info.rib_digest, hops.size());
      for (const AsId as : hops) mix(info.rib_digest, as);
    }
    const std::uint32_t nsess = rd.u32();
    info.sessions += nsess;
    for (std::uint32_t s = 0; s < nsess; ++s) {
      (void)rd.u8();  // up
      const std::uint32_t nin = rd.u32();
      info.adj_in_routes += nin;
      for (std::uint32_t i = 0; i < nin; ++i) {
        (void)rd.u32();
        (void)read_hops();
      }
      const std::uint32_t nout = rd.u32();
      info.adj_out_routes += nout;
      for (std::uint32_t i = 0; i < nout; ++i) {
        (void)rd.u32();
        (void)read_hops();
      }
      const std::uint32_t nd = rd.u32();
      for (std::uint32_t i = 0; i < nd; ++i) {
        (void)rd.u32();
        (void)rd.f64();
        (void)rd.i64();
        (void)rd.u8();
      }
    }
    const std::uint32_t nc = rd.u32();
    for (std::uint32_t i = 0; i < nc; ++i) {
      (void)rd.u32();
      (void)rd.f64();
      (void)rd.i64();
    }
  }
  if (!rd.done()) throw std::runtime_error{"checkpoint: trailing bytes in state"};
  return info;
}

}  // namespace bgpsim::bgp
