#include "bgp/router.hpp"

#include <algorithm>
#include <cmath>

#if defined(BGPSIM_DEEP_COPY_PATHS) && defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size, for honest deep-copy accounting
#endif

#include "bgp/network.hpp"

namespace bgpsim::bgp {

Router::Router(Network& net, NodeId id, AsId as, bool originates)
    : net_{net},
      id_{id},
      as_{as},
      originates_{originates},
      queue_{net.config().queue, net.config().tcp_batch_limit, net.prefix_space(),
             net.node_space()},
      busy_tracker_{kLoadTauSeconds},
      msg_tracker_{kLoadTauSeconds},
      loss_tracker_{kLossTauSeconds} {
  // Default origin range: one prefix, numbered by the AS (the paper's
  // model). Network overrides via set_origin_range for multi-prefix runs.
  origin_base_ = as_;
  origin_count_ = originates_ ? 1 : 0;
  loc_rib_.reserve_prefixes(net.prefix_space());
  // Serial default: all indirection points alias the Network's own
  // singletons. enable_parallel rebinds them to a partition.
  sched_ = &net.scheduler();
  metrics_ = &net.metrics();
  rng_ = &net.rng();
  paths_ = &net.paths();
}

std::uint64_t Router::next_internal_key() {
  if (internal_seq_ >= lane_seq_limit_) {
    throw std::length_error{"Router: parallel ordering-key sequence exhausted for internal lane"};
  }
  return internal_lane_base_ | internal_seq_++;
}

std::uint64_t Router::next_session_key(PeerSession& s) {
  if (s.out_seq >= lane_seq_limit_) {
    throw std::length_error{"Router: parallel ordering-key sequence exhausted for session lane"};
  }
  return s.out_lane_base | s.out_seq++;
}

sim::EventHandle Router::sched_event(sim::SimTime delay, sim::EventFn fn) {
  if (!par_) return sched_->schedule_after(delay, std::move(fn));
  return sched_->schedule_keyed(sched_->now() + delay, next_internal_key(), std::move(fn));
}

void Router::set_origin_range(Prefix base, std::uint32_t count) {
  origin_base_ = base;
  origin_count_ = originates_ ? count : 0;
}

void Router::add_session(NodeId peer, AsId peer_as, bool ebgp, PeerRelation relation) {
  if (session_of_node_.size() <= peer) session_of_node_.resize(peer + 1, kNoSession);
  session_of_node_[peer] = static_cast<std::uint32_t>(sessions_.size());
  auto& s = sessions_.emplace_back();
  s.peer = peer;
  s.peer_as = peer_as;
  s.ebgp = ebgp;
  s.relation = relation;
  const std::size_t prefixes = net_.prefix_space();
  s.adj_in.reserve_prefixes(prefixes);
  s.adj_out.reserve_prefixes(prefixes);
  // Timer/damping slots only exist for configurations that use them.
  if (net_.config().per_destination_mrai) s.dest_timers.reserve_prefixes(prefixes);
  if (net_.config().damping.enabled) s.damping.reserve_prefixes(prefixes);
}

Router::PeerSession* Router::session(NodeId peer) {
  if (peer >= session_of_node_.size()) return nullptr;
  const std::uint32_t idx = session_of_node_[peer];
  return idx == kNoSession ? nullptr : &sessions_[idx];
}

const Router::PeerSession* Router::session(NodeId peer) const {
  if (peer >= session_of_node_.size()) return nullptr;
  const std::uint32_t idx = session_of_node_[peer];
  return idx == kNoSession ? nullptr : &sessions_[idx];
}

// --- simulation entry points -----------------------------------------------

void Router::originate() {
  if (!alive_ || !originates_) return;
  for (std::uint32_t k = 0; k < origin_count_; ++k) {
    const Prefix p = origin_base_ + k;
    trace(TraceEvent::Kind::kOriginated, 0, p);
    trace(TraceEvent::Kind::kRibChanged, 0, p);
    RibRoute local;
    local.local = true;
    loc_rib_.insert_or_assign(p, local);
    ++metrics().rib_changes;
    metrics().last_rib_change = sched().now();
    for (auto& s : sessions_) route_changed(s, p);
  }
}

void Router::deliver(const UpdateMessage& msg) {
  if (!alive_) return;
  ++updates_received_;
  msg_tracker_.add(sched().now(), 1.0);
  trace(TraceEvent::Kind::kUpdateReceived, msg.from, msg.prefix, msg.withdraw, 0,
        msg.withdraw ? 0 : static_cast<std::uint32_t>(path_length(paths(), msg.path)));
  WorkItem item;
  item.kind = WorkItem::Kind::kUpdate;
  item.from = msg.from;
  item.prefix = msg.prefix;
  item.withdraw = msg.withdraw;
  item.path = msg.path;
  queue_.push(std::move(item));
  maybe_start_processing();
}

void Router::peer_failed(NodeId peer) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr || !s->up) return;
  trace(TraceEvent::Kind::kPeerDown, peer);
  s->up = false;
  s->timer.cancel();
  s->timer_running = false;
  s->pending.clear();
  s->dest_timers.for_each([](Prefix, sim::EventHandle& h) { h.cancel(); });
  s->dest_timers.clear();
  s->dest_pending.clear();
  s->adj_out.clear();

  if (net_.config().teardown == TeardownCost::kPerPeer) {
    WorkItem item;
    item.kind = WorkItem::Kind::kPeerDown;
    item.from = peer;
    item.prefix = kTeardownKey;
    queue_.push(std::move(item));
  } else {
    // One withdrawal-equivalent work item per route learned from the peer,
    // in ascending prefix order (PrefixMap iterates sorted).
    s->adj_in.for_each([&](Prefix p, const PathRef&) {
      WorkItem item;
      item.kind = WorkItem::Kind::kUpdate;
      item.from = peer;
      item.prefix = p;
      item.withdraw = true;
      queue_.push(std::move(item));
    });
  }
  maybe_start_processing();
}

void Router::fail() {
  if (!alive_) return;
  trace(TraceEvent::Kind::kRouterFailed);
  alive_ = false;
  for (auto& s : sessions_) {
    s.timer.cancel();
    s.timer_running = false;
    s.dest_timers.for_each([](Prefix, sim::EventHandle& h) { h.cancel(); });
    s.dest_timers.clear();
    s.damping.for_each([](Prefix, DampState& d) { d.reuse_timer.cancel(); });
    s.damping.clear();
  }
  queue_.clear();
  cpu_busy_ = false;
}

void Router::recover() {
  if (alive_) return;
  alive_ = true;
  trace(TraceEvent::Kind::kRouterRecovered);
  loc_rib_.clear();
  queue_.clear();
  cpu_busy_ = false;
  for (auto& s : sessions_) {
    s.up = false;  // until session_established()
    s.adj_in.clear();
    s.adj_out.clear();
    s.pending.clear();
    s.dest_pending.clear();
  }
}

void Router::session_established(NodeId peer) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr || s->up) return;
  s->up = true;
  s->adj_in.clear();
  s->adj_out.clear();
  s->pending.clear();
  trace(TraceEvent::Kind::kSessionEstablished, peer);
  // A fresh BGP session starts with a full table exchange: queue every
  // Loc-RIB entry for this peer, in ascending prefix order (MRAI applies
  // as usual).
  loc_rib_.for_each([&](Prefix p, const RibRoute&) { route_changed(*s, p); });
}

// --- processing pipeline ----------------------------------------------------

void Router::maybe_start_processing() {
  if (!alive_ || cpu_busy_ || queue_.empty()) return;
  cpu_busy_ = true;
  auto batch = queue_.pop_batch(metrics().batch_dropped);
  sim::SimTime cost;
  for (const auto& item : batch) {
    // Improved batching (future-work extension): a cheap pre-filter spots
    // updates that cannot change the Adj-RIB-In and skips their full
    // processing cost.
    if (net_.config().free_redundant_updates && !would_change(item)) continue;
    cost += rng().uniform_time(net_.config().proc_min, net_.config().proc_max);
  }
  trace(TraceEvent::Kind::kBatchStarted, 0, 0, false, batch.size());
  sched_event(cost, [this, b = std::move(batch), cost]() mutable {
    if (!alive_) return;
    busy_tracker_.add(sched().now(), cost.to_seconds());
    finish_processing(std::move(b));
  });
}

void Router::finish_processing(std::vector<WorkItem> batch) {
  cpu_busy_ = false;
  metrics().messages_processed += batch.size();
  metrics().last_activity = sched().now();
  trace(TraceEvent::Kind::kBatchProcessed, 0, 0, false, batch.size());
  std::set<Prefix> affected;
  for (const auto& item : batch) apply(item, affected);
  for (const Prefix p : affected) run_decision(p);
  maybe_start_processing();
}

void Router::apply(const WorkItem& item, std::set<Prefix>& affected) {
  PeerSession* s = session(item.from);
  if (s == nullptr) return;

  if (item.kind == WorkItem::Kind::kPeerDown) {
    s->adj_in.for_each([&](Prefix p, const PathRef&) { affected.insert(p); });
    s->adj_in.clear();
    return;
  }

  if (item.withdraw) {
    // Withdrawals apply even if the session has since gone down: they only
    // remove state (and model in-flight withdrawals from a dying region).
    if (s->adj_in.erase(item.prefix) > 0) {
      affected.insert(item.prefix);
      if (net_.config().damping.enabled && s->up) {
        damping_penalize(*s, item.prefix, net_.config().damping.withdrawal_penalty);
      }
    }
    return;
  }
  if (!s->up) return;  // stale advertisement from a fallen peer
  if (path_contains(paths(), item.path, as_)) {
    // AS-path loop: the peer's best route goes through us, so this prefix
    // is unreachable via this peer (an implicit withdrawal).
    if (s->adj_in.erase(item.prefix) > 0) {
      affected.insert(item.prefix);
      if (net_.config().damping.enabled) {
        damping_penalize(*s, item.prefix, net_.config().damping.withdrawal_penalty);
      }
    }
    return;
  }
  const PathRef* cur = s->adj_in.find(item.prefix);
  if (cur != nullptr && *cur == item.path) return;  // no change
  if (net_.config().damping.enabled && cur != nullptr) {
    damping_penalize(*s, item.prefix, net_.config().damping.attribute_change_penalty);
  }
  s->adj_in.insert_or_assign(item.prefix, item.path);
  affected.insert(item.prefix);
}

bool Router::would_change(const WorkItem& item) const {
  const PeerSession* s = session(item.from);
  if (s == nullptr) return false;
  if (item.kind == WorkItem::Kind::kPeerDown) return !s->adj_in.empty();
  if (item.withdraw) return s->adj_in.contains(item.prefix);
  if (!s->up) return false;  // stale advertisement, will be dropped
  const PathRef* cur = s->adj_in.find(item.prefix);
  if (path_contains(paths(), item.path, as_)) {
    return cur != nullptr;  // loop => erase
  }
  return cur == nullptr || *cur != item.path;
}

bool Router::better_rib(const RibRoute& a, const RibRoute& b) const {
  return better_route_by(
      a, b, [this](const RibRoute& e) { return path_length(paths(), e.path); });
}

std::optional<Router::RibRoute> Router::compute_best(Prefix p) const {
  std::optional<RibRoute> best;
  if (originates_ && p >= origin_base_ && p < origin_base_ + origin_count_) {
    RibRoute local;
    local.local = true;
    return local;
  }
  for (const auto& s : sessions_) {
    const PathRef* in = s.adj_in.find(p);
    if (in == nullptr) continue;
    if (net_.config().damping.enabled) {
      const DampState* d = s.damping.find(p);
      if (d != nullptr && d->suppressed) continue;
    }
    RibRoute cand;
    cand.path = *in;
    cand.learned_from = s.peer;
    cand.ebgp_learned = s.ebgp;
    cand.learned_rel = s.relation;
    if (!best || better_rib(cand, *best)) best = cand;
  }
  return best;
}

void Router::run_decision(Prefix p) {
  auto nb = compute_best(p);
  const RibRoute* cur = loc_rib_.find(p);
  const bool had = cur != nullptr;
  if (had && nb && *cur == *nb) return;
  if (!had && !nb) return;
  if (nb) {
    loc_rib_.insert_or_assign(p, *nb);
  } else {
    loc_rib_.erase(p);
    loss_tracker_.add(sched().now(), 1.0);
  }
  ++metrics().rib_changes;
  metrics().last_rib_change = sched().now();
  trace(TraceEvent::Kind::kRibChanged, 0, p);
  if (net_.config().per_destination_mrai && net_.config().dest_mrai_min_changes > 0) {
    change_counts_[p].rate.add(sched().now(), 1.0);
  }
  for (auto& s : sessions_) route_changed(s, p);
}

// --- advertisement scheduling ------------------------------------------------

std::optional<PathRef> Router::advert_content(const PeerSession& s, Prefix p) const {
  const RibRoute* e = loc_rib_.find(p);
  if (e == nullptr) return std::nullopt;
  if (e->local) {
    return s.ebgp ? path_prepend(paths(), path_empty(), as_) : path_empty();
  }
  if (e->learned_from == s.peer) return std::nullopt;   // never advertise back
  if (!e->ebgp_learned && !s.ebgp) return std::nullopt; // iBGP-learned: not to iBGP
  // Gao-Rexford export (valley-free): routes learned from a peer or a
  // provider are only exported to customers. Customer-learned and local
  // routes go to everyone. Policy-free sessions (kNone) skip the rule.
  if (s.relation != PeerRelation::kNone &&
      (e->learned_rel == PeerRelation::kPeer || e->learned_rel == PeerRelation::kProvider) &&
      s.relation != PeerRelation::kCustomer) {
    return std::nullopt;
  }
  if (net_.config().sender_side_loop_detection && s.ebgp &&
      path_contains(paths(), e->path, s.peer_as)) {
    return std::nullopt;  // SSLD: the peer would reject this path anyway
  }
  return s.ebgp ? path_prepend(paths(), e->path, as_) : e->path;
}

void Router::route_changed(PeerSession& s, Prefix p) {
  if (!s.up) return;
  if (net_.config().per_destination_mrai) {
    route_changed_per_dest(s, p);
    return;
  }
  if (!net_.config().mrai_applies_to_withdrawals) {
    if (!advert_content(s, p)) {
      // Current state is "no route": withdrawals bypass the MRAI (RFC 1771).
      s.pending.erase(p);
      if (s.adj_out.erase(p) > 0) send(s, p, std::nullopt);
      return;
    }
  }
  s.pending.insert(p);
  if (!s.timer_running) flush_pending(s);
}

void Router::flush_pending(PeerSession& s) {
  bool advert_sent = false;
  for (const Prefix p : s.pending) advert_sent = sync_to_peer(s, p) || advert_sent;
  s.pending.clear();
  if (advert_sent) start_mrai(s);
}

bool Router::sync_to_peer(PeerSession& s, Prefix p) {
  const auto content = advert_content(s, p);
  if (content) {
    const PathRef* out = s.adj_out.find(p);
    if (out != nullptr && *out == *content) return false;  // no news
    s.adj_out.insert_or_assign(p, *content);
    send(s, p, content);
    return true;
  }
  if (s.adj_out.erase(p) > 0) {
    send(s, p, std::nullopt);
    return net_.config().mrai_applies_to_withdrawals;
  }
  return false;
}

void Router::send(PeerSession& s, Prefix p, const std::optional<PathRef>& content) {
  UpdateMessage msg;
  msg.from = id_;
  msg.to = s.peer;
  msg.prefix = p;
  msg.withdraw = !content.has_value();
  if (content) msg.path = *content;
  auto& m = metrics();
  ++updates_sent_;
  ++m.updates_sent;
  if (msg.withdraw) {
    ++m.withdrawals_sent;
  } else {
    ++m.adverts_sent;
  }
  m.last_activity = sched().now();
  trace(TraceEvent::Kind::kUpdateSent, s.peer, p, msg.withdraw, 0,
        content ? static_cast<std::uint32_t>(path_length(paths(), *content)) : 0);
  if (par_) {
    // Delivery time and ordering key are fixed here, at send time: both are
    // pure functions of simulation state, so the receiving partition
    // executes the delivery identically no matter which thread carried it.
    net_.transmit_par(std::move(msg), sched().now() + net_.config().link_delay,
                      next_session_key(s));
  } else {
    net_.transmit(std::move(msg));
  }
}

void Router::start_mrai(PeerSession& s) {
  const sim::SimTime base = net_.mrai().interval(*this, s.peer);
  if (base <= sim::SimTime::zero()) return;  // MRAI disabled
  const sim::SimTime ivl = net_.config().jitter_timers ? rng().jittered(base) : base;
  s.timer_running = true;
  trace(TraceEvent::Kind::kMraiStarted, s.peer);
  s.timer = sched_event(
      ivl, [this, peer = s.peer] { on_mrai_expiry(peer); });
}

void Router::on_mrai_expiry(NodeId peer) {
  if (!alive_) return;
  trace(TraceEvent::Kind::kMraiExpired, peer);
  PeerSession* s = session(peer);
  s->timer_running = false;
  if (s->up && !s->pending.empty()) flush_pending(*s);
}

// --- per-destination MRAI variant --------------------------------------------

void Router::route_changed_per_dest(PeerSession& s, Prefix p) {
  if (!net_.config().mrai_applies_to_withdrawals && !advert_content(s, p)) {
    s.dest_pending.erase(p);
    if (s.adj_out.erase(p) > 0) send(s, p, std::nullopt);
    return;
  }
  // Deshpande/Sikdar gating: stable destinations (few recent changes) skip
  // the MRAI entirely; only flapping ones are rate-limited.
  if (const int min_changes = net_.config().dest_mrai_min_changes; min_changes > 0) {
    ChangeCount* cc = change_counts_.find(p);
    const double recent = cc == nullptr ? 0.0 : cc->rate.value(sched().now());
    if (recent < static_cast<double>(min_changes)) {
      sync_to_peer(s, p);  // immediate, no timer
      return;
    }
  }
  sim::EventHandle* timer = s.dest_timers.find(p);
  if (timer != nullptr && timer->pending()) {
    s.dest_pending.insert(p);
    return;
  }
  if (sync_to_peer(s, p)) {
    const sim::SimTime base = net_.mrai().interval(*this, s.peer);
    if (base <= sim::SimTime::zero()) return;
    const sim::SimTime ivl = net_.config().jitter_timers ? rng().jittered(base) : base;
    s.dest_timers.insert_or_assign(p, sched_event(
        ivl, [this, peer = s.peer, p] { on_dest_mrai_expiry(peer, p); }));
  }
}

void Router::on_dest_mrai_expiry(NodeId peer, Prefix p) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  s->dest_timers.erase(p);
  if (!s->up) return;
  if (s->dest_pending.erase(p) > 0) {
    if (sync_to_peer(*s, p)) {
      const sim::SimTime base = net_.mrai().interval(*this, s->peer);
      if (base <= sim::SimTime::zero()) return;
      const sim::SimTime ivl =
          net_.config().jitter_timers ? rng().jittered(base) : base;
      s->dest_timers.insert_or_assign(p, sched_event(
          ivl, [this, peer, p] { on_dest_mrai_expiry(peer, p); }));
    }
  }
}

// --- introspection ------------------------------------------------------------

sim::SimTime Router::unfinished_work() const {
  const auto mean = net_.config().mean_processing_delay();
  return sim::SimTime::from_ns(static_cast<std::int64_t>(queue_.size()) * mean.ns());
}

double Router::recent_utilization() { return busy_tracker_.rate(sched().now()); }

double Router::recent_message_rate() { return msg_tracker_.rate(sched().now()); }

double Router::utilization_estimate() const {
  return busy_tracker_.peek_rate(sched().now());
}

double Router::utilization_estimate_at(sim::SimTime at) const {
  return busy_tracker_.peek_rate(at);
}

double Router::message_rate_estimate() const {
  return msg_tracker_.peek_rate(sched().now());
}

double Router::recent_route_losses() { return loss_tracker_.value(sched().now()); }

std::optional<RouteEntry> Router::best(Prefix p) const {
  const RibRoute* e = loc_rib_.find(p);
  if (e == nullptr) return std::nullopt;
  RouteEntry out;
  out.path = path_materialize(paths(), e->path);
  out.learned_from = e->learned_from;
  out.ebgp_learned = e->ebgp_learned;
  out.local = e->local;
  out.learned_rel = e->learned_rel;
  return out;
}

std::vector<Prefix> Router::known_prefixes() const {
  std::vector<Prefix> out;
  out.reserve(loc_rib_.size());
  loc_rib_.for_each([&](Prefix p, const RibRoute&) { out.push_back(p); });
  return out;
}

std::optional<AsPath> Router::adj_in(NodeId peer, Prefix p) const {
  const PeerSession* s = session(peer);
  if (s == nullptr) return std::nullopt;
  const PathRef* in = s->adj_in.find(p);
  if (in == nullptr) return std::nullopt;
  return path_materialize(paths(), *in);
}

std::optional<AsPath> Router::adj_out(NodeId peer, Prefix p) const {
  const PeerSession* s = session(peer);
  if (s == nullptr) return std::nullopt;
  const PathRef* out = s->adj_out.find(p);
  if (out == nullptr) return std::nullopt;
  return path_materialize(paths(), *out);
}

bool Router::peer_session_up(NodeId peer) const {
  const PeerSession* s = session(peer);
  return s != nullptr && s->up;
}

std::vector<NodeId> Router::peers() const {
  std::vector<NodeId> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.peer);
  return out;
}

Router::StorageStats Router::storage_stats() const {
  StorageStats st;
  st.loc_rib_routes = loc_rib_.size();
  st.rib_bytes = loc_rib_.capacity_bytes();
  for (const auto& s : sessions_) {
    st.adj_in_routes += s.adj_in.size();
    st.adj_out_routes += s.adj_out.size();
    st.rib_bytes += s.adj_in.capacity_bytes() + s.adj_out.capacity_bytes() +
                    s.dest_timers.capacity_bytes() + s.damping.capacity_bytes();
  }
#ifdef BGPSIM_DEEP_COPY_PATHS
  // Flat-slot capacity misses the heap block owned by each stored AsPath.
  // Count the block's real footprint -- allocator-rounded usable size plus
  // the chunk header where glibc lets us measure it, else the capacity --
  // so deep-copy vs interned byte comparisons are honest (peak RSS agrees
  // with this accounting, not with raw capacity sums).
  auto owned = [](const AsPath& path) -> std::size_t {
    const auto& hops = path.hops();
    if (hops.capacity() == 0) return 0;
#ifdef __GLIBC__
    return malloc_usable_size(const_cast<AsId*>(hops.data())) + 8;
#else
    return hops.capacity() * sizeof(AsId);
#endif
  };
  std::size_t heap = 0;
  loc_rib_.for_each([&](Prefix, const RibRoute& e) { heap += owned(e.path); });
  for (const auto& s : sessions_) {
    s.adj_in.for_each([&](Prefix, const AsPath& a) { heap += owned(a); });
    s.adj_out.for_each([&](Prefix, const AsPath& a) { heap += owned(a); });
  }
  st.rib_bytes += heap;
#endif
  return st;
}

void Router::remap_paths(const PathTable& old, PathTable& fresh, std::vector<PathId>& memo) {
#ifndef BGPSIM_DEEP_COPY_PATHS
  // RIBs across routers overwhelmingly share paths, so the first reference
  // pays the hash + copy into `fresh` and every later one is a memo load.
  const auto remap = [&](PathRef& p) {
    PathId& m = memo[p];
    if (m == kInvalidPathId) m = fresh.intern(old.hops(p));
    p = m;
  };
  loc_rib_.for_each([&](Prefix, RibRoute& e) { remap(e.path); });
  for (auto& s : sessions_) {
    s.adj_in.for_each([&](Prefix, PathRef& p) { remap(p); });
    s.adj_out.for_each([&](Prefix, PathRef& p) { remap(p); });
  }
#else
  (void)old;
  (void)fresh;
  (void)memo;
#endif
}

void Router::damping_penalize(PeerSession& s, Prefix p, double amount) {
  const auto& cfg = net_.config().damping;
  const auto now = sched().now();
  auto& d = s.damping[p];
  // Lazy exponential decay since the last touch.
  if (d.last_decay < now && d.penalty > 0.0) {
    const double dt = (now - d.last_decay).to_seconds();
    d.penalty *= std::exp2(-dt / cfg.half_life_s);
  }
  d.last_decay = now;
  d.penalty = std::min(d.penalty + amount, cfg.max_penalty);
  if (!d.suppressed && d.penalty >= cfg.suppress_threshold) {
    d.suppressed = true;
    trace(TraceEvent::Kind::kRouteSuppressed, s.peer, p);
  }
  if (d.suppressed) {
    // (Re)schedule the reuse check for when the penalty will have decayed
    // to the reuse threshold.
    d.reuse_timer.cancel();
    const double wait_s = cfg.half_life_s * std::log2(d.penalty / cfg.reuse_threshold);
    d.reuse_timer = sched_event(
        sim::SimTime::seconds(std::max(wait_s, 0.001)),
        [this, peer = s.peer, p] { damping_reuse_check(peer, p); });
  }
}

void Router::damping_reuse_check(NodeId peer, Prefix p) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr) return;
  DampState* d = s->damping.find(p);
  if (d == nullptr || !d->suppressed) return;
  const auto now = sched().now();
  const double dt = (now - d->last_decay).to_seconds();
  d->penalty *= std::exp2(-dt / net_.config().damping.half_life_s);
  d->last_decay = now;
  if (d->penalty <= net_.config().damping.reuse_threshold) {
    d->suppressed = false;
    trace(TraceEvent::Kind::kRouteReused, peer, p);
    run_decision(p);  // the suppressed route is eligible again
  } else {
    const double wait_s = net_.config().damping.half_life_s *
                          std::log2(d->penalty / net_.config().damping.reuse_threshold);
    d->reuse_timer = sched_event(
        sim::SimTime::seconds(std::max(wait_s, 0.001)),
        [this, peer, p] { damping_reuse_check(peer, p); });
  }
}

void Router::trace(TraceEvent::Kind kind, NodeId peer, Prefix prefix, bool withdraw,
                   std::size_t batch_size, std::uint32_t path_len) {
  if (!net_.tracing()) return;
  TraceEvent event;
  event.kind = kind;
  event.at = sched().now();
  event.router = id_;
  event.peer = peer;
  event.prefix = prefix;
  event.withdraw = withdraw;
  event.batch_size = batch_size;
  event.path_len = path_len;
  net_.emit_trace(event);
}
}  // namespace bgpsim::bgp
