#include "bgp/router.hpp"

#include <algorithm>
#include <cmath>

#include "bgp/network.hpp"

namespace bgpsim::bgp {

namespace {
constexpr double kLoadTauSeconds = 2.0;  // decay window for overload signals
// Route losses indicate the *extent* of a failure, which stays relevant for
// the whole convergence episode -- decay much more slowly than load.
constexpr double kLossTauSeconds = 15.0;
}

Router::Router(Network& net, NodeId id, AsId as, bool originates)
    : net_{net},
      id_{id},
      as_{as},
      originates_{originates},
      queue_{net.config().queue, net.config().tcp_batch_limit},
      busy_tracker_{kLoadTauSeconds},
      msg_tracker_{kLoadTauSeconds},
      loss_tracker_{kLossTauSeconds} {
  // Default origin range: one prefix, numbered by the AS (the paper's
  // model). Network overrides via set_origin_range for multi-prefix runs.
  origin_base_ = as_;
  origin_count_ = originates_ ? 1 : 0;
}

void Router::set_origin_range(Prefix base, std::uint32_t count) {
  origin_base_ = base;
  origin_count_ = originates_ ? count : 0;
}

void Router::add_session(NodeId peer, AsId peer_as, bool ebgp, PeerRelation relation) {
  session_index_.emplace(peer, sessions_.size());
  auto& s = sessions_.emplace_back();
  s.peer = peer;
  s.peer_as = peer_as;
  s.ebgp = ebgp;
  s.relation = relation;
}

Router::PeerSession* Router::session(NodeId peer) {
  const auto it = session_index_.find(peer);
  return it == session_index_.end() ? nullptr : &sessions_[it->second];
}

const Router::PeerSession* Router::session(NodeId peer) const {
  const auto it = session_index_.find(peer);
  return it == session_index_.end() ? nullptr : &sessions_[it->second];
}

// --- simulation entry points -----------------------------------------------

void Router::originate() {
  if (!alive_ || !originates_) return;
  for (std::uint32_t k = 0; k < origin_count_; ++k) {
    const Prefix p = origin_base_ + k;
    trace(TraceEvent::Kind::kOriginated, 0, p);
    trace(TraceEvent::Kind::kRibChanged, 0, p);
    RouteEntry local;
    local.local = true;
    loc_rib_[p] = local;
    ++net_.metrics().rib_changes;
    net_.metrics().last_rib_change = net_.scheduler().now();
    for (auto& s : sessions_) route_changed(s, p);
  }
}

void Router::deliver(const UpdateMessage& msg) {
  if (!alive_) return;
  msg_tracker_.add(net_.scheduler().now(), 1.0);
  trace(TraceEvent::Kind::kUpdateReceived, msg.from, msg.prefix, msg.withdraw);
  WorkItem item;
  item.kind = WorkItem::Kind::kUpdate;
  item.from = msg.from;
  item.prefix = msg.prefix;
  item.withdraw = msg.withdraw;
  item.path = msg.path;
  queue_.push(std::move(item));
  maybe_start_processing();
}

void Router::peer_failed(NodeId peer) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr || !s->up) return;
  trace(TraceEvent::Kind::kPeerDown, peer);
  s->up = false;
  s->timer.cancel();
  s->timer_running = false;
  s->pending.clear();
  for (auto& [p, h] : s->dest_timers) h.cancel();
  s->dest_timers.clear();
  s->dest_pending.clear();
  s->adj_out.clear();

  if (net_.config().teardown == TeardownCost::kPerPeer) {
    WorkItem item;
    item.kind = WorkItem::Kind::kPeerDown;
    item.from = peer;
    item.prefix = kTeardownKey;
    queue_.push(std::move(item));
  } else {
    // One withdrawal-equivalent work item per route learned from the peer.
    std::vector<Prefix> prefixes;
    prefixes.reserve(s->adj_in.size());
    for (const auto& [p, path] : s->adj_in) prefixes.push_back(p);
    std::sort(prefixes.begin(), prefixes.end());  // deterministic order
    for (const Prefix p : prefixes) {
      WorkItem item;
      item.kind = WorkItem::Kind::kUpdate;
      item.from = peer;
      item.prefix = p;
      item.withdraw = true;
      queue_.push(std::move(item));
    }
  }
  maybe_start_processing();
}

void Router::fail() {
  if (!alive_) return;
  trace(TraceEvent::Kind::kRouterFailed);
  alive_ = false;
  for (auto& s : sessions_) {
    s.timer.cancel();
    s.timer_running = false;
    for (auto& [p, h] : s.dest_timers) h.cancel();
    s.dest_timers.clear();
    for (auto& [p, d] : s.damping) d.reuse_timer.cancel();
    s.damping.clear();
  }
  queue_.clear();
  cpu_busy_ = false;
}

void Router::recover() {
  if (alive_) return;
  alive_ = true;
  trace(TraceEvent::Kind::kRouterRecovered);
  loc_rib_.clear();
  queue_.clear();
  cpu_busy_ = false;
  for (auto& s : sessions_) {
    s.up = false;  // until session_established()
    s.adj_in.clear();
    s.adj_out.clear();
    s.pending.clear();
    s.dest_pending.clear();
  }
}

void Router::session_established(NodeId peer) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr || s->up) return;
  s->up = true;
  s->adj_in.clear();
  s->adj_out.clear();
  s->pending.clear();
  trace(TraceEvent::Kind::kSessionEstablished, peer);
  // A fresh BGP session starts with a full table exchange: queue every
  // Loc-RIB entry for this peer (MRAI applies as usual).
  for (const auto& [p, e] : loc_rib_) route_changed(*s, p);
}

// --- processing pipeline ----------------------------------------------------

void Router::maybe_start_processing() {
  if (!alive_ || cpu_busy_ || queue_.empty()) return;
  cpu_busy_ = true;
  auto batch = queue_.pop_batch(net_.metrics().batch_dropped);
  sim::SimTime cost;
  for (const auto& item : batch) {
    // Improved batching (future-work extension): a cheap pre-filter spots
    // updates that cannot change the Adj-RIB-In and skips their full
    // processing cost.
    if (net_.config().free_redundant_updates && !would_change(item)) continue;
    cost += net_.rng().uniform_time(net_.config().proc_min, net_.config().proc_max);
  }
  net_.scheduler().schedule_after(cost, [this, b = std::move(batch), cost]() mutable {
    if (!alive_) return;
    busy_tracker_.add(net_.scheduler().now(), cost.to_seconds());
    finish_processing(std::move(b));
  });
}

void Router::finish_processing(std::vector<WorkItem> batch) {
  cpu_busy_ = false;
  net_.metrics().messages_processed += batch.size();
  net_.metrics().last_activity = net_.scheduler().now();
  trace(TraceEvent::Kind::kBatchProcessed, 0, 0, false, batch.size());
  std::set<Prefix> affected;
  for (const auto& item : batch) apply(item, affected);
  for (const Prefix p : affected) run_decision(p);
  maybe_start_processing();
}

void Router::apply(const WorkItem& item, std::set<Prefix>& affected) {
  PeerSession* s = session(item.from);
  if (s == nullptr) return;

  if (item.kind == WorkItem::Kind::kPeerDown) {
    for (const auto& [p, path] : s->adj_in) affected.insert(p);
    s->adj_in.clear();
    return;
  }

  if (item.withdraw) {
    // Withdrawals apply even if the session has since gone down: they only
    // remove state (and model in-flight withdrawals from a dying region).
    if (s->adj_in.erase(item.prefix) > 0) {
      affected.insert(item.prefix);
      if (net_.config().damping.enabled && s->up) {
        damping_penalize(*s, item.prefix, net_.config().damping.withdrawal_penalty);
      }
    }
    return;
  }
  if (!s->up) return;  // stale advertisement from a fallen peer
  if (item.path.contains(as_)) {
    // AS-path loop: the peer's best route goes through us, so this prefix
    // is unreachable via this peer (an implicit withdrawal).
    if (s->adj_in.erase(item.prefix) > 0) {
      affected.insert(item.prefix);
      if (net_.config().damping.enabled) {
        damping_penalize(*s, item.prefix, net_.config().damping.withdrawal_penalty);
      }
    }
    return;
  }
  auto it = s->adj_in.find(item.prefix);
  if (it != s->adj_in.end() && it->second == item.path) return;  // no change
  if (net_.config().damping.enabled && it != s->adj_in.end()) {
    damping_penalize(*s, item.prefix, net_.config().damping.attribute_change_penalty);
  }
  s->adj_in[item.prefix] = item.path;
  affected.insert(item.prefix);
}

bool Router::would_change(const WorkItem& item) const {
  const PeerSession* s = session(item.from);
  if (s == nullptr) return false;
  if (item.kind == WorkItem::Kind::kPeerDown) return !s->adj_in.empty();
  if (item.withdraw) return s->adj_in.contains(item.prefix);
  if (!s->up) return false;  // stale advertisement, will be dropped
  const auto it = s->adj_in.find(item.prefix);
  if (item.path.contains(as_)) return it != s->adj_in.end();  // loop => erase
  return it == s->adj_in.end() || it->second != item.path;
}

std::optional<RouteEntry> Router::compute_best(Prefix p) const {
  std::optional<RouteEntry> best;
  if (originates_ && p >= origin_base_ && p < origin_base_ + origin_count_) {
    RouteEntry local;
    local.local = true;
    return local;
  }
  for (const auto& s : sessions_) {
    const auto it = s.adj_in.find(p);
    if (it == s.adj_in.end()) continue;
    if (net_.config().damping.enabled) {
      const auto d = s.damping.find(p);
      if (d != s.damping.end() && d->second.suppressed) continue;
    }
    RouteEntry cand;
    cand.path = it->second;
    cand.learned_from = s.peer;
    cand.ebgp_learned = s.ebgp;
    cand.learned_rel = s.relation;
    if (!best || better_route(cand, *best)) best = std::move(cand);
  }
  return best;
}

void Router::run_decision(Prefix p) {
  auto nb = compute_best(p);
  const auto cur = loc_rib_.find(p);
  const bool had = cur != loc_rib_.end();
  if (had && nb && cur->second == *nb) return;
  if (!had && !nb) return;
  if (nb) {
    loc_rib_[p] = *nb;
  } else {
    loc_rib_.erase(p);
    loss_tracker_.add(net_.scheduler().now(), 1.0);
  }
  ++net_.metrics().rib_changes;
  net_.metrics().last_rib_change = net_.scheduler().now();
  trace(TraceEvent::Kind::kRibChanged, 0, p);
  if (net_.config().per_destination_mrai && net_.config().dest_mrai_min_changes > 0) {
    change_counts_.try_emplace(p, kLoadTauSeconds).first->second.add(net_.scheduler().now(),
                                                                     1.0);
  }
  for (auto& s : sessions_) route_changed(s, p);
}

// --- advertisement scheduling ------------------------------------------------

std::optional<AsPath> Router::advert_content(const PeerSession& s, Prefix p) const {
  const auto it = loc_rib_.find(p);
  if (it == loc_rib_.end()) return std::nullopt;
  const RouteEntry& e = it->second;
  if (e.local) return s.ebgp ? AsPath{{as_}} : AsPath{};
  if (e.learned_from == s.peer) return std::nullopt;   // never advertise back
  if (!e.ebgp_learned && !s.ebgp) return std::nullopt; // iBGP-learned: not to iBGP
  // Gao-Rexford export (valley-free): routes learned from a peer or a
  // provider are only exported to customers. Customer-learned and local
  // routes go to everyone. Policy-free sessions (kNone) skip the rule.
  if (s.relation != PeerRelation::kNone &&
      (e.learned_rel == PeerRelation::kPeer || e.learned_rel == PeerRelation::kProvider) &&
      s.relation != PeerRelation::kCustomer) {
    return std::nullopt;
  }
  if (net_.config().sender_side_loop_detection && s.ebgp && e.path.contains(s.peer_as)) {
    return std::nullopt;  // SSLD: the peer would reject this path anyway
  }
  return s.ebgp ? e.path.prepended(as_) : e.path;
}

void Router::route_changed(PeerSession& s, Prefix p) {
  if (!s.up) return;
  if (net_.config().per_destination_mrai) {
    route_changed_per_dest(s, p);
    return;
  }
  if (!net_.config().mrai_applies_to_withdrawals) {
    if (!advert_content(s, p)) {
      // Current state is "no route": withdrawals bypass the MRAI (RFC 1771).
      s.pending.erase(p);
      if (s.adj_out.erase(p) > 0) send(s, p, std::nullopt);
      return;
    }
  }
  s.pending.insert(p);
  if (!s.timer_running) flush_pending(s);
}

void Router::flush_pending(PeerSession& s) {
  bool advert_sent = false;
  for (const Prefix p : s.pending) advert_sent = sync_to_peer(s, p) || advert_sent;
  s.pending.clear();
  if (advert_sent) start_mrai(s);
}

bool Router::sync_to_peer(PeerSession& s, Prefix p) {
  const auto content = advert_content(s, p);
  if (content) {
    const auto it = s.adj_out.find(p);
    if (it != s.adj_out.end() && it->second == *content) return false;  // no news
    s.adj_out[p] = *content;
    send(s, p, content);
    return true;
  }
  if (s.adj_out.erase(p) > 0) {
    send(s, p, std::nullopt);
    return net_.config().mrai_applies_to_withdrawals;
  }
  return false;
}

void Router::send(PeerSession& s, Prefix p, const std::optional<AsPath>& content) {
  UpdateMessage msg;
  msg.from = id_;
  msg.to = s.peer;
  msg.prefix = p;
  msg.withdraw = !content.has_value();
  if (content) msg.path = *content;
  auto& m = net_.metrics();
  ++m.updates_sent;
  if (msg.withdraw) {
    ++m.withdrawals_sent;
  } else {
    ++m.adverts_sent;
  }
  m.last_activity = net_.scheduler().now();
  trace(TraceEvent::Kind::kUpdateSent, s.peer, p, msg.withdraw);
  net_.transmit(std::move(msg));
}

void Router::start_mrai(PeerSession& s) {
  const sim::SimTime base = net_.mrai().interval(*this, s.peer);
  if (base <= sim::SimTime::zero()) return;  // MRAI disabled
  const sim::SimTime ivl = net_.config().jitter_timers ? net_.rng().jittered(base) : base;
  s.timer_running = true;
  trace(TraceEvent::Kind::kMraiStarted, s.peer);
  s.timer = net_.scheduler().schedule_after(
      ivl, [this, peer = s.peer] { on_mrai_expiry(peer); });
}

void Router::on_mrai_expiry(NodeId peer) {
  if (!alive_) return;
  trace(TraceEvent::Kind::kMraiExpired, peer);
  PeerSession* s = session(peer);
  s->timer_running = false;
  if (s->up && !s->pending.empty()) flush_pending(*s);
}

// --- per-destination MRAI variant --------------------------------------------

void Router::route_changed_per_dest(PeerSession& s, Prefix p) {
  if (!net_.config().mrai_applies_to_withdrawals && !advert_content(s, p)) {
    s.dest_pending.erase(p);
    if (s.adj_out.erase(p) > 0) send(s, p, std::nullopt);
    return;
  }
  // Deshpande/Sikdar gating: stable destinations (few recent changes) skip
  // the MRAI entirely; only flapping ones are rate-limited.
  if (const int min_changes = net_.config().dest_mrai_min_changes; min_changes > 0) {
    const auto cc = change_counts_.find(p);
    const double recent =
        cc == change_counts_.end() ? 0.0 : cc->second.value(net_.scheduler().now());
    if (recent < static_cast<double>(min_changes)) {
      sync_to_peer(s, p);  // immediate, no timer
      return;
    }
  }
  const auto it = s.dest_timers.find(p);
  if (it != s.dest_timers.end() && it->second.pending()) {
    s.dest_pending.insert(p);
    return;
  }
  if (sync_to_peer(s, p)) {
    const sim::SimTime base = net_.mrai().interval(*this, s.peer);
    if (base <= sim::SimTime::zero()) return;
    const sim::SimTime ivl = net_.config().jitter_timers ? net_.rng().jittered(base) : base;
    s.dest_timers[p] = net_.scheduler().schedule_after(
        ivl, [this, peer = s.peer, p] { on_dest_mrai_expiry(peer, p); });
  }
}

void Router::on_dest_mrai_expiry(NodeId peer, Prefix p) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  s->dest_timers.erase(p);
  if (!s->up) return;
  if (s->dest_pending.erase(p) > 0) {
    if (sync_to_peer(*s, p)) {
      const sim::SimTime base = net_.mrai().interval(*this, s->peer);
      if (base <= sim::SimTime::zero()) return;
      const sim::SimTime ivl =
          net_.config().jitter_timers ? net_.rng().jittered(base) : base;
      s->dest_timers[p] = net_.scheduler().schedule_after(
          ivl, [this, peer, p] { on_dest_mrai_expiry(peer, p); });
    }
  }
}

// --- introspection ------------------------------------------------------------

sim::SimTime Router::unfinished_work() const {
  const auto mean = net_.config().mean_processing_delay();
  return sim::SimTime::from_ns(static_cast<std::int64_t>(queue_.size()) * mean.ns());
}

double Router::recent_utilization() { return busy_tracker_.rate(net_.scheduler().now()); }

double Router::recent_message_rate() { return msg_tracker_.rate(net_.scheduler().now()); }

double Router::recent_route_losses() { return loss_tracker_.value(net_.scheduler().now()); }

std::optional<RouteEntry> Router::best(Prefix p) const {
  const auto it = loc_rib_.find(p);
  if (it == loc_rib_.end()) return std::nullopt;
  return it->second;
}

std::vector<Prefix> Router::known_prefixes() const {
  std::vector<Prefix> out;
  out.reserve(loc_rib_.size());
  for (const auto& [p, e] : loc_rib_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<AsPath> Router::adj_in(NodeId peer, Prefix p) const {
  const PeerSession* s = session(peer);
  if (s == nullptr) return std::nullopt;
  const auto it = s->adj_in.find(p);
  if (it == s->adj_in.end()) return std::nullopt;
  return it->second;
}

std::optional<AsPath> Router::adj_out(NodeId peer, Prefix p) const {
  const PeerSession* s = session(peer);
  if (s == nullptr) return std::nullopt;
  const auto it = s->adj_out.find(p);
  if (it == s->adj_out.end()) return std::nullopt;
  return it->second;
}

bool Router::peer_session_up(NodeId peer) const {
  const PeerSession* s = session(peer);
  return s != nullptr && s->up;
}

std::vector<NodeId> Router::peers() const {
  std::vector<NodeId> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.peer);
  return out;
}

void Router::damping_penalize(PeerSession& s, Prefix p, double amount) {
  const auto& cfg = net_.config().damping;
  const auto now = net_.scheduler().now();
  auto& d = s.damping[p];
  // Lazy exponential decay since the last touch.
  if (d.last_decay < now && d.penalty > 0.0) {
    const double dt = (now - d.last_decay).to_seconds();
    d.penalty *= std::exp2(-dt / cfg.half_life_s);
  }
  d.last_decay = now;
  d.penalty = std::min(d.penalty + amount, cfg.max_penalty);
  if (!d.suppressed && d.penalty >= cfg.suppress_threshold) {
    d.suppressed = true;
    trace(TraceEvent::Kind::kRouteSuppressed, s.peer, p);
  }
  if (d.suppressed) {
    // (Re)schedule the reuse check for when the penalty will have decayed
    // to the reuse threshold.
    d.reuse_timer.cancel();
    const double wait_s = cfg.half_life_s * std::log2(d.penalty / cfg.reuse_threshold);
    d.reuse_timer = net_.scheduler().schedule_after(
        sim::SimTime::seconds(std::max(wait_s, 0.001)),
        [this, peer = s.peer, p] { damping_reuse_check(peer, p); });
  }
}

void Router::damping_reuse_check(NodeId peer, Prefix p) {
  if (!alive_) return;
  PeerSession* s = session(peer);
  if (s == nullptr) return;
  const auto it = s->damping.find(p);
  if (it == s->damping.end() || !it->second.suppressed) return;
  auto& d = it->second;
  const auto now = net_.scheduler().now();
  const double dt = (now - d.last_decay).to_seconds();
  d.penalty *= std::exp2(-dt / net_.config().damping.half_life_s);
  d.last_decay = now;
  if (d.penalty <= net_.config().damping.reuse_threshold) {
    d.suppressed = false;
    trace(TraceEvent::Kind::kRouteReused, peer, p);
    run_decision(p);  // the suppressed route is eligible again
  } else {
    const double wait_s = net_.config().damping.half_life_s *
                          std::log2(d.penalty / net_.config().damping.reuse_threshold);
    d.reuse_timer = net_.scheduler().schedule_after(
        sim::SimTime::seconds(std::max(wait_s, 0.001)),
        [this, peer, p] { damping_reuse_check(peer, p); });
  }
}

void Router::trace(TraceEvent::Kind kind, NodeId peer, Prefix prefix, bool withdraw,
                   std::size_t batch_size) {
  if (!net_.tracing()) return;
  TraceEvent event;
  event.kind = kind;
  event.at = net_.scheduler().now();
  event.router = id_;
  event.peer = peer;
  event.prefix = prefix;
  event.withdraw = withdraw;
  event.batch_size = batch_size;
  net_.emit_trace(event);
}
}  // namespace bgpsim::bgp
