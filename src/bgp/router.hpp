// A BGP router: RIBs, decision process, serial update-processing CPU, and
// per-peer (or per-destination) MRAI-limited advertisement scheduling.
//
// The processing model is the paper's: every received update occupies the
// router's single CPU for an independent U(proc_min, proc_max) draw; route
// changes discovered while the MRAI timer runs are held in a pending set
// and flushed at expiry. Overload (a growing input queue) is therefore an
// emergent property, and is what the dynamic-MRAI and batching schemes act
// on.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/input_queue.hpp"
#include "bgp/metrics.hpp"
#include "bgp/path_table.hpp"
#include "bgp/prefix_map.hpp"
#include "bgp/trace.hpp"
#include "bgp/types.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::bgp {

class Network;

class Router {
 public:
  Router(Network& net, NodeId id, AsId as, bool originates);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void add_session(NodeId peer, AsId peer_as, bool ebgp,
                   PeerRelation relation = PeerRelation::kNone);

  // --- simulation entry points (driven by Network) ---

  /// Installs the locally-originated prefix and announces it to all peers.
  void originate();

  /// Called at message-arrival time; enqueues the update for processing.
  void deliver(const UpdateMessage& msg);

  /// A neighboring router died: the session drops and teardown work is
  /// enqueued per BgpConfig::teardown.
  void peer_failed(NodeId peer);

  /// This router dies: stops all activity.
  void fail();

  /// This router comes back up with cold RIBs; sessions stay down until
  /// session_established() fires for each live peer (Network drives this).
  void recover();

  /// (Re)establishes the session to `peer` and -- like a real BGP session
  /// start -- resends the entire Adj-RIB-Out for it.
  void session_established(NodeId peer);

  /// Sets the range of prefixes this router originates (Network assigns
  /// [base, base + count) when prefixes_per_origin > 1).
  void set_origin_range(Prefix base, std::uint32_t count);
  std::pair<Prefix, std::uint32_t> origin_range() const { return {origin_base_, origin_count_}; }

  // --- introspection (schemes, audits, tests) ---

  bool alive() const { return alive_; }
  NodeId id() const { return id_; }
  AsId as() const { return as_; }
  bool originates() const { return originates_; }
  std::size_t degree() const { return sessions_.size(); }

  std::size_t input_queue_length() const { return queue_.size(); }
  /// Queue length converted to time via the mean processing delay -- the
  /// paper's "unfinished work" overload signal (section 4.3).
  sim::SimTime unfinished_work() const;
  /// Decayed CPU utilization estimate in [0, ~1].
  double recent_utilization();
  /// Decayed received-update rate (messages/second).
  double recent_message_rate();
  /// Read-only counterparts for observers: same quantities, but without
  /// touching the decay accumulators, so sampling cannot perturb the
  /// floating-point state the dynamic-MRAI monitors read later.
  double utilization_estimate() const;
  double message_rate_estimate() const;
  /// Utilization decayed to an explicit instant instead of the router's own
  /// scheduler clock. The parallel telemetry sampler reads at a window
  /// boundary, where partition-local clocks legitimately differ by thread
  /// count -- decaying to the sample instant keeps the column a pure
  /// function of simulation history (`at` must be >= every executed event).
  double utilization_estimate_at(sim::SimTime at) const;
  /// Cumulative per-router update traffic (cheap taps for the telemetry
  /// sampler; NetMetrics only has network-wide totals).
  std::uint64_t updates_sent() const { return updates_sent_; }
  std::uint64_t updates_received() const { return updates_received_; }
  /// Decayed count of prefixes whose selected route was recently *lost*
  /// (Loc-RIB entry removed) -- a direct observable for the extent of a
  /// failure (paper section 5, future work).
  double recent_route_losses();

  /// Loc-RIB lookup; nullopt when the prefix has no selected route.
  std::optional<RouteEntry> best(Prefix p) const;
  /// All prefixes with a selected route.
  std::vector<Prefix> known_prefixes() const;
  /// Adj-RIB-In lookup (route advertised to us by `peer`), for tests.
  std::optional<AsPath> adj_in(NodeId peer, Prefix p) const;
  /// Last content advertised to `peer` for `p` (Adj-RIB-Out), for tests.
  std::optional<AsPath> adj_out(NodeId peer, Prefix p) const;

  bool peer_session_up(NodeId peer) const;
  std::vector<NodeId> peers() const;

  /// RIB occupancy and backing-store footprint (scale_suite memory
  /// accounting). Route counts are present slots; bytes are the capacity of
  /// the flat stores (excluding interned path bodies, owned by the
  /// Network's PathTable).
  struct StorageStats {
    std::size_t loc_rib_routes = 0;
    std::size_t adj_in_routes = 0;
    std::size_t adj_out_routes = 0;
    std::size_t rib_bytes = 0;
  };
  StorageStats storage_stats() const;

  /// Re-interns every RIB-held path into `fresh` (path-table compaction,
  /// driven by Network::compact_paths at quiescence -- the old table's hop
  /// blocks are then retired wholesale). `memo` maps old id -> new id
  /// (kInvalidPathId = not remapped yet, sized to the old table) so shared
  /// paths hash once across all routers instead of once per reference.
  /// No-op in deep-copy builds, where paths own their storage.
  void remap_paths(const PathTable& old, PathTable& fresh, std::vector<PathId>& memo);

  /// Schedules `fn` on this router's scheduler after `delay`, ordered by
  /// this router's internal lane in parallel mode (Network uses this for
  /// origination spread and failure-detection timers so the events land in
  /// the right partition with a partition-independent ordering key).
  sim::EventHandle schedule_event(sim::SimTime delay, sim::EventFn fn) {
    return sched_event(delay, std::move(fn));
  }

 private:
  /// Serializes/restores the full quiescent router state (checkpoint.cpp).
  friend struct CheckpointCodec;
  /// Rebinds the scheduler/metrics/rng/path-table indirection for parallel
  /// execution (Network::enable_parallel).
  friend class Network;

  /// RFC 2439 flap-damping bookkeeping for one (peer, prefix).
  struct DampState {
    double penalty = 0.0;
    sim::SimTime last_decay;
    bool suppressed = false;
    sim::EventHandle reuse_timer;
  };

  /// A Loc-RIB slot. Same fields as the public RouteEntry but the path is
  /// a PathRef (interned id by default); best() materializes a RouteEntry
  /// for introspection.
  struct RibRoute {
    PathRef path{};
    NodeId learned_from = 0;
    bool ebgp_learned = false;
    bool local = false;
    PeerRelation learned_rel = PeerRelation::kNone;

    bool operator==(const RibRoute&) const = default;
  };

  struct PeerSession {
    NodeId peer = 0;
    AsId peer_as = 0;
    bool ebgp = true;
    bool up = true;
    PeerRelation relation = PeerRelation::kNone;
    // Advertised state (Adj-RIB-Out): absent => withdrawn / never sent.
    PrefixMap<PathRef> adj_out;
    // Routes learned from this peer (Adj-RIB-In).
    PrefixMap<PathRef> adj_in;
    // Per-peer MRAI state.
    bool timer_running = false;
    sim::EventHandle timer;
    std::set<Prefix> pending;  ///< ordered => deterministic flush order
    // Per-destination MRAI state (only when cfg.per_destination_mrai);
    // grown lazily so the common per-peer-MRAI runs pay nothing.
    std::set<Prefix> dest_pending;
    PrefixMap<sim::EventHandle> dest_timers;
    // Flap-damping state (only when cfg.damping.enabled; lazily grown).
    PrefixMap<DampState> damping;
    // Parallel mode: deterministic ordering lane for messages sent over
    // this directed session ((lane << seq bits) | out_seq, assigned by
    // Network::enable_parallel in router/session order).
    std::uint64_t out_lane_base = 0;
    std::uint64_t out_seq = 0;
  };

  PeerSession* session(NodeId peer);
  const PeerSession* session(NodeId peer) const;

  // Processing pipeline.
  void maybe_start_processing();
  void finish_processing(std::vector<WorkItem> batch);
  /// Applies one work item to the Adj-RIB-In; returns prefixes whose
  /// decision process must re-run.
  void apply(const WorkItem& item, std::set<Prefix>& affected);
  /// True if applying `item` would modify the Adj-RIB-In (pre-filter for
  /// BgpConfig::free_redundant_updates).
  bool would_change(const WorkItem& item) const;
  void run_decision(Prefix p);
  std::optional<RibRoute> compute_best(Prefix p) const;
  /// The decision-process preference order over internal RIB slots; the
  /// same comparator as the public better_route() (see better_route_by).
  bool better_rib(const RibRoute& a, const RibRoute& b) const;

  // Advertisement scheduling.
  void route_changed(PeerSession& s, Prefix p);
  void flush_pending(PeerSession& s);
  /// What we would advertise to `s` for `p`; nullopt => withdraw.
  std::optional<PathRef> advert_content(const PeerSession& s, Prefix p) const;
  /// Brings the peer's Adj-RIB-Out in sync with the Loc-RIB; returns true
  /// if an *advertisement* was sent (withdrawals do not restart the MRAI
  /// unless configured to).
  bool sync_to_peer(PeerSession& s, Prefix p);
  void start_mrai(PeerSession& s);
  void on_mrai_expiry(NodeId peer);
  // Per-destination MRAI variant.
  void route_changed_per_dest(PeerSession& s, Prefix p);
  void on_dest_mrai_expiry(NodeId peer, Prefix p);
  void send(PeerSession& s, Prefix p, const std::optional<PathRef>& content);
  void trace(TraceEvent::Kind kind, NodeId peer = 0, Prefix prefix = 0, bool withdraw = false,
             std::size_t batch_size = 0, std::uint32_t path_len = 0);
  // Flap damping.
  void damping_penalize(PeerSession& s, Prefix p, double amount);
  void damping_reuse_check(NodeId peer, Prefix p);

  // Indirection points for the execution backend. In the (default) serial
  // mode they alias the Network's own scheduler/metrics/rng/path table, so
  // every call site is identical to a direct access; enable_parallel
  // rebinds them to this router's partition. Accessed through the inline
  // helpers below so protocol code reads the same either way.
  sim::Scheduler& sched() { return *sched_; }
  const sim::Scheduler& sched() const { return *sched_; }
  NetMetrics& metrics() { return *metrics_; }
  sim::Rng& rng() { return *rng_; }
  // Const methods still intern (advert_content materializes the would-be
  // advertisement) -- same mutability the old net_.paths() indirection gave
  // const members through the non-const Network reference.
  PathTable& paths() const { return *paths_; }

  /// schedule_after in serial mode; keyed on this router's internal lane in
  /// parallel mode (same-time events then order by (lane, seq), which is a
  /// pure function of simulation state -- see DESIGN.md "Parallel
  /// execution").
  sim::EventHandle sched_event(sim::SimTime delay, sim::EventFn fn);
  std::uint64_t next_internal_key();
  std::uint64_t next_session_key(PeerSession& s);

  Network& net_;
  NodeId id_;
  AsId as_;
  bool originates_;
  bool alive_ = true;
  sim::Scheduler* sched_ = nullptr;
  NetMetrics* metrics_ = nullptr;
  sim::Rng* rng_ = nullptr;
  PathTable* paths_ = nullptr;
  bool par_ = false;
  std::uint64_t internal_lane_base_ = 0;
  std::uint64_t internal_seq_ = 0;
  std::uint64_t lane_seq_limit_ = 0;  ///< 2^(seq bits); per-lane overflow cap
  Prefix origin_base_ = 0;
  std::uint32_t origin_count_ = 0;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t updates_received_ = 0;

  static constexpr double kLoadTauSeconds = 2.0;  ///< decay window for overload signals
  // Route losses indicate the *extent* of a failure, which stays relevant
  // for the whole convergence episode -- decay much more slowly than load.
  static constexpr double kLossTauSeconds = 15.0;

  std::vector<PeerSession> sessions_;
  /// NodeId -> index into sessions_; kNoSession for non-peers. Replaces the
  /// per-lookup hash of the old unordered_map session index.
  static constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;
  std::vector<std::uint32_t> session_of_node_;

  PrefixMap<RibRoute> loc_rib_;

  InputQueue queue_;
  bool cpu_busy_ = false;

  DecayingRate busy_tracker_;
  DecayingRate msg_tracker_;
  DecayingRate loss_tracker_;
  /// Recent per-prefix route-change counts (Deshpande/Sikdar-style gating
  /// of the per-destination MRAI). Wrapped so the flat map's slots are
  /// default-constructible with the right decay constant.
  struct ChangeCount {
    DecayingRate rate{kLoadTauSeconds};
  };
  PrefixMap<ChangeCount> change_counts_;
};

}  // namespace bgpsim::bgp
