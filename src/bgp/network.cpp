#include "bgp/network.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <span>
#include <stdexcept>

#include "topo/partition.hpp"

namespace bgpsim::bgp {

namespace {

/// splitmix64 finalizer over (seed, router id): each router gets an
/// independent RNG stream that is a pure function of the network seed and
/// its own id -- never of the partitioning -- so per-router draws are
/// identical at every thread count.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t id) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Network::Network(const topo::Graph& g, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
                 std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed}, seed_{seed} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto n = static_cast<NodeId>(g.size());
  node_space_ = n;
  prefix_space_ = static_cast<std::size_t>(n) * std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  positions_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    routers_.push_back(std::make_unique<Router>(*this, v, /*as=*/v, /*originates=*/true));
    positions_.push_back(g.position(v));
  }
  for (const auto& [a, b] : g.edges()) {
    routers_[a]->add_session(b, /*peer_as=*/b, /*ebgp=*/true);
    routers_[b]->add_session(a, /*peer_as=*/a, /*ebgp=*/true);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(v * cfg_.prefixes_per_origin, cfg_.prefixes_per_origin);
    }
  }
}

Network::Network(const topo::HierTopology& h, BgpConfig cfg,
                 std::shared_ptr<MraiController> mrai, std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed}, seed_{seed} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto n = static_cast<NodeId>(h.num_routers());
  node_space_ = n;
  prefix_space_ = h.origin_router.size() *
                  std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto as = h.as_of_router[v];
    const bool origin = h.origin_router[as] == v;
    routers_.push_back(std::make_unique<Router>(*this, v, as, origin));
  }
  positions_ = h.router_pos;
  for (const auto& s : h.sessions) {
    routers_[s.a]->add_session(s.b, h.as_of_router[s.b], s.ebgp);
    routers_[s.b]->add_session(s.a, h.as_of_router[s.a], s.ebgp);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(h.as_of_router[v] * cfg_.prefixes_per_origin,
                                    cfg_.prefixes_per_origin);
    }
  }
}

Network::Network(const topo::AsRelGraph& ar, BgpConfig cfg,
                 std::shared_ptr<MraiController> mrai, std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed}, seed_{seed}, policy_routing_{true} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto& g = ar.graph;
  const auto n = static_cast<NodeId>(g.size());
  node_space_ = n;
  prefix_space_ = static_cast<std::size_t>(n) * std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  positions_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    routers_.push_back(std::make_unique<Router>(*this, v, /*as=*/v, /*originates=*/true));
    positions_.push_back(g.position(v));
  }
  for (const auto& [a, b] : g.edges()) {
    PeerRelation a_sees_b = PeerRelation::kPeer;
    PeerRelation b_sees_a = PeerRelation::kPeer;
    if (ar.relationship(a, b) == topo::Relationship::kProviderCustomer) {
      if (ar.is_provider(a, b)) {
        a_sees_b = PeerRelation::kCustomer;  // b is a's customer
        b_sees_a = PeerRelation::kProvider;
      } else {
        a_sees_b = PeerRelation::kProvider;
        b_sees_a = PeerRelation::kCustomer;
      }
    }
    routers_[a]->add_session(b, /*peer_as=*/b, /*ebgp=*/true, a_sees_b);
    routers_[b]->add_session(a, /*peer_as=*/a, /*ebgp=*/true, b_sees_a);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(v * cfg_.prefixes_per_origin, cfg_.prefixes_per_origin);
    }
  }
}

void Network::begin_injection() {
  if (par_k_ == 0) return;
  ++trace_epoch_;
  injecting_ = true;
}

void Network::end_injection() { injecting_ = false; }

void Network::start() {
  begin_injection();
  for (auto& r : routers_) {
    if (!r->originates()) continue;
    // Parallel mode draws the spread from the router's own stream and keys
    // the event on its internal lane, so the origination schedule is a pure
    // function of (seed, id) -- identical at every thread count.
    sim::Rng& rng = par_k_ == 0 ? rng_ : par_rngs_[r->id()];
    const sim::SimTime delay =
        cfg_.origination_spread > sim::SimTime::zero()
            ? rng.uniform_time(sim::SimTime::zero(), cfg_.origination_spread)
            : sim::SimTime::zero();
    if (par_k_ == 0) {
      sched_.schedule_after(delay, [router = r.get()] { router->originate(); });
    } else {
      r->schedule_event(delay, [router = r.get()] { router->originate(); });
    }
  }
  end_injection();
}

void Network::fail_nodes(const std::vector<NodeId>& victims) {
  begin_injection();
  for (const NodeId v : victims) router(v).fail();
  for (const NodeId v : victims) {
    for (const NodeId peer : router(v).peers()) {
      if (!router(peer).alive()) continue;
      if (cfg_.failure_detection_delay <= sim::SimTime::zero()) {
        router(peer).peer_failed(v);
      } else {
        // BGP hold timer: each survivor notices the dead peer after
        // U(0.5, 1.0) x the configured detection delay. Parallel mode draws
        // from the survivor's stream and schedules into its partition
        // (victims and peers are iterated in a fixed order, so each
        // survivor's draw sequence is partition-independent).
        sim::Rng& rng = par_k_ == 0 ? rng_ : par_rngs_[peer];
        const auto delay = cfg_.failure_detection_delay * rng.uniform(0.5, 1.0);
        auto notice = [this, peer, v] {
          if (routers_[peer]->alive()) routers_[peer]->peer_failed(v);
        };
        if (par_k_ == 0) {
          sched_.schedule_after(delay, std::move(notice));
        } else {
          routers_[peer]->schedule_event(delay, std::move(notice));
        }
      }
    }
  }
  end_injection();
}

void Network::recover_nodes(const std::vector<NodeId>& nodes) {
  begin_injection();
  for (const NodeId v : nodes) router(v).recover();
  for (const NodeId v : nodes) {
    for (const NodeId peer : router(v).peers()) {
      if (!router(peer).alive()) continue;
      router(v).session_established(peer);
      router(peer).session_established(v);
    }
  }
  for (const NodeId v : nodes) router(v).originate();
  end_injection();
}

void Network::compact_paths() {
#ifndef BGPSIM_DEEP_COPY_PATHS
  if (par_k_ == 0) {
    PathTable fresh;
    std::vector<PathId> memo(paths_.size(), kInvalidPathId);
    for (auto& r : routers_) r->remap_paths(paths_, fresh, memo);
    fresh.shrink_to_fit();
    // Retires the old epoch's hop blocks wholesale: the chunked arena frees
    // block-by-block here instead of one monolithic allocation.
    paths_ = std::move(fresh);
    return;
  }
  // Parallel mode: partition tables compact independently ("per-partition
  // arenas merged at quiescence" -- each table shrinks to its partition's
  // live set; run on the barrier thread while the workers are parked).
  for (auto& part : parts_) {
    PathTable fresh;
    std::vector<PathId> memo(part->paths.size(), kInvalidPathId);
    for (const NodeId v : part->members) routers_[v]->remap_paths(part->paths, fresh, memo);
    fresh.shrink_to_fit();
    part->paths = std::move(fresh);  // member address stable: router pointers survive
  }
#endif
}

std::vector<NodeId> Network::alive_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < routers_.size(); ++v) {
    if (routers_[v]->alive()) out.push_back(v);
  }
  return out;
}

void Network::transmit(UpdateMessage msg) {
  sched_.schedule_after(cfg_.link_delay, [this, m = std::move(msg)] {
    routers_[m.to]->deliver(m);
  });
}

// --- parallel execution -------------------------------------------------------

Network::~Network() {
  if (!workers_.empty()) {
    {
      std::lock_guard lk{par_mu_};
      shutdown_ = true;
    }
    par_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }
}

void Network::enable_parallel(std::size_t threads) {
  if (threads == 0) return;
  if (par_k_ != 0) throw std::logic_error{"Network: parallel mode already enabled"};
  if (sched_.executed_events() != 0 || !sched_.empty()) {
    throw std::logic_error{"Network: enable_parallel() must be called before start()"};
  }
  if (cfg_.link_delay <= sim::SimTime::zero()) {
    throw std::invalid_argument{
        "Network: parallel execution requires link_delay > 0 -- it is the "
        "conservative window lookahead"};
  }
  const std::size_t n = routers_.size();
  if (n == 0) throw std::logic_error{"Network: cannot parallelize an empty network"};
  const std::size_t k = std::min(threads, n);

  // Greedy edge-cut partition of the session graph (deterministic).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId peer : routers_[v]->peers()) adj[v].push_back(peer);
  }
  part_of_ = topo::partition_greedy(adj, k).part_of;
  par_k_ = k;
  lookahead_ = cfg_.link_delay;

  // Ordering lanes: one per router (timers, processing completions) plus
  // one per directed session (messages), numbered in (router, session)
  // order -- a pure function of the topology, independent of k. The 40-bit
  // scheduler key is split into lane | per-lane sequence.
  std::uint64_t lanes = n;
  for (NodeId v = 0; v < n; ++v) lanes += routers_[v]->sessions_.size();
  const auto lane_bits = static_cast<std::uint64_t>(lanes <= 1 ? 1 : std::bit_width(lanes - 1));
  if (lane_bits >= 36) {
    throw std::length_error{"Network: too many ordering lanes for 40-bit scheduler keys"};
  }
  const std::uint64_t seq_bits = 40 - lane_bits;
  const std::uint64_t seq_limit = std::uint64_t{1} << seq_bits;

  parts_.clear();
  for (std::size_t p = 0; p < k; ++p) parts_.push_back(std::make_unique<Partition>());
  for (NodeId v = 0; v < n; ++v) parts_[part_of_[v]]->members.push_back(v);
  mailbox_.assign(k * k, {});

  par_rngs_.clear();
  par_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) par_rngs_.emplace_back(mix_seed(seed_, v));

  std::uint64_t next_lane = n;
  for (NodeId v = 0; v < n; ++v) {
    Router& r = *routers_[v];
    Partition& part = *parts_[part_of_[v]];
    r.par_ = true;
    r.sched_ = &part.sched;
    r.metrics_ = &part.metrics;
    r.rng_ = &par_rngs_[v];
#ifndef BGPSIM_DEEP_COPY_PATHS
    r.paths_ = &part.paths;
#endif
    r.lane_seq_limit_ = seq_limit;
    r.internal_lane_base_ = static_cast<std::uint64_t>(v) << seq_bits;
    for (auto& s : r.sessions_) s.out_lane_base = next_lane++ << seq_bits;
  }
  mrai_->prepare_parallel(n);

  // k - 1 workers for partitions 1..k-1; the thread that calls
  // run_to_quiescence drives partition 0 and the window barriers.
  for (std::size_t w = 1; w < k; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void Network::worker_loop(std::size_t part) {
  std::uint64_t seen = 0;
  for (;;) {
    sim::SimTime limit;
    {
      std::unique_lock lk{par_mu_};
      par_cv_.wait(lk, [&] { return shutdown_ || window_gen_ != seen; });
      if (shutdown_) return;
      seen = window_gen_;
      limit = window_limit_;
    }
    // The profiling flag and busy_ns_ slot are safe to touch here: the
    // barrier thread writes them strictly before the window-release and
    // reads busy_ns_ strictly after the window-done hand-off, both under
    // par_mu_.
    if (par_profile_enabled_) {
      const auto t0 = std::chrono::steady_clock::now();
      parts_[part]->sched.run_until(limit);
      busy_ns_[part] = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      parts_[part]->sched.run_until(limit);
    }
    {
      std::lock_guard lk{par_mu_};
      ++workers_done_;
    }
    par_cv_.notify_all();
  }
}

void Network::ensure_profile_scratch() {
  par_profile_.partitions = par_k_;
  busy_ns_.assign(par_k_, 0);
  prev_executed_.assign(par_k_, 0);
  if (drain_msgs_.size() != par_k_) {
    drain_msgs_.assign(par_k_, 0);
    drain_bytes_.assign(par_k_, 0);
    drain_reinterned_.assign(par_k_, 0);
  }
}

sim::SimTime Network::run_par() {
  ++trace_epoch_;  // one epoch per run phase; K-independent like the others
  const bool prof = par_profile_enabled_;
  if (prof) ensure_profile_scratch();
  for (;;) {
    // Deliver parked cross-partition messages before looking for the next
    // window: the previous window's sends, and -- between run_to_quiescence
    // calls -- injection-time sends (recover_nodes re-establishing sessions
    // fires full-table resends over cut edges with no window barrier to
    // drain them). Only after the drain do the partition heaps hold every
    // pending event, making tmin the true next simulation instant.
    drain_mailboxes();
    sim::SimTime tmin = sim::SimTime::max();
    for (auto& p : parts_) tmin = std::min(tmin, p->sched.next_event_time());
    if (tmin == sim::SimTime::max()) break;  // quiescent
    if (window_observer_) window_observer_->on_window_start(tmin);

    // Conservative window [tmin, tmin + lookahead): any message sent at
    // t >= tmin arrives at t + link_delay >= window end, so partitions
    // cannot affect each other inside the window. The observer may pull the
    // end down to its next due instant -- a shorter window is still
    // conservative, and the clamp sequence is a pure function of (tmin,
    // due) so it is identical at every thread count. SimTime is integral
    // ns; run_until is inclusive, hence the -1.
    sim::SimTime window_end = tmin + lookahead_;
    if (window_observer_) {
      const sim::SimTime due = window_observer_->due_ceiling();
      if (due > tmin && due < window_end) window_end = due;
    }
    const sim::SimTime limit = sim::SimTime::from_ns(window_end.ns() - 1);
    if (prof) {
      for (std::size_t p = 0; p < par_k_; ++p) {
        prev_executed_[p] = parts_[p]->sched.executed_events();
      }
    }
    if (!workers_.empty()) {
      {
        std::lock_guard lk{par_mu_};
        window_limit_ = limit;
        workers_done_ = 0;
        ++window_gen_;
      }
      par_cv_.notify_all();
    }
    if (prof) {
      const auto t0 = std::chrono::steady_clock::now();
      parts_[0]->sched.run_until(limit);
      busy_ns_[0] = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      parts_[0]->sched.run_until(limit);
    }
    if (!workers_.empty()) {
      std::unique_lock lk{par_mu_};
      par_cv_.wait(lk, [&] { return workers_done_ == workers_.size(); });
    }
    // Workers are parked again: cross-partition sends from this window sit
    // in the mailboxes and are drained at the top of the next iteration.
    if (prof) {
      par_profile_.window_start_s.push_back(tmin.to_seconds());
      par_profile_.window_end_s.push_back(window_end.to_seconds());
      for (std::size_t p = 0; p < par_k_; ++p) {
        par_profile_.busy_s.push_back(static_cast<double>(busy_ns_[p]) * 1e-9);
        par_profile_.executed.push_back(parts_[p]->sched.executed_events() -
                                        prev_executed_[p]);
        par_profile_.mailbox_msgs.push_back(drain_msgs_[p]);
        par_profile_.mailbox_bytes.push_back(drain_bytes_[p]);
        par_profile_.reinterned.push_back(drain_reinterned_[p]);
        drain_msgs_[p] = 0;
        drain_bytes_[p] = 0;
        drain_reinterned_[p] = 0;
      }
    }
    merge_metrics();
    if (window_observer_) window_observer_->on_window_end(window_end);
  }
  merge_metrics();
  return now();
}

void Network::schedule_delivery(Partition& part, sim::SimTime at, std::uint64_t key,
                                UpdateMessage msg) {
  part.sched.schedule_keyed(at, key,
                            [this, m = std::move(msg)] { routers_[m.to]->deliver(m); });
}

void Network::transmit_par(UpdateMessage msg, sim::SimTime at, std::uint64_t key) {
  const std::uint32_t sp = part_of_[msg.from];
  const std::uint32_t dp = part_of_[msg.to];
  if (sp == dp) {
    schedule_delivery(*parts_[dp], at, key, std::move(msg));
    return;
  }
  Envelope env;
  env.at = at;
  env.key = key;
#ifndef BGPSIM_DEEP_COPY_PATHS
  // PathIds are partition-local: carry the materialized hops across and
  // re-intern into the receiver's table at the barrier.
  if (!msg.withdraw) {
    const auto h = parts_[sp]->paths.hops(msg.path);
    env.hops.assign(h.begin(), h.end());
  }
#endif
  env.msg = std::move(msg);
  mailbox_[sp * par_k_ + dp].push_back(std::move(env));
}

void Network::drain_mailboxes() {
  // Fixed drain order (sender partition, then send sequence within each
  // box). The order is semantically irrelevant -- every delivery carries a
  // partition-independent (time, lane, seq) key that fixes its execution
  // order -- but keeping it deterministic makes the heap layout, and thus
  // any tie-breaking-by-slot bug, reproducible too.
  const bool prof = par_profile_enabled_ && !drain_msgs_.empty();
  for (std::size_t sp = 0; sp < par_k_; ++sp) {
    for (std::size_t dp = 0; dp < par_k_; ++dp) {
      auto& box = mailbox_[sp * par_k_ + dp];
      for (auto& env : box) {
        if (prof) {
          ++drain_msgs_[dp];
          drain_bytes_[dp] += sizeof(Envelope) + env.hops.size() * sizeof(AsId);
        }
#ifndef BGPSIM_DEEP_COPY_PATHS
        if (!env.msg.withdraw) {
          env.msg.path = parts_[dp]->paths.intern(std::span<const AsId>{env.hops});
          if (prof) ++drain_reinterned_[dp];
        }
#endif
        schedule_delivery(*parts_[dp], env.at, env.key, std::move(env.msg));
      }
      box.clear();
    }
  }
}

void Network::merge_metrics() {
  // Counters sum, high-water times max: every NetMetrics field is
  // order-independent under this fold, which is what makes per-partition
  // shards equivalent to the serial single struct.
  NetMetrics merged;
  for (auto& p : parts_) {
    const NetMetrics& m = p->metrics;
    merged.updates_sent += m.updates_sent;
    merged.adverts_sent += m.adverts_sent;
    merged.withdrawals_sent += m.withdrawals_sent;
    merged.messages_processed += m.messages_processed;
    merged.batch_dropped += m.batch_dropped;
    merged.rib_changes += m.rib_changes;
    merged.last_rib_change = std::max(merged.last_rib_change, m.last_rib_change);
    merged.last_activity = std::max(merged.last_activity, m.last_activity);
  }
  metrics_ = merged;
}

sim::SimTime Network::now() const {
  if (par_k_ == 0) return sched_.now();
  sim::SimTime t;
  for (const auto& p : parts_) t = std::max(t, p->sched.now());
  return t;
}

std::uint64_t Network::executed_events() const {
  if (par_k_ == 0) return sched_.executed_events();
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->sched.executed_events();
  return total;
}

void Network::advance_all(sim::SimTime t) {
  if (par_k_ == 0) {
    sched_.advance_to(t);
    return;
  }
  for (auto& p : parts_) p->sched.advance_to(t);
}

void Network::emit_trace_par(const TraceEvent& event) {
  // Routers only report events about themselves, so during a window the
  // emitting thread IS the owner of partition p -- the per-partition
  // ShardCtx and sink stream need no locking.
  const std::uint32_t p = part_of_[event.router];
  if (injecting_) {
    // Main-thread injection (start / fail / recover): no scheduler callback
    // is executing, so order by a global emission sequence instead. All
    // injection events within one epoch share the same timestamp, and the
    // epoch-first merge comparison keeps them ahead of the following run.
    shard_trace_->on_event(p, event, TraceOrder{trace_epoch_, injection_seq_++, 0});
    return;
  }
  Partition& part = *parts_[p];
  auto& ctx = part.shard;
  const std::uint64_t key = part.sched.current_key();
  const sim::SimTime at = part.sched.now();
  if (ctx.last_key != key || ctx.last_at != at) {
    ctx.last_key = key;
    ctx.last_at = at;
    ctx.emit = 0;
  }
  shard_trace_->on_event(p, event, TraceOrder{trace_epoch_, key, ctx.emit++});
}

double ParProfile::imbalance_factor() const {
  if (empty() || partitions == 0) return 0.0;
  double sum_max = 0.0;
  double sum_mean = 0.0;
  for (std::size_t w = 0; w < windows(); ++w) {
    double worst = 0.0;
    double total = 0.0;
    for (std::size_t p = 0; p < partitions; ++p) {
      const double b = busy_s[w * partitions + p];
      worst = std::max(worst, b);
      total += b;
    }
    sum_max += worst;
    sum_mean += total / static_cast<double>(partitions);
  }
  return sum_mean > 0.0 ? sum_max / sum_mean : 1.0;
}

double ParProfile::barrier_overhead_fraction() const {
  if (empty() || partitions == 0) return 0.0;
  double sum_busy = 0.0;
  double sum_max = 0.0;
  for (std::size_t w = 0; w < windows(); ++w) {
    double worst = 0.0;
    for (std::size_t p = 0; p < partitions; ++p) {
      const double b = busy_s[w * partitions + p];
      worst = std::max(worst, b);
      sum_busy += b;
    }
    sum_max += worst;
  }
  const double span = static_cast<double>(partitions) * sum_max;
  return span > 0.0 ? 1.0 - sum_busy / span : 0.0;
}

std::vector<std::uint64_t> ParProfile::critical_histogram() const {
  std::vector<std::uint64_t> hist(partitions, 0);
  for (std::size_t w = 0; w < windows(); ++w) {
    std::size_t argmax = 0;
    for (std::size_t p = 1; p < partitions; ++p) {
      if (busy_s[w * partitions + p] > busy_s[w * partitions + argmax]) argmax = p;
    }
    if (!hist.empty()) ++hist[argmax];
  }
  return hist;
}

double Network::min_path_capacity_remaining() const {
#ifdef BGPSIM_DEEP_COPY_PATHS
  return 1.0;  // deep copies have no structural cap
#else
  if (par_k_ == 0) return paths_.capacity_remaining();
  double rem = 1.0;
  for (const auto& p : parts_) rem = std::min(rem, p->paths.capacity_remaining());
  return rem;
#endif
}

}  // namespace bgpsim::bgp
