#include "bgp/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace bgpsim::bgp {

Network::Network(const topo::Graph& g, BgpConfig cfg, std::shared_ptr<MraiController> mrai,
                 std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto n = static_cast<NodeId>(g.size());
  node_space_ = n;
  prefix_space_ = static_cast<std::size_t>(n) * std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  positions_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    routers_.push_back(std::make_unique<Router>(*this, v, /*as=*/v, /*originates=*/true));
    positions_.push_back(g.position(v));
  }
  for (const auto& [a, b] : g.edges()) {
    routers_[a]->add_session(b, /*peer_as=*/b, /*ebgp=*/true);
    routers_[b]->add_session(a, /*peer_as=*/a, /*ebgp=*/true);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(v * cfg_.prefixes_per_origin, cfg_.prefixes_per_origin);
    }
  }
}

Network::Network(const topo::HierTopology& h, BgpConfig cfg,
                 std::shared_ptr<MraiController> mrai, std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto n = static_cast<NodeId>(h.num_routers());
  node_space_ = n;
  prefix_space_ = h.origin_router.size() *
                  std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto as = h.as_of_router[v];
    const bool origin = h.origin_router[as] == v;
    routers_.push_back(std::make_unique<Router>(*this, v, as, origin));
  }
  positions_ = h.router_pos;
  for (const auto& s : h.sessions) {
    routers_[s.a]->add_session(s.b, h.as_of_router[s.b], s.ebgp);
    routers_[s.b]->add_session(s.a, h.as_of_router[s.a], s.ebgp);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(h.as_of_router[v] * cfg_.prefixes_per_origin,
                                    cfg_.prefixes_per_origin);
    }
  }
}

Network::Network(const topo::AsRelGraph& ar, BgpConfig cfg,
                 std::shared_ptr<MraiController> mrai, std::uint64_t seed)
    : cfg_{cfg}, mrai_{std::move(mrai)}, rng_{seed}, policy_routing_{true} {
  if (!mrai_) throw std::invalid_argument{"Network: null MraiController"};
  const auto& g = ar.graph;
  const auto n = static_cast<NodeId>(g.size());
  node_space_ = n;
  prefix_space_ = static_cast<std::size_t>(n) * std::max<std::uint32_t>(1, cfg_.prefixes_per_origin);
  routers_.reserve(n);
  positions_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    routers_.push_back(std::make_unique<Router>(*this, v, /*as=*/v, /*originates=*/true));
    positions_.push_back(g.position(v));
  }
  for (const auto& [a, b] : g.edges()) {
    PeerRelation a_sees_b = PeerRelation::kPeer;
    PeerRelation b_sees_a = PeerRelation::kPeer;
    if (ar.relationship(a, b) == topo::Relationship::kProviderCustomer) {
      if (ar.is_provider(a, b)) {
        a_sees_b = PeerRelation::kCustomer;  // b is a's customer
        b_sees_a = PeerRelation::kProvider;
      } else {
        a_sees_b = PeerRelation::kProvider;
        b_sees_a = PeerRelation::kCustomer;
      }
    }
    routers_[a]->add_session(b, /*peer_as=*/b, /*ebgp=*/true, a_sees_b);
    routers_[b]->add_session(a, /*peer_as=*/a, /*ebgp=*/true, b_sees_a);
  }
  if (cfg_.prefixes_per_origin > 1) {
    for (NodeId v = 0; v < n; ++v) {
      routers_[v]->set_origin_range(v * cfg_.prefixes_per_origin, cfg_.prefixes_per_origin);
    }
  }
}

void Network::start() {
  for (auto& r : routers_) {
    if (!r->originates()) continue;
    const sim::SimTime delay =
        cfg_.origination_spread > sim::SimTime::zero()
            ? rng_.uniform_time(sim::SimTime::zero(), cfg_.origination_spread)
            : sim::SimTime::zero();
    sched_.schedule_after(delay, [router = r.get()] { router->originate(); });
  }
}

void Network::fail_nodes(const std::vector<NodeId>& victims) {
  for (const NodeId v : victims) router(v).fail();
  for (const NodeId v : victims) {
    for (const NodeId peer : router(v).peers()) {
      if (!router(peer).alive()) continue;
      if (cfg_.failure_detection_delay <= sim::SimTime::zero()) {
        router(peer).peer_failed(v);
      } else {
        // BGP hold timer: each survivor notices the dead peer after
        // U(0.5, 1.0) x the configured detection delay.
        const auto delay = cfg_.failure_detection_delay * rng_.uniform(0.5, 1.0);
        sched_.schedule_after(delay, [this, peer, v] {
          if (routers_[peer]->alive()) routers_[peer]->peer_failed(v);
        });
      }
    }
  }
}

void Network::recover_nodes(const std::vector<NodeId>& nodes) {
  for (const NodeId v : nodes) router(v).recover();
  for (const NodeId v : nodes) {
    for (const NodeId peer : router(v).peers()) {
      if (!router(peer).alive()) continue;
      router(v).session_established(peer);
      router(peer).session_established(v);
    }
  }
  for (const NodeId v : nodes) router(v).originate();
}

void Network::compact_paths() {
#ifndef BGPSIM_DEEP_COPY_PATHS
  PathTable fresh;
  std::vector<PathId> memo(paths_.size(), kInvalidPathId);
  for (auto& r : routers_) r->remap_paths(paths_, fresh, memo);
  fresh.shrink_to_fit();
  // Retires the old epoch's hop blocks wholesale: the chunked arena frees
  // block-by-block here instead of one monolithic allocation.
  paths_ = std::move(fresh);
#endif
}

std::vector<NodeId> Network::alive_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < routers_.size(); ++v) {
    if (routers_[v]->alive()) out.push_back(v);
  }
  return out;
}

void Network::transmit(UpdateMessage msg) {
  sched_.schedule_after(cfg_.link_delay, [this, m = std::move(msg)] {
    routers_[m.to]->deliver(m);
  });
}

}  // namespace bgpsim::bgp
