// Quiescent checkpoint/restore (.bgck).
//
// At quiescence the event heap is empty -- no updates in flight, no MRAI
// or damping timers running, no router mid-processing -- so the full
// simulation state collapses to plain data: the scheduler's clock and
// counters, the RNG stream position, the network metrics, the scheme's
// adaptive state, the path dictionary and every router's RIBs, session
// flags, damping penalties and decay accumulators. capture_checkpoint()
// serializes exactly that; restore_checkpoint() loads it into a network
// built from the same configuration, after which the run continues
// bit-identically to one that never stopped (the warm-start identity
// argument lives in DESIGN.md "Checkpointing").
//
// On-disk format (.bgck, little-endian, same conventions as .bgtr/.bgtl):
//
//   "BGCK" | u16 version | u16 flags | u64 config_digest |
//   f64 initial_convergence_s | u32 state_len | state bytes
//
// flags bit 0 records whether the producing build interned paths or
// deep-copied them (-DBGPSIM_DEEP_COPY_PATHS); a checkpoint only restores
// into the same mode. The state blob is length-prefixed throughout, so a
// file that died mid-write is detected and rejected, never half-applied.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bgpsim::bgp {

class Network;

inline constexpr char kCheckpointMagic[4] = {'B', 'G', 'C', 'K'};
inline constexpr std::uint16_t kCheckpointVersion = 1;
/// Header flag: the producing build deep-copied paths instead of interning.
inline constexpr std::uint16_t kCheckpointFlagDeepCopyPaths = 1u << 0;

/// A captured quiescent state plus the metadata needed to validate and
/// resume from it.
struct Checkpoint {
  /// Caller-supplied identity of (topology, scheme, bgp config, seed); a
  /// restore with a different digest is refused (the state would silently
  /// diverge from what the configuration would have produced).
  std::uint64_t config_digest = 0;
  /// Simulated seconds the producer took to reach initial convergence
  /// (reported as RunResult::initial_convergence_s by warm runs).
  double initial_convergence_s = 0.0;
  /// Opaque serialized network state.
  std::string state;
};

/// Serializes `net`'s state. Throws std::logic_error unless the network is
/// quiescent (empty scheduler, idle routers, no pending advertisements).
Checkpoint capture_checkpoint(const Network& net, std::uint64_t config_digest,
                              double initial_convergence_s);

/// Loads a captured state into `net`, which must have been built from the
/// configuration identified by `expected_config_digest` (router and session
/// layout are validated structurally on top of the digest check) and must
/// have no events pending -- either freshly built (before start()) or run
/// to quiescence. Throws std::runtime_error on any mismatch or corruption;
/// the scheduler/metrics/RIBs are only mutated after the header checks pass.
void restore_checkpoint(Network& net, const Checkpoint& ck,
                        std::uint64_t expected_config_digest);

/// Encodes/decodes the on-disk representation. decode validates magic,
/// version, path-storage mode and every length prefix; truncated or
/// corrupted input throws std::runtime_error.
std::string encode_checkpoint(const Checkpoint& ck);
Checkpoint decode_checkpoint(std::string_view bytes);

void write_checkpoint_file(const std::string& path, const Checkpoint& ck);
Checkpoint read_checkpoint_file(const std::string& path);

/// Summary of a checkpoint's contents, computable without a Network (the
/// inspect/diff CLI surface). rib_digest folds (router, prefix, local,
/// learned_from, hop sequence) with the same FNV-1a shape as
/// tools/identity_check, so two checkpoints of the same converged state
/// diff equal even if compared across processes.
struct CheckpointInfo {
  std::uint16_t version = 0;
  bool deep_copy_paths = false;
  std::uint64_t config_digest = 0;
  double initial_convergence_s = 0.0;
  std::int64_t sim_now_ns = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t updates_sent = 0;
  std::uint32_t routers = 0;
  std::uint32_t alive_routers = 0;
  std::uint64_t sessions = 0;
  std::uint32_t distinct_paths = 0;  ///< 0 in deep-copy checkpoints
  std::uint64_t loc_rib_routes = 0;
  std::uint64_t adj_in_routes = 0;
  std::uint64_t adj_out_routes = 0;
  std::size_t state_bytes = 0;
  std::uint64_t state_digest = 0;  ///< FNV-1a over the raw state bytes
  std::uint64_t rib_digest = 0;
};

/// Parses a full .bgck byte image (header + state) into a summary.
CheckpointInfo inspect_checkpoint(std::string_view bytes);

}  // namespace bgpsim::bgp
