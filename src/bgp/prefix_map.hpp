// Dense prefix-indexed storage for per-router RIB state.
//
// Prefixes are small dense integers (Network numbers them 0..P-1 at
// construction), so a flat vector indexed by prefix beats a per-prefix
// unordered_map on every axis that matters here: no per-node heap
// allocation, no hashing on the hot path, cache-linear scans, and --
// crucial for the simulator's determinism guarantee -- iteration in
// ascending prefix order instead of hash order.
//
// The map auto-grows on write (tests inject prefixes beyond the announced
// space) and grows geometrically so repeated ascending insertions stay
// amortized O(1). A presence byte per slot distinguishes "empty" from a
// default-constructed value. erase() resets the slot to T{} so value types
// that own memory (AsPath in the deep-copy build) release it, matching the
// node-freeing behavior of the maps this replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bgp/types.hpp"

namespace bgpsim::bgp {

template <typename T>
class PrefixMap {
 public:
  /// Pre-sizes backing storage for prefixes [0, n) without marking any
  /// present (Network passes its prefix-space size as a hint).
  void reserve_prefixes(std::size_t n) {
    if (n > slots_.size()) {
      slots_.resize(n);
      present_.resize(n, 0);
    }
  }

  bool contains(Prefix p) const { return p < present_.size() && present_[p] != 0; }

  const T* find(Prefix p) const { return contains(p) ? &slots_[p] : nullptr; }
  T* find(Prefix p) { return contains(p) ? &slots_[p] : nullptr; }

  /// Returns the slot for `p`, default-constructing (and marking present)
  /// on first touch -- the operator[] of the maps this replaces.
  T& operator[](Prefix p) {
    ensure(p);
    if (present_[p] == 0) {
      present_[p] = 1;
      ++count_;
    }
    return slots_[p];
  }

  void insert_or_assign(Prefix p, T value) { (*this)[p] = std::move(value); }

  /// Removes `p`; returns 1 if it was present, 0 otherwise (erase() of the
  /// maps this replaces). The slot is reset so owning values free memory.
  std::size_t erase(Prefix p) {
    if (!contains(p)) return 0;
    slots_[p] = T{};
    present_[p] = 0;
    --count_;
    return 1;
  }

  void clear() {
    if (count_ == 0) return;
    for (std::size_t p = 0; p < present_.size(); ++p) {
      if (present_[p] != 0) {
        slots_[p] = T{};
        present_[p] = 0;
      }
    }
    count_ = 0;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Visits present entries in ascending prefix order as f(Prefix, T&).
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t p = 0; p < present_.size(); ++p) {
      if (present_[p] != 0) f(static_cast<Prefix>(p), slots_[p]);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t p = 0; p < present_.size(); ++p) {
      if (present_[p] != 0) f(static_cast<Prefix>(p), slots_[p]);
    }
  }

  /// Bytes of backing storage (memory accounting for scale_suite).
  std::size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(T) + present_.capacity();
  }

 private:
  void ensure(Prefix p) {
    if (p < slots_.size()) return;
    // Geometric growth: ascending single-prefix insertions must not
    // trigger a reallocation each.
    std::size_t n = slots_.size() < 8 ? 8 : slots_.size() * 2;
    if (n < static_cast<std::size_t>(p) + 1) n = static_cast<std::size_t>(p) + 1;
    slots_.resize(n);
    present_.resize(n, 0);
  }

  std::vector<T> slots_;
  std::vector<std::uint8_t> present_;
  std::size_t count_ = 0;
};

}  // namespace bgpsim::bgp
