// Router input queue: FIFO (default BGP), per-destination batched (paper
// section 4.4), or per-peer TCP batched (the coarse batching deployed in
// real routers, which the paper contrasts against).
//
// kBatched keeps a logical per-destination sub-queue. pop_batch() returns
// *all* queued updates for the destination at the head of the arrival
// order, collapsed to the newest update per neighbor; older updates from
// the same neighbor are stale and deleted without being processed (their
// processing cost is saved -- that is the point of the scheme).
// Peer-teardown work items are kept as their own pseudo-destination so they
// are never reordered against each other.
//
// kTcpBatch keeps a per-peer sub-queue (each peer's updates arrive over
// their own TCP connection) and serves peers round-robin, handing out up to
// tcp_batch_limit updates of one peer per batch. Nothing is deleted: the
// only benefit is that route changes are pushed once per batch, so
// same-destination updates that happen to share a batch collapse.
//
// Storage is prefix-/node-indexed flat vectors (the Router passes the
// Network's prefix and node spaces as sizing hints), so the hot path does
// no hashing and no per-destination node allocation; slots auto-grow for
// out-of-hint keys, keeping the standalone-test surface unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/types.hpp"

namespace bgpsim::bgp {

struct WorkItem {
  enum class Kind { kUpdate, kPeerDown };
  Kind kind = Kind::kUpdate;
  NodeId from = 0;
  Prefix prefix = 0;  ///< kTeardownKey for kPeerDown items
  bool withdraw = false;
  PathRef path{};  ///< interned id (or owning AsPath in deep-copy builds)
};

/// Pseudo-destination under which kPeerDown items are queued in kBatched.
inline constexpr Prefix kTeardownKey = 0xFFFFFFFFu;

class InputQueue {
 public:
  explicit InputQueue(QueueDiscipline mode, std::size_t tcp_batch_limit = 16,
                      std::size_t prefix_space = 0, std::size_t node_space = 0)
      : mode_{mode}, tcp_limit_{tcp_batch_limit == 0 ? 1 : tcp_batch_limit} {
    // Pre-size only the stores the configured discipline touches.
    if (mode_ == QueueDiscipline::kBatched) by_dest_.resize(prefix_space);
    if (mode_ == QueueDiscipline::kTcpBatch) by_peer_.resize(node_space);
  }

  void push(WorkItem item);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Pops the next unit of CPU work: a single item (kFifo), the collapsed
  /// batch for the head destination (kBatched), or up to tcp_batch_limit
  /// items of one peer (kTcpBatch). `dropped` is incremented by the number
  /// of stale items deleted without processing (kBatched only).
  std::vector<WorkItem> pop_batch(std::uint64_t& dropped);

  void clear();

 private:
  std::vector<WorkItem>& dest_slot(Prefix key);
  std::vector<WorkItem> pop_destination_batch(std::uint64_t& dropped);
  std::vector<WorkItem> pop_peer_batch();

  QueueDiscipline mode_;
  std::size_t tcp_limit_;
  std::size_t size_ = 0;
  // kFifo state.
  std::deque<WorkItem> fifo_;
  // kBatched state: arrival order of destinations with queued work. Slots
  // are prefix-indexed; kPeerDown items live in their own teardown slot.
  std::deque<Prefix> dest_order_;
  std::vector<std::vector<WorkItem>> by_dest_;
  std::vector<WorkItem> teardown_;
  // Dedup scratch for pop_destination_batch: per-sender index of the newest
  // item in the current batch, versioned so it never needs re-zeroing.
  std::vector<std::size_t> last_index_;
  std::vector<std::uint64_t> last_stamp_;
  std::uint64_t stamp_ = 0;
  // kTcpBatch state: round-robin order of peers with queued work.
  std::deque<NodeId> peer_order_;
  std::vector<std::deque<WorkItem>> by_peer_;
};

}  // namespace bgpsim::bgp
