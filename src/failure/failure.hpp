// Failure selection (paper section 3.1/3.2).
//
// Large-scale failures are modelled as geographically contiguous: all
// routers in an area of the grid fail simultaneously (the paper uses the
// grid centre to avoid edge effects). Scattered random failures are kept
// for comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.hpp"
#include "topo/graph.hpp"

namespace bgpsim::failure {

/// The `count` nodes closest to `center` (ties broken by node id). This is
/// the contiguous-area failure: the result is exactly the contents of the
/// smallest disk around `center` holding `count` nodes.
std::vector<topo::NodeId> geographic(const std::vector<topo::Point>& positions,
                                     std::size_t count, topo::Point center);

/// Fraction-of-network variant; count = round(fraction * n), clamped to
/// [0, n].
std::vector<topo::NodeId> geographic_fraction(const std::vector<topo::Point>& positions,
                                              double fraction, topo::Point center);

/// `count` distinct nodes chosen uniformly at random (scattered failure).
std::vector<topo::NodeId> random_nodes(std::size_t n, std::size_t count, sim::Rng& rng);

}  // namespace bgpsim::failure
