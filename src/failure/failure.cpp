#include "failure/failure.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bgpsim::failure {

std::vector<topo::NodeId> geographic(const std::vector<topo::Point>& positions,
                                     std::size_t count, topo::Point center) {
  const std::size_t n = positions.size();
  count = std::min(count, n);
  std::vector<topo::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  std::stable_sort(ids.begin(), ids.end(), [&](topo::NodeId a, topo::NodeId b) {
    return distance(positions[a], center) < distance(positions[b], center);
  });
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<topo::NodeId> geographic_fraction(const std::vector<topo::Point>& positions,
                                              double fraction, topo::Point center) {
  const auto n = static_cast<double>(positions.size());
  const auto count = static_cast<std::size_t>(
      std::clamp(std::llround(fraction * n), 0LL, static_cast<long long>(positions.size())));
  return geographic(positions, count, center);
}

std::vector<topo::NodeId> random_nodes(std::size_t n, std::size_t count, sim::Rng& rng) {
  count = std::min(count, n);
  std::vector<topo::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  rng.shuffle(ids);
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bgpsim::failure
