// Discrete-event scheduler.
//
// A binary heap keyed by (time, insertion-sequence) so that events scheduled
// for the same instant fire in insertion order -- this makes every run fully
// deterministic. Scheduled events can be cancelled through the returned
// EventHandle (cancellation is lazy: the heap entry is skipped on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace bgpsim::sim {

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto s = state_.lock()) s->cancelled = true;
  }

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const {
    auto s = state_.lock();
    return s && !s->cancelled && !s->fired;
  }

 private:
  friend class Scheduler;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::weak_ptr<State> state) : state_{std::move(state)} {}
  std::weak_ptr<State> state_;
};

class Scheduler {
 public:
  /// Schedules `fn` to run at absolute time `at`. `at` must not be in the
  /// past (== now is allowed; such events run after the current event).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  SimTime now() const { return now_; }

  bool empty() const { return live_count_ == 0; }

  /// Number of scheduled events. Entries cancelled through their handle are
  /// only reclaimed when popped, so between runs this is an upper bound; it
  /// is exact after a full run().
  std::size_t pending_events() const { return live_count_; }

  /// Runs until no events remain. Returns the time of the last event.
  SimTime run();

  /// Runs until the queue drains or `limit` is passed; events strictly after
  /// `limit` stay queued. Returns the time of the last executed event (or
  /// now() if none executed).
  SimTime run_until(SimTime limit);

  /// Total events executed (cancelled events are not counted).
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next live event; returns false if none remain at or
  /// before `limit`.
  bool step(SimTime limit);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace bgpsim::sim
