// Discrete-event scheduler.
//
// A binary heap keyed by (time, insertion-sequence) so that events scheduled
// for the same instant fire in insertion order -- this makes every run fully
// deterministic. Scheduled events can be cancelled through the returned
// EventHandle (cancellation is lazy: the heap entry is skipped on pop).
//
// Hot-path design: event state lives in a slab of pooled slots recycled
// through a free list, so steady-state scheduling performs no allocations --
// neither for the event record (previously a shared_ptr) nor for the
// callback (EventFn keeps common captures inline). Handles address their
// slot by (index, generation); recycling a slot bumps its generation, so a
// stale handle sees its event as "not pending" and its cancel() is a no-op,
// exactly matching the old weak_ptr semantics. Handles must not outlive the
// Scheduler they came from (default-constructed handles are always safe).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {

class Scheduler;

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* sched, std::uint32_t slot, std::uint64_t gen)
      : sched_{sched}, slot_{slot}, gen_{gen} {}
  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Scheduler {
 public:
  /// Schedules `fn` to run at absolute time `at`. `at` must not be in the
  /// past (== now is allowed; such events run after the current event).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at `at` with a caller-supplied 40-bit ordering key in
  /// place of the internal insertion sequence: same-time events fire in
  /// ascending `key40` order regardless of insertion order. Used by the
  /// parallel execution mode, whose (lane, lane-seq) keys are a pure
  /// function of simulation state -- so the firing order is independent of
  /// which thread inserted the event, and of when. Keys must be unique per
  /// (at, key40) pair within one scheduler; `key40` must be < 2^40.
  EventHandle schedule_keyed(SimTime at, std::uint64_t key40, EventFn fn);

  /// Firing time of the earliest live event, or SimTime::max() if none.
  /// Lazily reclaims cancelled entries sitting on top of the heap (so a
  /// cancelled timer can never freeze the parallel window computation).
  SimTime next_event_time();

  /// Moves the clock forward to `t` without executing anything. Throws
  /// std::logic_error if a pending event is scheduled before `t`. Used at
  /// parallel window barriers to align all partition clocks.
  void advance_to(SimTime t);

  SimTime now() const { return now_; }

  bool empty() const { return live_count_ == 0; }

  /// Number of scheduled events. Entries cancelled through their handle are
  /// only reclaimed when popped, so between runs this is an upper bound; it
  /// is exact after a full run().
  std::size_t pending_events() const { return live_count_; }

  /// Runs until no events remain. Returns the time of the last event.
  SimTime run();

  /// Runs until the queue drains or `limit` is passed; events strictly after
  /// `limit` stay queued. Returns the time of the last executed event (or
  /// now() if none executed).
  SimTime run_until(SimTime limit);

  /// Total events executed (cancelled events are not counted).
  std::uint64_t executed_events() const { return executed_; }

  /// Ordering key (the 40-bit sequence / lane key, slot bits stripped) of
  /// the event currently executing -- valid only inside an event callback.
  /// Parallel-mode tracing stamps emitted events with this key: it is a
  /// pure function of simulation history, so it orders trace shards
  /// identically at every thread count.
  std::uint64_t current_key() const { return current_key_; }

  /// Snapshot of the kernel clock and counters, capturable only at
  /// quiescence: with an empty heap there are no events in flight, so this
  /// plus the domain state IS the full scheduler state.
  struct QuiescentState {
    SimTime now;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
  };

  /// Returns the current quiescent state. Throws std::logic_error if events
  /// are still pending -- in-flight events cannot be checkpointed.
  QuiescentState quiescent_state() const;

  /// Restores clock and counters captured by quiescent_state(). Requires an
  /// empty scheduler (throws std::logic_error otherwise). Slot generations
  /// are deliberately left untouched, so EventHandles issued before the
  /// restore stay stale instead of aliasing post-restore events that happen
  /// to reuse their slot.
  void restore_quiescent(const QuiescentState& qs);

  /// Event slots currently owned by the pool (pooled capacity; grows to the
  /// peak number of simultaneously scheduled events and is then reused).
  std::size_t pool_slots() const { return slot_count_; }

 private:
  friend class EventHandle;

  // Slots live in fixed-size chunks so growing the pool never moves live
  // slots (callbacks may reference the scheduler re-entrantly while firing).
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  struct Slot {
    EventFn fn;
    std::uint64_t gen = 0;  ///< bumped on acquire and recycle; odd = in use
    bool cancelled = false;
  };

  // Heap entries are 16 bytes: the firing time plus (sequence, slot) packed
  // into one word -- sequence in the high 40 bits so comparing `key` orders
  // same-time events by insertion, slot index in the low 24 bits. A 4-ary
  // heap over these entries touches ~2x fewer cache lines per pop than a
  // binary heap of shared_ptr entries did.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = std::uint64_t{1} << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);

  struct Entry {
    SimTime at;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key & (kMaxSlots - 1)); }
    bool earlier_than(const Entry& o) const {
      if (at != o.at) return at < o.at;
      return key < o.key;
    }
  };

  Slot& slot(std::uint32_t i) { return chunks_[i >> kChunkShift][i & (kChunkSize - 1)]; }
  const Slot& slot(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }

  /// Takes a slot from the free list (growing the slab if empty) and marks
  /// it in use.
  std::uint32_t acquire_slot();

  /// Returns a popped slot to the free list. The caller has already bumped
  /// the generation back to even (so outstanding handles are stale); this
  /// just drops the callback and makes the slot reusable.
  void recycle_slot(std::uint32_t i);

  /// Pops and runs the next live event; returns false if none remain at or
  /// before `limit`.
  bool step(SimTime limit);

  // Min-heap of arity 4 over heap_ (children of i: 4i+1..4i+4).
  void heap_push(Entry e);
  void heap_pop();
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t slot_count_ = 0;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t current_key_ = 0;
  std::size_t live_count_ = 0;
};

inline void EventHandle::cancel() {
  if (sched_ == nullptr) return;
  Scheduler::Slot& s = sched_->slot(slot_);
  if (s.gen == gen_) s.cancelled = true;
}

inline bool EventHandle::pending() const {
  if (sched_ == nullptr) return false;
  const Scheduler::Slot& s = sched_->slot(slot_);
  return s.gen == gen_ && !s.cancelled;
}

}  // namespace bgpsim::sim
