// Little-endian encoding helpers for the binary state formats (.bgck).
//
// Writer appends fixed-width little-endian fields and length-prefixed
// strings to a caller-owned std::string. Reader walks a string_view with
// bounds checking on every field and throws std::runtime_error the moment
// a read would run past the end -- so a consumer of a file that died
// mid-write fails cleanly instead of reading garbage. Byte order is
// explicit (not memcpy of host integers), matching the .bgtr/.bgtl
// convention in src/obs/.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace bgpsim::sim::wire {

class Writer {
 public:
  explicit Writer(std::string& out) : out_{out} {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void time(SimTime t) { i64(t.ns()); }
  void str(std::string_view s) {
    if (s.size() > 0xFFFFFFFFull) throw std::length_error{"wire: string too long"};
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

 private:
  void le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string& out_;
};

class Reader {
 public:
  explicit Reader(std::string_view in) : in_{in} {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  SimTime time() { return SimTime::from_ns(i64()); }
  std::string_view str() { return take(u32()); }

  bool done() const { return pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  std::string_view take(std::size_t n) {
    if (n > in_.size() - pos_) throw std::runtime_error{"wire: truncated input"};
    const std::string_view v = in_.substr(pos_, n);
    pos_ += n;
    return v;
  }
  std::uint64_t le(int bytes) {
    const std::string_view b = take(static_cast<std::size_t>(bytes));
    std::uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
    }
    return v;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace bgpsim::sim::wire
