// Self-terminating periodic events.
//
// A PeriodicTask fires a callback every `interval` of simulated time for as
// long as the scheduler still has *other* pending events -- once the
// simulation proper has drained, the task simply stops rescheduling itself,
// so Scheduler::run() (and Network::run_to_quiescence()) terminate exactly
// as they would without the task. This is the scheduling pattern every
// sampler (harness::TimelineRecorder, obs::TelemetrySampler) needs; having
// it in the kernel keeps the "does my own next event count as activity?"
// subtlety in one place.
//
// The callback must not outlive the task object: stop() (or destruction)
// cancels the in-flight event, and the task must not outlive its Scheduler.
#pragma once

#include <functional>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {

class PeriodicTask {
 public:
  /// Does not start; call start(). `fn` is invoked at each tick.
  PeriodicTask(Scheduler& sched, SimTime interval, std::function<void()> fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first tick one interval from now. Restartable after the
  /// task self-terminated (e.g. to span several run_to_quiescence() phases).
  void start();

  /// Cancels the pending tick, if any.
  void stop();

  /// True while a tick is scheduled.
  bool active() const { return next_.pending(); }

  SimTime interval() const { return interval_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void tick();

  Scheduler& sched_;
  SimTime interval_;
  std::function<void()> fn_;
  EventHandle next_;
  std::uint64_t ticks_ = 0;
};

}  // namespace bgpsim::sim
