// Simulation time: a strongly-typed wrapper over integer nanoseconds.
//
// Integer time keeps the discrete-event kernel fully deterministic (no
// floating-point drift when summing delays) while nanosecond resolution is
// far finer than any interval the BGP model uses (>= 1 ms).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace bgpsim::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  /// Constructs from a raw nanosecond count.
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime from_us(std::int64_t us) { return SimTime{us * 1'000}; }
  static constexpr SimTime from_ms(std::int64_t ms) { return SimTime{ms * 1'000'000}; }

  /// Constructs from (possibly fractional) seconds; rounds to nearest ns.
  static SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(std::llround(s * 1e9))};
  }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }

  /// Scales a duration (used for timer jitter); rounds to nearest ns.
  friend SimTime operator*(SimTime a, double f) {
    return SimTime{static_cast<std::int64_t>(std::llround(static_cast<double>(a.ns_) * f))};
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace bgpsim::sim
