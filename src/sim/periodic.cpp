#include "sim/periodic.hpp"

#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

PeriodicTask::PeriodicTask(Scheduler& sched, SimTime interval, std::function<void()> fn)
    : sched_{sched}, interval_{interval}, fn_{std::move(fn)} {
  if (interval_ <= SimTime::zero()) {
    throw std::invalid_argument{"PeriodicTask: interval must be positive"};
  }
}

void PeriodicTask::start() {
  if (next_.pending()) return;
  next_ = sched_.schedule_after(interval_, [this] { tick(); });
}

void PeriodicTask::stop() { next_.cancel(); }

void PeriodicTask::tick() {
  ++ticks_;
  fn_();
  // The tick that is currently firing has already left the pending count,
  // so a non-empty scheduler here means the simulation itself still has
  // work; only then is another tick worth scheduling (and termination of
  // run() stays guaranteed).
  if (sched_.pending_events() > 0) {
    next_ = sched_.schedule_after(interval_, [this] { tick(); });
  }
}

}  // namespace bgpsim::sim
