// Seeded random-number utilities for deterministic simulation runs.
//
// Every experiment owns exactly one Rng; all stochastic choices (topology
// wiring, placement, processing delays, timer jitter) flow through it, so a
// run is a pure function of (config, seed).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bgpsim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform duration in [lo, hi); returns lo when the range is empty
  /// (lo >= hi), so a degenerate [x, x) range is a deterministic delay.
  SimTime uniform_time(SimTime lo, SimTime hi) {
    if (hi <= lo) return lo;
    return SimTime::from_ns(uniform_int(lo.ns(), hi.ns() - 1));
  }

  /// RFC 1771 timer jitter as applied in the paper: the configured interval
  /// is reduced by up to 25%, i.e. scaled by U(0.75, 1.0).
  SimTime jittered(SimTime base) { return base * uniform(0.75, 1.0); }

  bool bernoulli(double p) { return std::bernoulli_distribution{p}(engine_); }

  /// Bounded Pareto sample in [lo, hi] with shape alpha (heavy-tailed AS
  /// sizes, paper section 3.1).
  std::int64_t bounded_pareto(double alpha, std::int64_t lo, std::int64_t hi);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Total weight must be positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle (uses this engine, so results are reproducible).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (used to give each subsystem its
  /// own stream without coupling their consumption patterns).
  Rng fork() { return Rng{engine_()}; }

  std::mt19937_64& engine() { return engine_; }

  /// Serializes the exact engine state. std::mt19937_64 stream insertion is
  /// specified to round-trip bit-exactly, so load_state(save_state()) puts
  /// the stream back at the same position -- the primitive checkpointing
  /// builds on.
  std::string save_state() const;

  /// Restores a state produced by save_state(). Throws std::runtime_error
  /// on malformed input (the engine is left unchanged in that case).
  void load_state(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace bgpsim::sim
