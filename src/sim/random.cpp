#include "sim/random.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace bgpsim::sim {

std::int64_t Rng::bounded_pareto(double alpha, std::int64_t lo, std::int64_t hi) {
  if (lo <= 0 || hi < lo) throw std::invalid_argument{"bounded_pareto: bad bounds"};
  if (lo == hi) return lo;
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi) + 1.0;  // treat as continuous upper edge
  const double u = uniform(0.0, 1.0);
  // Inverse CDF of the bounded Pareto distribution on [l, h).
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  auto v = static_cast<std::int64_t>(x);
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return v;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) throw std::invalid_argument{"weighted_index: total weight must be > 0"};
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r landed exactly on the total
}

std::string Rng::save_state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::load_state(const std::string& state) {
  std::istringstream is{state};
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) throw std::runtime_error{"Rng: malformed engine state"};
  engine_ = restored;
}

}  // namespace bgpsim::sim
