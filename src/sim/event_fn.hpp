// Small-buffer callback storage for scheduler events.
//
// EventFn is a move-only stand-in for std::function<void()> whose inline
// buffer is sized so that every capture the BGP model schedules (router
// batch completions, MRAI expiries, link deliveries, damping reuse checks)
// fits without a heap allocation. Larger callables still work; they fall
// back to the heap. Unlike std::function, move-only captures are accepted.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bgpsim::sim {

class EventFn {
 public:
  /// Inline capacity in bytes. 48 covers the largest captures on the hot
  /// path ([this, batch, cost] in Router::maybe_start_processing: 40 bytes;
  /// [this, msg] in Network::transmit: 48 bytes); anything bigger silently
  /// heap-allocates. Kept tight on purpose: the scheduler embeds one EventFn
  /// per pooled event slot, so this bounds the slot footprint.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* obj) { (*std::launder(static_cast<Fn*>(obj)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* obj) { std::launder(static_cast<Fn*>(obj))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* obj) { (**std::launder(static_cast<Fn**>(obj)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* obj) { delete *std::launder(static_cast<Fn**>(obj)); }};

  void move_from(EventFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace bgpsim::sim
