#include "sim/scheduler.hpp"

namespace bgpsim::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_slots_.empty()) {
    if (slot_count_ + kChunkSize > kMaxSlots) {
      throw std::length_error{"Scheduler: event slot pool exhausted"};
    }
    auto chunk = std::make_unique<Slot[]>(kChunkSize);
    chunks_.push_back(std::move(chunk));
    const auto base = static_cast<std::uint32_t>(slot_count_);
    slot_count_ += kChunkSize;
    free_slots_.reserve(slot_count_);
    // Push in reverse so the lowest new index is handed out first.
    for (std::size_t i = kChunkSize; i > 0; --i) {
      free_slots_.push_back(base + static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t i = free_slots_.back();
  free_slots_.pop_back();
  Slot& s = slot(i);
  ++s.gen;  // even -> odd: in use
  s.cancelled = false;
  return i;
}

void Scheduler::recycle_slot(std::uint32_t i) {
  Slot& s = slot(i);
  s.fn.reset();
  free_slots_.push_back(i);
}

void Scheduler::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!e.earlier_than(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::heap_pop() {
  // Bottom-up deletion: walk the hole at the root down to a leaf along the
  // smallest-child path (no comparisons against the displaced element), then
  // re-insert the last element at the hole with a short sift-up. The
  // displaced element is near-maximal on average, so the classic top-down
  // variant would compare it against ~every level for nothing.
  const std::size_t n = heap_.size() - 1;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = (hole << 2) + 1;
    if (first_child >= n) break;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].earlier_than(heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  const Entry e = heap_[n];
  heap_.pop_back();
  if (hole == n) return;
  // Sift `e` up from the leaf hole.
  std::size_t i = hole;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!e.earlier_than(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventHandle Scheduler::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) throw std::logic_error{"Scheduler: cannot schedule into the past"};
  if (next_seq_ >= kMaxSeq) {
    throw std::length_error{"Scheduler: event sequence space exhausted"};
  }
  const std::uint32_t i = acquire_slot();
  Slot& s = slot(i);
  s.fn = std::move(fn);
  const std::uint64_t gen = s.gen;
  heap_push(Entry{at, (next_seq_++ << kSlotBits) | i});
  ++live_count_;
  return EventHandle{this, i, gen};
}

EventHandle Scheduler::schedule_keyed(SimTime at, std::uint64_t key40, EventFn fn) {
  if (at < now_) throw std::logic_error{"Scheduler: cannot schedule into the past"};
  if (key40 >= kMaxSeq) {
    throw std::length_error{"Scheduler: keyed-event ordering key exceeds 40 bits"};
  }
  const std::uint32_t i = acquire_slot();
  Slot& s = slot(i);
  s.fn = std::move(fn);
  const std::uint64_t gen = s.gen;
  heap_push(Entry{at, (key40 << kSlotBits) | i});
  ++live_count_;
  return EventHandle{this, i, gen};
}

SimTime Scheduler::next_event_time() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    Slot& s = slot(top.slot());
    if (!s.cancelled) return top.at;
    heap_pop();
    ++s.gen;  // odd -> even: no longer live
    --live_count_;
    recycle_slot(top.slot());
  }
  return SimTime::max();
}

void Scheduler::advance_to(SimTime t) {
  if (t <= now_) return;
  if (next_event_time() < t) {
    throw std::logic_error{"Scheduler: advance_to() would skip a pending event"};
  }
  now_ = t;
}

bool Scheduler::step(SimTime limit) {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    if (top.at > limit) return false;
    __builtin_prefetch(&slot(top.slot()));  // overlap the slot fetch with the sift
    heap_pop();
    // A slot is recycled exactly when its heap entry is popped, so
    // `top.slot()` still refers to this entry's event here. Bump the
    // generation before anything else: handles to this event report "not
    // pending" from here on (for fired events that includes from inside the
    // callback, matching the old fired flag).
    Slot& s = slot(top.slot());
    ++s.gen;  // odd -> even: no longer live
    --live_count_;
    if (s.cancelled) {
      recycle_slot(top.slot());
      continue;
    }
    now_ = top.at;
    ++executed_;
    current_key_ = top.key >> kSlotBits;
    s.fn();
    // The slot only joins the free list after the callback returns, so
    // events the callback schedules cannot clobber it.
    recycle_slot(top.slot());
    return true;
  }
  return false;
}

Scheduler::QuiescentState Scheduler::quiescent_state() const {
  if (live_count_ != 0) {
    throw std::logic_error{"Scheduler: quiescent_state() requires an empty scheduler"};
  }
  return QuiescentState{now_, next_seq_, executed_};
}

void Scheduler::restore_quiescent(const QuiescentState& qs) {
  if (live_count_ != 0) {
    throw std::logic_error{"Scheduler: restore_quiescent() requires an empty scheduler"};
  }
  now_ = qs.now;
  next_seq_ = qs.next_seq;
  executed_ = qs.executed;
}

SimTime Scheduler::run() { return run_until(SimTime::max()); }

SimTime Scheduler::run_until(SimTime limit) {
  SimTime last = now_;
  while (step(limit)) last = now_;
  return last;
}

}  // namespace bgpsim::sim
