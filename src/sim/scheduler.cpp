#include "sim/scheduler.hpp"

namespace bgpsim::sim {

EventHandle Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::logic_error{"Scheduler: cannot schedule into the past"};
  auto state = std::make_shared<EventHandle::State>();
  state->fn = std::move(fn);
  queue_.push(Entry{at, next_seq_++, state});
  ++live_count_;
  return EventHandle{state};
}

bool Scheduler::step(SimTime limit) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > limit) return false;
    Entry entry = top;
    queue_.pop();
    if (entry.state->cancelled) {
      --live_count_;
      continue;
    }
    now_ = entry.at;
    entry.state->fired = true;
    --live_count_;
    ++executed_;
    entry.state->fn();
    return true;
  }
  return false;
}

SimTime Scheduler::run() { return run_until(SimTime::max()); }

SimTime Scheduler::run_until(SimTime limit) {
  SimTime last = now_;
  while (step(limit)) last = now_;
  return last;
}

}  // namespace bgpsim::sim
