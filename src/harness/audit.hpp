// Post-convergence route audit.
//
// After the network quiesces the Loc-RIBs must be mutually consistent:
//  - every alive router has a best route for every prefix whose (alive)
//    origin it can reach over up sessions, and no route for any other
//    prefix (in particular none for prefixes of failed origins);
//  - following learned_from next-hops reaches the origin without loops.
// This is the end-to-end correctness property of the BGP implementation;
// the property-based tests sweep it across topologies, seeds and failure
// sizes.
#pragma once

#include <optional>
#include <string>

#include "bgp/network.hpp"

namespace bgpsim::harness {

/// Returns std::nullopt when all routes are consistent; otherwise a
/// description of the first violation found.
std::optional<std::string> audit_routes(bgp::Network& net);

}  // namespace bgpsim::harness
