// Analytic convergence-delay bounds from the literature the paper builds
// on, used to cross-check the simulator:
//
//  - Labovitz et al. (SIGCOMM 2000): withdrawal convergence in a full mesh
//    of n nodes is paced by the MRAI; the best case explores one
//    path-length class per MRAI round, giving ~(n-3) rounds.
//  - Labovitz et al. (INFOCOM 2001) / Pei et al. (Computer Networks 2006):
//    convergence is upper-bounded by (rounds) x (MRAI + propagation +
//    processing), where the round count is bounded by the number of
//    distinct backup-path lengths.
//
// These are sanity envelopes, not tight bounds; the bounds_test suite
// checks simulated clique withdrawals land inside them.
#pragma once

#include <cstddef>

namespace bgpsim::harness {

struct DelayBounds {
  double lower_s = 0.0;
  double upper_s = 0.0;
};

/// Bounds for the convergence delay after the origin of one prefix fails
/// in an n-node full mesh (n >= 4), with per-peer MRAI `mrai_s` seconds
/// applied to withdrawals as well (Labovitz's setting: the BGP
/// implementations he measured rate-limited withdrawals). Path exploration
/// then takes between (n-3) and 2(n-3) MRAI-paced rounds. `jittered`
/// accounts for RFC 1771 jitter shrinking each round by up to 25%.
/// `link_delay_s` and `proc_max_s` bound the per-round propagation and
/// processing overhead (no-overload regime).
///
/// Note: with RFC 1771's withdrawal *exemption* (this library's default)
/// the exploration collapses to a few propagation rounds -- immediate
/// withdrawals plus implicit-withdraw loop rejection invalidate all backup
/// paths without waiting for MRAI-paced re-advertisements. bounds_test
/// demonstrates both regimes.
DelayBounds clique_withdrawal_bounds(std::size_t n, double mrai_s, bool jittered,
                                     double link_delay_s, double proc_max_s);

}  // namespace bgpsim::harness
