#include "harness/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "bgp/checkpoint.hpp"
#include "failure/failure.hpp"
#include "harness/audit.hpp"
#include "harness/parallel.hpp"
#include "harness/warmstart.hpp"
#include "schemes/degree_mrai.hpp"
#include "topo/relations.hpp"

namespace bgpsim::harness {

namespace {

struct BuiltTopology {
  std::optional<topo::Graph> graph;          // flat kinds
  std::optional<topo::HierTopology> hier;    // hierarchical
  std::optional<topo::AsRelGraph> as_rel;    // flat + policy routing
  std::vector<std::size_t> degrees;          // per-router session count
};

BuiltTopology build_topology(const TopologySpec& spec, sim::Rng& rng) {
  BuiltTopology out;
  auto finish_flat = [&](topo::Graph&& g) {
    out.degrees.resize(g.size());
    for (topo::NodeId v = 0; v < g.size(); ++v) out.degrees[v] = g.degree(v);
    out.graph = std::move(g);
  };
  switch (spec.kind) {
    case TopologySpec::Kind::kSkewed: {
      auto degrees = topo::skewed_sequence(spec.n, spec.skew, rng);
      auto g = topo::realize_degree_sequence(std::move(degrees), rng);
      g.place_randomly(spec.grid, spec.grid, rng);
      finish_flat(std::move(g));
      return out;
    }
    case TopologySpec::Kind::kInternetLike: {
      auto degrees = topo::internet_like_sequence(spec.n, spec.max_degree, spec.target_avg, rng);
      auto g = topo::realize_degree_sequence(std::move(degrees), rng);
      g.place_randomly(spec.grid, spec.grid, rng);
      finish_flat(std::move(g));
      return out;
    }
    case TopologySpec::Kind::kWaxman: {
      auto p = spec.waxman;
      p.n = spec.n;
      p.grid = spec.grid;
      finish_flat(topo::waxman(p, rng));
      return out;
    }
    case TopologySpec::Kind::kBarabasiAlbert: {
      auto p = spec.ba;
      p.n = spec.n;
      p.grid = spec.grid;
      finish_flat(topo::barabasi_albert(p, rng));
      return out;
    }
    case TopologySpec::Kind::kGlp: {
      auto p = spec.glp;
      p.n = spec.n;
      p.grid = spec.grid;
      finish_flat(topo::glp(p, rng));
      return out;
    }
    case TopologySpec::Kind::kHierarchical: {
      auto h = topo::hierarchical(spec.hier, rng);
      out.degrees.resize(h.num_routers(), 0);
      for (const auto& s : h.sessions) {
        ++out.degrees[s.a];
        ++out.degrees[s.b];
      }
      out.hier = std::move(h);
      return out;
    }
  }
  throw std::logic_error{"build_topology: unknown kind"};
}

struct BuiltScheme {
  std::shared_ptr<bgp::MraiController> controller;
  std::shared_ptr<schemes::DynamicMrai> dynamic;  // set when adaptive
};

BuiltScheme build_scheme(const SchemeSpec& spec, const std::vector<std::size_t>& degrees) {
  BuiltScheme out;
  switch (spec.mrai) {
    case SchemeSpec::Mrai::kConstant:
      out.controller = std::make_shared<bgp::FixedMrai>(spec.constant_mrai);
      return out;
    case SchemeSpec::Mrai::kDegreeDependent:
      out.controller = schemes::degree_dependent_mrai(degrees, spec.high_degree_threshold,
                                                      spec.low_mrai, spec.high_mrai);
      return out;
    case SchemeSpec::Mrai::kDynamic:
      out.dynamic = std::make_shared<schemes::DynamicMrai>(spec.dynamic);
      out.controller = out.dynamic;
      return out;
    case SchemeSpec::Mrai::kExtent:
      out.controller = std::make_shared<schemes::ExtentMrai>(spec.extent);
      return out;
  }
  throw std::logic_error{"build_scheme: unknown kind"};
}

/// BGPSIM_PAR_THREADS: process-wide default for ExperimentConfig::par_threads
/// when the config leaves it 0. Unset / unparsable / negative => 0 (legacy
/// serial scheduler).
std::size_t env_par_threads() {
  const char* env = std::getenv("BGPSIM_PAR_THREADS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 0) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bgpsim: BGPSIM_PAR_THREADS=\"%s\" is not a non-negative integer; "
                   "running the legacy serial scheduler\n",
                   env);
    }
    return 0;
  }
  return static_cast<std::size_t>(v);
}

/// Effective intra-run partition-thread count for one run: the config's
/// request (or the environment default), clamped so that this sweep's
/// concurrent runs cannot together exceed harness_thread_cap() threads.
std::size_t resolve_par_threads(const ExperimentConfig& cfg) {
  std::size_t par = cfg.par_threads != 0 ? cfg.par_threads : env_par_threads();
  if (par <= 1) return par;
  const std::size_t outer = active_sweep_threads();
  if (outer * par > harness_thread_cap()) {
    const std::size_t clamped = std::max<std::size_t>(1, harness_thread_cap() / outer);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bgpsim: %zu sweep threads x %zu partition threads exceeds the "
                   "%zu-thread cap; clamping partition threads to %zu\n",
                   outer, par, harness_thread_cap(), clamped);
    }
    par = clamped;
  }
  return par;
}

/// Satellite probe: warn (once per process) when any run's path table came
/// within 10% of exhaustion -- the next larger topology would likely throw.
void warn_if_paths_nearly_full(const bgp::Network& net) {
  const double low = net.path_capacity_low_water();
  if (low >= 0.10) return;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "bgpsim: path table reached %.1f%% of capacity during this run; "
                 "larger topologies may exhaust it (rebuild with "
                 "-DBGPSIM_DEEP_COPY_PATHS=ON to remove the shared arena)\n",
                 (1.0 - low) * 100.0);
  }
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A built-but-not-yet-converged run: everything run_experiment sets up
/// before the first event fires. Shared by the cold path (prepare ->
/// converge -> finish) and the warm path (prepare -> restore -> finish); the
/// cold path's operation order is exactly the pre-refactor run_experiment.
struct PreparedRun {
  std::unique_ptr<bgp::Network> net;
  BuiltScheme scheme;
  RunResult res;
  Clock::time_point t_run;
};

/// `allow_par == false` forces the legacy serial scheduler regardless of the
/// config/environment: the checkpoint format only describes serial state, so
/// both the capture and the restore sides of a warm start must run legacy.
PreparedRun prepare_run(const ExperimentConfig& cfg, bool allow_par = true) {
  PreparedRun pr;
  pr.t_run = Clock::now();
  sim::Rng rng{cfg.seed};
  sim::Rng topo_rng = rng.fork();
  const auto net_seed = rng.engine()();

  auto built = build_topology(cfg.topology, topo_rng);
  if (cfg.topology.policy_routing) {
    if (!built.graph) {
      throw std::invalid_argument{"policy routing requires a flat topology"};
    }
    built.as_rel = topo::infer_relations(*built.graph, cfg.topology.peer_tolerance);
  }
  pr.scheme = build_scheme(cfg.scheme, built.degrees);

  auto bgp_cfg = cfg.bgp;
  // The scheme's batching flag turns the paper's scheme on; otherwise the
  // BgpConfig's own discipline (kFifo default, kTcpBatch for the deployed-
  // router baseline) is preserved.
  if (cfg.scheme.batching) bgp_cfg.queue = bgp::QueueDiscipline::kBatched;

  pr.net = built.hier ? std::make_unique<bgp::Network>(*built.hier, bgp_cfg,
                                                       pr.scheme.controller, net_seed)
           : built.as_rel
               ? std::make_unique<bgp::Network>(*built.as_rel, bgp_cfg, pr.scheme.controller,
                                                net_seed)
               : std::make_unique<bgp::Network>(*built.graph, bgp_cfg, pr.scheme.controller,
                                                net_seed);

  pr.res.routers = pr.net->size();
  pr.res.timing.build_s = seconds_since(pr.t_run);

  // Partitioned parallel execution switches on before any observer or event
  // exists (enable_parallel requires a pristine network, and observers need
  // to know whether to hook the window barrier or a scheduled task).
  if (allow_par) {
    if (const std::size_t par = resolve_par_threads(cfg); par != 0) {
      pr.net->enable_parallel(par);
      if (cfg.par_profile) pr.net->enable_par_profile();
    }
  }

  // Observers (trace sinks, telemetry samplers) attach before the first
  // event fires.
  if (cfg.instrument) cfg.instrument(*pr.net, cfg.seed);
  return pr;
}

/// Phase 1: cold-start convergence.
void converge_run(const ExperimentConfig& cfg, PreparedRun& pr) {
  const auto t_converge = Clock::now();
  pr.net->start();
  if (cfg.on_phase) cfg.on_phase(RunPhase::kColdStart);
  const sim::SimTime quiet = pr.net->run_to_quiescence();
  pr.res.initial_convergence_s = quiet.to_seconds();
  pr.res.timing.converge_s = seconds_since(t_converge);

  // The paper's dynamic scheme starts every node at the lowest MRAI level.
  if (pr.scheme.dynamic) pr.scheme.dynamic->reset();
}

/// Phases 2-3 plus metrics harvest and audit; consumes the prepared run.
RunResult finish_run(const ExperimentConfig& cfg, PreparedRun& pr) {
  auto& net = pr.net;
  RunResult& res = pr.res;

  // Phase 2: contiguous failure at the grid centre.
  const topo::Point center{cfg.topology.grid / 2.0, cfg.topology.grid / 2.0};
  const auto victims =
      failure::geographic_fraction(net->positions(), cfg.failure_fraction, center);
  res.failed_routers = victims.size();

  const std::uint64_t msgs_before = net->metrics().updates_sent;
  const std::uint64_t adv_before = net->metrics().adverts_sent;
  const std::uint64_t wdr_before = net->metrics().withdrawals_sent;

  const auto t_phase2 = Clock::now();
  const sim::SimTime t_fail = net->now() + cfg.pre_failure_gap;
  if (net->parallel()) {
    // Between run_to_quiescence() calls the partition workers are parked, so
    // the failure is injected directly from this thread after aligning every
    // partition clock to t_fail -- a partitioned heap has no single queue to
    // schedule the trigger on.
    net->advance_all(t_fail);
    net->fail_nodes(victims);
  } else {
    net->scheduler().schedule_at(t_fail, [&net, &victims] { net->fail_nodes(victims); });
  }
  if (cfg.on_phase) cfg.on_phase(RunPhase::kFailure);
  net->run_to_quiescence();

  {
    const auto& m = net->metrics();
    res.convergence_delay_s =
        m.last_rib_change > t_fail ? (m.last_rib_change - t_fail).to_seconds() : 0.0;
    res.messages_after_failure = m.updates_sent - msgs_before;
    res.adverts_after_failure = m.adverts_sent - adv_before;
    res.withdrawals_after_failure = m.withdrawals_sent - wdr_before;
  }
  res.timing.failure_s = seconds_since(t_phase2);

  // Phase 3 (optional): the failed region comes back and the network must
  // re-absorb its prefixes (the "recovery flood", the Tup analogue).
  if (cfg.measure_recovery && !victims.empty()) {
    const auto t_phase3 = Clock::now();
    const std::uint64_t msgs_pre_rec = net->metrics().updates_sent;
    const sim::SimTime t_rec = net->now() + cfg.pre_failure_gap;
    if (net->parallel()) {
      net->advance_all(t_rec);
      net->recover_nodes(victims);
    } else {
      net->scheduler().schedule_at(t_rec, [&net, &victims] { net->recover_nodes(victims); });
    }
    if (cfg.on_phase) cfg.on_phase(RunPhase::kRecovery);
    net->run_to_quiescence();
    const auto& m = net->metrics();
    res.recovery_delay_s =
        m.last_rib_change > t_rec ? (m.last_rib_change - t_rec).to_seconds() : 0.0;
    res.messages_after_recovery = m.updates_sent - msgs_pre_rec;
    res.timing.recovery_s = seconds_since(t_phase3);
  }

  const auto& m = net->metrics();
  res.messages_total = m.updates_sent;
  res.messages_processed = m.messages_processed;
  res.batch_dropped = m.batch_dropped;
  res.events = net->executed_events();
  warn_if_paths_nearly_full(*net);
  if (net->parallel() && net->par_profile_enabled()) {
    const bgp::ParProfile& prof = net->par_profile();
    res.par_windows = prof.windows();
    res.par_imbalance_factor = prof.imbalance_factor();
    res.par_barrier_overhead = prof.barrier_overhead_fraction();
  }

  const auto t_audit = Clock::now();
  const auto audit = audit_routes(*net);
  res.routes_valid = !audit.has_value();
  if (audit) res.audit_error = *audit;
  res.timing.audit_s = seconds_since(t_audit);

  if (cfg.on_complete) cfg.on_complete(*net, cfg.seed);
  res.timing.total_s = seconds_since(pr.t_run);
  return std::move(res);
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& cfg) {
  PreparedRun pr = prepare_run(cfg);
  converge_run(cfg, pr);
  return finish_run(cfg, pr);
}

Snapshot converge_snapshot(const ExperimentConfig& cfg) {
  PreparedRun pr = prepare_run(cfg, /*allow_par=*/false);
  converge_run(cfg, pr);
  Snapshot snap;
  snap.checkpoint = bgp::capture_checkpoint(*pr.net, converged_state_digest(cfg),
                                            pr.res.initial_convergence_s);
  snap.build_s = pr.res.timing.build_s;
  snap.converge_s = pr.res.timing.converge_s;
  return snap;
}

RunResult run_experiment_from(const ExperimentConfig& cfg, const Snapshot& snap) {
  PreparedRun pr = prepare_run(cfg, /*allow_par=*/false);
  bgp::restore_checkpoint(*pr.net, snap.checkpoint, converged_state_digest(cfg));
  pr.res.initial_convergence_s = snap.checkpoint.initial_convergence_s;
  // Host-time accounting: this run paid build_s itself but inherited the
  // convergence from the snapshot's producer.
  pr.res.timing.converge_s = snap.converge_s;
  return finish_run(cfg, pr);
}

Stats Stats::of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

std::size_t bench_seeds(std::size_t fallback) {
  if (const char* env = std::getenv("BGPSIM_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace bgpsim::harness
