#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bgpsim::harness {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << (c == 0 ? std::left : std::right) << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace bgpsim::harness
