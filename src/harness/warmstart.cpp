#include "harness/warmstart.hpp"

#include <cstring>
#include <unordered_map>

#include "harness/parallel.hpp"

namespace bgpsim::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a accumulator over the configuration fields. Every field that can
/// change the converged state must be mixed in here -- a missed field means
/// two *different* configurations share a digest and a warm run silently
/// resumes from the wrong snapshot. Doubles are hashed by bit pattern, so
/// the digest is exact, not tolerance-based.
struct Digest {
  std::uint64_t h = kFnvOffset;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFu;
      h *= kFnvPrime;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u64(v ? 1u : 0u); }
  void time(sim::SimTime t) { i64(t.ns()); }
};

void mix_topology(Digest& d, const TopologySpec& t) {
  d.u64(static_cast<std::uint64_t>(t.kind));
  d.size(t.n);
  d.f64(t.grid);
  d.f64(t.skew.frac_low);
  d.i64(t.skew.low_min);
  d.i64(t.skew.low_max);
  d.size(t.skew.high_degrees.size());
  for (const int deg : t.skew.high_degrees) d.i64(deg);
  d.size(t.skew.high_weights.size());
  for (const double w : t.skew.high_weights) d.f64(w);
  d.i64(t.max_degree);
  d.f64(t.target_avg);
  d.f64(t.waxman.alpha);
  d.f64(t.waxman.beta);
  d.size(t.ba.m);
  d.size(t.glp.m);
  d.f64(t.glp.p);
  d.f64(t.glp.beta);
  d.size(t.hier.num_ases);
  d.i64(t.hier.min_as_size);
  d.i64(t.hier.max_as_size);
  d.f64(t.hier.size_alpha);
  d.size(t.hier.max_total_routers);
  d.i64(t.hier.max_inter_as_degree);
  d.f64(t.hier.target_avg_inter_as_degree);
  d.f64(t.hier.grid);
  d.boolean(t.policy_routing);
  d.size(t.peer_tolerance);
}

void mix_scheme(Digest& d, const SchemeSpec& s) {
  d.u64(static_cast<std::uint64_t>(s.mrai));
  d.time(s.constant_mrai);
  d.size(s.high_degree_threshold);
  d.time(s.low_mrai);
  d.time(s.high_mrai);
  d.size(s.dynamic.levels.size());
  for (const sim::SimTime lvl : s.dynamic.levels) d.time(lvl);
  d.time(s.dynamic.up_th);
  d.time(s.dynamic.down_th);
  d.u64(static_cast<std::uint64_t>(s.dynamic.monitor));
  d.f64(s.dynamic.up_util);
  d.f64(s.dynamic.down_util);
  d.f64(s.dynamic.up_rate);
  d.f64(s.dynamic.down_rate);
  d.size(s.dynamic.min_degree);
  d.size(s.extent.levels.size());
  for (const sim::SimTime lvl : s.extent.levels) d.time(lvl);
  d.size(s.extent.loss_thresholds.size());
  for (const double th : s.extent.loss_thresholds) d.f64(th);
  d.boolean(s.batching);
}

void mix_bgp(Digest& d, const bgp::BgpConfig& b) {
  d.time(b.link_delay);
  d.time(b.proc_min);
  d.time(b.proc_max);
  d.boolean(b.jitter_timers);
  d.boolean(b.per_destination_mrai);
  d.boolean(b.mrai_applies_to_withdrawals);
  d.u64(static_cast<std::uint64_t>(b.queue));
  d.u64(static_cast<std::uint64_t>(b.teardown));
  d.boolean(b.free_redundant_updates);
  d.i64(b.dest_mrai_min_changes);
  d.size(b.tcp_batch_limit);
  d.time(b.failure_detection_delay);
  d.boolean(b.sender_side_loop_detection);
  d.boolean(b.damping.enabled);
  d.f64(b.damping.withdrawal_penalty);
  d.f64(b.damping.attribute_change_penalty);
  d.f64(b.damping.suppress_threshold);
  d.f64(b.damping.reuse_threshold);
  d.f64(b.damping.max_penalty);
  d.f64(b.damping.half_life_s);
  d.u64(b.prefixes_per_origin);
  d.time(b.origination_spread);
}

}  // namespace

std::uint64_t converged_state_digest(const ExperimentConfig& cfg) {
  Digest d;
  d.u64(1);  // digest schema version
  d.u64(cfg.seed);
  mix_topology(d, cfg.topology);
  mix_scheme(d, cfg.scheme);
  mix_bgp(d, cfg.bgp);
  return d.h;
}

std::uint64_t run_digest(const ExperimentConfig& cfg) {
  Digest d;
  d.u64(converged_state_digest(cfg));
  d.f64(cfg.failure_fraction);
  d.time(cfg.pre_failure_gap);
  d.boolean(cfg.measure_recovery);
  return d.h;
}

std::vector<RunResult> run_sweep_warm(const std::vector<ExperimentConfig>& configs) {
  std::vector<RunResult> out(configs.size());
  if (configs.empty()) return out;

  // Group runs sharing a converged state; groups keep first-appearance
  // order so the fan-out below is deterministic.
  std::unordered_map<std::uint64_t, std::size_t> group_of;
  std::vector<std::size_t> first_member;         // group -> first config index
  std::vector<std::size_t> group_index(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::uint64_t digest = converged_state_digest(configs[i]);
    const auto [it, inserted] = group_of.emplace(digest, first_member.size());
    if (inserted) first_member.push_back(i);
    group_index[i] = it->second;
  }

  // Two flat passes (snapshots, then runs) rather than one region nested in
  // another: the pool runs nested regions inline, so fanning runs out from
  // inside a per-group region would serialize them.
  const std::size_t threads = harness_threads();
  std::vector<Snapshot> snaps(first_member.size());
  ThreadPool::instance().for_each_index(first_member.size(), threads, [&](std::size_t g) {
    // The snapshot pass runs with the observer hooks stripped: a sampler or
    // sink attached via `instrument` would bind to this throwaway network
    // (destroyed right after capture) and dangle into the real runs below.
    // Observers see only the restore-side runs, whose phases start at the
    // failure -- exactly the warm-start semantics documented in
    // warmstart.hpp.
    ExperimentConfig snap_cfg = configs[first_member[g]];
    snap_cfg.instrument = nullptr;
    snap_cfg.on_phase = nullptr;
    snap_cfg.on_complete = nullptr;
    snaps[g] = converge_snapshot(snap_cfg);
  });
  ThreadPool::instance().for_each_index(configs.size(), threads, [&](std::size_t i) {
    out[i] = run_experiment_from(configs[i], snaps[group_index[i]]);
  });
  return out;
}

}  // namespace bgpsim::harness
