#include "harness/timeline.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace bgpsim::harness {

TimelineRecorder::TimelineRecorder(bgp::Network& net, sim::SimTime interval,
                                   sim::SimTime overload_threshold)
    : net_{net},
      threshold_{overload_threshold},
      task_{net.scheduler(), interval, [this] { sample(); }} {}

void TimelineRecorder::start() {
  last_sent_ = net_.metrics().updates_sent;
  last_processed_ = net_.metrics().messages_processed;
  last_rib_ = net_.metrics().rib_changes;
  task_.start();
}

void TimelineRecorder::sample() {
  TimelineSample s;
  s.t_seconds = net_.scheduler().now().to_seconds();
  const auto& m = net_.metrics();
  s.updates_sent = m.updates_sent - last_sent_;
  s.processed = m.messages_processed - last_processed_;
  s.rib_changes = m.rib_changes - last_rib_;
  last_sent_ = m.updates_sent;
  last_processed_ = m.messages_processed;
  last_rib_ = m.rib_changes;
  for (const auto v : net_.alive_nodes()) {
    auto& r = net_.router(v);
    s.max_queue = std::max(s.max_queue, r.input_queue_length());
    if (r.unfinished_work() > threshold_) ++s.overloaded;
  }
  samples_.push_back(s);
  // Rescheduling (and self-termination at quiescence) is PeriodicTask's job.
}

std::size_t TimelineRecorder::peak_overloaded() const {
  std::size_t best = 0;
  for (const auto& s : samples_) best = std::max(best, s.overloaded);
  return best;
}

std::size_t TimelineRecorder::peak_queue() const {
  std::size_t best = 0;
  for (const auto& s : samples_) best = std::max(best, s.max_queue);
  return best;
}

std::uint64_t TimelineRecorder::peak_interval_updates() const {
  std::uint64_t best = 0;
  for (const auto& s : samples_) best = std::max(best, s.updates_sent);
  return best;
}

void TimelineRecorder::print(std::ostream& os, std::size_t max_rows) const {
  os << std::setw(9) << "t(s)" << std::setw(10) << "sent" << std::setw(10) << "processed"
     << std::setw(9) << "ribchg" << std::setw(9) << "maxq" << "  overloaded routers\n";
  const auto row = [&](const TimelineSample& s) {
    os << std::setw(9) << std::fixed << std::setprecision(1) << s.t_seconds << std::setw(10)
       << s.updates_sent << std::setw(10) << s.processed << std::setw(9) << s.rib_changes
       << std::setw(9) << s.max_queue << "  " << std::string(s.overloaded, '#') << " "
       << s.overloaded << "\n";
  };
  if (samples_.size() <= max_rows || max_rows < 4) {
    for (const auto& s : samples_) row(s);
    return;
  }
  const std::size_t head = max_rows / 2;
  const std::size_t tail = max_rows - head;
  for (std::size_t i = 0; i < head; ++i) row(samples_[i]);
  os << "     ...   (" << samples_.size() - max_rows << " samples elided)\n";
  for (std::size_t i = samples_.size() - tail; i < samples_.size(); ++i) row(samples_[i]);
}

}  // namespace bgpsim::harness
