#include "harness/profile.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "harness/parallel.hpp"

namespace bgpsim::harness {

void SweepProfile::write_json(std::ostream& os) const {
  os << "{\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"runs\": " << runs << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_s\": " << events_per_s() << ",\n"
     << "  \"busy_s\": " << busy_s << ",\n"
     << "  \"utilization\": " << utilization() << ",\n"
     << "  \"phase_totals_s\": {\n"
     << "    \"build\": " << phase_totals.build_s << ",\n"
     << "    \"converge\": " << phase_totals.converge_s << ",\n"
     << "    \"failure\": " << phase_totals.failure_s << ",\n"
     << "    \"recovery\": " << phase_totals.recovery_s << ",\n"
     << "    \"audit\": " << phase_totals.audit_s << "\n"
     << "  }\n"
     << "}\n";
}

void SweepProfile::write_json_file(const std::string& path) const {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"SweepProfile: cannot write " + path};
  write_json(os);
  if (!os) throw std::runtime_error{"SweepProfile: write failed for " + path};
}

std::vector<RunResult> run_sweep_profiled(const std::vector<ExperimentConfig>& configs,
                                          SweepProfile& profile) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t threads = harness_threads();

  std::vector<RunResult> out(configs.size());
  ThreadPool::instance().for_each_index(
      configs.size(), threads, [&](std::size_t i) { out[i] = run_experiment(configs[i]); });

  profile = SweepProfile{};
  profile.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  profile.threads = std::min(threads, std::max<std::size_t>(configs.size(), 1));
  profile.runs = out.size();
  for (const auto& r : out) {
    profile.events += r.events;
    profile.busy_s += r.timing.total_s;
    profile.phase_totals.build_s += r.timing.build_s;
    profile.phase_totals.converge_s += r.timing.converge_s;
    profile.phase_totals.failure_s += r.timing.failure_s;
    profile.phase_totals.recovery_s += r.timing.recovery_s;
    profile.phase_totals.audit_s += r.timing.audit_s;
    profile.phase_totals.total_s += r.timing.total_s;
  }
  return out;
}

}  // namespace bgpsim::harness
