// Experiment harness: one (config, seed) pair -> one measured run.
//
// A run follows the paper's protocol: build the topology, bring the network
// to cold-start convergence under the configured scheme, then fail a
// contiguous set of nodes at the grid centre and measure (a) the
// convergence delay -- time from the failure to the last Loc-RIB change in
// the network -- and (b) the number of update messages generated after the
// failure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/network.hpp"
#include "schemes/dynamic_mrai.hpp"
#include "schemes/extent_mrai.hpp"
#include "topo/degree_sequence.hpp"
#include "topo/generators.hpp"
#include "topo/hierarchical.hpp"

namespace bgpsim::harness {

struct TopologySpec {
  enum class Kind { kSkewed, kInternetLike, kWaxman, kBarabasiAlbert, kGlp, kHierarchical };
  Kind kind = Kind::kSkewed;
  std::size_t n = 120;          ///< node count (flat kinds)
  double grid = 1000.0;
  topo::SkewSpec skew = topo::SkewSpec::s70_30();
  int max_degree = 40;          ///< kInternetLike
  double target_avg = 3.4;      ///< kInternetLike
  topo::WaxmanParams waxman{};
  topo::BaParams ba{};
  topo::GlpParams glp{};
  topo::HierParams hier{};
  /// Flat kinds only: annotate the generated graph with degree-inferred
  /// Gao-Rexford relations and run with policy routing (customer
  /// preference + valley-free export).
  bool policy_routing = false;
  std::size_t peer_tolerance = 1;  ///< degree difference still counting as a peering
};

struct SchemeSpec {
  enum class Mrai { kConstant, kDegreeDependent, kDynamic, kExtent };
  Mrai mrai = Mrai::kConstant;

  sim::SimTime constant_mrai = sim::SimTime::seconds(30.0);  ///< Internet default

  // kDegreeDependent
  std::size_t high_degree_threshold = 5;
  sim::SimTime low_mrai = sim::SimTime::seconds(0.5);
  sim::SimTime high_mrai = sim::SimTime::seconds(2.25);

  // kDynamic
  schemes::DynamicMraiParams dynamic{};

  // kExtent (future-work extension: MRAI set from the observed failure
  // extent, see schemes/extent_mrai.hpp)
  schemes::ExtentMraiParams extent{};

  /// The paper's batching scheme (independent of the MRAI policy).
  bool batching = false;

  static SchemeSpec constant(double mrai_seconds, bool batch = false) {
    SchemeSpec s;
    s.mrai = Mrai::kConstant;
    s.constant_mrai = sim::SimTime::seconds(mrai_seconds);
    s.batching = batch;
    return s;
  }
  static SchemeSpec degree_dependent(double low_s, double high_s, std::size_t threshold = 5) {
    SchemeSpec s;
    s.mrai = Mrai::kDegreeDependent;
    s.low_mrai = sim::SimTime::seconds(low_s);
    s.high_mrai = sim::SimTime::seconds(high_s);
    s.high_degree_threshold = threshold;
    return s;
  }
  static SchemeSpec dynamic_mrai(schemes::DynamicMraiParams p = {}, bool batch = false) {
    SchemeSpec s;
    s.mrai = Mrai::kDynamic;
    s.dynamic = std::move(p);
    s.batching = batch;
    return s;
  }
  static SchemeSpec extent_mrai(schemes::ExtentMraiParams p = {}, bool batch = false) {
    SchemeSpec s;
    s.mrai = Mrai::kExtent;
    s.extent = std::move(p);
    s.batching = batch;
    return s;
  }
};

/// The three simulated phases of a run, in order.
enum class RunPhase { kColdStart, kFailure, kRecovery };

struct ExperimentConfig {
  TopologySpec topology{};
  SchemeSpec scheme{};
  bgp::BgpConfig bgp{};
  double failure_fraction = 0.05;  ///< of all routers, contiguous at grid centre
  std::uint64_t seed = 1;
  /// Intra-run partition threads (Network::enable_parallel). 0 = use the
  /// BGPSIM_PAR_THREADS environment variable (itself defaulting to the
  /// legacy serial scheduler); 1 = the partitioned serial identity oracle.
  /// The effective value is clamped so sweep-threads x par-threads stays
  /// under harness_thread_cap(). Checkpoint capture/restore paths always
  /// run legacy serial regardless of this setting.
  std::size_t par_threads = 0;
  /// Collect the per-window partition profile during parallel runs
  /// (Network::enable_par_profile): fills RunResult::par_windows /
  /// par_imbalance_factor / par_barrier_overhead. No effect on serial runs.
  bool par_profile = false;
  /// Quiet gap inserted between cold-start convergence and the failure.
  sim::SimTime pre_failure_gap = sim::SimTime::seconds(1.0);
  /// When true, after the post-failure convergence quiesces the failed
  /// region is brought back up and the re-convergence ("recovery flood") is
  /// measured into RunResult::recovery_delay_s.
  bool measure_recovery = false;
  /// Observability hook, invoked once per run after the Network is built and
  /// before start(). Attach trace sinks / telemetry samplers here (they must
  /// be read-only observers -- see obs/telemetry.hpp). Sweep drivers that
  /// capture a single run typically guard on the seed argument. Not compared
  /// by the bit-identical replica checks, so leaving it unset keeps the run
  /// byte-for-byte what it was.
  std::function<void(bgp::Network&, std::uint64_t seed)> instrument;
  /// Called immediately before each phase's events are drained (after the
  /// phase's trigger is scheduled). Self-terminating periodic observers --
  /// TelemetrySampler, TimelineRecorder -- stop at quiescence, so restart
  /// them here to cover the failure/recovery floods too.
  std::function<void(RunPhase)> on_phase;
  /// Called once after the run (audit included) while the Network is still
  /// alive. Harvest and tear down observers attached in `instrument` here:
  /// a sampler's PeriodicTask must not outlive the run's Scheduler.
  std::function<void(bgp::Network&, std::uint64_t seed)> on_complete;
};

/// Wall-clock cost of each run phase (host time, not simulated time). Filled
/// by run_experiment for profiling; never part of determinism comparisons.
struct PhaseTimings {
  double build_s = 0.0;     ///< topology + network construction
  double converge_s = 0.0;  ///< cold-start convergence
  double failure_s = 0.0;   ///< failure injection + re-convergence
  double recovery_s = 0.0;  ///< optional recovery phase
  double audit_s = 0.0;     ///< route audit
  double total_s = 0.0;
};

struct RunResult {
  double initial_convergence_s = 0.0;  ///< cold start -> quiescent
  double convergence_delay_s = 0.0;    ///< failure -> last Loc-RIB change
  double recovery_delay_s = 0.0;       ///< recovery -> last Loc-RIB change (if measured)
  std::uint64_t messages_after_recovery = 0;
  std::uint64_t messages_after_failure = 0;
  std::uint64_t adverts_after_failure = 0;
  std::uint64_t withdrawals_after_failure = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t messages_processed = 0;
  std::uint64_t batch_dropped = 0;   ///< stale updates deleted by batching
  std::uint64_t events = 0;
  std::size_t routers = 0;
  std::size_t failed_routers = 0;
  bool routes_valid = false;         ///< post-failure audit verdict
  std::string audit_error;           ///< first violation, when !routes_valid
  PhaseTimings timing;               ///< host wall-clock per phase
  /// Partition-profile summary (only when cfg.par_profile and the run was
  /// parallel). Busy times are host wall-clock, so like `timing` these are
  /// never part of determinism comparisons.
  std::uint64_t par_windows = 0;
  double par_imbalance_factor = 0.0;
  double par_barrier_overhead = 0.0;
};

RunResult run_experiment(const ExperimentConfig& cfg);

struct Stats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;

  static Stats of(const std::vector<double>& xs);
};

struct AveragedResult {
  Stats delay;     ///< convergence delay, seconds
  Stats messages;  ///< messages after failure
  double valid_fraction = 0.0;
  std::vector<RunResult> runs;
};

/// Folds per-run results into the averaged view (delay/message stats, valid
/// fraction). run_averaged = run_sweep over seed replicas + this.
AveragedResult aggregate_runs(std::vector<RunResult> runs);

/// Runs `num_seeds` independent replicas (seeds cfg.seed, cfg.seed+1, ...).
/// Replicas execute on the harness thread pool (see harness/parallel.hpp;
/// BGPSIM_THREADS controls the degree) and the result is bit-identical to a
/// serial loop whatever the thread count.
AveragedResult run_averaged(ExperimentConfig cfg, std::size_t num_seeds);

/// Number of replica seeds benches should use: the BGPSIM_SEEDS environment
/// variable if set, else `fallback`.
std::size_t bench_seeds(std::size_t fallback = 3);

}  // namespace bgpsim::harness
