#include "harness/options.hpp"

#include <algorithm>
#include <stdexcept>

namespace bgpsim::harness {

Options Options::parse(int argc, const char* const* argv) {
  Options out;
  int i = 0;
  // Positional arguments come first.
  while (i < argc && std::string_view{argv[i]}.substr(0, 2) != "--") {
    out.positional_.emplace_back(argv[i]);
    ++i;
  }
  while (i < argc) {
    std::string token = argv[i];
    if (token.substr(0, 2) != "--" || token.size() == 2) {
      throw std::invalid_argument{"unexpected argument: '" + token + "'"};
    }
    token.erase(0, 2);
    if (const auto eq = token.find('='); eq != std::string::npos) {
      out.values_[token.substr(0, eq)] = token.substr(eq + 1);
      ++i;
      continue;
    }
    if (i + 1 < argc && std::string_view{argv[i + 1]}.substr(0, 2) != "--") {
      out.values_[token] = argv[i + 1];
      i += 2;
    } else {
      out.values_[token] = "";  // bare flag
      ++i;
    }
  }
  return out;
}

std::optional<std::string> Options::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Options::get_or(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument{"--" + key + " expects a number, got '" + *v + "'"};
  }
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument{"--" + key + " expects an integer, got '" + *v + "'"};
  }
}

bool Options::flag(const std::string& key) const {
  const auto v = get(key);
  if (!v) return false;
  return *v != "false" && *v != "0";
}

std::vector<std::string> Options::unknown_keys(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) out.push_back(key);
  }
  return out;
}

}  // namespace bgpsim::harness
