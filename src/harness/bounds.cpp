#include "harness/bounds.hpp"

#include <algorithm>

namespace bgpsim::harness {

DelayBounds clique_withdrawal_bounds(std::size_t n, double mrai_s, bool jittered,
                                     double link_delay_s, double proc_max_s) {
  DelayBounds b;
  if (n < 4) {
    // Too small for path exploration: everything resolves in propagation
    // time.
    b.lower_s = 0.0;
    b.upper_s = 2.0 * link_delay_s + static_cast<double>(n) * proc_max_s + mrai_s;
    return b;
  }
  // Labovitz best case: (n-3) MRAI-paced exploration rounds; jitter can
  // shrink every round to 75% of the configured interval.
  const double round_min = (jittered ? 0.75 : 1.0) * mrai_s;
  b.lower_s = static_cast<double>(n - 3) * round_min;
  // Upper bound: per-peer timers interleave advertisements and withdrawals,
  // at most doubling the round count to 2(n-3) (plus one residual flush);
  // each round costs at most one full MRAI plus one propagation +
  // queue-free processing sweep across the mesh.
  const double round_max =
      mrai_s + 2.0 * link_delay_s + static_cast<double>(n) * proc_max_s;
  b.upper_s = static_cast<double>(2 * (n - 3) + 1) * round_max;
  return b;
}

}  // namespace bgpsim::harness
