// Fault-tolerant sweeps: journal every run's result to JSONL as it
// completes, so a sweep killed mid-grid (OOM, preemption, ^C) can be
// resumed and completes only the missing runs.
//
// The journal is append-only, one JSON object per line, flushed per line:
// a killed process loses at most the line it was writing, and a truncated
// final line is detected and ignored on resume. Runs are keyed by (index,
// run_digest) -- a journal from a *different* grid cannot satisfy a resume,
// it just contributes no matching entries.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace bgpsim::harness {

struct ResumeOptions {
  /// JSONL journal path. Required.
  std::string journal_path;
  /// Reuse completed entries from an existing journal; without this the
  /// journal is truncated and every run executes.
  bool resume = false;
  /// Execute missing runs warm (grouped snapshots, see warmstart.hpp)
  /// instead of cold. Results are bit-identical either way.
  bool warm = false;
  /// In-process attempts per run before it is recorded as failed.
  int max_attempts = 2;
};

/// run_sweep with a journal: executes every config not already journaled as
/// done, appending a {"run":i,"digest":...,"status":"done",...} line per
/// completed run and a "failed" line (with the exception text) per
/// exhausted-retries failure. Returns results in input order, bit-identical
/// to run_sweep. Throws std::runtime_error after the sweep if any run still
/// failed -- its journal lines remain, so a later --resume retries exactly
/// those. Host-time fields (RunResult::timing) are not journaled; resumed
/// entries report zero timings.
std::vector<RunResult> run_sweep_resumable(const std::vector<ExperimentConfig>& configs,
                                           const ResumeOptions& opt);

}  // namespace bgpsim::harness
