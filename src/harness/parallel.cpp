#include "harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace bgpsim::harness {

namespace {
/// Upper bound on the sweep degree: well past any machine this runs on, and
/// low enough that a fat-fingered BGPSIM_THREADS=100000 cannot ask the pool
/// to spawn an absurd number of threads.
constexpr std::size_t kMaxHarnessThreads = harness_thread_cap();

/// Executors in the active sweep region; 1 when no region is running.
/// Written only by the (single) region owner, read by experiment setup on
/// the region's worker threads, hence atomic.
std::atomic<std::size_t> g_active_sweep_threads{1};

void warn_threads_env(const char* env, const char* why) {
  // One warning per process: harness_threads() is re-read on every parallel
  // region, and a bad value should not flood a sweep's stderr.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr, "bgpsim: BGPSIM_THREADS=\"%s\" %s\n", env, why);
  }
}
}  // namespace

std::size_t harness_threads() {
  if (const char* env = std::getenv("BGPSIM_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v <= 0) {
      // The whole token must be a positive integer: "8x", "", " " and
      // out-of-range values all fall back to hardware concurrency instead
      // of whatever prefix strtol happened to accept.
      warn_threads_env(env, "is not a positive integer; using hardware concurrency");
    } else if (v > static_cast<long>(kMaxHarnessThreads)) {
      warn_threads_env(env, "exceeds the 512-thread cap; clamping");
      return kMaxHarnessThreads;
    } else {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t active_sweep_threads() {
  return g_active_sweep_threads.load(std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  // State of the (single) active parallel region. Workers pull the next
  // item index from `next`; the region is over when `remaining` hits zero.
  struct Region {
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::size_t remaining = 0;  // guarded by m: items not yet accounted done
    std::size_t active = 0;     // guarded by m: workers currently inside
    std::exception_ptr error;   // guarded by m; from the lowest index
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
  };

  std::mutex m;
  std::condition_variable work_cv;   // workers wait here for a region
  std::condition_variable done_cv;   // the caller waits here for completion
  Region* region = nullptr;          // guarded by m
  std::size_t region_ticket = 0;     // bumped per region, wakes workers
  std::vector<std::thread> workers;  // guarded by m (grow-only)
  bool stopping = false;             // guarded by m
  std::atomic<bool> in_region{false};

  void record_error(Region& r, std::size_t index) {
    std::lock_guard<std::mutex> lock{m};
    if (index < r.error_index) {
      r.error_index = index;
      r.error = std::current_exception();
    }
  }

  /// Pulls items from the region until it drains. Returns the number of
  /// items this thread completed.
  std::size_t drain(Region& r) {
    std::size_t done = 0;
    for (;;) {
      const std::size_t i = r.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= r.n) return done;
      try {
        (*r.body)(i);
      } catch (...) {
        record_error(r, i);
      }
      ++done;
    }
  }

  void worker_loop() {
    std::size_t seen_ticket = 0;
    for (;;) {
      Region* r = nullptr;
      {
        std::unique_lock<std::mutex> lock{m};
        work_cv.wait(lock, [&] {
          return stopping || (region != nullptr && region_ticket != seen_ticket);
        });
        if (stopping) return;
        seen_ticket = region_ticket;
        r = region;
        // Registering under the lock that also publishes/retires `region`
        // guarantees the caller waits for this worker before destroying the
        // (stack-allocated) region.
        ++r->active;
      }
      const std::size_t done = drain(*r);
      {
        std::lock_guard<std::mutex> lock{m};
        r->remaining -= done;
        --r->active;
        if (r->remaining == 0 && r->active == 0) done_cv.notify_all();
      }
    }
  }

  void ensure_workers(std::size_t count) {
    std::lock_guard<std::mutex> lock{m};
    while (workers.size() < count) {
      if (spawn_hook) spawn_hook();
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  std::function<void()> spawn_hook;  // guarded by m; test-only failure injection
};

ThreadPool::ThreadPool() : impl_{new Impl} {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{impl_->m};
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::set_spawn_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock{impl_->m};
  impl_->spawn_hook = std::move(hook);
}

std::size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock{impl_->m};
  return impl_->workers.size();
}

void ThreadPool::for_each_index(std::size_t n, std::size_t threads,
                                const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Serial fallback: degree 1, tiny regions, or a (programming-error) nested
  // call from inside a worker -- run inline, in order, exceptions straight
  // through.
  if (threads <= 1 || n <= 1 || impl_->in_region.exchange(true)) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // From here on `in_region` is ours and must drop back to false on *every*
  // exit path. Before this guard existed, ensure_workers() throwing (thread
  // creation failure) leaked the flag and silently serialized every later
  // region for the rest of the process.
  struct InRegionReset {
    std::atomic<bool>& flag;
    ~InRegionReset() {
      g_active_sweep_threads.store(1, std::memory_order_relaxed);
      flag.store(false);
    }
  } in_region_reset{impl_->in_region};
  g_active_sweep_threads.store(std::min(threads, n), std::memory_order_relaxed);

  Impl::Region region;
  region.body = &body;
  region.n = n;
  region.remaining = n;

  const std::size_t helpers = std::min(threads, n) - 1;
  impl_->ensure_workers(helpers);
  {
    std::lock_guard<std::mutex> lock{impl_->m};
    impl_->region = &region;
    ++impl_->region_ticket;
  }
  impl_->work_cv.notify_all();

  const std::size_t done_here = impl_->drain(region);
  {
    std::unique_lock<std::mutex> lock{impl_->m};
    region.remaining -= done_here;
    impl_->done_cv.wait(lock, [&] { return region.remaining == 0 && region.active == 0; });
    impl_->region = nullptr;
  }
  if (region.error) std::rethrow_exception(region.error);
}

std::vector<RunResult> run_sweep(const std::vector<ExperimentConfig>& configs) {
  std::vector<RunResult> out(configs.size());
  ThreadPool::instance().for_each_index(
      configs.size(), harness_threads(),
      [&](std::size_t i) { out[i] = run_experiment(configs[i]); });
  return out;
}

AveragedResult aggregate_runs(std::vector<RunResult> runs) {
  AveragedResult out;
  out.runs = std::move(runs);
  std::vector<double> delays;
  std::vector<double> msgs;
  delays.reserve(out.runs.size());
  msgs.reserve(out.runs.size());
  std::size_t valid = 0;
  for (const auto& r : out.runs) {
    delays.push_back(r.convergence_delay_s);
    msgs.push_back(static_cast<double>(r.messages_after_failure));
    if (r.routes_valid) ++valid;
  }
  out.delay = Stats::of(delays);
  out.messages = Stats::of(msgs);
  out.valid_fraction = out.runs.empty()
                           ? 0.0
                           : static_cast<double>(valid) / static_cast<double>(out.runs.size());
  return out;
}

AveragedResult run_averaged(ExperimentConfig cfg, std::size_t num_seeds) {
  std::vector<ExperimentConfig> cfgs(num_seeds, cfg);
  for (std::size_t i = 0; i < num_seeds; ++i) cfgs[i].seed = cfg.seed + i;
  return aggregate_runs(run_sweep(cfgs));
}

}  // namespace bgpsim::harness
