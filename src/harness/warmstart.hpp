// Warm-start sweeps: converge once per converged-state group, checkpoint
// the quiescent network, and fan the group's failure scenarios out from the
// snapshot instead of re-running the (dominant) cold-start convergence for
// every run.
//
// Correctness rests on the quiescence argument in DESIGN.md "Checkpointing":
// at quiescence the event heap is empty, so the checkpoint captures the
// complete simulation state and a restored run is bit-identical to one that
// never stopped. run_sweep_warm is therefore result-identical to run_sweep
// -- CI diffs the two via tools/identity_check --warm.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/checkpoint.hpp"
#include "harness/experiment.hpp"

namespace bgpsim::harness {

/// FNV-1a digest over every configuration field that determines the
/// converged pre-failure state: topology, scheme, BGP config and seed.
/// Failure fraction, recovery, the pre-failure gap and the observer hooks
/// are excluded -- runs differing only in those share a snapshot. This is
/// the digest stamped into (and checked against) a checkpoint.
std::uint64_t converged_state_digest(const ExperimentConfig& cfg);

/// Digest of the full run identity: converged_state_digest plus the failure
/// scenario fields. The resumable journal keys completed runs by this.
std::uint64_t run_digest(const ExperimentConfig& cfg);

/// A converged pre-failure snapshot: the checkpoint plus the host-time cost
/// the producer paid, which warm runs report in their timings so profiling
/// stays honest about where the wall-clock went.
struct Snapshot {
  bgp::Checkpoint checkpoint;
  double build_s = 0.0;
  double converge_s = 0.0;
};

/// Builds cfg's network, runs it to cold-start convergence (exactly as
/// run_experiment's phase 1, including the scheme reset) and captures the
/// quiescent state.
Snapshot converge_snapshot(const ExperimentConfig& cfg);

/// Runs the failure (and optional recovery) phases of `cfg` from the
/// snapshot; the snapshot must come from a config with the same
/// converged_state_digest (enforced). Bit-identical to run_experiment(cfg)
/// in every simulated quantity; only host-time fields differ (converge_s
/// reports the producer's cost). Observer caveats: cfg.instrument still
/// fires after the network is built (before the restore), but cold-start
/// events never re-execute, so on_phase(kColdStart) is not emitted and
/// trace sinks see the run begin at the failure phase.
RunResult run_experiment_from(const ExperimentConfig& cfg, const Snapshot& snap);

/// run_sweep, but grouping configs by converged_state_digest, converging
/// each group once (groups in parallel on the harness pool) and then
/// running every config warm from its group's snapshot (runs in parallel).
/// Results in input order, bit-identical to run_sweep.
std::vector<RunResult> run_sweep_warm(const std::vector<ExperimentConfig>& configs);

}  // namespace bgpsim::harness
