// Per-prefix convergence statistics, computed from the trace stream.
//
// Labovitz et al. classify convergence events by what happens to the
// prefix: Tdown (the origin disappears; the network must withdraw) is the
// slow, exploration-heavy case, while Tup (a new/recovered origin) is fast.
// This sink watches kRibChanged events after a marked instant (typically
// the failure time) and reports, per prefix: when it last changed anywhere,
// and how many Loc-RIB changes it caused network-wide -- the per-prefix
// view of the aggregate convergence delay the harness reports.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/trace.hpp"

namespace bgpsim::harness {

class PrefixConvergenceSink final : public bgp::TraceSink {
 public:
  void on_event(const bgp::TraceEvent& event) override {
    if (event.kind != bgp::TraceEvent::Kind::kRibChanged) return;
    if (event.at < epoch_) return;
    auto& s = stats_[event.prefix];
    ++s.rib_changes;
    if (event.at > s.last_change) s.last_change = event.at;
  }

  /// Ignore events before `t` (call at failure-injection time).
  void set_epoch(sim::SimTime t) { epoch_ = t; }
  void reset() { stats_.clear(); }

  struct PrefixStats {
    std::uint64_t rib_changes = 0;
    sim::SimTime last_change;
  };

  /// Per-prefix convergence delay relative to the epoch, seconds.
  double convergence_delay_s(bgp::Prefix p) const {
    const auto it = stats_.find(p);
    if (it == stats_.end()) return 0.0;
    return (it->second.last_change - epoch_).to_seconds();
  }

  std::uint64_t rib_changes(bgp::Prefix p) const {
    const auto it = stats_.find(p);
    return it == stats_.end() ? 0 : it->second.rib_changes;
  }

  /// Prefixes that changed at all since the epoch.
  std::vector<bgp::Prefix> touched_prefixes() const;

  /// The slowest prefix and its delay -- by definition this equals the
  /// aggregate convergence delay of the episode.
  std::pair<bgp::Prefix, double> slowest() const;

  /// Mean per-prefix convergence delay over touched prefixes.
  double mean_delay_s() const;

 private:
  sim::SimTime epoch_;
  std::unordered_map<bgp::Prefix, PrefixStats> stats_;
};

}  // namespace bgpsim::harness
