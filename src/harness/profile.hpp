// Sweep-level wall-clock profiling.
//
// run_experiment stamps every RunResult with host-time PhaseTimings; this
// module aggregates them across a sweep into a SweepProfile -- total wall
// time, thread-pool utilization (busy run-seconds over wall-seconds times
// degree), simulated-events throughput and per-phase totals -- and renders
// it as JSON for dashboards or `bgpsim_run --profile=<file>`.
//
// Profiling never feeds back into the simulation: the timings live outside
// the fields the bit-identical replica checks compare.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace bgpsim::harness {

struct SweepProfile {
  double wall_s = 0.0;        ///< host time for the whole sweep
  std::size_t threads = 0;    ///< parallel degree used
  std::size_t runs = 0;
  std::uint64_t events = 0;   ///< simulated events across all runs
  double busy_s = 0.0;        ///< sum of per-run total wall time
  PhaseTimings phase_totals;  ///< per-phase sums across runs

  /// Fraction of (wall_s * threads) spent inside runs; 1.0 = perfectly
  /// packed pool, low values = stragglers or tiny sweeps.
  double utilization() const {
    const double capacity = wall_s * static_cast<double>(threads);
    return capacity > 0.0 ? busy_s / capacity : 0.0;
  }
  double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }

  void write_json(std::ostream& os) const;
  /// Throws std::runtime_error when the file cannot be written.
  void write_json_file(const std::string& path) const;
};

/// run_sweep plus profiling: executes the configs on the harness pool
/// exactly like run_sweep (same results, same order, same determinism) and
/// fills `profile` with the aggregate timings.
std::vector<RunResult> run_sweep_profiled(const std::vector<ExperimentConfig>& configs,
                                          SweepProfile& profile);

}  // namespace bgpsim::harness
