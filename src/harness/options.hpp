// Minimal command-line option parsing for the CLI tools.
//
// Syntax: `--key value`, `--key=value`, or bare `--flag`; anything before
// the first `--` option is positional. A token following `--key` is taken
// as its value unless it starts with `--`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bgpsim::harness {

class Options {
 public:
  /// Parses argv (excluding argv[0]); throws std::invalid_argument on a
  /// token that is neither an option nor positional-before-options.
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.contains(key); }

  /// Value of `--key`; empty optional if absent, empty string for a bare
  /// flag.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// True if `--key` appears (with or without a value, unless the value is
  /// "false" or "0").
  bool flag(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys present but not in `known` (for friendly error messages).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bgpsim::harness
