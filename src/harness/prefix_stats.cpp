#include "harness/prefix_stats.hpp"

#include <algorithm>

namespace bgpsim::harness {

std::vector<bgp::Prefix> PrefixConvergenceSink::touched_prefixes() const {
  std::vector<bgp::Prefix> out;
  out.reserve(stats_.size());
  for (const auto& [p, s] : stats_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

std::pair<bgp::Prefix, double> PrefixConvergenceSink::slowest() const {
  bgp::Prefix worst = 0;
  sim::SimTime worst_t = epoch_;
  for (const auto& [p, s] : stats_) {
    if (s.last_change > worst_t) {
      worst_t = s.last_change;
      worst = p;
    }
  }
  return {worst, (worst_t - epoch_).to_seconds()};
}

double PrefixConvergenceSink::mean_delay_s() const {
  if (stats_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [p, s] : stats_) sum += (s.last_change - epoch_).to_seconds();
  return sum / static_cast<double>(stats_.size());
}

}  // namespace bgpsim::harness
