// Time-series instrumentation of a running network.
//
// A TimelineRecorder samples the network at a fixed simulated interval
// while there is activity: update/processing throughput in the interval,
// the deepest input queue, and how many routers are currently "overloaded"
// (unfinished work above a threshold -- by default the paper's upTh).
// Sampling stops by itself when the event queue drains, so
// run_to_quiescence() still terminates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "bgp/network.hpp"
#include "sim/periodic.hpp"

namespace bgpsim::harness {

struct TimelineSample {
  double t_seconds = 0.0;            ///< absolute simulation time
  std::uint64_t updates_sent = 0;    ///< in this interval
  std::uint64_t processed = 0;       ///< work items finished in this interval
  std::uint64_t rib_changes = 0;     ///< in this interval
  std::size_t max_queue = 0;         ///< deepest input queue right now
  std::size_t overloaded = 0;        ///< routers with work > threshold
};

class TimelineRecorder {
 public:
  /// Starts sampling `net` every `interval`, beginning one interval from
  /// now. `overload_threshold` defaults to the paper's upTh (0.65 s of
  /// unfinished work).
  TimelineRecorder(bgp::Network& net, sim::SimTime interval,
                   sim::SimTime overload_threshold = sim::SimTime::seconds(0.65));

  void start();

  const std::vector<TimelineSample>& samples() const { return samples_; }

  /// Peak values over the recorded window.
  std::size_t peak_overloaded() const;
  std::size_t peak_queue() const;
  std::uint64_t peak_interval_updates() const;

  /// Prints the series as an aligned table with a bar for the overloaded-
  /// router count. With more than `max_rows` samples the middle of the
  /// series is elided.
  void print(std::ostream& os, std::size_t max_rows = 40) const;

 private:
  void sample();

  bgp::Network& net_;
  sim::SimTime threshold_;
  sim::PeriodicTask task_;
  std::vector<TimelineSample> samples_;
  std::uint64_t last_sent_ = 0;
  std::uint64_t last_processed_ = 0;
  std::uint64_t last_rib_ = 0;
};

}  // namespace bgpsim::harness
