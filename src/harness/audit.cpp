#include "harness/audit.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

namespace bgpsim::harness {

namespace {

std::string describe(const char* what, bgp::NodeId router, bgp::Prefix prefix) {
  return std::string{what} + " (router " + std::to_string(router) + ", prefix " +
         std::to_string(prefix) + ")";
}

}  // namespace

std::optional<std::string> audit_routes(bgp::Network& net) {
  const auto alive = net.alive_nodes();
  std::vector<bool> is_alive(net.size(), false);
  for (const auto v : alive) is_alive[v] = true;

  // Connected components of the survivor session graph.
  std::vector<std::size_t> comp(net.size(), SIZE_MAX);
  std::size_t num_comp = 0;
  for (const auto start : alive) {
    if (comp[start] != SIZE_MAX) continue;
    std::deque<bgp::NodeId> q{start};
    comp[start] = num_comp;
    while (!q.empty()) {
      const auto v = q.front();
      q.pop_front();
      for (const auto w : net.router(v).peers()) {
        if (is_alive[w] && net.router(v).peer_session_up(w) && comp[w] == SIZE_MAX) {
          comp[w] = num_comp;
          q.push_back(w);
        }
      }
    }
    ++num_comp;
  }

  // Origin router of each live prefix (each origin may announce a range).
  std::unordered_map<bgp::Prefix, bgp::NodeId> origin_of;
  for (const auto v : alive) {
    if (!net.router(v).originates()) continue;
    const auto [base, count] = net.router(v).origin_range();
    for (std::uint32_t k = 0; k < count; ++k) origin_of[base + k] = v;
  }

  for (const auto v : alive) {
    const auto& r = net.router(v);
    // (1) Reachability <=> route presence. Only in policy-free networks:
    // valley-free export legitimately hides reachable prefixes.
    if (!net.policy_routing()) {
      for (const auto& [prefix, origin] : origin_of) {
        const bool reachable = comp[origin] == comp[v];
        const bool has = r.best(prefix).has_value();
        if (reachable && !has) return describe("missing route to reachable prefix", v, prefix);
        if (!reachable && has) return describe("route to unreachable prefix", v, prefix);
      }
    }
    // (2) No routes to dead prefixes; (3) next-hop chains terminate at the
    // origin without loops.
    for (const auto prefix : r.known_prefixes()) {
      if (!origin_of.contains(prefix)) {
        return describe("route to prefix with dead origin", v, prefix);
      }
      bgp::NodeId cur = v;
      std::size_t steps = 0;
      while (true) {
        const auto entry = net.router(cur).best(prefix);
        if (!entry) return describe("next-hop chain hit a router without a route", v, prefix);
        if (entry->local) {
          if (cur != origin_of[prefix]) {
            return describe("chain ended at a non-origin local route", v, prefix);
          }
          break;
        }
        const auto next = entry->learned_from;
        if (!is_alive[next]) return describe("next hop is a dead router", v, prefix);
        if (!net.router(cur).peer_session_up(next)) {
          return describe("next hop over a down session", v, prefix);
        }
        cur = next;
        if (++steps > net.size()) return describe("forwarding loop", v, prefix);
      }
    }
  }
  return std::nullopt;
}

}  // namespace bgpsim::harness
