#include "harness/resume.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "harness/parallel.hpp"
#include "harness/warmstart.hpp"

namespace bgpsim::harness {

namespace {

// --- JSONL encoding -------------------------------------------------------
// The journal is written and read only by this module, so the "parser"
// below is a keyed extractor over our own output, not a general JSON
// reader. Doubles use %.17g, which round-trips IEEE doubles exactly; the
// digest is hex text so it survives tools that mangle 64-bit JSON numbers.

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%llu,", key, static_cast<unsigned long long>(v));
  out += buf;
}

void append_kv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g,", key, v);
  out += buf;
}

std::string encode_line(std::size_t run, std::uint64_t digest, const char* status,
                        const RunResult* r, std::string_view error) {
  std::string out = "{";
  append_kv(out, "run", static_cast<std::uint64_t>(run));
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(digest));
  out += "\"digest\":\"";
  out += hex;
  out += "\",\"status\":\"";
  out += status;
  out += "\",";
  if (r != nullptr) {
    append_kv(out, "initial_convergence_s", r->initial_convergence_s);
    append_kv(out, "convergence_delay_s", r->convergence_delay_s);
    append_kv(out, "recovery_delay_s", r->recovery_delay_s);
    append_kv(out, "messages_after_recovery", r->messages_after_recovery);
    append_kv(out, "messages_after_failure", r->messages_after_failure);
    append_kv(out, "adverts_after_failure", r->adverts_after_failure);
    append_kv(out, "withdrawals_after_failure", r->withdrawals_after_failure);
    append_kv(out, "messages_total", r->messages_total);
    append_kv(out, "messages_processed", r->messages_processed);
    append_kv(out, "batch_dropped", r->batch_dropped);
    append_kv(out, "events", r->events);
    append_kv(out, "routers", static_cast<std::uint64_t>(r->routers));
    append_kv(out, "failed_routers", static_cast<std::uint64_t>(r->failed_routers));
    append_kv(out, "routes_valid", static_cast<std::uint64_t>(r->routes_valid ? 1 : 0));
    out += "\"audit_error\":\"";
    append_escaped(out, r->audit_error);
    out += "\",";
  }
  if (!error.empty()) {
    out += "\"error\":\"";
    append_escaped(out, error);
    out += "\",";
  }
  out.back() = '}';  // replace the trailing comma
  out += '\n';
  return out;
}

/// Raw text after `"key":` in `line`; nullopt when absent.
std::optional<std::string_view> value_after(std::string_view line, std::string_view key) {
  std::string pat;
  pat.reserve(key.size() + 3);
  pat += '"';
  pat += key;
  pat += "\":";
  const std::size_t p = line.find(pat);
  if (p == std::string_view::npos) return std::nullopt;
  return line.substr(p + pat.size());
}

std::optional<std::uint64_t> get_u64(std::string_view line, std::string_view key) {
  const auto raw = value_after(line, key);
  if (!raw) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(std::string{raw->substr(0, 32)}.c_str(), &end, 10);
  if (end == nullptr || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<double> get_f64(std::string_view line, std::string_view key) {
  const auto raw = value_after(line, key);
  if (!raw) return std::nullopt;
  return std::strtod(std::string{raw->substr(0, 64)}.c_str(), nullptr);
}

std::optional<std::string> get_str(std::string_view line, std::string_view key) {
  auto raw = value_after(line, key);
  if (!raw || raw->empty() || raw->front() != '"') return std::nullopt;
  std::string out;
  for (std::size_t i = 1; i < raw->size(); ++i) {
    const char c = (*raw)[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < raw->size()) {
      const char n = (*raw)[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 < raw->size()) {
            out += static_cast<char>(std::strtol(std::string{raw->substr(i + 1, 4)}.c_str(),
                                                 nullptr, 16));
            i += 4;
          }
          break;
        default: out += n;
      }
    } else {
      out += c;
    }
  }
  return std::nullopt;  // unterminated string => truncated line
}

struct JournalEntry {
  std::size_t run = 0;
  std::uint64_t digest = 0;
  bool done = false;
  RunResult result;
};

/// Decodes one journal line; nullopt for malformed/truncated lines (a line
/// interrupted by a kill simply does not count as completed work).
std::optional<JournalEntry> decode_line(std::string_view line) {
  JournalEntry e;
  const auto run = get_u64(line, "run");
  const auto digest_hex = get_str(line, "digest");
  const auto status = get_str(line, "status");
  if (!run || !digest_hex || !status) return std::nullopt;
  e.run = static_cast<std::size_t>(*run);
  e.digest = std::strtoull(digest_hex->c_str(), nullptr, 16);
  e.done = *status == "done";
  if (!e.done) return e;

  RunResult& r = e.result;
  const auto ic = get_f64(line, "initial_convergence_s");
  const auto cd = get_f64(line, "convergence_delay_s");
  const auto rd = get_f64(line, "recovery_delay_s");
  const auto mar = get_u64(line, "messages_after_recovery");
  const auto maf = get_u64(line, "messages_after_failure");
  const auto aaf = get_u64(line, "adverts_after_failure");
  const auto waf = get_u64(line, "withdrawals_after_failure");
  const auto mt = get_u64(line, "messages_total");
  const auto mp = get_u64(line, "messages_processed");
  const auto bd = get_u64(line, "batch_dropped");
  const auto ev = get_u64(line, "events");
  const auto rt = get_u64(line, "routers");
  const auto fr = get_u64(line, "failed_routers");
  const auto rv = get_u64(line, "routes_valid");
  const auto ae = get_str(line, "audit_error");
  if (!ic || !cd || !rd || !mar || !maf || !aaf || !waf || !mt || !mp || !bd || !ev || !rt ||
      !fr || !rv || !ae) {
    return std::nullopt;
  }
  r.initial_convergence_s = *ic;
  r.convergence_delay_s = *cd;
  r.recovery_delay_s = *rd;
  r.messages_after_recovery = *mar;
  r.messages_after_failure = *maf;
  r.adverts_after_failure = *aaf;
  r.withdrawals_after_failure = *waf;
  r.messages_total = *mt;
  r.messages_processed = *mp;
  r.batch_dropped = *bd;
  r.events = *ev;
  r.routers = static_cast<std::size_t>(*rt);
  r.failed_routers = static_cast<std::size_t>(*fr);
  r.routes_valid = *rv != 0;
  r.audit_error = *ae;
  return e;
}

/// Appends journal lines with per-line flushing; owns the test-only
/// kill-after hook (BGPSIM_TEST_KILL_AFTER=k exits the process hard after
/// the k-th append, simulating a mid-grid kill for the resume tests).
class Journal {
 public:
  Journal(const std::string& path, bool append) {
    f_ = std::fopen(path.c_str(), append ? "a+b" : "wb");
    if (f_ == nullptr) {
      throw std::runtime_error{"run_sweep_resumable: cannot open journal " + path + ": " +
                               std::strerror(errno)};
    }
    if (append) {
      // If the previous process died mid-line, the file ends in a torn
      // record with no newline. Terminate it so our appends start on a
      // fresh line -- otherwise the first new record would concatenate onto
      // the torn prefix and the combined line could parse as a mixed,
      // half-truncated record on the next resume.
      if (std::fseek(f_, -1, SEEK_END) == 0) {
        char last = '\n';
        if (std::fread(&last, 1, 1, f_) == 1 && last != '\n') {
          std::fputc('\n', f_);
        }
      }
      std::fseek(f_, 0, SEEK_END);
    }
    if (const char* env = std::getenv("BGPSIM_TEST_KILL_AFTER")) {
      kill_after_ = std::strtol(env, nullptr, 10);
    }
  }
  ~Journal() {
    if (f_ != nullptr) std::fclose(f_);
  }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void append(const std::string& line) {
    std::lock_guard<std::mutex> lock{m_};
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size() || std::fflush(f_) != 0) {
      throw std::runtime_error{"run_sweep_resumable: journal write failed"};
    }
    if (kill_after_ > 0 && ++appended_ >= kill_after_) {
      std::_Exit(42);  // test hook: die hard, mid-sweep, journal flushed
    }
  }

 private:
  std::FILE* f_ = nullptr;
  std::mutex m_;
  long kill_after_ = 0;
  long appended_ = 0;
};

}  // namespace

std::vector<RunResult> run_sweep_resumable(const std::vector<ExperimentConfig>& configs,
                                           const ResumeOptions& opt) {
  if (opt.journal_path.empty()) {
    throw std::invalid_argument{"run_sweep_resumable: journal_path is required"};
  }
  const std::size_t n = configs.size();
  std::vector<std::uint64_t> digests(n);
  for (std::size_t i = 0; i < n; ++i) digests[i] = run_digest(configs[i]);

  std::vector<RunResult> out(n);
  std::vector<char> have(n, 0);
  if (opt.resume) {
    std::ifstream in{opt.journal_path};
    std::string line;
    while (std::getline(in, line)) {
      const auto e = decode_line(line);
      // Later lines win: a retry's "done" supersedes an earlier "failed".
      if (e && e->run < n && e->digest == digests[e->run]) {
        if (e->done) {
          out[e->run] = e->result;
          have[e->run] = 1;
        } else {
          have[e->run] = 0;
        }
      }
    }
  }

  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    if (!have[i]) todo.push_back(i);
  }

  Journal journal{opt.journal_path, opt.resume};
  if (todo.empty()) return out;

  // Warm mode: snapshot each group represented in the remaining runs first
  // (see run_sweep_warm for why this is a separate flat pass), then the
  // per-run pass below restores instead of re-converging.
  const std::size_t threads = harness_threads();
  std::vector<Snapshot> snaps;
  std::vector<std::size_t> snap_of(n, 0);
  if (opt.warm) {
    std::vector<std::size_t> first_member;
    {
      std::vector<std::pair<std::uint64_t, std::size_t>> seen;  // (digest, snap index)
      for (const std::size_t i : todo) {
        const std::uint64_t d = converged_state_digest(configs[i]);
        std::size_t g = seen.size();
        for (const auto& [sd, sg] : seen) {
          if (sd == d) {
            g = sg;
            break;
          }
        }
        if (g == seen.size()) {
          seen.emplace_back(d, g);
          first_member.push_back(i);
        }
        snap_of[i] = g;
      }
    }
    snaps.resize(first_member.size());
    ThreadPool::instance().for_each_index(first_member.size(), threads, [&](std::size_t g) {
      // Hooks stripped for the same reason as run_sweep_warm: an observer
      // attached here would bind to the throwaway converge network and
      // dangle into the restored runs below.
      ExperimentConfig snap_cfg = configs[first_member[g]];
      snap_cfg.instrument = nullptr;
      snap_cfg.on_phase = nullptr;
      snap_cfg.on_complete = nullptr;
      snaps[g] = converge_snapshot(snap_cfg);
    });
  }

  const int attempts = opt.max_attempts > 0 ? opt.max_attempts : 1;
  std::mutex fail_m;
  std::size_t failed = 0;
  std::string first_error;
  ThreadPool::instance().for_each_index(todo.size(), threads, [&](std::size_t j) {
    const std::size_t i = todo[j];
    std::string error;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      try {
        out[i] = opt.warm ? run_experiment_from(configs[i], snaps[snap_of[i]])
                          : run_experiment(configs[i]);
        journal.append(encode_line(i, digests[i], "done", &out[i], {}));
        return;
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown exception";
      }
    }
    journal.append(encode_line(i, digests[i], "failed", nullptr, error));
    std::lock_guard<std::mutex> lock{fail_m};
    ++failed;
    if (first_error.empty()) first_error = error;
  });

  if (failed > 0) {
    std::ostringstream msg;
    msg << "run_sweep_resumable: " << failed << " of " << todo.size()
        << " runs failed after " << attempts << " attempt(s) (first error: " << first_error
        << "); journal " << opt.journal_path << " retains them for --resume";
    throw std::runtime_error{msg.str()};
  }
  return out;
}

}  // namespace bgpsim::harness
