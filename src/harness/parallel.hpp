// Parallel experiment execution.
//
// Every experiment run is a pure function of (config, seed) -- it owns its
// Scheduler, Rng and Network and touches no global state -- so independent
// runs can execute on different threads and still produce bit-identical
// results to the serial path. This module provides the shared thread pool
// and the two entry points benches use:
//
//   run_sweep(configs)         one RunResult per config, in input order
//   run_averaged(cfg, seeds)   (declared in experiment.hpp) seed replicas
//
// Parallelism degree: the BGPSIM_THREADS environment variable when set to a
// positive integer, else std::thread::hardware_concurrency(). The variable
// is re-read on every parallel region, so tests can flip it at runtime;
// BGPSIM_THREADS=1 is an exact serial fallback (the calling thread runs
// every item itself, in order).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace bgpsim::harness {

/// Parallelism degree for harness sweeps: BGPSIM_THREADS if set (> 0), else
/// hardware_concurrency() (at least 1). Re-read from the environment on
/// every call.
std::size_t harness_threads();

/// The process-wide thread budget shared by sweep workers and intra-run
/// partition threads: BGPSIM_THREADS is clamped to this, and experiment
/// setup caps sweep-threads x par-threads at it too.
constexpr std::size_t harness_thread_cap() { return 512; }

/// Number of concurrent executors in the currently active sweep region
/// (1 outside any region). Experiment setup reads this to keep
/// sweep-threads x intra-run partition threads under harness_thread_cap().
std::size_t active_sweep_threads();

/// A deliberately work-stealing-free thread pool: each parallel region
/// shares one atomic index that the caller and the workers pull from, so
/// there are no per-worker queues to steal between. Workers are lazily
/// spawned up to the largest degree ever requested and persist for the
/// process lifetime.
class ThreadPool {
 public:
  static ThreadPool& instance();

  /// Runs body(0) .. body(n-1), each exactly once, using up to `threads`
  /// concurrent executors (the calling thread plus threads-1 pool workers).
  /// Blocks until every item completed. If any invocations throw, the
  /// exception from the lowest index is rethrown in the caller. With
  /// threads <= 1 (or n <= 1, or from inside another region) the items run
  /// inline on the calling thread, in index order.
  void for_each_index(std::size_t n, std::size_t threads,
                      const std::function<void(std::size_t)>& body);

  /// Test hook: invoked (under the pool lock) immediately before each new
  /// worker thread is spawned; a throwing hook simulates std::thread
  /// creation failure. Pass an empty function to clear.
  void set_spawn_hook(std::function<void()> hook);
  /// Number of worker threads spawned so far (grow-only; test introspection).
  std::size_t worker_count() const;

 private:
  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  struct Impl;
  Impl* impl_;
};

/// Runs every config as an independent experiment and returns the results
/// in input order. Deterministic: the result of configs[i] is the same
/// whatever the thread count, including the BGPSIM_THREADS=1 serial path.
std::vector<RunResult> run_sweep(const std::vector<ExperimentConfig>& configs);

}  // namespace bgpsim::harness
