// Fixed-width table printing for bench output (one table per paper figure).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bgpsim::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bgpsim::harness
