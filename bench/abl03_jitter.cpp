// Ablation: RFC 1771 timer jitter (intervals scaled by U(0.75, 1.0)).
// Jitter desynchronises the MRAI rounds of neighboring routers, smoothing
// update bursts.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 3: MRAI timer jitter on vs off (MRAI=2.25s)",
      "without jitter all routers flush in lockstep rounds, producing synchronized bursts; "
      "jitter spreads them out (and shortens the average interval by 12.5%)");

  harness::Table table{{"failure", "jitter delay", "no-jitter delay", "jitter msgs",
                        "no-jitter msgs"}};
  for (const double failure : {0.01, 0.05, 0.10}) {
    std::vector<std::string> delays;
    std::vector<std::string> msgs;
    for (const bool jitter : {true, false}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(2.25);
      cfg.bgp.jitter_timers = jitter;
      const auto p = bench::measure(cfg);
      delays.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      msgs.push_back(harness::Table::fmt(p.messages, 0));
    }
    table.add_row({bench::pct(failure), delays[0], delays[1], msgs[0], msgs[1]});
  }
  table.print(std::cout);
  return 0;
}
