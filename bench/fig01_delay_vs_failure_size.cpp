// Fig 1: Convergence delay for different sized failures, MRAI in
// {0.5, 1.25, 2.25} s (120 nodes, 70-30 skew).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 1: convergence delay vs failure size",
      "low MRAI is best for small failures but its delay shoots up with failure size; "
      "higher MRAIs start worse yet grow far more gently");

  const std::vector<double> mrais{0.5, 1.25, 2.25};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const double mrai : mrais) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "MRAI=0.5s", "MRAI=1.25s", "MRAI=2.25s"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < mrais.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds; '!' marks a failed route audit)\n");
  return 0;
}
