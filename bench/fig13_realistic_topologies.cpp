// Fig 13: Batching and the dynamic scheme on "realistic" topologies:
// multi-router ASes (heavy-tailed sizes, area ~ size), Internet-like
// inter-AS degree distribution (cap 40, avg ~3.4), full iBGP meshes and
// eBGP border sessions. The paper found optimal MRAIs of 0.5 s (small
// failures) and 3.5 s (10% failures) here, so the dynamic levels become
// {0.5, 2.0, 3.5} s.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 13: convergence delay on realistic (multi-router-AS) topologies",
      "same ordering as Fig 10: batching and the dynamic scheme track the lower envelope "
      "of the constant MRAIs across failure sizes");

  schemes::DynamicMraiParams dyn;
  dyn.levels = {sim::SimTime::seconds(0.5), sim::SimTime::seconds(2.0),
                sim::SimTime::seconds(3.5)};

  struct Scheme {
    const char* name;
    harness::SchemeSpec spec;
  };
  const std::vector<Scheme> schemes_list{
      {"batching(0.5)", harness::SchemeSpec::constant(0.5, /*batch=*/true)},
      {"dynamic{0.5,2,3.5}", harness::SchemeSpec::dynamic_mrai(dyn)},
      {"batch+dynamic", harness::SchemeSpec::dynamic_mrai(dyn, /*batch=*/true)},
      {"const 0.5", harness::SchemeSpec::constant(0.5)},
      {"const 3.5", harness::SchemeSpec::constant(3.5)},
  };

  const std::vector<double> failures{0.01, 0.025, 0.05, 0.10};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : failures) {
    for (const auto& s : schemes_list) {
      auto cfg = bench::paper_default();
      cfg.topology.kind = harness::TopologySpec::Kind::kHierarchical;
      cfg.topology.hier.num_ases = bench::node_count();
      cfg.topology.hier.max_total_routers = bench::node_count() * 5 / 2;
      cfg.failure_fraction = failure;
      cfg.scheme = s.spec;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "batching(0.5)", "dynamic{0.5,2,3.5}", "batch+dynamic",
                        "const 0.5", "const 3.5"}};
  std::size_t k = 0;
  for (const double failure : failures) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < schemes_list.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds; failures are fractions of all routers, contiguous)\n");
  return 0;
}
