// Fig 2: Number of generated update messages for different MRAI values
// (same sweep as Fig 1, message counts instead of delays).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 2: update messages generated vs failure size",
      "for small failures all MRAIs generate about the same message count; at MRAI=0.5s "
      "the count shoots up with failure size while 1.25s/2.25s grow gradually");

  const std::vector<double> mrais{0.5, 1.25, 2.25};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const double mrai : mrais) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "MRAI=0.5s", "MRAI=1.25s", "MRAI=2.25s"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < mrais.size(); ++c) row.push_back(bench::msg_cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(update messages sent after the failure)\n");
  return 0;
}
