// Shared helpers for the per-figure benchmark binaries.
//
// Every fig* binary regenerates one figure of the paper: it sweeps the same
// parameter grid, prints the measured series as a fixed-width table, and
// states the paper's qualitative expectation next to it. Environment knobs:
//   BGPSIM_SEEDS  replica count per point (default 3)
//   BGPSIM_N      node count for flat topologies (default 120, the paper's)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace bgpsim::bench {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::size_t node_count() { return env_or("BGPSIM_N", 120); }
inline std::size_t seed_count() { return harness::bench_seeds(3); }

/// The paper's baseline configuration: 120 nodes, 70-30 skew (avg degree
/// 3.8), U(1,30) ms processing, 25 ms links, per-peer jittered MRAI.
inline harness::ExperimentConfig paper_default() {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = node_count();
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.seed = 1;
  return cfg;
}

/// The paper's failure-size grid (percent of nodes, contiguous at centre).
inline std::vector<double> failure_grid() { return {0.01, 0.025, 0.05, 0.10, 0.15, 0.20}; }

struct Point {
  double delay_s = 0.0;
  double messages = 0.0;
  bool all_valid = true;
};

inline Point measure(const harness::ExperimentConfig& cfg) {
  const auto avg = harness::run_averaged(cfg, seed_count());
  Point p;
  p.delay_s = avg.delay.mean;
  p.messages = avg.messages.mean;
  p.all_valid = avg.valid_fraction == 1.0;
  if (!p.all_valid) {
    for (const auto& r : avg.runs) {
      if (!r.routes_valid) {
        std::fprintf(stderr, "AUDIT FAILURE (seed %llu): %s\n",
                     static_cast<unsigned long long>(cfg.seed), r.audit_error.c_str());
        break;
      }
    }
  }
  return p;
}

inline void print_header(const std::string& title, const std::string& paper_expectation) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("Setup: %zu nodes, %zu seed(s) per point. [BGPSIM_N / BGPSIM_SEEDS to change]\n\n",
              node_count(), seed_count());
}

inline std::string pct(double fraction) {
  return harness::Table::fmt(fraction * 100.0, fraction * 100.0 < 10 ? 1 : 0) + "%";
}

}  // namespace bgpsim::bench
