// Shared helpers for the per-figure benchmark binaries.
//
// Every fig* binary regenerates one figure of the paper: it sweeps the same
// parameter grid, prints the measured series as a fixed-width table, and
// states the paper's qualitative expectation next to it. Environment knobs:
//   BGPSIM_SEEDS  replica count per point (default 3)
//   BGPSIM_N      node count for flat topologies (default 120, the paper's)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/table.hpp"

namespace bgpsim::bench {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::size_t node_count() { return env_or("BGPSIM_N", 120); }
inline std::size_t seed_count() { return harness::bench_seeds(3); }

/// The paper's baseline configuration: 120 nodes, 70-30 skew (avg degree
/// 3.8), U(1,30) ms processing, 25 ms links, per-peer jittered MRAI.
inline harness::ExperimentConfig paper_default() {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = node_count();
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.seed = 1;
  return cfg;
}

/// The paper's failure-size grid (percent of nodes, contiguous at centre).
inline std::vector<double> failure_grid() { return {0.01, 0.025, 0.05, 0.10, 0.15, 0.20}; }

struct Point {
  double delay_s = 0.0;
  double messages = 0.0;
  bool all_valid = true;
};

inline Point measure(const harness::ExperimentConfig& cfg) {
  const auto avg = harness::run_averaged(cfg, seed_count());
  Point p;
  p.delay_s = avg.delay.mean;
  p.messages = avg.messages.mean;
  p.all_valid = avg.valid_fraction == 1.0;
  if (!p.all_valid) {
    for (std::size_t i = 0; i < avg.runs.size(); ++i) {
      if (!avg.runs[i].routes_valid) {
        // Replica i ran with seed cfg.seed + i; report the seed that failed.
        std::fprintf(stderr, "AUDIT FAILURE (seed %llu): %s\n",
                     static_cast<unsigned long long>(cfg.seed + i),
                     avg.runs[i].audit_error.c_str());
        break;
      }
    }
  }
  return p;
}

/// Measures every config of a sweep grid at once: each config is expanded
/// into seed_count() replicas and the whole batch goes through
/// harness::run_sweep, so grid points *and* replicas run in parallel
/// (BGPSIM_THREADS). Returns one averaged Point per config, in input order --
/// numerically identical to calling measure() per config.
inline std::vector<Point> measure_grid(const std::vector<harness::ExperimentConfig>& grid) {
  const std::size_t seeds = seed_count();
  std::vector<harness::ExperimentConfig> expanded;
  expanded.reserve(grid.size() * seeds);
  for (const auto& cfg : grid) {
    for (std::size_t i = 0; i < seeds; ++i) {
      expanded.push_back(cfg);
      expanded.back().seed = cfg.seed + i;
    }
  }
  const auto runs = harness::run_sweep(expanded);

  std::vector<Point> points;
  points.reserve(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    std::vector<double> delays;
    std::vector<double> msgs;
    delays.reserve(seeds);
    msgs.reserve(seeds);
    Point p;
    for (std::size_t i = 0; i < seeds; ++i) {
      const auto& r = runs[g * seeds + i];
      delays.push_back(r.convergence_delay_s);
      msgs.push_back(static_cast<double>(r.messages_after_failure));
      if (!r.routes_valid) {
        if (p.all_valid) {
          std::fprintf(stderr, "AUDIT FAILURE (seed %llu): %s\n",
                       static_cast<unsigned long long>(grid[g].seed + i),
                       r.audit_error.c_str());
        }
        p.all_valid = false;
      }
    }
    p.delay_s = harness::Stats::of(delays).mean;
    p.messages = harness::Stats::of(msgs).mean;
    points.push_back(p);
  }
  return points;
}

/// Table cell for a measured point: the convergence delay, with '!'
/// appended when any replica failed the route audit.
inline std::string cell(const Point& p) {
  return harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!");
}

/// Table cell showing the message count instead of the delay.
inline std::string msg_cell(const Point& p) {
  return harness::Table::fmt(p.messages, 0) + (p.all_valid ? "" : "!");
}

inline void print_header(const std::string& title, const std::string& paper_expectation) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("Setup: %zu nodes, %zu seed(s) per point. [BGPSIM_N / BGPSIM_SEEDS to change]\n\n",
              node_count(), seed_count());
}

inline std::string pct(double fraction) {
  return harness::Table::fmt(fraction * 100.0, fraction * 100.0 < 10 ? 1 : 0) + "%";
}

}  // namespace bgpsim::bench
