// Fig 3: Variation in convergence delay with the MRAI for 1%, 5% and 10%
// failures -- the V-shaped curves whose minimum shifts right as the failure
// grows (the paper's central observation).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 3: convergence delay vs MRAI (V-shaped curves)",
      "each curve is V-shaped (Griffin/Premore); the optimal MRAI grows with the failure "
      "size (~0.5s at 1%, ~1.25s at 5%, larger still at 10%), so no single MRAI fits all");

  const std::vector<double> failures{0.01, 0.05, 0.10};
  const std::vector<double> mrais{0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 2.75, 3.5};
  std::vector<harness::ExperimentConfig> grid;
  for (const double mrai : mrais) {
    for (const double failure : failures) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"MRAI(s)", "1% failure", "5% failure", "10% failure"}};
  std::size_t k = 0;
  for (const double mrai : mrais) {
    std::vector<std::string> row{harness::Table::fmt(mrai)};
    for (std::size_t c = 0; c < failures.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
