// Ablation: network-size scaling. The paper verified its 120-node trends
// on 60- and 240-node topologies (section 4) and reported in earlier work
// that the convergence delay grows with network size.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 6: network size (60 / 120 / 240 nodes, 70-30 skew)",
      "trends are size-stable; absolute delays grow with the network because more "
      "alternate paths are explored and more updates hit every router");

  const std::vector<double> failures{0.025, 0.05, 0.10};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : failures) {
    for (const std::size_t n : {std::size_t{60}, std::size_t{120}, std::size_t{240}}) {
      auto cfg = bench::paper_default();
      cfg.topology.n = n;
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      grid.push_back(cfg);
    }
    auto cfg = bench::paper_default();
    cfg.topology.n = 240;
    cfg.failure_fraction = failure;
    cfg.scheme = harness::SchemeSpec::dynamic_mrai();
    grid.push_back(cfg);
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "n=60 (0.5s)", "n=120 (0.5s)", "n=240 (0.5s)",
                        "n=240 dynamic"}};
  std::size_t k = 0;
  for (const double failure : failures) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < 4; ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
