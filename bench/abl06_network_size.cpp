// Ablation: network-size scaling. The paper verified its 120-node trends
// on 60- and 240-node topologies (section 4) and reported in earlier work
// that the convergence delay grows with network size.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 6: network size (60 / 120 / 240 nodes, 70-30 skew)",
      "trends are size-stable; absolute delays grow with the network because more "
      "alternate paths are explored and more updates hit every router");

  harness::Table table{{"failure", "n=60 (0.5s)", "n=120 (0.5s)", "n=240 (0.5s)",
                        "n=240 dynamic"}};
  for (const double failure : {0.025, 0.05, 0.10}) {
    std::vector<std::string> row{bench::pct(failure)};
    for (const std::size_t n : {std::size_t{60}, std::size_t{120}, std::size_t{240}}) {
      auto cfg = bench::paper_default();
      cfg.topology.n = n;
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      const auto p = bench::measure(cfg);
      row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
    }
    {
      auto cfg = bench::paper_default();
      cfg.topology.n = 240;
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::dynamic_mrai();
      const auto p = bench::measure(cfg);
      row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
