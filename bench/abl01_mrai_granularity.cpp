// Ablation: per-peer vs per-destination MRAI timers (paper section 2: the
// per-destination scheme is the "straightforward" design but does not scale
// to Internet routing tables; the Internet and all paper experiments use
// per-peer). Here we quantify what the granularity costs.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 1: per-peer vs per-destination MRAI (MRAI=0.5s)",
      "per-destination timers avoid coupling unrelated prefixes, helping small failures "
      "slightly -- but under a large failure every prefix's first change goes out "
      "immediately, so the per-peer scheme's aggregation is what keeps the message flood "
      "in check (besides the per-(peer,prefix) timer cost that rules per-dest out at "
      "Internet scale)");

  const std::vector<double> failures{0.01, 0.05, 0.10};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : failures) {
    for (const bool per_dest : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      cfg.bgp.per_destination_mrai = per_dest;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "per-peer delay", "per-dest delay", "per-peer msgs",
                        "per-dest msgs"}};
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto& peer = points[2 * i];
    const auto& dest = points[2 * i + 1];
    table.add_row({bench::pct(failures[i]), bench::cell(peer), bench::cell(dest),
                   harness::Table::fmt(peer.messages, 0), harness::Table::fmt(dest.messages, 0)});
  }
  table.print(std::cout);
  return 0;
}
