// Fig 7: The dynamic MRAI scheme (levels {0.5, 1.25, 2.25} s, unfinished-
// work thresholds upTh=0.65 s / downTh=0.05 s) against the three constant
// MRAIs.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 7: dynamic MRAI vs constant MRAIs",
      "dynamic is at or below constant-0.5 for small (1-2.5%) failures, ~constant-1.25 at "
      "5%, and for large failures sits between constant-2.25 and constant-1.25 -- near the "
      "lower envelope everywhere");

  const std::vector<harness::SchemeSpec> schemes{
      harness::SchemeSpec::dynamic_mrai(), harness::SchemeSpec::constant(0.5),
      harness::SchemeSpec::constant(1.25), harness::SchemeSpec::constant(2.25)};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const auto& s : schemes) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = s;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "dynamic", "const 0.5", "const 1.25", "const 2.25"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < schemes.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
