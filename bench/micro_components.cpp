// Micro-benchmarks (google-benchmark) for the hot components of the
// simulator: event scheduling, input-queue disciplines, the decision
// process, topology realisation, and a full small experiment.
#include <benchmark/benchmark.h>

#include "bgp/input_queue.hpp"
#include "bgp/types.hpp"
#include "harness/experiment.hpp"
#include "sim/scheduler.hpp"
#include "topo/degree_sequence.hpp"

namespace {

using namespace bgpsim;

void BM_SchedulerPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(sim::SimTime::from_ns(static_cast<std::int64_t>((i * 7919) % 1000000)),
                    [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(10000);

void BM_InputQueueFifo(benchmark::State& state) {
  for (auto _ : state) {
    bgp::InputQueue q{bgp::QueueDiscipline::kFifo};
    std::uint64_t dropped = 0;
    for (int i = 0; i < 1000; ++i) {
      bgp::WorkItem w;
      w.from = static_cast<bgp::NodeId>(i % 8);
      w.prefix = static_cast<bgp::Prefix>(i % 120);
      q.push(std::move(w));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_batch(dropped));
  }
}
BENCHMARK(BM_InputQueueFifo);

void BM_InputQueueBatched(benchmark::State& state) {
  for (auto _ : state) {
    bgp::InputQueue q{bgp::QueueDiscipline::kBatched};
    std::uint64_t dropped = 0;
    for (int i = 0; i < 1000; ++i) {
      bgp::WorkItem w;
      w.from = static_cast<bgp::NodeId>(i % 8);
      w.prefix = static_cast<bgp::Prefix>(i % 120);
      q.push(std::move(w));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_batch(dropped));
    benchmark::DoNotOptimize(dropped);
  }
}
BENCHMARK(BM_InputQueueBatched);

void BM_AsPathPrepend(benchmark::State& state) {
  bgp::AsPath p{{1, 2, 3, 4, 5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.prepended(99));
  }
}
BENCHMARK(BM_AsPathPrepend);

void BM_RealizeSkewedTopology(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Rng rng{seed++};
    auto degrees = topo::skewed_sequence(n, topo::SkewSpec::s70_30(), rng);
    benchmark::DoNotOptimize(topo::realize_degree_sequence(std::move(degrees), rng));
  }
}
BENCHMARK(BM_RealizeSkewedTopology)->Arg(120)->Arg(240);

void BM_FullExperiment(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.05;
  cfg.scheme = harness::SchemeSpec::constant(1.25);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(harness::run_experiment(cfg));
  }
}
BENCHMARK(BM_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
