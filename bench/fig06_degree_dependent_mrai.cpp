// Fig 6: Degree-dependent MRAI on the 70-30 topology. (low 0.5, high 2.25)
// against the reversed assignment and both constants. High-degree nodes
// (degree 8, threshold 5) get the "high" MRAI.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 6: degree-dependent MRAI",
      "(low 0.5, high 2.25) tracks constant-2.25 for large failures while staying much "
      "better for small ones; the reversed assignment behaves like constant-0.5 (bad), so "
      "large-failure convergence is governed by the high-degree nodes");

  struct Scheme {
    const char* name;
    harness::SchemeSpec spec;
  };
  const std::vector<Scheme> schemes{
      {"low0.5/high2.25", harness::SchemeSpec::degree_dependent(0.5, 2.25, 5)},
      {"low2.25/high0.5", harness::SchemeSpec::degree_dependent(2.25, 0.5, 5)},
      {"const 0.5", harness::SchemeSpec::constant(0.5)},
      {"const 2.25", harness::SchemeSpec::constant(2.25)},
  };

  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const auto& s : schemes) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = s.spec;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{
      {"failure", "low0.5/high2.25", "low2.25/high0.5", "const 0.5", "const 2.25"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < schemes.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds; threshold: degree >= 5 counts as high)\n");
  return 0;
}
