// Fig 8: Sensitivity of the dynamic scheme to upTh (downTh fixed at 0, as
// in the paper's sweep).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 8: effect of upTh on the dynamic scheme (downTh = 0)",
      "a low upTh behaves like a constant high MRAI (bad for small failures, good for "
      "large); raising it improves small failures and hurts large ones, but results stay "
      "good across a wide band (0.65s vs 1.25s barely differ)");

  const std::vector<double> upths{0.10, 0.35, 0.65, 1.25};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const double upth : upths) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      schemes::DynamicMraiParams params;
      params.up_th = sim::SimTime::seconds(upth);
      params.down_th = sim::SimTime::zero();
      cfg.scheme = harness::SchemeSpec::dynamic_mrai(params);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "upTh=0.10s", "upTh=0.35s", "upTh=0.65s", "upTh=1.25s"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < upths.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
