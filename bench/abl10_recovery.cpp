// Ablation: the recovery flood. After the failed region comes back up, its
// routers re-originate and every healed session exchanges a full table --
// good news propagates, the Tup analogue of Labovitz's taxonomy. The same
// overload mechanics apply (a burst of updates through finite CPUs), so the
// paper's schemes help here too, even though the paper only studied the
// failure direction.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 10: re-convergence after the failed region recovers",
      "recovery (absorbing good news) is faster than failure convergence at the same "
      "size; batching and dynamic MRAI keep helping because the full-table exchanges "
      "still pile onto the queues");

  struct Scheme {
    const char* name;
    harness::SchemeSpec spec;
  };
  const std::vector<Scheme> schemes{
      {"const 0.5", harness::SchemeSpec::constant(0.5)},
      {"const 2.25", harness::SchemeSpec::constant(2.25)},
      {"dynamic", harness::SchemeSpec::dynamic_mrai()},
      {"batching(0.5)", harness::SchemeSpec::constant(0.5, /*batch=*/true)},
  };

  harness::Table table{{"failure", "metric", "const 0.5", "const 2.25", "dynamic",
                        "batching(0.5)"}};
  for (const double failure : {0.05, 0.10, 0.20}) {
    std::vector<std::string> fail_row{bench::pct(failure), "fail delay"};
    std::vector<std::string> rec_row{"", "recover delay"};
    for (const auto& s : schemes) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = s.spec;
      cfg.measure_recovery = true;
      const auto avg = harness::run_averaged(cfg, bench::seed_count());
      double rec = 0.0;
      for (const auto& r : avg.runs) rec += r.recovery_delay_s;
      rec /= static_cast<double>(avg.runs.size());
      fail_row.push_back(harness::Table::fmt(avg.delay.mean) +
                         (avg.valid_fraction == 1.0 ? "" : "!"));
      rec_row.push_back(harness::Table::fmt(rec));
    }
    table.add_row(std::move(fail_row));
    table.add_row(std::move(rec_row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds; each failure row pairs with the recovery row below it)\n");
  return 0;
}
