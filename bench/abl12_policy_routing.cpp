// Ablation: Gao-Rexford policy routing vs the paper's policy-free model.
// The paper deliberately ran without policies ("no policy based
// restrictions on route advertisements"); Labovitz's INFOCOM'01 follow-up
// showed policy restricts the exploration space. Here the same generated
// graphs are run both ways (relations degree-inferred, valley-free export):
// policy prunes alternate paths, so fewer updates flow and convergence is
// usually faster -- at the cost of reachability being limited to
// valley-free paths.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 12: policy-free vs Gao-Rexford policy routing (MRAI=0.5s)",
      "valley-free export shrinks the set of advertisable backup paths, cutting both the "
      "update volume and the convergence delay of large failures relative to the paper's "
      "policy-free model");

  const std::vector<double> failures{0.01, 0.05, 0.10, 0.20};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : failures) {
    for (const bool policy : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      cfg.topology.policy_routing = policy;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"failure", "policy-free delay", "policy delay", "policy-free msgs",
                        "policy msgs"}};
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto& free_p = points[2 * i];
    const auto& policy_p = points[2 * i + 1];
    table.add_row({bench::pct(failures[i]), bench::cell(free_p), bench::cell(policy_p),
                   harness::Table::fmt(free_p.messages, 0),
                   harness::Table::fmt(policy_p.messages, 0)});
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds; relations degree-inferred, peer tolerance 1)\n");
  return 0;
}
