// Ablation: route-flap damping (RFC 2439) during large-scale failures.
// Path exploration after a big failure looks exactly like flapping to the
// damping machinery. In this model suppression *prunes* the exploration --
// fewer updates and an earlier last-RIB-change -- but the price is hidden
// in per-prefix reachability: a prefix whose last surviving route got
// suppressed stays black-holed until the penalty decays (Mao et al.'s
// classic observation; see damping_test.cpp for the targeted case).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 9: route-flap damping during large failures (MRAI=2.25s)",
      "suppression prunes path exploration: update counts drop sharply and the aggregate "
      "delay with it; the cost appears as per-prefix reachability gaps when the last "
      "route to a prefix is suppressed (not visible in the aggregate delay)");

  struct Variant {
    const char* name;
    bool enabled;
    double half_life_s;
  };
  const std::vector<Variant> variants{
      {"off", false, 0.0},
      {"hl=10s", true, 10.0},
      {"hl=30s", true, 30.0},
  };

  harness::Table delay{{"failure", "damping off", "hl=10s", "hl=30s"}};
  harness::Table msgs{{"failure", "damping off", "hl=10s", "hl=30s"}};
  for (const double failure : {0.01, 0.05, 0.10}) {
    std::vector<std::string> drow{bench::pct(failure)};
    std::vector<std::string> mrow{bench::pct(failure)};
    for (const auto& v : variants) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(2.25);
      cfg.bgp.damping.enabled = v.enabled;
      if (v.enabled) cfg.bgp.damping.half_life_s = v.half_life_s;
      const auto p = bench::measure(cfg);
      drow.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      mrow.push_back(harness::Table::fmt(p.messages, 0));
    }
    delay.add_row(std::move(drow));
    msgs.add_row(std::move(mrow));
  }
  std::printf("Convergence delay (s):\n");
  delay.print(std::cout);
  std::printf("\nMessages after failure:\n");
  msgs.print(std::cout);
  return 0;
}
