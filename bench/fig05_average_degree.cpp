// Fig 5: Effect of the average degree: two 50-50 skews, one with hubs of
// degree 5/6 (avg 3.8) and one with hubs of 13/14 (avg 7.6).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 5: effect of the average degree (5% failure, 50-50 skew)",
      "both the optimal MRAI and the minimum delay are larger for avg degree 7.6 than for "
      "3.8 -- heavier hubs overload longer and more alternate paths must be explored");

  const std::vector<double> mrais{0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 2.75, 3.5};
  std::vector<harness::ExperimentConfig> grid;
  for (const double mrai : mrais) {
    for (const bool dense : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.topology.skew = dense ? topo::SkewSpec::s50_50_dense() : topo::SkewSpec::s50_50();
      cfg.failure_fraction = 0.05;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"MRAI(s)", "avg deg 3.8", "avg deg 7.6"}};
  std::size_t k = 0;
  for (const double mrai : mrais) {
    table.add_row({harness::Table::fmt(mrai), bench::cell(points[k]), bench::cell(points[k + 1])});
    k += 2;
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
