// Fig 4: Convergence delay vs MRAI at 5% failure for three skewed degree
// distributions with the same average degree (3.8): 50-50, 70-30, 85-15.
// The optimal MRAI tracks the degree of the *high-degree* nodes (5/6 -> 8
// -> 14).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 4: effect of the degree distribution (5% failure, avg degree 3.8)",
      "minimum-delay MRAI grows with the high nodes' degree: ~1.0s for 50-50 (hubs 5/6), "
      "~1.25s for 70-30 (hubs 8), ~2.25s for 85-15 (hubs 14)");

  struct Variant {
    const char* name;
    topo::SkewSpec spec;
  };
  const std::vector<Variant> variants{
      {"50-50", topo::SkewSpec::s50_50()},
      {"70-30", topo::SkewSpec::s70_30()},
      {"85-15", topo::SkewSpec::s85_15()},
  };

  const std::vector<double> mrais{0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 2.75, 3.5};
  std::vector<harness::ExperimentConfig> grid;
  for (const double mrai : mrais) {
    for (const auto& v : variants) {
      auto cfg = bench::paper_default();
      cfg.topology.skew = v.spec;
      cfg.failure_fraction = 0.05;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"MRAI(s)", "50-50", "70-30", "85-15"}};
  std::size_t k = 0;
  for (const double mrai : mrais) {
    std::vector<std::string> row{harness::Table::fmt(mrai)};
    for (std::size_t c = 0; c < variants.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
