// Ablation: the analytic parameter theory (paper section 5, "currently
// ongoing work") against measurement. For each topology the measured
// delay-optimal constant MRAI at 5% failure is compared with the queueing
// estimate M* = d_max x f x n x E[proc]; then the fully analytic dynamic
// parameter set is raced against the paper's hand-tuned one.
#include "bench_util.hpp"
#include "schemes/calibration.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 13: analytic MRAI selection vs measurement",
      "the queueing knee predicts the measured optimum within a small factor and orders "
      "the topologies correctly; the analytically-calibrated dynamic scheme performs "
      "like the hand-tuned one");

  struct Variant {
    const char* name;
    topo::SkewSpec spec;
    std::size_t max_degree;
  };
  const std::vector<Variant> variants{
      {"50-50 (hubs 5/6)", topo::SkewSpec::s50_50(), 6},
      {"70-30 (hubs 8)", topo::SkewSpec::s70_30(), 8},
      {"85-15 (hubs 14)", topo::SkewSpec::s85_15(), 14},
  };
  const std::vector<double> grid{0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 2.75, 3.5};

  harness::Table table{{"topology", "predicted M*", "measured M*", "measured delay"}};
  for (const auto& v : variants) {
    const auto predicted = schemes::estimate_optimal_mrai(
        v.max_degree, bench::node_count(), 0.05, sim::SimTime::from_us(15500));
    double best_delay = 1e18;
    double best_mrai = grid.front();
    for (const double mrai : grid) {
      auto cfg = bench::paper_default();
      cfg.topology.skew = v.spec;
      cfg.failure_fraction = 0.05;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      const auto p = bench::measure(cfg);
      if (p.delay_s < best_delay) {
        best_delay = p.delay_s;
        best_mrai = mrai;
      }
    }
    table.add_row({v.name, harness::Table::fmt(predicted.to_seconds()) + "s",
                   harness::Table::fmt(best_mrai) + "s", harness::Table::fmt(best_delay)});
  }
  table.print(std::cout);

  std::printf("\nAnalytic vs hand-tuned dynamic scheme (70-30):\n");
  schemes::CalibrationInput input;
  input.num_prefixes = bench::node_count();
  const auto analytic = schemes::suggest_dynamic_params(input);
  std::printf("analytic levels: {%.2f, %.2f, %.2f}s  upTh=%.2fs downTh=%.2fs\n",
              analytic.levels[0].to_seconds(), analytic.levels[1].to_seconds(),
              analytic.levels[2].to_seconds(), analytic.up_th.to_seconds(),
              analytic.down_th.to_seconds());
  harness::Table race{{"failure", "analytic dynamic", "hand-tuned dynamic"}};
  for (const double failure : {0.01, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row{bench::pct(failure)};
    for (const bool hand_tuned : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::dynamic_mrai(
          hand_tuned ? schemes::DynamicMraiParams{} : analytic);
      const auto p = bench::measure(cfg);
      row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
    }
    race.add_row(std::move(row));
  }
  race.print(std::cout);
  return 0;
}
