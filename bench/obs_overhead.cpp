// Observability overhead suite.
//
// Runs the same fig01-style workload twice -- once with no sink or sampler
// (the default every figure bench uses), once with a CountingSink plus a
// TelemetrySampler attached to every run -- and writes BENCH_obs.json.
// Three claims are encoded for CI (tools/bench_compare.py, suite
// "obs_overhead"):
//
//   1. events_total in disabled mode matches the recorded baseline exactly
//      (observability must not change the simulation),
//   2. disabled-mode throughput stays within the CI tolerance of the
//      baseline (the "zero cost when off" guarantee: no sink installed means
//      no event construction at all),
//   3. the instrumented pass produces protocol results bit-identical to the
//      disabled pass (samplers are read-only observers) -- only scheduler
//      event counts may differ, by exactly the sampling ticks.
//
// The same workload then repeats on the partitioned parallel scheduler
// (BGPSIM_PAR_THREADS partitions, default 4) -- once bare, once with a
// sharded trace sink plus sampler -- encoding the parallel-mode claims
// (suite "obs_overhead", par_* fields): the instrumented par pass
// reproduces the bare par pass bit-for-bit (observability perturbs
// nothing, at any K), and instrumented-par overhead stays under the CI
// tolerance. Note the par passes are *not* compared against the serial
// passes: the partitioned scheduler is a documented different-but-valid
// tiebreak of simultaneous events (see DESIGN.md), and its K-invariance
// against the K=1 oracle is identity_check --par's job.
//
// Usage: obs_overhead [output.json]   (default BENCH_obs.json)
// Knobs: BGPSIM_N, BGPSIM_SEEDS, BGPSIM_THREADS as usual;
//        BGPSIM_PAR_THREADS sets the partition count of the par passes only
//        (it is cleared from the environment so the serial passes cannot
//        silently inherit it).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "obs/binary_trace.hpp"
#include "obs/telemetry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Protocol-result equality, deliberately excluding the two fields the
/// sampler's own scheduler ticks legitimately touch: RunResult::events (the
/// ticks are events) and initial_convergence_s (quiescence is dated by the
/// last event, which with a sampler is the final tick -- the phase boundary
/// rounds up to the sampling interval). Every relative measurement --
/// convergence delay, message counts, RIB audit -- must match bit-for-bit.
bool same_protocol(const bgpsim::harness::RunResult& a, const bgpsim::harness::RunResult& b) {
  return a.convergence_delay_s == b.convergence_delay_s &&
         a.recovery_delay_s == b.recovery_delay_s &&
         a.messages_after_recovery == b.messages_after_recovery &&
         a.messages_after_failure == b.messages_after_failure &&
         a.adverts_after_failure == b.adverts_after_failure &&
         a.withdrawals_after_failure == b.withdrawals_after_failure &&
         a.messages_total == b.messages_total &&
         a.messages_processed == b.messages_processed &&
         a.batch_dropped == b.batch_dropped && a.routers == b.routers &&
         a.failed_routers == b.failed_routers && a.routes_valid == b.routes_valid &&
         a.audit_error == b.audit_error;
}

/// Per-run observer state; each run only ever touches its own slot, so the
/// instrumented sweep stays thread-safe.
struct Capture {
  std::unique_ptr<bgpsim::bgp::CountingSink> sink;
  std::unique_ptr<bgpsim::obs::TelemetrySampler> sampler;
  std::uint64_t trace_events = 0;
  std::size_t samples = 0;
};

/// Counting equivalent of ShardedTraceWriter: the cheapest conforming
/// parallel sink, so the par-instrumented pass measures the capture plumbing
/// (per-event stamp bookkeeping included) without disk I/O -- mirroring what
/// CountingSink does for the serial pass.
class ShardedCountingSink final : public bgpsim::bgp::ShardedTraceSink {
 public:
  explicit ShardedCountingSink(std::size_t partitions) : counts_(partitions) {}

  void on_event(std::size_t partition, const bgpsim::bgp::TraceEvent&,
                const bgpsim::bgp::TraceOrder&) override {
    ++counts_[partition].n;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const Slot& c : counts_) t += c.n;
    return t;
  }

 private:
  // One counter per cache line: partition threads bump their slot on every
  // event, and adjacent unpadded u64s would false-share badly enough to
  // dominate the very overhead this bench measures.
  struct alignas(64) Slot {
    std::uint64_t n = 0;
  };
  std::vector<Slot> counts_;
};

/// Per-run state of the par-instrumented pass.
struct ParCapture {
  std::unique_ptr<ShardedCountingSink> sink;
  std::unique_ptr<bgpsim::obs::TelemetrySampler> sampler;
  std::uint64_t trace_events = 0;
  std::size_t samples = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  const std::size_t seeds = bench::seed_count();
  // Partition count for the par passes. Read and then *cleared*: with the
  // variable left set, cfg.par_threads == 0 (the serial passes) would
  // resolve to it inside the harness and the serial baselines would
  // silently run parallel.
  const std::size_t par_k = bench::env_or("BGPSIM_PAR_THREADS", 4);
  unsetenv("BGPSIM_PAR_THREADS");

  std::vector<harness::ExperimentConfig> sweep;
  for (const double failure : bench::failure_grid()) {
    for (std::size_t i = 0; i < seeds; ++i) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      cfg.seed = cfg.seed + i;
      sweep.push_back(cfg);
    }
  }
  std::printf("obs_overhead: %zu runs (%zu nodes, %zu seeds/point), %zu thread(s)\n",
              sweep.size(), bench::node_count(), seeds, harness::harness_threads());

  // Pass 1: observability disabled -- the exact configuration every figure
  // bench runs with. No sink installed means Router::trace() never even
  // constructs a TraceEvent.
  const auto t_disabled = Clock::now();
  const auto disabled = harness::run_sweep(sweep);
  const double disabled_s = seconds_since(t_disabled);

  // Pass 2: CountingSink + TelemetrySampler on every run.
  auto instrumented_cfgs = sweep;
  std::vector<Capture> captures(instrumented_cfgs.size());
  for (std::size_t i = 0; i < instrumented_cfgs.size(); ++i) {
    Capture* cap = &captures[i];
    instrumented_cfgs[i].instrument = [cap](bgp::Network& net, std::uint64_t) {
      cap->sink = std::make_unique<bgp::CountingSink>();
      net.set_trace_sink(cap->sink.get());
      obs::TelemetryConfig tc;
      cap->sampler = std::make_unique<obs::TelemetrySampler>(net, tc);
    };
    instrumented_cfgs[i].on_phase = [cap](harness::RunPhase) { cap->sampler->start(); };
    instrumented_cfgs[i].on_complete = [cap](bgp::Network& net, std::uint64_t) {
      cap->trace_events = cap->sink->total();
      cap->samples = cap->sampler->samples();
      net.set_trace_sink(nullptr);
      cap->sampler.reset();  // the PeriodicTask must not outlive the run's scheduler
    };
  }
  const auto t_instr = Clock::now();
  const auto instrumented = harness::run_sweep(instrumented_cfgs);
  const double instrumented_s = seconds_since(t_instr);

  bool identical = disabled.size() == instrumented.size();
  for (std::size_t i = 0; identical && i < disabled.size(); ++i) {
    identical = same_protocol(disabled[i], instrumented[i]);
  }

  // Pass 3: partitioned parallel scheduler, observability disabled.
  auto par_cfgs = sweep;
  for (auto& cfg : par_cfgs) cfg.par_threads = par_k;
  const auto t_par = Clock::now();
  const auto par_disabled = harness::run_sweep(par_cfgs);
  const double par_disabled_s = seconds_since(t_par);

  // Pass 4: parallel + sharded counting sink + sampler (which switches the
  // sampler to exact barrier-driven sampling and enables the partition
  // profiler -- the full instrumented-par configuration).
  auto par_instr_cfgs = par_cfgs;
  std::vector<ParCapture> par_captures(par_instr_cfgs.size());
  for (std::size_t i = 0; i < par_instr_cfgs.size(); ++i) {
    ParCapture* cap = &par_captures[i];
    const std::size_t k = par_k;
    par_instr_cfgs[i].instrument = [cap, k](bgp::Network& net, std::uint64_t) {
      cap->sink = std::make_unique<ShardedCountingSink>(k);
      net.set_sharded_trace_sink(cap->sink.get());
      obs::TelemetryConfig tc;
      cap->sampler = std::make_unique<obs::TelemetrySampler>(net, tc);
    };
    par_instr_cfgs[i].on_phase = [cap](harness::RunPhase) { cap->sampler->start(); };
    par_instr_cfgs[i].on_complete = [cap](bgp::Network& net, std::uint64_t) {
      cap->trace_events = cap->sink->total();
      cap->samples = cap->sampler->samples();
      net.set_sharded_trace_sink(nullptr);
      cap->sampler.reset();
    };
  }
  const auto t_par_instr = Clock::now();
  const auto par_instrumented = harness::run_sweep(par_instr_cfgs);
  const double par_instr_s = seconds_since(t_par_instr);

  // The instrumented par pass must reproduce the bare par pass bit-for-bit
  // -- the read-only-observer guarantee at K partitions. (The par passes
  // are deliberately not diffed against the serial passes; the partitioned
  // scheduler is a different-but-valid tiebreak of simultaneous events.)
  bool par_identical = par_disabled.size() == par_instrumented.size();
  for (std::size_t i = 0; par_identical && i < par_disabled.size(); ++i) {
    par_identical = same_protocol(par_disabled[i], par_instrumented[i]);
  }

  std::uint64_t events = 0;
  for (const auto& r : disabled) events += r.events;
  std::uint64_t trace_events = 0;
  std::uint64_t samples = 0;
  for (const auto& c : captures) {
    trace_events += c.trace_events;
    samples += c.samples;
  }

  std::uint64_t par_events = 0;
  for (const auto& r : par_disabled) par_events += r.events;
  std::uint64_t par_trace_events = 0;
  std::uint64_t par_samples = 0;
  for (const auto& c : par_captures) {
    par_trace_events += c.trace_events;
    par_samples += c.samples;
  }

  const double overhead = disabled_s > 0 ? instrumented_s / disabled_s : 0.0;
  const double par_overhead = par_disabled_s > 0 ? par_instr_s / par_disabled_s : 0.0;
  std::printf("  disabled:     %.3f s  (%.0f events/s)\n", disabled_s,
              disabled_s > 0 ? static_cast<double>(events) / disabled_s : 0.0);
  std::printf("  instrumented: %.3f s  (%.2fx; %llu trace events, %llu samples)\n",
              instrumented_s, overhead, static_cast<unsigned long long>(trace_events),
              static_cast<unsigned long long>(samples));
  std::printf("  protocol results identical: %s\n", identical ? "yes" : "NO (BUG)");
  std::printf("  par(%zu) disabled:     %.3f s\n", par_k, par_disabled_s);
  std::printf("  par(%zu) instrumented: %.3f s  (%.2fx; %llu trace events, %llu samples)\n",
              par_k, par_instr_s, par_overhead,
              static_cast<unsigned long long>(par_trace_events),
              static_cast<unsigned long long>(par_samples));
  std::printf("  par instrumented reproduces bare par: %s\n",
              par_identical ? "yes" : "NO (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs_overhead: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"suite\": \"obs_overhead\",\n"
               "  \"nodes\": %zu,\n"
               "  \"seeds_per_point\": %zu,\n"
               "  \"runs\": %zu,\n"
               "  \"events_total\": %llu,\n"
               "  \"trace_events_total\": %llu,\n"
               "  \"telemetry_samples_total\": %llu,\n"
               "  \"disabled_wall_s\": %.6f,\n"
               "  \"instrumented_wall_s\": %.6f,\n"
               "  \"disabled_events_per_s\": %.0f,\n"
               "  \"instrumented_events_per_s\": %.0f,\n"
               "  \"overhead_ratio\": %.4f,\n"
               "  \"results_identical\": %s,\n"
               "  \"par_threads\": %zu,\n"
               "  \"par_events_total\": %llu,\n"
               "  \"par_trace_events_total\": %llu,\n"
               "  \"par_telemetry_samples_total\": %llu,\n"
               "  \"par_disabled_wall_s\": %.6f,\n"
               "  \"par_instrumented_wall_s\": %.6f,\n"
               "  \"par_overhead_ratio\": %.4f,\n"
               "  \"par_results_identical\": %s\n"
               "}\n",
               bench::node_count(), seeds, sweep.size(),
               static_cast<unsigned long long>(events),
               static_cast<unsigned long long>(trace_events),
               static_cast<unsigned long long>(samples), disabled_s, instrumented_s,
               disabled_s > 0 ? static_cast<double>(events) / disabled_s : 0.0,
               instrumented_s > 0 ? static_cast<double>(events) / instrumented_s : 0.0,
               overhead, identical ? "true" : "false", par_k,
               static_cast<unsigned long long>(par_events),
               static_cast<unsigned long long>(par_trace_events),
               static_cast<unsigned long long>(par_samples), par_disabled_s, par_instr_s,
               par_overhead, par_identical ? "true" : "false");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return identical && par_identical ? 0 : 2;
}
