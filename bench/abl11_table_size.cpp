// Ablation: routing-table size. The paper closes by arguing its schemes
// matter precisely because the real Internet has ~200k destinations: more
// prefixes per origin => more updates per failure => deeper overload, and
// the batching scheme's same-destination collisions become more frequent.
// This bench scales prefixes-per-origin and watches the batching advantage
// grow.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 11: routing-table size (prefixes per origin, 10% failure, MRAI=0.5s)",
      "message load scales with the table size; the FIFO delay grows much faster than the "
      "batching delay, so the batching advantage widens -- the paper's closing argument");

  harness::Table table{{"prefixes/origin", "FIFO delay", "batch delay", "advantage",
                        "FIFO msgs", "batch msgs", "stale-dropped"}};
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    auto cfg = bench::paper_default();
    cfg.failure_fraction = 0.10;
    cfg.bgp.prefixes_per_origin = k;
    cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/false);
    const auto fifo = harness::run_averaged(cfg, bench::seed_count());
    cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/true);
    const auto batched = harness::run_averaged(cfg, bench::seed_count());
    double dropped = 0.0;
    for (const auto& r : batched.runs) dropped += static_cast<double>(r.batch_dropped);
    dropped /= static_cast<double>(batched.runs.size());
    table.add_row({std::to_string(k),
                   harness::Table::fmt(fifo.delay.mean) +
                       (fifo.valid_fraction == 1.0 ? "" : "!"),
                   harness::Table::fmt(batched.delay.mean) +
                       (batched.valid_fraction == 1.0 ? "" : "!"),
                   harness::Table::fmt(batched.delay.mean > 0
                                           ? fifo.delay.mean / batched.delay.mean
                                           : 0.0,
                                       1) +
                       "x",
                   harness::Table::fmt(fifo.messages.mean, 0),
                   harness::Table::fmt(batched.messages.mean, 0),
                   harness::Table::fmt(dropped, 0)});
  }
  table.print(std::cout);
  return 0;
}
