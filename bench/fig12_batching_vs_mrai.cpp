// Fig 12: Effect of batching at different MRAI values (5% failure, 70-30
// skew). Batching only matters when nodes are overloaded, i.e. below the
// optimal MRAI.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 12: batching with different MRAIs (5% failure)",
      "below the optimal MRAI batching cuts the delay dramatically; at or above the "
      "optimum the queues stay short and batching changes little");

  const std::vector<double> mrais{0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 3.0};
  std::vector<harness::ExperimentConfig> grid;
  for (const double mrai : mrais) {
    for (const bool batch : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = 0.05;
      cfg.scheme = harness::SchemeSpec::constant(mrai, batch);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{{"MRAI(s)", "FIFO", "batched", "speedup"}};
  for (std::size_t i = 0; i < mrais.size(); ++i) {
    const auto& fifo = points[2 * i];
    const auto& batched = points[2 * i + 1];
    table.add_row({harness::Table::fmt(mrais[i]), bench::cell(fifo), bench::cell(batched),
                   harness::Table::fmt(batched.delay_s > 0 ? fifo.delay_s / batched.delay_s : 0.0,
                                       1) +
                       "x"});
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
