// Ablation: RFC 1771 exempts withdrawals from the MRAI; some
// implementations rate-limit them anyway (WRATE in the literature). The
// exemption speeds up bad news at the cost of extra messages.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 2: withdrawals exempt from vs subject to the MRAI (MRAI=2.25s)",
      "rate-limiting withdrawals delays the propagation of failure news, lengthening "
      "convergence for withdrawal-heavy (large) failures");

  harness::Table table{{"failure", "exempt delay", "limited delay", "exempt msgs",
                        "limited msgs"}};
  for (const double failure : {0.01, 0.05, 0.10}) {
    std::vector<std::string> delays;
    std::vector<std::string> msgs;
    for (const bool limited : {false, true}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(2.25);
      cfg.bgp.mrai_applies_to_withdrawals = limited;
      const auto p = bench::measure(cfg);
      delays.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      msgs.push_back(harness::Table::fmt(p.messages, 0));
    }
    table.add_row({bench::pct(failure), delays[0], delays[1], msgs[0], msgs[1]});
  }
  table.print(std::cout);
  return 0;
}
