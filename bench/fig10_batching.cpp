// Fig 10: The batching scheme (per-destination queues + stale-update
// deletion, MRAI=0.5 s) against the dynamic scheme, their combination, and
// the constant MRAIs.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 10: batching scheme performance",
      "batching keeps small-failure delays as low as MRAI=0.5s while cutting large-failure "
      "delays by 3x or more; it beats the dynamic scheme, and batching+dynamic is lower "
      "still");

  struct Scheme {
    const char* name;
    harness::SchemeSpec spec;
  };
  const std::vector<Scheme> schemes{
      {"batching(0.5)", harness::SchemeSpec::constant(0.5, /*batch=*/true)},
      {"dynamic", harness::SchemeSpec::dynamic_mrai()},
      {"batch+dynamic", harness::SchemeSpec::dynamic_mrai({}, /*batch=*/true)},
      {"const 0.5", harness::SchemeSpec::constant(0.5)},
      {"const 2.25", harness::SchemeSpec::constant(2.25)},
  };

  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const auto& s : schemes) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = s.spec;
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{
      {"failure", "batching(0.5)", "dynamic", "batch+dynamic", "const 0.5", "const 2.25"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < schemes.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
