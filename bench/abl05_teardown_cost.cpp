// Ablation: how session-teardown work is charged. kPerPeer (default) models
// the RIB scan for a dead peer as one unit of work; kPerPrefix charges one
// U(1,30)ms draw per affected prefix, front-loading the overload.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 5: per-peer vs per-prefix teardown cost (MRAI=0.5s)",
      "per-prefix charging adds an immediate processing backlog proportional to the RIB, "
      "raising delays for every failure size but preserving all qualitative trends");

  harness::Table table{{"failure", "per-peer delay", "per-prefix delay", "per-peer msgs",
                        "per-prefix msgs"}};
  for (const double failure : {0.01, 0.05, 0.10}) {
    std::vector<std::string> delays;
    std::vector<std::string> msgs;
    for (const auto teardown : {bgp::TeardownCost::kPerPeer, bgp::TeardownCost::kPerPrefix}) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(0.5);
      cfg.bgp.teardown = teardown;
      const auto p = bench::measure(cfg);
      delays.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      msgs.push_back(harness::Table::fmt(p.messages, 0));
    }
    table.add_row({bench::pct(failure), delays[0], delays[1], msgs[0], msgs[1]});
  }
  table.print(std::cout);
  return 0;
}
