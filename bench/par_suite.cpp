// Intra-run parallel scheduler suite: one large convergence workload on the
// partitioned conservative-window scheduler at 1/2/4/8 threads.
//
// Measures the cold-start convergence wall (the phase the partitioning
// targets: every router floods at once, so all partitions stay busy) plus
// the total run wall, verifies that every thread count produces
// bit-identical results (Loc-RIB digest, counters, event totals -- the
// serial-oracle identity the design guarantees), and writes BENCH_par.json;
// tools/bench_compare.py gates the identity flag always and the 8-thread
// speedup when the host actually has the cores (gate_applicable).
//
// Usage: par_suite [output.json]   (default: BENCH_par.json in the current
// directory; run from the repo root to update the tracked file)
//
// Knobs: BGPSIM_PAR_N (nodes, default 4000; CI uses 600 to bound runtime).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "bgp/network.hpp"
#include "bgp/router.hpp"
#include "harness/experiment.hpp"

namespace {

// FNV-1a over the full post-run Loc-RIB content (router, prefix,
// materialized hop sequence) -- the same digest identity_check prints.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

std::uint64_t rib_digest(bgpsim::bgp::Network& net) {
  using namespace bgpsim;
  std::uint64_t h = kFnvOffset;
  for (bgp::NodeId v = 0; v < net.size(); ++v) {
    const bgp::Router& r = net.router(v);
    if (!r.alive()) continue;
    for (const bgp::Prefix p : r.known_prefixes()) {
      const auto e = r.best(p);
      if (!e.has_value()) continue;
      mix(h, v);
      mix(h, p);
      mix(h, e->local ? 1 : 0);
      mix(h, e->learned_from);
      mix(h, e->path.length());
      for (const bgp::AsId as : e->path.hops()) mix(h, as);
    }
  }
  return h;
}

struct Measured {
  bgpsim::harness::RunResult res;
  std::uint64_t digest = 0;
};

bool same_results(const Measured& a, const Measured& b) {
  const auto& x = a.res;
  const auto& y = b.res;
  return a.digest == b.digest && x.initial_convergence_s == y.initial_convergence_s &&
         x.convergence_delay_s == y.convergence_delay_s &&
         x.messages_after_failure == y.messages_after_failure &&
         x.adverts_after_failure == y.adverts_after_failure &&
         x.withdrawals_after_failure == y.withdrawals_after_failure &&
         x.messages_total == y.messages_total &&
         x.messages_processed == y.messages_processed && x.events == y.events &&
         x.failed_routers == y.failed_routers && x.routes_valid == y.routes_valid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_par.json";
  const std::size_t n = bench::env_or("BGPSIM_PAR_N", 4000);
  const std::size_t host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  // One heavyweight convergence workload: the paper's skewed topology at
  // scale, a small contiguous failure (fractions >= 5% at n >= 1000 exhaust
  // the 32-bit path arena during the uncompacted failure flood -- see
  // checkpoint_suite), MRAI 2.25 s.
  harness::ExperimentConfig base = bench::paper_default();
  base.topology.n = n;
  base.failure_fraction = 0.002;
  base.scheme = harness::SchemeSpec::constant(2.25);
  base.seed = 1;
  // Collect the per-window partition profile on every run; the 8-thread
  // run's summary (imbalance, barrier overhead) lands in BENCH_par.json and
  // bench_compare.py sanity-gates it. Wall-clock based, so the profile is
  // deliberately absent from same_results().
  base.par_profile = true;

  std::printf("par_suite: %zu nodes, threads {1,2,4,8}, host has %zu cpu(s)\n", n, host_cpus);
  std::fflush(stdout);

  std::vector<Measured> runs;
  std::vector<double> converge_wall(thread_counts.size(), 0.0);
  std::vector<double> total_wall(thread_counts.size(), 0.0);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    auto cfg = base;
    cfg.par_threads = thread_counts[i];
    Measured m;
    cfg.on_complete = [&m](bgp::Network& net, std::uint64_t) { m.digest = rib_digest(net); };
    m.res = harness::run_experiment(cfg);
    converge_wall[i] = m.res.timing.converge_s;
    total_wall[i] = m.res.timing.total_s;
    std::printf("  par=%zu: converge %.3f s, total %.3f s, events %llu, rib %016llx\n",
                thread_counts[i], converge_wall[i], total_wall[i],
                static_cast<unsigned long long>(m.res.events),
                static_cast<unsigned long long>(m.digest));
    std::fflush(stdout);
    runs.push_back(std::move(m));
  }

  bool identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    identical = identical && same_results(runs[0], runs[i]);
  }
  const bool valid = runs[0].res.routes_valid;

  const double speedup = converge_wall.back() > 0 ? converge_wall[0] / converge_wall.back() : 0.0;
  const double efficiency = speedup / static_cast<double>(thread_counts.back());
  // The >=2x speedup gate only means something when the host can actually
  // run the 8 partitions concurrently; on smaller hosts the suite still
  // verifies identity and records the (honest) walls.
  const bool gate_applicable = host_cpus >= thread_counts.back();

  std::printf("  speedup (converge, 8t vs 1t): %.2fx (efficiency %.2f), identical: %s%s\n",
              speedup, efficiency, identical ? "yes" : "NO (BUG)",
              gate_applicable ? "" : "  [speedup gate not applicable on this host]");

  // Partition profile of the 8-thread run (see trace_inspect par_profile
  // for the full per-window view from a telemetry capture).
  const harness::RunResult& prof = runs.back().res;
  std::printf("  8t profile: %llu windows, imbalance %.3f, barrier overhead %.1f%%\n",
              static_cast<unsigned long long>(prof.par_windows), prof.par_imbalance_factor,
              prof.par_barrier_overhead * 100.0);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "par_suite: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"suite\": \"par\",\n"
               "  \"nodes\": %zu,\n"
               "  \"host_cpus\": %zu,\n"
               "  \"gate_applicable\": %s,\n"
               "  \"events_total\": %llu,\n"
               "  \"converge_wall_s_t1\": %.6f,\n"
               "  \"converge_wall_s_t2\": %.6f,\n"
               "  \"converge_wall_s_t4\": %.6f,\n"
               "  \"converge_wall_s_t8\": %.6f,\n"
               "  \"total_wall_s_t1\": %.6f,\n"
               "  \"total_wall_s_t8\": %.6f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"scaling_efficiency\": %.4f,\n"
               "  \"par_windows_t8\": %llu,\n"
               "  \"imbalance_factor_t8\": %.4f,\n"
               "  \"barrier_overhead_t8\": %.4f,\n"
               "  \"routes_valid\": %s,\n"
               "  \"identical_across_threads\": %s\n"
               "}\n",
               n, host_cpus, gate_applicable ? "true" : "false",
               static_cast<unsigned long long>(runs[0].res.events), converge_wall[0],
               converge_wall[1], converge_wall[2], converge_wall[3], total_wall[0],
               total_wall.back(), speedup, efficiency,
               static_cast<unsigned long long>(prof.par_windows), prof.par_imbalance_factor,
               prof.par_barrier_overhead, valid ? "true" : "false",
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return identical && valid ? 0 : 2;
}
