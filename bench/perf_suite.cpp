// End-to-end harness performance suite.
//
// Times a fig01-style sweep (the paper's failure grid x three constant
// MRAIs, bench::seed_count() replicas per point) twice -- once strictly
// serially, once through harness::run_sweep on the thread pool -- verifies
// the two produce identical results, and writes a machine-readable
// BENCH_harness.json so later changes can track the perf trajectory.
//
// Usage: perf_suite [output.json]   (default: BENCH_harness.json in the
// current directory; run from the repo root to update the tracked file)
//
// Knobs: BGPSIM_N, BGPSIM_SEEDS, BGPSIM_THREADS as usual.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_run(const bgpsim::harness::RunResult& a, const bgpsim::harness::RunResult& b) {
  return a.initial_convergence_s == b.initial_convergence_s &&
         a.convergence_delay_s == b.convergence_delay_s &&
         a.recovery_delay_s == b.recovery_delay_s &&
         a.messages_after_recovery == b.messages_after_recovery &&
         a.messages_after_failure == b.messages_after_failure &&
         a.adverts_after_failure == b.adverts_after_failure &&
         a.withdrawals_after_failure == b.withdrawals_after_failure &&
         a.messages_total == b.messages_total &&
         a.messages_processed == b.messages_processed &&
         a.batch_dropped == b.batch_dropped && a.events == b.events &&
         a.routers == b.routers && a.failed_routers == b.failed_routers &&
         a.routes_valid == b.routes_valid && a.audit_error == b.audit_error;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_harness.json";
  const std::size_t seeds = bench::seed_count();

  // The fig01 grid: every (failure, MRAI, seed) combination as one flat
  // list of independent runs.
  std::vector<harness::ExperimentConfig> sweep;
  for (const double failure : bench::failure_grid()) {
    for (const double mrai : {0.5, 1.25, 2.25}) {
      for (std::size_t i = 0; i < seeds; ++i) {
        auto cfg = bench::paper_default();
        cfg.failure_fraction = failure;
        cfg.scheme = harness::SchemeSpec::constant(mrai);
        cfg.seed = cfg.seed + i;
        sweep.push_back(cfg);
      }
    }
  }

  std::printf("perf_suite: fig01 sweep, %zu runs (%zu nodes, %zu seeds/point), %zu thread(s)\n",
              sweep.size(), bench::node_count(), seeds, harness::harness_threads());

  // Serial reference: a plain loop on this thread.
  const auto t_serial = Clock::now();
  std::vector<harness::RunResult> serial;
  serial.reserve(sweep.size());
  for (const auto& cfg : sweep) serial.push_back(harness::run_experiment(cfg));
  const double serial_s = seconds_since(t_serial);

  // Parallel: the same configs through the pool.
  const auto t_parallel = Clock::now();
  const auto parallel = harness::run_sweep(sweep);
  const double parallel_s = seconds_since(t_parallel);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = same_run(serial[i], parallel[i]);
  }

  std::uint64_t events = 0;
  for (const auto& r : serial) events += r.events;

  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("  serial:   %.3f s  (%.0f events/s)\n", serial_s,
              serial_s > 0 ? static_cast<double>(events) / serial_s : 0.0);
  std::printf("  parallel: %.3f s  (%.0f events/s, %.2fx)\n", parallel_s,
              parallel_s > 0 ? static_cast<double>(events) / parallel_s : 0.0, speedup);
  std::printf("  results identical: %s\n", identical ? "yes" : "NO (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_suite: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"suite\": \"fig01_sweep\",\n"
               "  \"nodes\": %zu,\n"
               "  \"seeds_per_point\": %zu,\n"
               "  \"runs\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"events_total\": %llu,\n"
               "  \"serial_wall_s\": %.6f,\n"
               "  \"parallel_wall_s\": %.6f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"serial_events_per_s\": %.0f,\n"
               "  \"parallel_events_per_s\": %.0f,\n"
               "  \"parallel_identical_to_serial\": %s\n"
               "}\n",
               bench::node_count(), seeds, sweep.size(), harness::harness_threads(),
               static_cast<unsigned long long>(events), serial_s, parallel_s, speedup,
               serial_s > 0 ? static_cast<double>(events) / serial_s : 0.0,
               parallel_s > 0 ? static_cast<double>(events) / parallel_s : 0.0,
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}
