// Ablation: the three overload monitors the paper discusses for the
// dynamic MRAI scheme (section 4.3): unfinished work (queue length x mean
// processing delay -- the one the paper adopts), CPU utilization
// ("promising results"), and received-message rate ("not very successful
// as it was difficult to set the thresholds").
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 4: dynamic-MRAI overload monitors",
      "the paper adopts unfinished work and reports utilization as promising and "
      "message-rate as hard to tune; with our calibrated thresholds all three work, and "
      "the faster-reacting monitors edge ahead on large failures -- the scheme is robust "
      "to the choice of signal once thresholds fit");

  using Monitor = schemes::DynamicMraiParams::Monitor;
  struct Variant {
    const char* name;
    Monitor monitor;
  };
  const std::vector<Variant> variants{
      {"unfinished-work", Monitor::kUnfinishedWork},
      {"utilization", Monitor::kUtilization},
      {"message-rate", Monitor::kMessageRate},
  };

  harness::Table table{{"failure", "unfinished-work", "utilization", "message-rate"}};
  for (const double failure : {0.01, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row{bench::pct(failure)};
    for (const auto& v : variants) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      schemes::DynamicMraiParams params;
      params.monitor = v.monitor;
      cfg.scheme = harness::SchemeSpec::dynamic_mrai(params);
      const auto p = bench::measure(cfg);
      row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
