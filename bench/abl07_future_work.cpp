// Ablation: the paper's section-5 future-work directions, implemented and
// measured against the published schemes:
//   - extent-MRAI: set the MRAI directly from the observed failure extent
//     (recent route losses) instead of waiting for queue backlog;
//   - batching+prefilter: batching that additionally recognises superfluous
//     updates and skips their processing cost;
//   - Deshpande/Sikdar [12] baseline: per-destination MRAI applied only to
//     destinations that changed >= k times (fast but message-hungry).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 7: future-work schemes vs the paper's",
      "extent-MRAI reacts instantly (no backlog wait) and matches dynamic-MRAI on the "
      "largest failures, but over-holds high levels after medium ones; the batching "
      "prefilter shaves another 10-25%; the Deshpande/Sikdar gating backfires under "
      "overload (message flood)");

  struct Variant {
    const char* name;
    harness::SchemeSpec scheme;
    bool free_redundant = false;
    bool per_dest_gated = false;
  };
  std::vector<Variant> variants{
      {"dynamic", harness::SchemeSpec::dynamic_mrai()},
      {"extent", harness::SchemeSpec::extent_mrai()},
      {"batching", harness::SchemeSpec::constant(0.5, true)},
      {"batch+prefilter", harness::SchemeSpec::constant(0.5, true), true},
      {"DS-gated perdest", harness::SchemeSpec::constant(1.0), false, true},
  };

  harness::Table table{{"failure", "dynamic", "extent", "batching", "batch+prefilter",
                        "DS-gated perdest"}};
  harness::Table msg_table{{"failure", "dynamic", "extent", "batching", "batch+prefilter",
                            "DS-gated perdest"}};
  for (const double failure : {0.01, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row{bench::pct(failure)};
    std::vector<std::string> mrow{bench::pct(failure)};
    for (const auto& v : variants) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      cfg.scheme = v.scheme;
      cfg.bgp.free_redundant_updates = v.free_redundant;
      if (v.per_dest_gated) {
        cfg.bgp.per_destination_mrai = true;
        cfg.bgp.dest_mrai_min_changes = 4;
      }
      const auto p = bench::measure(cfg);
      row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      mrow.push_back(harness::Table::fmt(p.messages, 0));
    }
    table.add_row(std::move(row));
    msg_table.add_row(std::move(mrow));
  }
  std::printf("Convergence delay (s):\n");
  table.print(std::cout);
  std::printf("\nMessages after failure:\n");
  msg_table.print(std::cout);
  return 0;
}
