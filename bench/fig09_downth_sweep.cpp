// Fig 9: Sensitivity of the dynamic scheme to downTh (upTh fixed at 0.65 s).
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Fig 9: effect of downTh on the dynamic scheme (upTh = 0.65s)",
      "raising downTh makes more nodes drop back to low MRAIs, increasing the delay for "
      "larger failures; results stay similar across a range of values");

  const std::vector<double> downths{0.0, 0.05, 0.20, 0.45};
  std::vector<harness::ExperimentConfig> grid;
  for (const double failure : bench::failure_grid()) {
    for (const double downth : downths) {
      auto cfg = bench::paper_default();
      cfg.failure_fraction = failure;
      schemes::DynamicMraiParams params;
      params.up_th = sim::SimTime::seconds(0.65);
      params.down_th = sim::SimTime::seconds(downth);
      cfg.scheme = harness::SchemeSpec::dynamic_mrai(params);
      grid.push_back(cfg);
    }
  }
  const auto points = bench::measure_grid(grid);

  harness::Table table{
      {"failure", "downTh=0s", "downTh=0.05s", "downTh=0.20s", "downTh=0.45s"}};
  std::size_t k = 0;
  for (const double failure : bench::failure_grid()) {
    std::vector<std::string> row{bench::pct(failure)};
    for (std::size_t c = 0; c < downths.size(); ++c) row.push_back(bench::cell(points[k++]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n(delays in seconds)\n");
  return 0;
}
