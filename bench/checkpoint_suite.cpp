// Checkpoint warm-start suite: cold sweep vs warm-start sweep at scale.
//
// A failure-fraction sweep re-pays the cold-start convergence -- by far the
// dominant cost at n >= 1000 (see BENCH_scale.json: ~11 s converge vs ~1.4 s
// failure wall at n=1000) -- once per run even though every run of a
// (topology, scheme, seed) group converges to the same state. This suite
// runs the paper's failure grid both ways: cold through harness::run_sweep
// and warm through harness::run_sweep_warm (converge once per group,
// checkpoint the quiescent state, fan the failure scenarios out from the
// snapshot). It verifies the two produce bit-identical results and writes
// BENCH_checkpoint.json; tools/bench_compare.py gates the identity flag and
// the warm speedup.
//
// Usage: checkpoint_suite [output.json]   (default: BENCH_checkpoint.json in
// the current directory; run from the repo root to update the tracked file)
//
// Knobs: BGPSIM_N (default 1000), BGPSIM_SEEDS (default 2), BGPSIM_THREADS.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgp/checkpoint.hpp"
#include "harness/warmstart.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_run(const bgpsim::harness::RunResult& a, const bgpsim::harness::RunResult& b) {
  return a.initial_convergence_s == b.initial_convergence_s &&
         a.convergence_delay_s == b.convergence_delay_s &&
         a.recovery_delay_s == b.recovery_delay_s &&
         a.messages_after_recovery == b.messages_after_recovery &&
         a.messages_after_failure == b.messages_after_failure &&
         a.adverts_after_failure == b.adverts_after_failure &&
         a.withdrawals_after_failure == b.withdrawals_after_failure &&
         a.messages_total == b.messages_total &&
         a.messages_processed == b.messages_processed &&
         a.batch_dropped == b.batch_dropped && a.events == b.events &&
         a.routers == b.routers && a.failed_routers == b.failed_routers &&
         a.routes_valid == b.routes_valid && a.audit_error == b.audit_error;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_checkpoint.json";
  const std::size_t n = bench::env_or("BGPSIM_N", 1000);
  const std::size_t seeds = harness::bench_seeds(2);

  // A failure-size sweep at scale: every fraction shares the seed's
  // converged state, so the warm sweep converges `seeds` times instead of
  // `seeds * |grid|` times. The fractions are smaller than the paper's
  // n=120 grid (1..5 routers of 1000): at n=1000 the failure phase's wall
  // cost grows superlinearly (10 routers already cost more than the
  // cold-start convergence) and fractions >= 5% intern enough transient
  // exploration paths to exhaust the 32-bit path arena -- a pre-existing
  // scale limit of the uncompacted failure phase, independent of
  // checkpointing (compaction only runs at quiescence).
  const std::vector<double> failure_fractions{0.001, 0.002, 0.003, 0.004, 0.005};
  std::vector<harness::ExperimentConfig> sweep;
  for (const double failure : failure_fractions) {
    for (std::size_t i = 0; i < seeds; ++i) {
      auto cfg = bench::paper_default();
      cfg.topology.n = n;
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(2.25);
      cfg.seed = cfg.seed + i;
      sweep.push_back(cfg);
    }
  }
  std::size_t groups = 0;
  {
    std::vector<std::uint64_t> digests;
    for (const auto& cfg : sweep) {
      const auto d = harness::converged_state_digest(cfg);
      bool seen = false;
      for (const auto known : digests) seen = seen || known == d;
      if (!seen) digests.push_back(d);
    }
    groups = digests.size();
  }

  std::printf("checkpoint_suite: %zu runs (%zu nodes, %zu group(s)), %zu thread(s)\n",
              sweep.size(), n, groups, harness::harness_threads());
  std::fflush(stdout);

  const auto t_cold = Clock::now();
  const auto cold = harness::run_sweep(sweep);
  const double cold_s = seconds_since(t_cold);
  std::printf("  cold: %.3f s\n", cold_s);
  std::fflush(stdout);

  const auto t_warm = Clock::now();
  const auto warm = harness::run_sweep_warm(sweep);
  const double warm_s = seconds_since(t_warm);
  std::printf("  warm: %.3f s\n", warm_s);

  bool identical = cold.size() == warm.size();
  for (std::size_t i = 0; identical && i < cold.size(); ++i) {
    identical = same_run(cold[i], warm[i]);
  }
  std::uint64_t events = 0;
  for (const auto& r : cold) events += r.events;

  // Snapshot size at this scale (one extra converge; also exercises the
  // capture -> encode path outside the sweep machinery).
  const auto snap = harness::converge_snapshot(sweep[0]);
  const std::size_t checkpoint_bytes = bgp::encode_checkpoint(snap.checkpoint).size();

  const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
  std::printf("  speedup: %.2fx, checkpoint %.1f MiB, results identical: %s\n", speedup,
              static_cast<double>(checkpoint_bytes) / (1024.0 * 1024.0),
              identical ? "yes" : "NO (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "checkpoint_suite: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"suite\": \"checkpoint\",\n"
               "  \"nodes\": %zu,\n"
               "  \"seeds_per_point\": %zu,\n"
               "  \"runs\": %zu,\n"
               "  \"groups\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"events_total\": %llu,\n"
               "  \"cold_wall_s\": %.6f,\n"
               "  \"warm_wall_s\": %.6f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"checkpoint_bytes\": %zu,\n"
               "  \"warm_identical_to_cold\": %s\n"
               "}\n",
               n, seeds, sweep.size(), groups, harness::harness_threads(),
               static_cast<unsigned long long>(events), cold_s, warm_s, speedup,
               checkpoint_bytes, identical ? "true" : "false");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}
