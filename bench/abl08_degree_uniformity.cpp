// Ablation: uniform vs skewed degree distribution at the same average
// degree. The authors' prior study (ICC'06, ref [11]) found that a
// non-uniform (skewed) distribution *reduces* the convergence delay -- but
// that study used MRAI=30s and no processing overhead, so hubs shortened
// paths without ever overloading. This bench shows both regimes: in ref
// [11]'s setting skewed wins; in the overload regime this paper studies
// (small MRAI, U(1,30)ms processing) the hubs become the bottleneck and the
// uniform network overtakes it for large failures.
#include "bench_util.hpp"

int main() {
  using namespace bgpsim;
  bench::print_header(
      "Ablation 8: uniform vs skewed degree distribution (avg degree ~3.8-4)",
      "ref [11] regime (MRAI=30s, negligible processing): skewed converges faster thanks "
      "to shorter paths; overload regime (MRAI=1.25s, U(1,30)ms processing): the skewed "
      "hubs saturate and uniform wins for large failures");

  // "Uniform": every node has degree 4 (a 0-100 skew with high degree 4).
  topo::SkewSpec uniform;
  uniform.frac_low = 0.0;
  uniform.high_degrees = {4};
  uniform.high_weights = {1.0};

  struct Regime {
    const char* name;
    double mrai_s;
    sim::SimTime proc_min;
    sim::SimTime proc_max;
  };
  const std::vector<Regime> regimes{
      {"ref[11] (30s, ~0ms)", 30.0, sim::SimTime::from_us(10), sim::SimTime::from_us(100)},
      {"overload (1.25s, 1-30ms)", 1.25, sim::SimTime::from_ms(1), sim::SimTime::from_ms(30)},
  };

  for (const auto& regime : regimes) {
    std::printf("Regime: %s\n", regime.name);
    harness::Table table{{"failure", "uniform d=4", "skewed 70-30"}};
    for (const double failure : {0.01, 0.05, 0.10, 0.20}) {
      std::vector<std::string> row{bench::pct(failure)};
      for (const bool skewed : {false, true}) {
        auto cfg = bench::paper_default();
        cfg.topology.skew = skewed ? topo::SkewSpec::s70_30() : uniform;
        cfg.failure_fraction = failure;
        cfg.scheme = harness::SchemeSpec::constant(regime.mrai_s);
        cfg.bgp.proc_min = regime.proc_min;
        cfg.bgp.proc_max = regime.proc_max;
        const auto p = bench::measure(cfg);
        row.push_back(harness::Table::fmt(p.delay_s) + (p.all_valid ? "" : "!"));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("(delays in seconds)\n");
  return 0;
}
