// Scale suite: single-failure convergence at n in {240, 1000, 4000}.
//
// The paper validates on 120-node topologies; this suite tracks what the
// simulator costs at production-ish scale, where per-router RIB memory --
// not CPU -- is the binding constraint identified by the distributed-BGP
// feasibility studies (arXiv:1209.0943). For each n it builds the paper's
// 70-30 skewed topology, converges cold-start, measures the RIB storage
// footprint (bytes per stored route, counting flat-slot capacity plus the
// intern table / deep-copied hop heap), fails the grid-centre node and
// re-converges, then writes one JSON record per n into BENCH_scale.json.
// VmHWM is reset before each point, so every point's peak_rss_bytes covers
// that run alone (tools/bench_compare.py memratio gates interned peak RSS
// against the deep-copy build's).
//
// The same source builds in both path-storage modes; the "mode" field in
// the JSON says which one produced the numbers, so
// tools/bench_compare.py can hold the interned build to >= 4x lower
// bytes/route than a deep-copy run.
//
// Usage: scale_suite [output.json]   (default: BENCH_scale.json in the
// current directory; run from the repo root to update the tracked file)
//
// Knobs: BGPSIM_SCALE_NS="240,1000,4000" overrides the node counts (CI
// uses a small list to stay within its time budget); BGPSIM_SCALE_MRAI
// the constant MRAI seconds (default 2.25).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bgp/network.hpp"
#include "failure/failure.hpp"
#include "topo/degree_sequence.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Peak RSS since the last reset_peak_rss(). ru_maxrss is a process-wide
// high-water mark that only ever grows, so without a reset every point
// after the largest run would inherit the earlier peak; /proc's VmHWM is
// the same counter but the kernel lets us reset it (clear_refs code 5),
// making each point's reading independently meaningful.
std::size_t peak_rss_bytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::fclose(f);
        return static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10)) * 1024;
      }
    }
    std::fclose(f);
  }
  struct rusage ru{};  // non-Linux fallback: process-wide high-water mark
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB
}

// Resets VmHWM to the current RSS; returns false where the kernel refuses
// (non-Linux / locked-down /proc), in which case readings degrade to the
// old cumulative behavior and the JSON flags it.
bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5\n", f) >= 0;
  return std::fclose(f) == 0 && ok;
}

std::vector<std::size_t> scale_ns() {
  std::vector<std::size_t> ns;
  if (const char* env = std::getenv("BGPSIM_SCALE_NS")) {
    const std::string s{env};
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const auto tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 1) ns.push_back(static_cast<std::size_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (ns.empty()) ns = {240, 1000, 4000};
  return ns;
}

struct ScalePoint {
  std::size_t n = 0;
  double initial_convergence_s = 0.0;   // simulated time
  double failure_convergence_s = 0.0;   // simulated time
  double build_wall_s = 0.0;
  double converge_wall_s = 0.0;
  double failure_wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::size_t routes = 0;
  std::size_t rib_bytes = 0;            // flat slots + path storage
  std::size_t path_table_bytes = 0;
  std::size_t distinct_paths = 0;
  double bytes_per_route = 0.0;
  std::size_t peak_rss = 0;
};

ScalePoint run_point(std::size_t n, double mrai_s) {
  using namespace bgpsim;
  ScalePoint pt;
  pt.n = n;

  const auto t_build = Clock::now();
  sim::Rng topo_rng{1};
  auto degrees = topo::skewed_sequence(n, topo::SkewSpec::s70_30(), topo_rng);
  auto g = topo::realize_degree_sequence(std::move(degrees), topo_rng);
  const double grid = 1000.0;
  g.place_randomly(grid, grid, topo_rng);

  bgp::BgpConfig cfg;  // paper defaults: U(1,30) ms CPU, 25 ms links
  auto net = std::make_unique<bgp::Network>(
      g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(mrai_s)), 7);
  pt.build_wall_s = seconds_since(t_build);

  const auto t_converge = Clock::now();
  net->start();
  pt.initial_convergence_s = net->run_to_quiescence().to_seconds();
  pt.converge_wall_s = seconds_since(t_converge);

  // Storage footprint at full RIBs (the steady state a long-running
  // simulation pays for).
  for (bgp::NodeId v = 0; v < n; ++v) {
    const auto st = net->router(v).storage_stats();
    pt.routes += st.loc_rib_routes + st.adj_in_routes + st.adj_out_routes;
    pt.rib_bytes += st.rib_bytes;
  }
  pt.path_table_bytes = net->paths().memory_bytes();
  pt.distinct_paths = net->paths().size();
  pt.rib_bytes += pt.path_table_bytes;
  pt.bytes_per_route =
      pt.routes > 0 ? static_cast<double>(pt.rib_bytes) / static_cast<double>(pt.routes) : 0.0;

  // Single failure at the grid centre.
  const auto victims =
      failure::geographic(net->positions(), 1, topo::Point{grid / 2.0, grid / 2.0});
  const auto t_fail_wall = Clock::now();
  const sim::SimTime t_fail = net->scheduler().now() + sim::SimTime::seconds(1.0);
  net->scheduler().schedule_at(t_fail, [&net, &victims] { net->fail_nodes(victims); });
  net->run_to_quiescence();
  const auto& m = net->metrics();
  pt.failure_convergence_s =
      m.last_rib_change > t_fail ? (m.last_rib_change - t_fail).to_seconds() : 0.0;
  pt.failure_wall_s = seconds_since(t_fail_wall);
  pt.events = net->scheduler().executed_events();
  pt.messages = m.updates_sent;
  pt.peak_rss = peak_rss_bytes();
  return pt;
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  const double mrai_s = env_double("BGPSIM_SCALE_MRAI", 2.25);
#ifdef BGPSIM_DEEP_COPY_PATHS
  const char* mode = "deepcopy";
#else
  const char* mode = "interned";
#endif

  bool rss_independent = true;
  std::vector<ScalePoint> points;
  for (const std::size_t n : scale_ns()) {
    std::printf("scale_suite [%s]: n=%zu ...\n", mode, n);
    std::fflush(stdout);
    if (!reset_peak_rss()) {
      if (rss_independent) {
        std::fprintf(stderr,
                     "scale_suite: cannot reset VmHWM (/proc/self/clear_refs); "
                     "peak_rss points will be cumulative\n");
      }
      rss_independent = false;
    }
    const auto pt = run_point(n, mrai_s);
    std::printf(
        "  converged %.1fs sim (%.1fs wall), failure re-converged %.2fs sim (%.1fs wall)\n"
        "  %zu routes, %.1f MiB RIB+paths (%.1f bytes/route, %zu distinct paths), "
        "peak RSS %.1f MiB\n",
        pt.initial_convergence_s, pt.converge_wall_s, pt.failure_convergence_s,
        pt.failure_wall_s, pt.routes, static_cast<double>(pt.rib_bytes) / (1024.0 * 1024.0),
        pt.bytes_per_route, pt.distinct_paths,
        static_cast<double>(pt.peak_rss) / (1024.0 * 1024.0));
    points.push_back(pt);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "scale_suite: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"suite\": \"scale\",\n  \"mode\": \"%s\",\n  \"mrai_s\": %.2f,\n"
               "  \"peak_rss_independent\": %s,\n  \"points\": [\n",
               mode, mrai_s, rss_independent ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"initial_convergence_s\": %.6f, "
                 "\"failure_convergence_s\": %.6f, \"events\": %llu, \"messages\": %llu, "
                 "\"routes\": %zu, \"rib_bytes\": %zu, \"path_table_bytes\": %zu, "
                 "\"distinct_paths\": %zu, \"bytes_per_route\": %.2f, "
                 "\"build_wall_s\": %.3f, \"converge_wall_s\": %.3f, \"failure_wall_s\": %.3f, "
                 "\"peak_rss_bytes\": %zu}%s\n",
                 pt.n, pt.initial_convergence_s, pt.failure_convergence_s,
                 static_cast<unsigned long long>(pt.events),
                 static_cast<unsigned long long>(pt.messages), pt.routes, pt.rib_bytes,
                 pt.path_table_bytes, pt.distinct_paths, pt.bytes_per_route, pt.build_wall_s,
                 pt.converge_wall_s, pt.failure_wall_s, pt.peak_rss,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("scale_suite: wrote %s\n", out_path.c_str());
  return 0;
}
