
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/damping_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/damping_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/damping_test.cpp.o.d"
  "/root/repo/tests/bgp/extensions_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/extensions_test.cpp.o.d"
  "/root/repo/tests/bgp/failure_behavior_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/failure_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/failure_behavior_test.cpp.o.d"
  "/root/repo/tests/bgp/ibgp_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/ibgp_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/ibgp_test.cpp.o.d"
  "/root/repo/tests/bgp/input_queue_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/input_queue_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/input_queue_test.cpp.o.d"
  "/root/repo/tests/bgp/metrics_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/metrics_test.cpp.o.d"
  "/root/repo/tests/bgp/mrai_modes_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/mrai_modes_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/mrai_modes_test.cpp.o.d"
  "/root/repo/tests/bgp/multi_prefix_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/multi_prefix_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/multi_prefix_test.cpp.o.d"
  "/root/repo/tests/bgp/network_basic_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/network_basic_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/network_basic_test.cpp.o.d"
  "/root/repo/tests/bgp/policy_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/policy_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/policy_test.cpp.o.d"
  "/root/repo/tests/bgp/recovery_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/recovery_test.cpp.o.d"
  "/root/repo/tests/bgp/router_introspection_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/router_introspection_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/router_introspection_test.cpp.o.d"
  "/root/repo/tests/bgp/session_options_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/session_options_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/session_options_test.cpp.o.d"
  "/root/repo/tests/bgp/tcp_batch_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/tcp_batch_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/tcp_batch_test.cpp.o.d"
  "/root/repo/tests/bgp/trace_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/trace_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/trace_test.cpp.o.d"
  "/root/repo/tests/bgp/types_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/bgp/types_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/bgp/types_test.cpp.o.d"
  "/root/repo/tests/failure/failure_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/failure/failure_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/failure/failure_test.cpp.o.d"
  "/root/repo/tests/harness/audit_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/audit_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/audit_test.cpp.o.d"
  "/root/repo/tests/harness/bounds_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/bounds_test.cpp.o.d"
  "/root/repo/tests/harness/experiment_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/experiment_test.cpp.o.d"
  "/root/repo/tests/harness/options_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/options_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/options_test.cpp.o.d"
  "/root/repo/tests/harness/prefix_stats_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/prefix_stats_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/prefix_stats_test.cpp.o.d"
  "/root/repo/tests/harness/table_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/table_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/table_test.cpp.o.d"
  "/root/repo/tests/harness/timeline_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/harness/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/harness/timeline_test.cpp.o.d"
  "/root/repo/tests/integration/route_validity_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/integration/route_validity_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/integration/route_validity_test.cpp.o.d"
  "/root/repo/tests/integration/scheme_properties_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/integration/scheme_properties_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/integration/scheme_properties_test.cpp.o.d"
  "/root/repo/tests/integration/stress_sequences_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/integration/stress_sequences_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/integration/stress_sequences_test.cpp.o.d"
  "/root/repo/tests/schemes/calibration_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/schemes/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/schemes/calibration_test.cpp.o.d"
  "/root/repo/tests/schemes/dynamic_mrai_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/schemes/dynamic_mrai_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/schemes/dynamic_mrai_test.cpp.o.d"
  "/root/repo/tests/schemes/extent_mrai_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/schemes/extent_mrai_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/schemes/extent_mrai_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/sim/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/sim/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/sim/time_test.cpp.o.d"
  "/root/repo/tests/topo/degree_sequence_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/degree_sequence_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/degree_sequence_test.cpp.o.d"
  "/root/repo/tests/topo/generators_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/generators_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/generators_test.cpp.o.d"
  "/root/repo/tests/topo/graph_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/graph_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/graph_test.cpp.o.d"
  "/root/repo/tests/topo/hierarchical_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/hierarchical_test.cpp.o.d"
  "/root/repo/tests/topo/io_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/io_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/io_test.cpp.o.d"
  "/root/repo/tests/topo/metrics_test.cpp" "tests/CMakeFiles/bgpsim_tests.dir/topo/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/bgpsim_tests.dir/topo/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bgpsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/bgpsim_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/bgpsim_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgpsim_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
