# Empty dependencies file for bgpsim_tests.
# This may be replaced when dependencies are built.
