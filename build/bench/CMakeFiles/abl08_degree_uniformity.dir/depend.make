# Empty dependencies file for abl08_degree_uniformity.
# This may be replaced when dependencies are built.
