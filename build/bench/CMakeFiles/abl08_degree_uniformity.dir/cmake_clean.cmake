file(REMOVE_RECURSE
  "CMakeFiles/abl08_degree_uniformity.dir/abl08_degree_uniformity.cpp.o"
  "CMakeFiles/abl08_degree_uniformity.dir/abl08_degree_uniformity.cpp.o.d"
  "abl08_degree_uniformity"
  "abl08_degree_uniformity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl08_degree_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
