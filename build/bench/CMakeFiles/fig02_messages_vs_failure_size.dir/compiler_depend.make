# Empty compiler generated dependencies file for fig02_messages_vs_failure_size.
# This may be replaced when dependencies are built.
