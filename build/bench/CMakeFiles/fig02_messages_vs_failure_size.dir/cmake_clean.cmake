file(REMOVE_RECURSE
  "CMakeFiles/fig02_messages_vs_failure_size.dir/fig02_messages_vs_failure_size.cpp.o"
  "CMakeFiles/fig02_messages_vs_failure_size.dir/fig02_messages_vs_failure_size.cpp.o.d"
  "fig02_messages_vs_failure_size"
  "fig02_messages_vs_failure_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_messages_vs_failure_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
