# Empty dependencies file for fig13_realistic_topologies.
# This may be replaced when dependencies are built.
