file(REMOVE_RECURSE
  "CMakeFiles/fig13_realistic_topologies.dir/fig13_realistic_topologies.cpp.o"
  "CMakeFiles/fig13_realistic_topologies.dir/fig13_realistic_topologies.cpp.o.d"
  "fig13_realistic_topologies"
  "fig13_realistic_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_realistic_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
