file(REMOVE_RECURSE
  "CMakeFiles/fig12_batching_vs_mrai.dir/fig12_batching_vs_mrai.cpp.o"
  "CMakeFiles/fig12_batching_vs_mrai.dir/fig12_batching_vs_mrai.cpp.o.d"
  "fig12_batching_vs_mrai"
  "fig12_batching_vs_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_batching_vs_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
