# Empty dependencies file for fig12_batching_vs_mrai.
# This may be replaced when dependencies are built.
