# Empty compiler generated dependencies file for abl05_teardown_cost.
# This may be replaced when dependencies are built.
