file(REMOVE_RECURSE
  "CMakeFiles/abl05_teardown_cost.dir/abl05_teardown_cost.cpp.o"
  "CMakeFiles/abl05_teardown_cost.dir/abl05_teardown_cost.cpp.o.d"
  "abl05_teardown_cost"
  "abl05_teardown_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_teardown_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
