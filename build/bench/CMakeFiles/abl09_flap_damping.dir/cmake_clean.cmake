file(REMOVE_RECURSE
  "CMakeFiles/abl09_flap_damping.dir/abl09_flap_damping.cpp.o"
  "CMakeFiles/abl09_flap_damping.dir/abl09_flap_damping.cpp.o.d"
  "abl09_flap_damping"
  "abl09_flap_damping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl09_flap_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
