# Empty dependencies file for abl09_flap_damping.
# This may be replaced when dependencies are built.
