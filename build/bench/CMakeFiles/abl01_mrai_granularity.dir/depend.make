# Empty dependencies file for abl01_mrai_granularity.
# This may be replaced when dependencies are built.
