file(REMOVE_RECURSE
  "CMakeFiles/abl01_mrai_granularity.dir/abl01_mrai_granularity.cpp.o"
  "CMakeFiles/abl01_mrai_granularity.dir/abl01_mrai_granularity.cpp.o.d"
  "abl01_mrai_granularity"
  "abl01_mrai_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_mrai_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
