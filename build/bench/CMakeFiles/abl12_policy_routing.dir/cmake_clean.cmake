file(REMOVE_RECURSE
  "CMakeFiles/abl12_policy_routing.dir/abl12_policy_routing.cpp.o"
  "CMakeFiles/abl12_policy_routing.dir/abl12_policy_routing.cpp.o.d"
  "abl12_policy_routing"
  "abl12_policy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl12_policy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
