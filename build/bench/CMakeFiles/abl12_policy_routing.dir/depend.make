# Empty dependencies file for abl12_policy_routing.
# This may be replaced when dependencies are built.
