file(REMOVE_RECURSE
  "CMakeFiles/fig11_batching_messages.dir/fig11_batching_messages.cpp.o"
  "CMakeFiles/fig11_batching_messages.dir/fig11_batching_messages.cpp.o.d"
  "fig11_batching_messages"
  "fig11_batching_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_batching_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
