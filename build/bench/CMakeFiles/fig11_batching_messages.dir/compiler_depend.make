# Empty compiler generated dependencies file for fig11_batching_messages.
# This may be replaced when dependencies are built.
