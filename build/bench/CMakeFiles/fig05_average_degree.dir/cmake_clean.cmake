file(REMOVE_RECURSE
  "CMakeFiles/fig05_average_degree.dir/fig05_average_degree.cpp.o"
  "CMakeFiles/fig05_average_degree.dir/fig05_average_degree.cpp.o.d"
  "fig05_average_degree"
  "fig05_average_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_average_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
