# Empty compiler generated dependencies file for fig05_average_degree.
# This may be replaced when dependencies are built.
