# Empty compiler generated dependencies file for fig01_delay_vs_failure_size.
# This may be replaced when dependencies are built.
