file(REMOVE_RECURSE
  "CMakeFiles/fig01_delay_vs_failure_size.dir/fig01_delay_vs_failure_size.cpp.o"
  "CMakeFiles/fig01_delay_vs_failure_size.dir/fig01_delay_vs_failure_size.cpp.o.d"
  "fig01_delay_vs_failure_size"
  "fig01_delay_vs_failure_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_delay_vs_failure_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
