# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01_delay_vs_failure_size.
