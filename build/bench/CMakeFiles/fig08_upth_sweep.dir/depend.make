# Empty dependencies file for fig08_upth_sweep.
# This may be replaced when dependencies are built.
