
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_upth_sweep.cpp" "bench/CMakeFiles/fig08_upth_sweep.dir/fig08_upth_sweep.cpp.o" "gcc" "bench/CMakeFiles/fig08_upth_sweep.dir/fig08_upth_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bgpsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/bgpsim_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/bgpsim_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgpsim_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
