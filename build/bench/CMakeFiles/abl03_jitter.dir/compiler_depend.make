# Empty compiler generated dependencies file for abl03_jitter.
# This may be replaced when dependencies are built.
