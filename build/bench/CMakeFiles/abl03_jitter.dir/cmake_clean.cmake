file(REMOVE_RECURSE
  "CMakeFiles/abl03_jitter.dir/abl03_jitter.cpp.o"
  "CMakeFiles/abl03_jitter.dir/abl03_jitter.cpp.o.d"
  "abl03_jitter"
  "abl03_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
