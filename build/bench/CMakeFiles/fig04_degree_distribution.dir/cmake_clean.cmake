file(REMOVE_RECURSE
  "CMakeFiles/fig04_degree_distribution.dir/fig04_degree_distribution.cpp.o"
  "CMakeFiles/fig04_degree_distribution.dir/fig04_degree_distribution.cpp.o.d"
  "fig04_degree_distribution"
  "fig04_degree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
