file(REMOVE_RECURSE
  "CMakeFiles/fig03_delay_vs_mrai.dir/fig03_delay_vs_mrai.cpp.o"
  "CMakeFiles/fig03_delay_vs_mrai.dir/fig03_delay_vs_mrai.cpp.o.d"
  "fig03_delay_vs_mrai"
  "fig03_delay_vs_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_delay_vs_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
