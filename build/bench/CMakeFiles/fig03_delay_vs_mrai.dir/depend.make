# Empty dependencies file for fig03_delay_vs_mrai.
# This may be replaced when dependencies are built.
