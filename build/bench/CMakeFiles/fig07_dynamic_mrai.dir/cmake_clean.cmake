file(REMOVE_RECURSE
  "CMakeFiles/fig07_dynamic_mrai.dir/fig07_dynamic_mrai.cpp.o"
  "CMakeFiles/fig07_dynamic_mrai.dir/fig07_dynamic_mrai.cpp.o.d"
  "fig07_dynamic_mrai"
  "fig07_dynamic_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dynamic_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
