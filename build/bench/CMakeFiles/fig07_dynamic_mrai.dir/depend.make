# Empty dependencies file for fig07_dynamic_mrai.
# This may be replaced when dependencies are built.
