# Empty dependencies file for abl11_table_size.
# This may be replaced when dependencies are built.
