file(REMOVE_RECURSE
  "CMakeFiles/abl11_table_size.dir/abl11_table_size.cpp.o"
  "CMakeFiles/abl11_table_size.dir/abl11_table_size.cpp.o.d"
  "abl11_table_size"
  "abl11_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl11_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
