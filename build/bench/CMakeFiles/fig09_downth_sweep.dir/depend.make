# Empty dependencies file for fig09_downth_sweep.
# This may be replaced when dependencies are built.
