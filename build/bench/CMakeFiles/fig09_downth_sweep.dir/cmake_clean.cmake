file(REMOVE_RECURSE
  "CMakeFiles/fig09_downth_sweep.dir/fig09_downth_sweep.cpp.o"
  "CMakeFiles/fig09_downth_sweep.dir/fig09_downth_sweep.cpp.o.d"
  "fig09_downth_sweep"
  "fig09_downth_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_downth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
