# Empty compiler generated dependencies file for abl07_future_work.
# This may be replaced when dependencies are built.
