file(REMOVE_RECURSE
  "CMakeFiles/abl07_future_work.dir/abl07_future_work.cpp.o"
  "CMakeFiles/abl07_future_work.dir/abl07_future_work.cpp.o.d"
  "abl07_future_work"
  "abl07_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl07_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
