# Empty compiler generated dependencies file for abl06_network_size.
# This may be replaced when dependencies are built.
