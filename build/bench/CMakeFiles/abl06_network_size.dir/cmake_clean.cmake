file(REMOVE_RECURSE
  "CMakeFiles/abl06_network_size.dir/abl06_network_size.cpp.o"
  "CMakeFiles/abl06_network_size.dir/abl06_network_size.cpp.o.d"
  "abl06_network_size"
  "abl06_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
