# Empty compiler generated dependencies file for fig06_degree_dependent_mrai.
# This may be replaced when dependencies are built.
