file(REMOVE_RECURSE
  "CMakeFiles/fig06_degree_dependent_mrai.dir/fig06_degree_dependent_mrai.cpp.o"
  "CMakeFiles/fig06_degree_dependent_mrai.dir/fig06_degree_dependent_mrai.cpp.o.d"
  "fig06_degree_dependent_mrai"
  "fig06_degree_dependent_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_degree_dependent_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
