file(REMOVE_RECURSE
  "CMakeFiles/abl02_withdrawal_mrai.dir/abl02_withdrawal_mrai.cpp.o"
  "CMakeFiles/abl02_withdrawal_mrai.dir/abl02_withdrawal_mrai.cpp.o.d"
  "abl02_withdrawal_mrai"
  "abl02_withdrawal_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_withdrawal_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
