# Empty dependencies file for abl02_withdrawal_mrai.
# This may be replaced when dependencies are built.
