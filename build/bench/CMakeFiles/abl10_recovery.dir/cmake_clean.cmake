file(REMOVE_RECURSE
  "CMakeFiles/abl10_recovery.dir/abl10_recovery.cpp.o"
  "CMakeFiles/abl10_recovery.dir/abl10_recovery.cpp.o.d"
  "abl10_recovery"
  "abl10_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl10_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
