# Empty dependencies file for abl10_recovery.
# This may be replaced when dependencies are built.
