# Empty dependencies file for abl04_dynamic_monitors.
# This may be replaced when dependencies are built.
