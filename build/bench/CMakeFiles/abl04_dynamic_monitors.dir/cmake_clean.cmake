file(REMOVE_RECURSE
  "CMakeFiles/abl04_dynamic_monitors.dir/abl04_dynamic_monitors.cpp.o"
  "CMakeFiles/abl04_dynamic_monitors.dir/abl04_dynamic_monitors.cpp.o.d"
  "abl04_dynamic_monitors"
  "abl04_dynamic_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_dynamic_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
