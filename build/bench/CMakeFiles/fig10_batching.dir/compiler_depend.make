# Empty compiler generated dependencies file for fig10_batching.
# This may be replaced when dependencies are built.
