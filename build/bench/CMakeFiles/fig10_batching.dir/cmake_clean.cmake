file(REMOVE_RECURSE
  "CMakeFiles/fig10_batching.dir/fig10_batching.cpp.o"
  "CMakeFiles/fig10_batching.dir/fig10_batching.cpp.o.d"
  "fig10_batching"
  "fig10_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
