# Empty compiler generated dependencies file for abl13_parameter_theory.
# This may be replaced when dependencies are built.
