file(REMOVE_RECURSE
  "CMakeFiles/abl13_parameter_theory.dir/abl13_parameter_theory.cpp.o"
  "CMakeFiles/abl13_parameter_theory.dir/abl13_parameter_theory.cpp.o.d"
  "abl13_parameter_theory"
  "abl13_parameter_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl13_parameter_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
