file(REMOVE_RECURSE
  "libbgpsim_harness.a"
)
