# Empty compiler generated dependencies file for bgpsim_harness.
# This may be replaced when dependencies are built.
