file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_harness.dir/audit.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/audit.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/bounds.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/bounds.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/experiment.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/options.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/options.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/prefix_stats.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/prefix_stats.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/table.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/table.cpp.o.d"
  "CMakeFiles/bgpsim_harness.dir/timeline.cpp.o"
  "CMakeFiles/bgpsim_harness.dir/timeline.cpp.o.d"
  "libbgpsim_harness.a"
  "libbgpsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
