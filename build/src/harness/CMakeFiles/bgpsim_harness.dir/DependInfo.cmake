
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/audit.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/audit.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/audit.cpp.o.d"
  "/root/repo/src/harness/bounds.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/bounds.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/bounds.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/options.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/options.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/options.cpp.o.d"
  "/root/repo/src/harness/prefix_stats.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/prefix_stats.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/prefix_stats.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/table.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/table.cpp.o.d"
  "/root/repo/src/harness/timeline.cpp" "src/harness/CMakeFiles/bgpsim_harness.dir/timeline.cpp.o" "gcc" "src/harness/CMakeFiles/bgpsim_harness.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpsim_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/bgpsim_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgpsim_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
