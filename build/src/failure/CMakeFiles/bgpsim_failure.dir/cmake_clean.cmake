file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_failure.dir/failure.cpp.o"
  "CMakeFiles/bgpsim_failure.dir/failure.cpp.o.d"
  "libbgpsim_failure.a"
  "libbgpsim_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
