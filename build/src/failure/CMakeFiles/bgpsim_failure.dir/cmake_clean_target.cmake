file(REMOVE_RECURSE
  "libbgpsim_failure.a"
)
