# Empty dependencies file for bgpsim_failure.
# This may be replaced when dependencies are built.
