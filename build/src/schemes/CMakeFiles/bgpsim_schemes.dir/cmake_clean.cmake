file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_schemes.dir/calibration.cpp.o"
  "CMakeFiles/bgpsim_schemes.dir/calibration.cpp.o.d"
  "CMakeFiles/bgpsim_schemes.dir/degree_mrai.cpp.o"
  "CMakeFiles/bgpsim_schemes.dir/degree_mrai.cpp.o.d"
  "CMakeFiles/bgpsim_schemes.dir/dynamic_mrai.cpp.o"
  "CMakeFiles/bgpsim_schemes.dir/dynamic_mrai.cpp.o.d"
  "CMakeFiles/bgpsim_schemes.dir/extent_mrai.cpp.o"
  "CMakeFiles/bgpsim_schemes.dir/extent_mrai.cpp.o.d"
  "libbgpsim_schemes.a"
  "libbgpsim_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
