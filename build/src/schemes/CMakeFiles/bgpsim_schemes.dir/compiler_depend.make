# Empty compiler generated dependencies file for bgpsim_schemes.
# This may be replaced when dependencies are built.
