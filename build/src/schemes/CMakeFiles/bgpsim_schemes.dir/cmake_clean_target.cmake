file(REMOVE_RECURSE
  "libbgpsim_schemes.a"
)
