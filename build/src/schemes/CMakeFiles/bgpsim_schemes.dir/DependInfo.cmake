
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/calibration.cpp" "src/schemes/CMakeFiles/bgpsim_schemes.dir/calibration.cpp.o" "gcc" "src/schemes/CMakeFiles/bgpsim_schemes.dir/calibration.cpp.o.d"
  "/root/repo/src/schemes/degree_mrai.cpp" "src/schemes/CMakeFiles/bgpsim_schemes.dir/degree_mrai.cpp.o" "gcc" "src/schemes/CMakeFiles/bgpsim_schemes.dir/degree_mrai.cpp.o.d"
  "/root/repo/src/schemes/dynamic_mrai.cpp" "src/schemes/CMakeFiles/bgpsim_schemes.dir/dynamic_mrai.cpp.o" "gcc" "src/schemes/CMakeFiles/bgpsim_schemes.dir/dynamic_mrai.cpp.o.d"
  "/root/repo/src/schemes/extent_mrai.cpp" "src/schemes/CMakeFiles/bgpsim_schemes.dir/extent_mrai.cpp.o" "gcc" "src/schemes/CMakeFiles/bgpsim_schemes.dir/extent_mrai.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpsim_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
