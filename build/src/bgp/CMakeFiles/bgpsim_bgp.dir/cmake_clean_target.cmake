file(REMOVE_RECURSE
  "libbgpsim_bgp.a"
)
