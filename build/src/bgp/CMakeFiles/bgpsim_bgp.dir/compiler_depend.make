# Empty compiler generated dependencies file for bgpsim_bgp.
# This may be replaced when dependencies are built.
