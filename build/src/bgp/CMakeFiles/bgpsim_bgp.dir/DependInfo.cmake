
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/input_queue.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/input_queue.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/input_queue.cpp.o.d"
  "/root/repo/src/bgp/mrai.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/mrai.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/mrai.cpp.o.d"
  "/root/repo/src/bgp/network.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/network.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/network.cpp.o.d"
  "/root/repo/src/bgp/router.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/router.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/router.cpp.o.d"
  "/root/repo/src/bgp/trace.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/trace.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/trace.cpp.o.d"
  "/root/repo/src/bgp/types.cpp" "src/bgp/CMakeFiles/bgpsim_bgp.dir/types.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpsim_bgp.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpsim_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
