file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_bgp.dir/input_queue.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/input_queue.cpp.o.d"
  "CMakeFiles/bgpsim_bgp.dir/mrai.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/mrai.cpp.o.d"
  "CMakeFiles/bgpsim_bgp.dir/network.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/network.cpp.o.d"
  "CMakeFiles/bgpsim_bgp.dir/router.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/router.cpp.o.d"
  "CMakeFiles/bgpsim_bgp.dir/trace.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/trace.cpp.o.d"
  "CMakeFiles/bgpsim_bgp.dir/types.cpp.o"
  "CMakeFiles/bgpsim_bgp.dir/types.cpp.o.d"
  "libbgpsim_bgp.a"
  "libbgpsim_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
