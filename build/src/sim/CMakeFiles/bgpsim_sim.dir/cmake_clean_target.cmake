file(REMOVE_RECURSE
  "libbgpsim_sim.a"
)
