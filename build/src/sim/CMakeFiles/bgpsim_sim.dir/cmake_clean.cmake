file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_sim.dir/random.cpp.o"
  "CMakeFiles/bgpsim_sim.dir/random.cpp.o.d"
  "CMakeFiles/bgpsim_sim.dir/scheduler.cpp.o"
  "CMakeFiles/bgpsim_sim.dir/scheduler.cpp.o.d"
  "libbgpsim_sim.a"
  "libbgpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
