# Empty dependencies file for bgpsim_sim.
# This may be replaced when dependencies are built.
