file(REMOVE_RECURSE
  "libbgpsim_topo.a"
)
