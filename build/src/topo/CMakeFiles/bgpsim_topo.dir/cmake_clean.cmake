file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_topo.dir/degree_sequence.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/degree_sequence.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/generators.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/generators.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/graph.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/graph.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/hierarchical.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/hierarchical.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/io.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/io.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/metrics.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/metrics.cpp.o.d"
  "CMakeFiles/bgpsim_topo.dir/relations.cpp.o"
  "CMakeFiles/bgpsim_topo.dir/relations.cpp.o.d"
  "libbgpsim_topo.a"
  "libbgpsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
