# Empty dependencies file for bgpsim_topo.
# This may be replaced when dependencies are built.
