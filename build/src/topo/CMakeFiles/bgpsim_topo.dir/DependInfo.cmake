
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/degree_sequence.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/degree_sequence.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/degree_sequence.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/generators.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/generators.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/graph.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/graph.cpp.o.d"
  "/root/repo/src/topo/hierarchical.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/hierarchical.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/hierarchical.cpp.o.d"
  "/root/repo/src/topo/io.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/io.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/io.cpp.o.d"
  "/root/repo/src/topo/metrics.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/metrics.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/metrics.cpp.o.d"
  "/root/repo/src/topo/relations.cpp" "src/topo/CMakeFiles/bgpsim_topo.dir/relations.cpp.o" "gcc" "src/topo/CMakeFiles/bgpsim_topo.dir/relations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bgpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
