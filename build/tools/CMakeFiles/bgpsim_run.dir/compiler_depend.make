# Empty compiler generated dependencies file for bgpsim_run.
# This may be replaced when dependencies are built.
