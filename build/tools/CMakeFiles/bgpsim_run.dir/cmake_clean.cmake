file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_run.dir/bgpsim_run.cpp.o"
  "CMakeFiles/bgpsim_run.dir/bgpsim_run.cpp.o.d"
  "bgpsim_run"
  "bgpsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
