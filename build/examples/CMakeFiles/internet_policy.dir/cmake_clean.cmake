file(REMOVE_RECURSE
  "CMakeFiles/internet_policy.dir/internet_policy.cpp.o"
  "CMakeFiles/internet_policy.dir/internet_policy.cpp.o.d"
  "internet_policy"
  "internet_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
