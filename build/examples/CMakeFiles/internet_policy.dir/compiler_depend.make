# Empty compiler generated dependencies file for internet_policy.
# This may be replaced when dependencies are built.
