file(REMOVE_RECURSE
  "CMakeFiles/mrai_tuning.dir/mrai_tuning.cpp.o"
  "CMakeFiles/mrai_tuning.dir/mrai_tuning.cpp.o.d"
  "mrai_tuning"
  "mrai_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrai_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
