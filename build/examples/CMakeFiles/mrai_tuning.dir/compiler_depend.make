# Empty compiler generated dependencies file for mrai_tuning.
# This may be replaced when dependencies are built.
