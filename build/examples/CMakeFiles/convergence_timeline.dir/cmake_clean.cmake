file(REMOVE_RECURSE
  "CMakeFiles/convergence_timeline.dir/convergence_timeline.cpp.o"
  "CMakeFiles/convergence_timeline.dir/convergence_timeline.cpp.o.d"
  "convergence_timeline"
  "convergence_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
