// Policy-routed internetwork from measured-style data: loads a CAIDA
// as-rel file (bundled sample or a path given on the command line), runs
// Gao-Rexford BGP (customer preference, valley-free export), fails the
// best-connected AS, and shows how far the damage spreads.
//
// Run: ./build/examples/internet_policy [path/to/as-rel.txt]
//      (default: data/sample_as_rel.txt, relative to the repo root)
#include <cstdio>
#include <fstream>
#include <memory>

#include "bgp/network.hpp"
#include "harness/audit.hpp"
#include "topo/io.hpp"

using namespace bgpsim;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "data/sample_as_rel.txt";
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "cannot open %s (run from the repo root, or pass a path)\n", path);
    return 1;
  }
  const auto ar = topo::load_as_rel(file);
  std::size_t transit = ar.provider.size();
  std::printf("loaded %zu ASes, %zu links (%zu transit, %zu peering) from %s\n",
              ar.graph.size(), ar.graph.edge_count(), transit,
              ar.graph.edge_count() - transit, path);

  bgp::BgpConfig cfg;
  bgp::Network net{ar, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();

  // Reachability census under valley-free export.
  std::size_t routes = 0;
  for (topo::NodeId v = 0; v < net.size(); ++v) {
    routes += net.router(v).known_prefixes().size();
  }
  std::printf("converged: %.1f%% of all (AS, prefix) pairs routable, %llu updates\n",
              100.0 * static_cast<double>(routes) /
                  (static_cast<double>(net.size()) * static_cast<double>(net.size())),
              static_cast<unsigned long long>(net.metrics().updates_sent));

  // Kill the best-connected AS.
  topo::NodeId hub = 0;
  for (topo::NodeId v = 1; v < net.size(); ++v) {
    if (ar.graph.degree(v) > ar.graph.degree(hub)) hub = v;
  }
  std::printf("failing AS%llu (degree %zu)...\n",
              static_cast<unsigned long long>(ar.as_number[hub]), ar.graph.degree(hub));
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  const auto msgs_before = net.metrics().updates_sent;
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes({hub}); });
  net.run_to_quiescence();

  std::size_t lost_pairs = 0;
  for (const auto v : net.alive_nodes()) {
    lost_pairs += net.size() - 1 - net.router(v).known_prefixes().size();
  }
  std::printf("re-converged %.2fs after the failure (%llu updates); "
              "%zu (AS, prefix) pairs lost reachability\n",
              (net.metrics().last_rib_change - t_fail).to_seconds(),
              static_cast<unsigned long long>(net.metrics().updates_sent - msgs_before),
              lost_pairs);

  const auto verdict = harness::audit_routes(net);
  std::printf("audit: %s\n", verdict ? verdict->c_str() : "routes consistent");
  return verdict ? 1 : 0;
}
