// Convergence timeline: watch the overload build and drain after a large
// failure. Samples the network every 2 simulated seconds and prints update
// throughput, the deepest input queue, and the number of overloaded routers
// -- first with plain MRAI=0.5 s (the overload spiral the paper describes),
// then with the batching scheme (the spiral never forms).
//
// Run: ./build/examples/convergence_timeline
#include <cstdio>
#include <iostream>
#include <memory>

#include "failure/failure.hpp"
#include "harness/timeline.hpp"
#include "topo/degree_sequence.hpp"

using namespace bgpsim;

namespace {

void run(bool batching) {
  std::printf("\n--- MRAI=0.5s %s, 120 nodes (70-30), 10%% contiguous failure ---\n",
              batching ? "+ batching" : "(FIFO)");

  sim::Rng rng{11};
  auto degrees = topo::skewed_sequence(120, topo::SkewSpec::s70_30(), rng);
  auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  g.place_randomly(1000.0, 1000.0, rng);

  bgp::BgpConfig cfg;
  cfg.queue = batching ? bgp::QueueDiscipline::kBatched : bgp::QueueDiscipline::kFifo;
  bgp::Network net{g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 11};

  net.start();
  net.run_to_quiescence();

  const auto victims = failure::geographic_fraction(net.positions(), 0.10, {500.0, 500.0});
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes(victims); });

  harness::TimelineRecorder recorder{net, sim::SimTime::seconds(2.0)};
  recorder.start();
  net.run_to_quiescence();

  recorder.print(std::cout, /*max_rows=*/24);
  std::printf(
      "peak: %zu overloaded routers, deepest queue %zu updates, %llu updates in one "
      "interval; converged %.1fs after the failure\n",
      recorder.peak_overloaded(), recorder.peak_queue(),
      static_cast<unsigned long long>(recorder.peak_interval_updates()),
      (net.metrics().last_rib_change - t_fail).to_seconds());
}

}  // namespace

int main() {
  std::printf("How a large failure overloads BGP routers, and what batching does about it.\n");
  run(/*batching=*/false);
  run(/*batching=*/true);
  return 0;
}
