// Quickstart: simulate a large-scale failure in a 120-AS network and compare
// a constant MRAI against the paper's batching scheme.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace bgpsim;

  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = 120;
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.failure_fraction = 0.10;  // 12 of 120 ASes fail, contiguous at the grid centre
  cfg.seed = 42;

  std::printf("%-28s %10s %10s %8s %s\n", "scheme", "delay(s)", "messages", "dropped",
              "routes-ok");

  for (const bool batching : {false, true}) {
    cfg.scheme = harness::SchemeSpec::constant(0.5, batching);
    const auto r = harness::run_experiment(cfg);
    std::printf("%-28s %10.2f %10llu %8llu %s\n",
                batching ? "MRAI=0.5s + batching" : "MRAI=0.5s (FIFO)",
                r.convergence_delay_s,
                static_cast<unsigned long long>(r.messages_after_failure),
                static_cast<unsigned long long>(r.batch_dropped),
                r.routes_valid ? "yes" : r.audit_error.c_str());
  }

  cfg.scheme = harness::SchemeSpec::dynamic_mrai();
  const auto r = harness::run_experiment(cfg);
  std::printf("%-28s %10.2f %10llu %8llu %s\n", "dynamic MRAI {0.5,1.25,2.25}",
              r.convergence_delay_s,
              static_cast<unsigned long long>(r.messages_after_failure),
              static_cast<unsigned long long>(r.batch_dropped),
              r.routes_valid ? "yes" : r.audit_error.c_str());
  return 0;
}
