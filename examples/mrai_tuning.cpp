// MRAI tuning: finds the delay-optimal constant MRAI for a topology and a
// range of failure sizes -- the measurement the paper performs before
// choosing the dynamic scheme's levels (section 4.3: "we first measured the
// convergence delays for different MRAI values, and then picked the MRAIs
// that resulted in the least delay").
//
// Run: ./build/examples/mrai_tuning [nodes] (default 80)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.hpp"

using namespace bgpsim;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;
  const std::vector<double> mrais{0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 3.0};
  const std::vector<double> failures{0.01, 0.05, 0.10, 0.20};

  std::printf("Scanning constant MRAIs on a %zu-node 70-30 topology (2 seeds per point)...\n\n",
              n);
  std::printf("%8s", "failure");
  for (const double m : mrais) std::printf("  %6.2fs", m);
  std::printf("  | optimal\n");

  std::vector<double> optima;
  for (const double failure : failures) {
    std::printf("%7.1f%%", failure * 100.0);
    double best_delay = 1e18;
    double best_mrai = mrais.front();
    for (const double mrai : mrais) {
      harness::ExperimentConfig cfg;
      cfg.topology.n = n;
      cfg.failure_fraction = failure;
      cfg.scheme = harness::SchemeSpec::constant(mrai);
      const auto avg = harness::run_averaged(cfg, 2);
      std::printf("  %7.1f", avg.delay.mean);
      if (avg.delay.mean < best_delay) {
        best_delay = avg.delay.mean;
        best_mrai = mrai;
      }
    }
    std::printf("  | %.2fs\n", best_mrai);
    optima.push_back(best_mrai);
  }

  std::printf(
      "\nThe optimal MRAI grows with the failure size -- no constant works for all.\n"
      "A dynamic-MRAI level set for this network could be {%.2f, %.2f, %.2f} s.\n",
      optima.front(), optima[optima.size() / 2], optima.back());
  return 0;
}
