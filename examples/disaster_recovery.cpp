// Disaster-recovery scenario: a geographically concentrated failure (e.g. a
// regional power loss) takes out 10% of all routers of a realistic
// multi-router-AS internetwork. The example walks the timeline explicitly
// -- cold start, failure, re-convergence -- using the core API directly
// (Network / failure selection / audit) rather than the one-shot harness,
// and contrasts default BGP with the paper's batching scheme.
//
// Run: ./build/examples/disaster_recovery
#include <cstdio>
#include <memory>

#include "bgp/network.hpp"
#include "failure/failure.hpp"
#include "harness/audit.hpp"
#include "schemes/dynamic_mrai.hpp"
#include "topo/hierarchical.hpp"

using namespace bgpsim;

namespace {

void run_scenario(const topo::HierTopology& topo_data, bool batching) {
  std::printf("--- scheme: MRAI=0.5s %s ---\n", batching ? "+ batching" : "(default FIFO)");

  bgp::BgpConfig cfg;
  cfg.queue = batching ? bgp::QueueDiscipline::kBatched : bgp::QueueDiscipline::kFifo;
  auto mrai = std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5));
  bgp::Network net{topo_data, cfg, mrai, /*seed=*/7};

  net.start();
  const auto t_ready = net.run_to_quiescence();
  std::printf("t=%7.2fs  cold start converged (%llu updates exchanged)\n",
              t_ready.to_seconds(),
              static_cast<unsigned long long>(net.metrics().updates_sent));

  // The disaster: the 10% of routers nearest the grid centre go dark.
  const auto victims = failure::geographic_fraction(
      net.positions(), 0.10, topo::Point{500.0, 500.0});
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes(victims); });

  const auto msgs_before = net.metrics().updates_sent;
  net.run_to_quiescence();

  const double delay = (net.metrics().last_rib_change - t_fail).to_seconds();
  std::printf("t=%7.2fs  disaster: %zu routers in the central region fail\n",
              t_fail.to_seconds(), victims.size());
  std::printf("t=%7.2fs  routing stable again -- %.2fs of instability, %llu updates",
              (t_fail + sim::SimTime::seconds(delay)).to_seconds(), delay,
              static_cast<unsigned long long>(net.metrics().updates_sent - msgs_before));
  if (batching) {
    std::printf(", %llu stale updates deleted unprocessed",
                static_cast<unsigned long long>(net.metrics().batch_dropped));
  }
  std::printf("\n");

  // Act three: power returns. The region's routers cold-start, sessions
  // re-establish with full table exchanges, and the network re-absorbs the
  // recovered prefixes.
  const auto msgs_pre_recovery = net.metrics().updates_sent;
  const auto t_recover = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_recover, [&] { net.recover_nodes(victims); });
  net.run_to_quiescence();
  const double rec_delay = (net.metrics().last_rib_change - t_recover).to_seconds();
  std::printf("t=%7.2fs  the region comes back; re-converged %.2fs later (%llu updates)\n",
              t_recover.to_seconds(), rec_delay,
              static_cast<unsigned long long>(net.metrics().updates_sent - msgs_pre_recovery));

  const auto verdict = harness::audit_routes(net);
  std::printf("route audit: %s\n\n", verdict ? verdict->c_str() : "all routes consistent");
}

}  // namespace

int main() {
  std::printf("Building a realistic internetwork: 60 ASes, heavy-tailed sizes, iBGP meshes...\n");
  sim::Rng rng{7};
  topo::HierParams params;
  params.num_ases = 60;
  params.max_total_routers = 150;
  const auto topo_data = topo::hierarchical(params, rng);
  std::printf("  -> %zu routers across %zu ASes, %zu BGP sessions\n\n",
              topo_data.num_routers(), topo_data.num_ases(), topo_data.sessions.size());

  run_scenario(topo_data, /*batching=*/false);
  run_scenario(topo_data, /*batching=*/true);
  return 0;
}
