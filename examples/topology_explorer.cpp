// Topology explorer: generates one instance of every topology family in
// the library and prints its vital statistics, including the degree
// histogram. Demonstrates the topo API (skewed sequences, BRITE-style
// generators, hierarchical multi-router ASes).
//
// Run: ./build/examples/topology_explorer
#include <cstdio>
#include <map>
#include <string>

#include "topo/degree_sequence.hpp"
#include "topo/generators.hpp"
#include "topo/hierarchical.hpp"

using namespace bgpsim;

namespace {

void describe(const std::string& name, const topo::Graph& g) {
  std::map<std::size_t, int> histogram;
  for (topo::NodeId v = 0; v < g.size(); ++v) ++histogram[g.degree(v)];
  std::printf("%-22s %4zu nodes  %5zu edges  avg deg %4.2f  max deg %2zu  %s\n", name.c_str(),
              g.size(), g.edge_count(), g.average_degree(), g.max_degree(),
              g.is_connected() ? "connected" : "DISCONNECTED");
  std::printf("%22s degree histogram: ", "");
  for (const auto& [deg, count] : histogram) std::printf("%zu:%d ", deg, count);
  std::printf("\n\n");
}

}  // namespace

int main() {
  sim::Rng rng{2026};

  for (const auto& [name, spec] :
       std::initializer_list<std::pair<const char*, topo::SkewSpec>>{
           {"skewed 70-30", topo::SkewSpec::s70_30()},
           {"skewed 50-50", topo::SkewSpec::s50_50()},
           {"skewed 85-15", topo::SkewSpec::s85_15()},
           {"skewed 50-50 dense", topo::SkewSpec::s50_50_dense()}}) {
    auto degrees = topo::skewed_sequence(120, spec, rng);
    describe(name, topo::realize_degree_sequence(std::move(degrees), rng));
  }

  {
    auto degrees = topo::internet_like_sequence(120, 40, 3.4, rng);
    describe("internet-like (cap 40)", topo::realize_degree_sequence(std::move(degrees), rng));
  }

  topo::WaxmanParams wax;
  wax.n = 120;
  describe("waxman", topo::waxman(wax, rng));

  topo::BaParams ba;
  ba.n = 120;
  describe("barabasi-albert m=2", topo::barabasi_albert(ba, rng));

  topo::GlpParams glp_params;
  glp_params.n = 120;
  describe("GLP", topo::glp(glp_params, rng));

  topo::HierParams hier;
  hier.num_ases = 60;
  hier.max_total_routers = 200;
  const auto h = topo::hierarchical(hier, rng);
  std::printf("%-22s %4zu routers in %zu ASes, %zu sessions (iBGP meshes + eBGP)\n",
              "hierarchical", h.num_routers(), h.num_ases(), h.sessions.size());
  std::printf("%22s AS-level graph: ", "");
  std::printf("avg inter-AS degree %.2f, max %zu, largest AS %zu routers\n",
              h.as_graph.average_degree(), h.as_graph.max_degree(),
              h.routers_of_as.front().size());
  return 0;
}
