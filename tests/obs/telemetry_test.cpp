#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "../bgp/test_util.hpp"
#include "bgp/network.hpp"

namespace bgpsim::obs {
namespace {

using bgp::testing::deterministic_config;

std::string tmp_path(const char* name) { return ::testing::TempDir() + name; }

std::unique_ptr<bgp::Network> make_net(std::uint64_t seed = 7) {
  return std::make_unique<bgp::Network>(
      bgp::testing::ring(8), deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), seed);
}

TelemetryConfig fast_config() {
  TelemetryConfig tc;
  tc.interval = sim::SimTime::seconds(0.1);
  return tc;
}

/// Network + sampler with the right destruction order (sampler first: its
/// PeriodicTask must not outlive the Network's scheduler).
struct SampledRun {
  std::unique_ptr<bgp::Network> net = make_net();
  std::unique_ptr<TelemetrySampler> sampler =
      std::make_unique<TelemetrySampler>(*net, fast_config());
  ~SampledRun() { sampler.reset(); }

  void run() {
    net->start();
    sampler->start();
    net->run_to_quiescence();
  }
};

TEST(Telemetry, TwoIdenticalRunsProduceIdenticalColumns) {
  SampledRun a;
  SampledRun b;
  a.run();
  b.run();

  ASSERT_GT(a.sampler->samples(), 0u);
  EXPECT_EQ(a.sampler->times_s(), b.sampler->times_s());
  EXPECT_EQ(a.sampler->overloaded(), b.sampler->overloaded());
  EXPECT_EQ(a.sampler->sent_delta(), b.sampler->sent_delta());
  EXPECT_EQ(a.sampler->processed_delta(), b.sampler->processed_delta());
  EXPECT_EQ(a.sampler->rib_delta(), b.sampler->rib_delta());
  EXPECT_EQ(a.sampler->max_queue(), b.sampler->max_queue());
  for (bgp::NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(a.sampler->series(v, RouterMetric::kUnfinishedWork),
              b.sampler->series(v, RouterMetric::kUnfinishedWork));
    EXPECT_EQ(a.sampler->series(v, RouterMetric::kUpdatesSent),
              b.sampler->series(v, RouterMetric::kUpdatesSent));
  }
}

TEST(Telemetry, SamplingDoesNotPerturbTheProtocol) {
  auto plain = make_net();
  plain->start();
  plain->run_to_quiescence();
  const auto unsampled_end = plain->scheduler().now();

  auto sampled = make_net();
  auto sampler = std::make_unique<TelemetrySampler>(*sampled, fast_config());
  sampled->start();
  sampler->start();
  sampled->run_to_quiescence();
  const auto sampled_end = sampled->scheduler().now();

  // Protocol results are bit-identical; only the quiescence timestamp moves,
  // rounding up to the sampler's final tick.
  EXPECT_EQ(plain->metrics().updates_sent, sampled->metrics().updates_sent);
  EXPECT_EQ(plain->metrics().messages_processed, sampled->metrics().messages_processed);
  EXPECT_EQ(plain->metrics().rib_changes, sampled->metrics().rib_changes);
  EXPECT_GE(sampled_end, unsampled_end);
  EXPECT_EQ(sampled_end.ns() % fast_config().interval.ns(), 0);
  sampler.reset();
}

TEST(Telemetry, BgtlFileRoundTrips) {
  const auto path = tmp_path("telemetry_roundtrip.bgtl");
  auto net = make_net();
  auto sampler = std::make_unique<TelemetrySampler>(*net, fast_config());
  net->start();
  sampler->start();
  net->run_to_quiescence();
  sampler->write_file(path);

  const auto t = read_telemetry_file(path);
  EXPECT_EQ(t.version, kTelemetryVersion);
  EXPECT_TRUE(t.per_router);
  EXPECT_EQ(t.n_routers, 8u);
  EXPECT_EQ(t.interval, fast_config().interval);
  EXPECT_EQ(t.overload_threshold, fast_config().overload_threshold);
  ASSERT_EQ(t.samples(), sampler->samples());
  EXPECT_EQ(t.times_s, sampler->times_s());
  EXPECT_EQ(t.overloaded, sampler->overloaded());
  EXPECT_EQ(t.sent_delta, sampler->sent_delta());
  EXPECT_EQ(t.processed_delta, sampler->processed_delta());
  EXPECT_EQ(t.rib_delta, sampler->rib_delta());
  EXPECT_EQ(t.max_queue, sampler->max_queue());
  EXPECT_EQ(t.level_residency_s, sampler->level_residency_s());
  for (bgp::NodeId v = 0; v < t.n_routers; ++v) {
    for (const auto m :
         {RouterMetric::kUnfinishedWork, RouterMetric::kQueueDepth, RouterMetric::kMraiLevel,
          RouterMetric::kBusyFraction, RouterMetric::kUpdatesSent,
          RouterMetric::kUpdatesReceived}) {
      EXPECT_EQ(t.series(v, m), sampler->series(v, m));
    }
  }
  sampler.reset();
}

TEST(Telemetry, RollupOnlyModeStoresNoPerRouterColumns) {
  const auto path = tmp_path("telemetry_rollup.bgtl");
  auto net = make_net();
  auto tc = fast_config();
  tc.per_router = false;
  auto sampler = std::make_unique<TelemetrySampler>(*net, tc);
  net->start();
  sampler->start();
  net->run_to_quiescence();
  ASSERT_GT(sampler->samples(), 0u);
  EXPECT_TRUE(sampler->series(0, RouterMetric::kQueueDepth).empty());
  sampler->write_file(path);
  sampler.reset();

  const auto t = read_telemetry_file(path);
  EXPECT_FALSE(t.per_router);
  EXPECT_EQ(t.samples(), t.times_s.size());
  EXPECT_TRUE(t.unfinished_work_s.empty());
  EXPECT_TRUE(t.series(0, RouterMetric::kQueueDepth).empty());
  EXPECT_EQ(t.overloaded.size(), t.samples());
}

TEST(Telemetry, LevelResidencyTracksTheLevelCallback) {
  auto net = make_net();
  auto tc = fast_config();
  // Synthetic level schedule: every router sits at level 0 for the first
  // second of sim time, then at level 2.
  tc.mrai_level = [&net](bgp::NodeId) -> std::size_t {
    return net->scheduler().now() < sim::SimTime::seconds(1.0) ? 0u : 2u;
  };
  auto sampler = std::make_unique<TelemetrySampler>(*net, tc);
  net->start();
  sampler->start();
  net->run_to_quiescence();
  // Keep the run going past the switch point so both levels accumulate.
  net->scheduler().schedule_after(sim::SimTime::seconds(2.0), [] {});
  sampler->start();
  net->run_to_quiescence();

  ASSERT_EQ(sampler->level_residency_s().size(), 3u);
  EXPECT_GT(sampler->level_residency_s()[0], 0.0);
  EXPECT_DOUBLE_EQ(sampler->level_residency_s()[1], 0.0);
  EXPECT_GT(sampler->level_residency_s()[2], 0.0);
  // Residency is router-seconds: the columns account for every sample tick.
  const double total = std::accumulate(sampler->level_residency_s().begin(),
                                       sampler->level_residency_s().end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(sampler->samples() * 8) * tc.interval.to_seconds(),
              1e-9);
  // Each of the 8 routers left level 0 exactly once.
  EXPECT_EQ(sampler->level_stay_hist().total(), 8u);
  // The level column reflects the switch.
  const auto levels = sampler->series(7, RouterMetric::kMraiLevel);
  EXPECT_DOUBLE_EQ(levels.front(), 0.0);
  EXPECT_DOUBLE_EQ(levels.back(), 2.0);
  sampler.reset();
}

TEST(Telemetry, RestartAcrossPhasesKeepsDeltasContinuous) {
  auto net = make_net();
  auto sampler = std::make_unique<TelemetrySampler>(*net, fast_config());
  net->start();
  sampler->start();
  net->run_to_quiescence();
  const auto samples_phase1 = sampler->samples();

  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  sampler->start();  // restart after self-termination at quiescence
  net->run_to_quiescence();
  EXPECT_GT(sampler->samples(), samples_phase1);

  // The delta columns partition the cumulative counters with no gap or
  // double-count across the phase boundary.
  const auto& deltas = sampler->sent_delta();
  const auto sum = std::accumulate(deltas.begin(), deltas.end(), std::uint64_t{0});
  EXPECT_EQ(sum, net->metrics().updates_sent);
  sampler.reset();
}

TEST(Telemetry, ReadRejectsGarbage) {
  EXPECT_THROW(read_telemetry_file(tmp_path("telemetry_missing.bgtl")), std::runtime_error);
}

}  // namespace
}  // namespace bgpsim::obs
