// Event-by-event golden trace of a 3-node line converging from cold start
// under the fully deterministic test configuration (no jitter, 1 ms
// processing, synchronized originations, MRAI 0.5 s, seed 1).
//
// This pins the exact semantics of the trace stream -- ordering, timing and
// per-kind payloads -- so any change to when or what the protocol emits
// shows up as a readable diff of BGP behavior, not just a count change.
// If the protocol legitimately changes, regenerate by printing
// event.to_string() for the same scenario.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../bgp/test_util.hpp"
#include "bgp/network.hpp"
#include "bgp/trace.hpp"

namespace bgpsim::obs {
namespace {

TEST(GoldenTrace, ThreeNodeLineColdStart) {
  bgp::RecordingSink sink{100000};
  auto net = std::make_unique<bgp::Network>(
      bgp::testing::line(3), bgp::testing::deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  net->set_trace_sink(&sink);
  net->start();
  net->run_to_quiescence();

  const std::vector<std::string> golden = {
      "0s r0 originated prefix 0",
      "0s r0 rib-changed prefix 0",
      "0s r0 update-sent advert prefix 0 peer 1 len 1",
      "0s r0 mrai-started peer 1",
      "0s r1 originated prefix 1",
      "0s r1 rib-changed prefix 1",
      "0s r1 update-sent advert prefix 1 peer 0 len 1",
      "0s r1 mrai-started peer 0",
      "0s r1 update-sent advert prefix 1 peer 2 len 1",
      "0s r1 mrai-started peer 2",
      "0s r2 originated prefix 2",
      "0s r2 rib-changed prefix 2",
      "0s r2 update-sent advert prefix 2 peer 1 len 1",
      "0s r2 mrai-started peer 1",
      "0.025s r1 update-received advert prefix 0 peer 0 len 1",
      "0.025s r1 batch-started batch 1",
      "0.025s r0 update-received advert prefix 1 peer 1 len 1",
      "0.025s r0 batch-started batch 1",
      "0.025s r2 update-received advert prefix 1 peer 1 len 1",
      "0.025s r2 batch-started batch 1",
      "0.025s r1 update-received advert prefix 2 peer 2 len 1",
      "0.026s r1 batch-processed batch 1",
      "0.026s r1 rib-changed prefix 0",
      "0.026s r1 batch-started batch 1",
      "0.026s r0 batch-processed batch 1",
      "0.026s r0 rib-changed prefix 1",
      "0.026s r2 batch-processed batch 1",
      "0.026s r2 rib-changed prefix 1",
      "0.027s r1 batch-processed batch 1",
      "0.027s r1 rib-changed prefix 2",
      "0.5s r0 mrai-expired peer 1",
      "0.5s r1 mrai-expired peer 0",
      "0.5s r1 update-sent advert prefix 2 peer 0 len 2",
      "0.5s r1 mrai-started peer 0",
      "0.5s r1 mrai-expired peer 2",
      "0.5s r1 update-sent advert prefix 0 peer 2 len 2",
      "0.5s r1 mrai-started peer 2",
      "0.5s r2 mrai-expired peer 1",
      "0.525s r0 update-received advert prefix 2 peer 1 len 2",
      "0.525s r0 batch-started batch 1",
      "0.525s r2 update-received advert prefix 0 peer 1 len 2",
      "0.525s r2 batch-started batch 1",
      "0.526s r0 batch-processed batch 1",
      "0.526s r0 rib-changed prefix 2",
      "0.526s r2 batch-processed batch 1",
      "0.526s r2 rib-changed prefix 0",
      "1s r1 mrai-expired peer 0",
      "1s r1 mrai-expired peer 2",
  };

  ASSERT_EQ(sink.events().size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(sink.events()[i].to_string(), golden[i]) << "event index " << i;
  }
}

}  // namespace
}  // namespace bgpsim::obs
