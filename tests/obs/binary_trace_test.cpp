#include "obs/binary_trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "../bgp/test_util.hpp"
#include "bgp/network.hpp"

namespace bgpsim::obs {
namespace {

namespace fs = std::filesystem;
using bgp::TraceEvent;

std::string tmp_path(const char* name) { return ::testing::TempDir() + name; }

/// One synthetic event per kind, exercising every payload field.
std::vector<TraceEvent> synthetic_events() {
  std::vector<TraceEvent> events;
  for (std::size_t k = 0; k < TraceEvent::kNumKinds; ++k) {
    TraceEvent e;
    e.kind = static_cast<TraceEvent::Kind>(k);
    e.at = sim::SimTime::from_ns(static_cast<std::int64_t>(1'000'000 * (k + 1) + k));
    e.router = static_cast<bgp::NodeId>(k);
    e.peer = static_cast<bgp::NodeId>(k + 100);
    e.prefix = static_cast<bgp::Prefix>(k + 1000);
    e.withdraw = (k % 2) == 1;
    e.batch_size = k * 7;
    e.path_len = static_cast<std::uint32_t>(k + 2);
    events.push_back(e);
  }
  return events;
}

void expect_same(const TraceEvent& a, const TraceEvent& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.at, b.at);
  EXPECT_EQ(a.router, b.router);
  EXPECT_EQ(a.peer, b.peer);
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(a.withdraw, b.withdraw);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.path_len, b.path_len);
}

TEST(BinaryTrace, RoundTripPreservesEveryField) {
  const auto path = tmp_path("bgtr_roundtrip.bgtr");
  const auto events = synthetic_events();
  {
    BinaryTraceSink sink{path};
    for (const auto& e : events) sink.on_event(e);
    EXPECT_EQ(sink.events_written(), events.size());
  }  // destructor closes + patches the header

  const auto file = read_trace_file(path);
  EXPECT_EQ(file.version, kTraceVersion);
  EXPECT_FALSE(file.truncated);
  ASSERT_EQ(file.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) expect_same(events[i], file.events[i]);
}

TEST(BinaryTrace, HeaderCountIsPatchedOnClose) {
  const auto path = tmp_path("bgtr_count.bgtr");
  const auto events = synthetic_events();
  BinaryTraceSink sink{path};
  for (const auto& e : events) sink.on_event(e);
  sink.close();
  sink.close();  // idempotent

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  char header[24];
  in.read(header, sizeof(header));
  std::uint64_t declared = 0;
  for (int i = 7; i >= 0; --i) {
    declared = (declared << 8) | static_cast<unsigned char>(header[8 + i]);
  }
  EXPECT_EQ(declared, events.size());
  // Events written after close are silently dropped, not corrupting output.
  sink.on_event(events.front());
  EXPECT_EQ(sink.events_written(), events.size());
}

TEST(BinaryTrace, TruncatedMidRecordKeepsCompletePrefix) {
  const auto path = tmp_path("bgtr_trunc.bgtr");
  const auto events = synthetic_events();
  {
    BinaryTraceSink sink{path};
    for (const auto& e : events) sink.on_event(e);
  }
  // Chop the last record in half: the reader must keep every complete record
  // and flag truncation rather than decode garbage.
  fs::resize_file(path, fs::file_size(path) - 10);
  const auto file = read_trace_file(path);
  EXPECT_TRUE(file.truncated);
  ASSERT_EQ(file.events.size(), events.size() - 1);
  expect_same(events[events.size() - 2], file.events.back());
}

TEST(BinaryTrace, UnpatchedCountReadsToEofAndFlagsTruncation) {
  const auto path = tmp_path("bgtr_nopatch.bgtr");
  const auto events = synthetic_events();
  {
    BinaryTraceSink sink{path};
    for (const auto& e : events) sink.on_event(e);
  }
  // Simulate a writer that died before close(): zero the count field.
  {
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(8);
    const char zeros[8] = {};
    f.write(zeros, sizeof(zeros));
  }
  const auto file = read_trace_file(path);
  EXPECT_TRUE(file.truncated);  // count disagrees with what was read
  ASSERT_EQ(file.events.size(), events.size());  // ...but every record survives
  for (std::size_t i = 0; i < events.size(); ++i) expect_same(events[i], file.events[i]);
}

TEST(BinaryTrace, RejectsBadMagicAndUnsupportedVersion) {
  EXPECT_THROW(read_trace_file(tmp_path("bgtr_missing.bgtr")), std::runtime_error);

  const auto bad_magic = tmp_path("bgtr_badmagic.bgtr");
  {
    std::ofstream out{bad_magic, std::ios::binary};
    out << "NOPE this is not a trace file, padded past the header size.....";
  }
  EXPECT_THROW(read_trace_file(bad_magic), std::runtime_error);

  const auto bad_version = tmp_path("bgtr_badversion.bgtr");
  {
    BinaryTraceSink sink{bad_version};
  }
  {
    std::fstream f{bad_version, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(4);
    const char v99[2] = {99, 0};
    f.write(v99, sizeof(v99));
  }
  EXPECT_THROW(read_trace_file(bad_version), std::runtime_error);
}

TEST(BinaryTrace, CapturesARealRunIdenticallyToRecordingSink) {
  const auto path = tmp_path("bgtr_realrun.bgtr");
  bgp::RecordingSink recorded{1'000'000};
  auto binary = std::make_unique<BinaryTraceSink>(path);
  bgp::TeeSink tee{{&recorded, binary.get()}};

  auto net = std::make_unique<bgp::Network>(
      bgp::testing::ring(6), bgp::testing::deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  net->set_trace_sink(&tee);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  net->set_trace_sink(nullptr);
  binary->close();

  const auto file = read_trace_file(path);
  EXPECT_FALSE(file.truncated);
  ASSERT_EQ(file.events.size(), recorded.events().size());
  ASSERT_GT(file.events.size(), 0u);
  for (std::size_t i = 0; i < file.events.size(); ++i) {
    expect_same(recorded.events()[i], file.events[i]);
  }
}

}  // namespace
}  // namespace bgpsim::obs
