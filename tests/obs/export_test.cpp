#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/telemetry.hpp"

namespace bgpsim::obs {
namespace {

using bgp::TraceEvent;
using Kind = TraceEvent::Kind;

TraceEvent make_event(Kind kind, double at_s, bgp::NodeId router) {
  TraceEvent e;
  e.kind = kind;
  e.at = sim::SimTime::seconds(at_s);
  e.router = router;
  return e;
}

TEST(ExportJsonl, GoldenLinePerEvent) {
  auto sent = make_event(Kind::kUpdateSent, 1.5, 3);
  sent.peer = 7;
  sent.prefix = 11;
  sent.withdraw = true;
  sent.path_len = 4;
  auto batch = make_event(Kind::kBatchProcessed, 2.0, 5);
  batch.batch_size = 9;

  std::ostringstream os;
  write_jsonl({sent, batch}, os);
  EXPECT_EQ(os.str(),
            "{\"t_ns\":1500000000,\"kind\":\"update-sent\",\"router\":3,\"peer\":7,"
            "\"prefix\":11,\"withdraw\":true,\"batch_size\":0,\"path_len\":4}\n"
            "{\"t_ns\":2000000000,\"kind\":\"batch-processed\",\"router\":5,\"peer\":0,"
            "\"prefix\":0,\"withdraw\":false,\"batch_size\":9,\"path_len\":0}\n");
}

TEST(ExportPerfetto, EmitsTrackMetadataSpansAndInstants) {
  std::vector<TraceEvent> events;
  auto mrai_start = make_event(Kind::kMraiStarted, 1.0, 2);
  mrai_start.peer = 4;
  events.push_back(mrai_start);
  events.push_back(make_event(Kind::kBatchStarted, 1.1, 2));
  auto batch_done = make_event(Kind::kBatchProcessed, 1.2, 2);
  batch_done.batch_size = 3;
  events.push_back(batch_done);
  auto mrai_end = make_event(Kind::kMraiExpired, 1.5, 2);
  mrai_end.peer = 4;
  events.push_back(mrai_end);
  auto rib = make_event(Kind::kRibChanged, 1.6, 2);
  rib.prefix = 8;
  events.push_back(rib);

  std::ostringstream os;
  write_perfetto(events, os, {});
  const auto out = os.str();

  // Track metadata: a process per router, a "cpu" thread, and a named MRAI
  // thread per peer (tid = peer + 1).
  EXPECT_NE(out.find("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
                     "\"args\":{\"name\":\"router 2\"}}"),
            std::string::npos);
  EXPECT_NE(out.find("\"tid\":0,\"args\":{\"name\":\"cpu\"}"), std::string::npos);
  EXPECT_NE(out.find("\"tid\":5,\"args\":{\"name\":\"mrai->4\"}"), std::string::npos);
  // The MRAI span: 1.0s -> 1.5s on tid 5.
  EXPECT_NE(out.find("{\"ph\":\"X\",\"cat\":\"mrai\",\"name\":\"mrai\",\"pid\":2,"
                     "\"tid\":5,\"ts\":1000000,\"dur\":500000}"),
            std::string::npos);
  // The batch slice: 1.1s -> 1.2s with its size.
  EXPECT_NE(out.find("{\"ph\":\"X\",\"cat\":\"batch\",\"name\":\"batch\",\"pid\":2,"
                     "\"tid\":0,\"ts\":1100000,\"dur\":100000,\"args\":{\"size\":3}}"),
            std::string::npos);
  // The RIB change as an instant with its prefix.
  EXPECT_NE(out.find("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"bgp\",\"name\":\"rib-changed\","
                     "\"pid\":2,\"tid\":0,\"ts\":1600000,\"args\":{\"prefix\":8}}"),
            std::string::npos);
  // Valid JSON shape.
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

TEST(ExportPerfetto, ClosesUnmatchedSpansAtTraceEnd) {
  std::vector<TraceEvent> events;
  auto mrai_start = make_event(Kind::kMraiStarted, 1.0, 0);
  mrai_start.peer = 1;
  events.push_back(mrai_start);
  events.push_back(make_event(Kind::kBatchStarted, 1.5, 0));
  events.push_back(make_event(Kind::kRibChanged, 2.0, 0));  // dates the trace end

  std::ostringstream os;
  write_perfetto(events, os, {});
  const auto out = os.str();
  // Both open spans are closed at the last event (2.0s = 2000000 us).
  EXPECT_NE(out.find("\"cat\":\"mrai\",\"name\":\"mrai\",\"pid\":0,\"tid\":2,"
                     "\"ts\":1000000,\"dur\":1000000}"),
            std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"batch\",\"name\":\"batch\",\"pid\":0,\"tid\":0,"
                     "\"ts\":1500000,\"dur\":500000"),
            std::string::npos);
}

TEST(ExportPerfetto, RestartedMraiClosesThePreviousSpan) {
  std::vector<TraceEvent> events;
  for (const double t : {1.0, 1.3}) {
    auto e = make_event(Kind::kMraiStarted, t, 0);
    e.peer = 1;
    events.push_back(e);
  }
  auto expired = make_event(Kind::kMraiExpired, 1.8, 0);
  expired.peer = 1;
  events.push_back(expired);

  std::ostringstream os;
  write_perfetto(events, os, {});
  const auto out = os.str();
  EXPECT_NE(out.find("\"ts\":1000000,\"dur\":300000}"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":1300000,\"dur\":500000}"), std::string::npos);
}

TEST(ExportPerfetto, MergesTelemetryCounters) {
  TelemetryFile t;
  t.per_router = true;
  t.n_routers = 2;
  t.times_s = {0.1};
  t.overloaded = {1};
  t.sent_delta = {0};
  t.processed_delta = {0};
  t.rib_delta = {0};
  t.max_queue = {4};
  t.unfinished_work_s = {0.25f, 0.0f};
  t.queue_depth = {4, 0};
  t.mrai_level = {0, 0};
  t.busy_frac = {0.5f, 0.0f};
  t.cum_sent = {0, 0};
  t.cum_recv = {0, 0};

  std::ostringstream os;
  write_perfetto({make_event(Kind::kRibChanged, 0.05, 0)}, os, {.telemetry = &t});
  const auto out = os.str();
  // The synthetic "network" process carries the rollup counters...
  EXPECT_NE(out.find("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
                     "\"args\":{\"name\":\"network\"}}"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"overloaded\",\"ts\":100000,\"args\":{\"routers\":1}"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"max_queue\",\"ts\":100000,\"args\":{\"depth\":4}"),
            std::string::npos);
  // ...and each router gets per-router counter tracks.
  EXPECT_NE(out.find("{\"ph\":\"C\",\"pid\":0,\"name\":\"unfinished_work_s\","
                     "\"ts\":100000,\"args\":{\"s\":0.25}}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"ph\":\"C\",\"pid\":1,\"name\":\"queue\",\"ts\":100000,"
                     "\"args\":{\"depth\":0}}"),
            std::string::npos);
}

}  // namespace
}  // namespace bgpsim::obs
