// Parallel-mode observability guarantees:
//
//   1. Merge identity: the k-way merge of a sharded parallel capture is
//      byte-identical to the K=1 capture of the same run -- on the same
//      240-node workload the ParIdentity suite pins, at K in {1, 2, 4}.
//   2. Truncation tolerance: a shard cut mid-record merges down to the
//      surviving complete records, flagged, mirroring the v1 reader.
//   3. Exact barrier telemetry: the sampler's .bgtl columns from a K=4 run
//      match the K=1 run sample-for-sample (the partition-profile section,
//      being wall-clock, is the one deliberate exception).
//   4. The reset() seam forgets samples so warm-start paths restart clean.
//   5. The partition profiler produces sane summaries through the harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../bgp/test_util.hpp"
#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "obs/binary_trace.hpp"
#include "obs/telemetry.hpp"

namespace bgpsim::obs {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::string file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  return std::string{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

harness::ExperimentConfig base_config(std::size_t n) {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = n;
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.failure_fraction = 0.05;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.seed = 3;
  return cfg;
}

/// Runs the config at `par` threads with a ShardedTraceWriter attached and
/// returns the path of the merged v1 trace.
std::string capture_merged(const harness::ExperimentConfig& base, std::size_t par) {
  const std::string manifest = tmp_path("par_trace_k" + std::to_string(par) + ".bgtr");
  const std::string merged = manifest + ".merged";
  harness::ExperimentConfig cfg = base;
  cfg.par_threads = par;
  std::unique_ptr<ShardedTraceWriter> writer;
  cfg.instrument = [&](bgp::Network& net, std::uint64_t) {
    writer = std::make_unique<ShardedTraceWriter>(manifest, net.par_threads());
    net.set_sharded_trace_sink(writer.get());
  };
  cfg.on_complete = [&](bgp::Network& net, std::uint64_t) {
    net.set_sharded_trace_sink(nullptr);
    writer->close();
  };
  const auto res = harness::run_experiment(cfg);
  EXPECT_TRUE(res.routes_valid) << res.audit_error;
  EXPECT_GT(writer->events_written(), 0u);
  EXPECT_EQ(write_merged_trace(manifest, merged), writer->events_written());
  return merged;
}

TEST(ShardedTrace, MergedCaptureByteIdenticalAcrossThreadCounts) {
  const auto cfg = base_config(240);
  const std::string k1 = capture_merged(cfg, 1);
  const std::string k2 = capture_merged(cfg, 2);
  const std::string k4 = capture_merged(cfg, 4);

  const std::string golden = file_bytes(k1);
  ASSERT_GT(golden.size(), 24u);  // more than a bare header
  EXPECT_EQ(file_bytes(k2), golden) << "K=2 merge diverges from the K=1 capture";
  EXPECT_EQ(file_bytes(k4), golden) << "K=4 merge diverges from the K=1 capture";

  // The merged file is a plain v1 trace: the ordinary reader takes it.
  const auto merged = read_trace_file(k1);
  EXPECT_EQ(merged.version, kTraceVersion);
  EXPECT_FALSE(merged.truncated);
  EXPECT_GT(merged.events.size(), 0u);
}

TEST(ShardedTrace, ManifestRoundTripAndTransparentLoad) {
  const std::string manifest = tmp_path("shard_roundtrip.bgtr");
  {
    ShardedTraceWriter w{manifest, 3};
    EXPECT_EQ(w.partitions(), 3u);
    bgp::TraceEvent e;
    e.kind = bgp::TraceEvent::Kind::kRibChanged;
    for (std::uint64_t i = 0; i < 9; ++i) {
      e.at = sim::SimTime::from_ns(static_cast<std::int64_t>(i) * 1000);
      e.router = static_cast<bgp::NodeId>(i);
      w.on_event(i % 3, e, bgp::TraceOrder{0, i, 0});
    }
    w.close();
    EXPECT_EQ(w.events_written(), 9u);
  }
  const auto m = read_trace_manifest(manifest);
  EXPECT_EQ(m.version, kTraceManifestVersion);
  ASSERT_EQ(m.shard_paths.size(), 3u);
  for (const auto& p : m.shard_paths) EXPECT_TRUE(fs::exists(p)) << p;

  // load_trace_any sniffs the BGTM magic and merges; events come back in
  // global key order even though they round-robined across shards.
  const auto t = load_trace_any(manifest);
  EXPECT_FALSE(t.truncated);
  ASSERT_EQ(t.events.size(), 9u);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(t.events[i].router, static_cast<bgp::NodeId>(i));
  }
}

TEST(ShardedTrace, TruncatedShardKeepsCompletePrefix) {
  const std::string manifest = tmp_path("shard_trunc.bgtr");
  {
    ShardedTraceWriter w{manifest, 2};
    bgp::TraceEvent e;
    e.kind = bgp::TraceEvent::Kind::kUpdateSent;
    for (std::uint64_t i = 0; i < 8; ++i) {
      e.at = sim::SimTime::from_ns(static_cast<std::int64_t>(i) * 1000);
      e.router = static_cast<bgp::NodeId>(i);
      w.on_event(i % 2, e, bgp::TraceOrder{0, i, 0});
    }
    w.close();
  }
  // Cut the last record of shard 1 in half: the merge must keep every
  // complete record (all of shard 0, shard 1 minus its final event) and
  // flag the truncation instead of decoding garbage.
  const std::string shard1 = manifest + ".shard1";
  fs::resize_file(shard1, fs::file_size(shard1) - 10);
  const auto t = read_merged_trace(manifest);
  EXPECT_TRUE(t.truncated);
  ASSERT_EQ(t.events.size(), 7u);
  // Router 7 held the clipped record (key 7 went to shard 1).
  for (const auto& e : t.events) EXPECT_NE(e.router, 7u);
}

TEST(ParTelemetry, ColumnsIdenticalAcrossThreadCounts) {
  const auto base = base_config(120);
  const auto capture = [&](std::size_t par) {
    harness::ExperimentConfig cfg = base;
    cfg.par_threads = par;
    const std::string path = tmp_path("par_telemetry_k" + std::to_string(par) + ".bgtl");
    std::unique_ptr<TelemetrySampler> sampler;
    cfg.instrument = [&](bgp::Network& net, std::uint64_t) {
      TelemetryConfig tc;
      sampler = std::make_unique<TelemetrySampler>(net, tc);
    };
    cfg.on_phase = [&](harness::RunPhase) { sampler->start(); };
    cfg.on_complete = [&](bgp::Network&, std::uint64_t) {
      sampler->write_file(path);
      sampler.reset();
    };
    const auto res = harness::run_experiment(cfg);
    EXPECT_TRUE(res.routes_valid) << res.audit_error;
    return read_telemetry_file(path);
  };

  const TelemetryFile a = capture(1);
  const TelemetryFile b = capture(4);
  ASSERT_GT(a.samples(), 0u);
  // Sample-for-sample identity of every deterministic column. The
  // partition-profile section is wall-clock and varies by K by design.
  EXPECT_EQ(a.times_s, b.times_s);
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.sent_delta, b.sent_delta);
  EXPECT_EQ(a.processed_delta, b.processed_delta);
  EXPECT_EQ(a.rib_delta, b.rib_delta);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.unfinished_work_s, b.unfinished_work_s);
  EXPECT_EQ(a.queue_depth, b.queue_depth);
  EXPECT_EQ(a.mrai_level, b.mrai_level);
  EXPECT_EQ(a.busy_frac, b.busy_frac);
  EXPECT_EQ(a.cum_sent, b.cum_sent);
  EXPECT_EQ(a.cum_recv, b.cum_recv);
  EXPECT_EQ(a.level_residency_s, b.level_residency_s);
  // Both parallel runs carry the partition profile, sized to their K.
  ASSERT_TRUE(a.has_partitions());
  ASSERT_TRUE(b.has_partitions());
  EXPECT_EQ(a.partitions.partitions, 1u);
  EXPECT_EQ(b.partitions.partitions, 4u);
  EXPECT_GT(b.partitions.windows(), 0u);
}

TEST(ParTelemetry, ResetForgetsSamplesAndRestartsClean) {
  auto net = std::make_unique<bgp::Network>(
      bgp::testing::ring(6), bgp::testing::deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  TelemetryConfig tc;
  tc.interval = sim::SimTime::seconds(0.05);
  TelemetrySampler sampler{*net, tc};
  sampler.start();
  net->start();
  net->run_to_quiescence();
  ASSERT_GT(sampler.samples(), 0u);

  sampler.reset();
  EXPECT_EQ(sampler.samples(), 0u);
  EXPECT_EQ(sampler.level_residency_s().size(), 0u);

  // A fresh start() after reset() baselines at the *current* counters, so
  // the first post-reset delta reflects only post-reset activity.
  sampler.start();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  EXPECT_GT(sampler.samples(), 0u);
  ASSERT_FALSE(sampler.sent_delta().empty());
  EXPECT_LT(sampler.sent_delta().front(), 100u);  // not the whole cold start again
}

TEST(ParProfile, HarnessSummaryIsSane) {
  auto cfg = base_config(120);
  cfg.par_threads = 4;
  cfg.par_profile = true;
  const auto res = harness::run_experiment(cfg);
  ASSERT_TRUE(res.routes_valid) << res.audit_error;
  EXPECT_GT(res.par_windows, 0u);
  EXPECT_GE(res.par_imbalance_factor, 1.0);
  EXPECT_GE(res.par_barrier_overhead, 0.0);
  EXPECT_LE(res.par_barrier_overhead, 1.0);
}

}  // namespace
}  // namespace bgpsim::obs
