#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include "bgp/trace.hpp"
#include "obs/stats.hpp"

namespace bgpsim::obs {
namespace {

TEST(LogHistogram, BucketEdgesArePowersOfTwoFromMin) {
  LogHistogram h{1.0};
  EXPECT_EQ(h.bucket_of(0.5), 0u);   // <= min
  EXPECT_EQ(h.bucket_of(1.0), 0u);   // == min is bucket 0 (edges are (lo, hi])
  EXPECT_EQ(h.bucket_of(1.5), 1u);   // (1, 2]
  EXPECT_EQ(h.bucket_of(2.0), 1u);
  EXPECT_EQ(h.bucket_of(2.1), 2u);   // (2, 4]
  EXPECT_EQ(h.bucket_of(4.0), 2u);
  EXPECT_EQ(h.bucket_of(1024.0), 10u);
  EXPECT_EQ(h.lower(0), 0.0);
  EXPECT_EQ(h.upper(0), 1.0);
  EXPECT_EQ(h.lower(3), 4.0);
  EXPECT_EQ(h.upper(3), 8.0);
}

TEST(LogHistogram, HugeValuesClampToLastBucket) {
  LogHistogram h{1.0};
  h.add(1e30);
  EXPECT_EQ(h.count(LogHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(LogHistogram, MinAnchorScalesEdges) {
  LogHistogram h{1e-3};  // delays: bucket 0 = up to 1 ms
  EXPECT_EQ(h.bucket_of(0.0005), 0u);
  EXPECT_EQ(h.bucket_of(0.0015), 1u);  // (1 ms, 2 ms]
  EXPECT_DOUBLE_EQ(h.upper(1), 0.002);
}

TEST(LogHistogram, StatsAndQuantiles) {
  LogHistogram h{1.0};
  for (int i = 0; i < 99; ++i) h.add(1.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), (99.0 + 100.0) / 100.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
  // p50 lands in bucket 0 (upper edge 1); p999 in the bucket holding 100.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 128.0);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h{1.0};
  h.add(3.0, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.count(h.bucket_of(3.0)), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(LogHistogram, MergeAndReset) {
  LogHistogram a{1.0};
  LogHistogram b{1.0};
  a.add(1.0);
  b.add(8.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 8.0);
  a.reset();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(LogHistogram, MergeIntoEmptyAdoptsExtremes) {
  LogHistogram a{1.0};
  LogHistogram b{1.0};
  b.add(5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min_seen(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 5.0);
}

TEST(StatsSink, PairsBatchAndMraiSpans) {
  using Kind = bgp::TraceEvent::Kind;
  StatsSink stats;
  const auto at = [](double s) { return sim::SimTime::seconds(s); };

  bgp::TraceEvent e;
  e.router = 1;
  e.kind = Kind::kBatchStarted;
  e.at = at(1.0);
  stats.on_event(e);
  e.kind = Kind::kBatchProcessed;
  e.at = at(1.5);
  e.batch_size = 4;
  stats.on_event(e);

  e.kind = Kind::kMraiStarted;
  e.peer = 2;
  e.at = at(2.0);
  stats.on_event(e);
  e.kind = Kind::kMraiExpired;
  e.at = at(2.25);
  stats.on_event(e);

  EXPECT_EQ(stats.total(), 4u);
  EXPECT_EQ(stats.first_at(), at(1.0));
  EXPECT_EQ(stats.last_at(), at(2.25));
  ASSERT_EQ(stats.processing_delay_s().total(), 1u);
  EXPECT_DOUBLE_EQ(stats.processing_delay_s().max_seen(), 0.5);
  ASSERT_EQ(stats.mrai_round_s().total(), 1u);
  EXPECT_DOUBLE_EQ(stats.mrai_round_s().max_seen(), 0.25);
  ASSERT_EQ(stats.batch_sizes().total(), 1u);
  EXPECT_DOUBLE_EQ(stats.batch_sizes().max_seen(), 4.0);
  // A completion without a pickup (trace sliced mid-batch) still counts the
  // size but records no delay.
  e.kind = Kind::kBatchProcessed;
  e.router = 7;
  e.at = at(3.0);
  stats.on_event(e);
  EXPECT_EQ(stats.batch_sizes().total(), 2u);
  EXPECT_EQ(stats.processing_delay_s().total(), 1u);
  EXPECT_NE(stats.report().find("mrai round"), std::string::npos);
}

}  // namespace
}  // namespace bgpsim::obs
