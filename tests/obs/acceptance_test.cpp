// End-to-end acceptance for the observability subsystem, mirroring the
// paper's fig. 7 workload: a dynamic-MRAI run over the skewed 120-node
// topology with a large failure, captured with BinaryTraceSink +
// TelemetrySampler through the harness hooks. Asserts that
//
//   * the Perfetto export carries per-router tracks with MRAI spans and
//     batch slices (what ui.perfetto.dev renders),
//   * the telemetry answers the paper's fig. 7 question: the unfinished-work
//     series of the highest-degree router crosses upTh during the failure
//     flood, and the overload rollup sees it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "harness/experiment.hpp"
#include "obs/binary_trace.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "schemes/dynamic_mrai.hpp"

namespace bgpsim::obs {
namespace {

TEST(ObsAcceptance, DynamicMraiRunYieldsPerfettoTraceAndOverloadTelemetry) {
  const auto trace_path = ::testing::TempDir() + "acceptance.bgtr";
  const auto telemetry_path = ::testing::TempDir() + "acceptance.bgtl";

  harness::ExperimentConfig cfg;
  cfg.scheme = harness::SchemeSpec::dynamic_mrai();
  cfg.failure_fraction = 0.2;  // large-scale failure: the regime fig. 7 studies
  cfg.seed = 3;

  std::unique_ptr<BinaryTraceSink> sink;
  std::unique_ptr<TelemetrySampler> sampler;
  bgp::NodeId hub = 0;  // highest-degree router
  cfg.instrument = [&](bgp::Network& net, std::uint64_t) {
    sink = std::make_unique<BinaryTraceSink>(trace_path);
    net.set_trace_sink(sink.get());
    TelemetryConfig tc;
    auto* dyn = dynamic_cast<schemes::DynamicMrai*>(&net.mrai());
    ASSERT_NE(dyn, nullptr);
    tc.mrai_level = [dyn](bgp::NodeId v) { return dyn->level(v); };
    sampler = std::make_unique<TelemetrySampler>(net, tc);
    for (bgp::NodeId v = 0; v < net.size(); ++v) {
      if (net.router(v).degree() > net.router(hub).degree()) hub = v;
    }
  };
  cfg.on_phase = [&](harness::RunPhase) { sampler->start(); };
  cfg.on_complete = [&](bgp::Network& net, std::uint64_t) {
    sampler->write_file(telemetry_path);
    net.set_trace_sink(nullptr);
    sink->close();
    sampler.reset();
  };

  const auto result = harness::run_experiment(cfg);
  EXPECT_TRUE(result.routes_valid) << result.audit_error;
  ASSERT_GT(sink->events_written(), 0u);

  // --- Perfetto export: per-router tracks, MRAI spans, batch slices.
  const auto trace = read_trace_file(trace_path);
  EXPECT_FALSE(trace.truncated);
  EXPECT_EQ(trace.events.size(), sink->events_written());
  const auto telemetry = read_telemetry_file(telemetry_path);
  std::ostringstream os;
  write_perfetto(trace.events, os, {.telemetry = &telemetry});
  const auto json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"mrai\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"batch\""), std::string::npos);
  // The hub router has a named process track and an MRAI track to some peer.
  EXPECT_NE(json.find("\"args\":{\"name\":\"router " + std::to_string(hub) + "\"}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"X\",\"cat\":\"mrai\",\"name\":\"mrai\",\"pid\":" +
                      std::to_string(hub) + ","),
            std::string::npos);

  // --- Telemetry: the hub's unfinished-work series crosses upTh (0.65 s by
  // default) during the failure flood, which is exactly the overload signal
  // the dynamic scheme acts on, and the rollup counted it.
  ASSERT_TRUE(telemetry.per_router);
  const auto work = telemetry.series(hub, RouterMetric::kUnfinishedWork);
  ASSERT_EQ(work.size(), telemetry.samples());
  const double peak = *std::max_element(work.begin(), work.end());
  EXPECT_GT(peak, telemetry.overload_threshold.to_seconds());
  const auto peak_overloaded =
      *std::max_element(telemetry.overloaded.begin(), telemetry.overloaded.end());
  EXPECT_GT(peak_overloaded, 0u);
  // The dynamic scheme reacted: routers spent time above level 0.
  ASSERT_GT(telemetry.level_residency_s.size(), 1u);
  double above_level0 = 0.0;
  for (std::size_t l = 1; l < telemetry.level_residency_s.size(); ++l) {
    above_level0 += telemetry.level_residency_s[l];
  }
  EXPECT_GT(above_level0, 0.0);
}

}  // namespace
}  // namespace bgpsim::obs
