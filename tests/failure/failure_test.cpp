#include "failure/failure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bgpsim::failure {
namespace {

std::vector<topo::Point> grid_positions() {
  // 5x5 lattice on [0,1000]^2.
  std::vector<topo::Point> pos;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      pos.push_back({i * 250.0, j * 250.0});
    }
  }
  return pos;
}

TEST(GeographicFailure, PicksTheNodesNearestTheCenter) {
  const auto pos = grid_positions();
  const topo::Point center{500.0, 500.0};
  const auto victims = geographic(pos, 1, center);
  ASSERT_EQ(victims.size(), 1u);
  // Node at exactly (500,500) is index 2*5+2 = 12.
  EXPECT_EQ(victims[0], 12u);
}

TEST(GeographicFailure, IsContiguous) {
  // Every selected node must be closer to the centre than every unselected
  // node (ties aside) -- i.e. the failure is a disk.
  const auto pos = grid_positions();
  const topo::Point center{500.0, 500.0};
  const auto victims = geographic(pos, 9, center);
  std::set<topo::NodeId> vs(victims.begin(), victims.end());
  double max_in = 0.0;
  double min_out = 1e18;
  for (topo::NodeId v = 0; v < pos.size(); ++v) {
    const double d = distance(pos[v], center);
    if (vs.contains(v)) {
      max_in = std::max(max_in, d);
    } else {
      min_out = std::min(min_out, d);
    }
  }
  EXPECT_LE(max_in, min_out + 1e-9);
}

TEST(GeographicFailure, CountClamped) {
  const auto pos = grid_positions();
  EXPECT_EQ(geographic(pos, 100, {0, 0}).size(), pos.size());
  EXPECT_TRUE(geographic(pos, 0, {0, 0}).empty());
}

TEST(GeographicFailure, ResultIsSortedUnique) {
  const auto pos = grid_positions();
  const auto victims = geographic(pos, 10, {400.0, 600.0});
  EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
  EXPECT_EQ(std::set<topo::NodeId>(victims.begin(), victims.end()).size(), victims.size());
}

TEST(GeographicFraction, RoundsToNodeCount) {
  const auto pos = grid_positions();  // 25 nodes
  EXPECT_EQ(geographic_fraction(pos, 0.20, {500, 500}).size(), 5u);
  EXPECT_EQ(geographic_fraction(pos, 0.05, {500, 500}).size(), 1u);
  EXPECT_EQ(geographic_fraction(pos, 0.0, {500, 500}).size(), 0u);
  EXPECT_EQ(geographic_fraction(pos, 1.0, {500, 500}).size(), 25u);
}

TEST(GeographicFraction, PaperSizes) {
  // 120 nodes at 1%..20% -> 1, 3, 6, 12, 24 victims.
  std::vector<topo::Point> pos(120);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = {static_cast<double>(i), 0.0};
  }
  EXPECT_EQ(geographic_fraction(pos, 0.01, {0, 0}).size(), 1u);
  EXPECT_EQ(geographic_fraction(pos, 0.025, {0, 0}).size(), 3u);
  EXPECT_EQ(geographic_fraction(pos, 0.05, {0, 0}).size(), 6u);
  EXPECT_EQ(geographic_fraction(pos, 0.10, {0, 0}).size(), 12u);
  EXPECT_EQ(geographic_fraction(pos, 0.20, {0, 0}).size(), 24u);
}

TEST(RandomFailure, CountAndUniqueness) {
  sim::Rng rng{1};
  const auto victims = random_nodes(50, 10, rng);
  EXPECT_EQ(victims.size(), 10u);
  EXPECT_EQ(std::set<topo::NodeId>(victims.begin(), victims.end()).size(), 10u);
  for (const auto v : victims) EXPECT_LT(v, 50u);
}

TEST(RandomFailure, Deterministic) {
  sim::Rng a{7};
  sim::Rng b{7};
  EXPECT_EQ(random_nodes(100, 20, a), random_nodes(100, 20, b));
}

TEST(RandomFailure, Clamps) {
  sim::Rng rng{2};
  EXPECT_EQ(random_nodes(5, 10, rng).size(), 5u);
}

}  // namespace
}  // namespace bgpsim::failure
