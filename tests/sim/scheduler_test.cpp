#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bgpsim::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_ms(30));
}

TEST(Scheduler, SameTimeEventsFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelativeToNow) {
  Scheduler s;
  SimTime inner_fire;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_after(SimTime::from_ms(5), [&] { inner_fire = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner_fire, SimTime::from_ms(15));
}

TEST(Scheduler, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::from_ms(5), [] {}), std::logic_error);
}

TEST(Scheduler, SchedulingAtNowIsAllowed) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_at(s.now(), [&] { fired = true; });
  });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(SimTime::from_ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterRun) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
}

TEST(Scheduler, HandleReportsFiredEventsAsNotPending) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, RunUntilStopsAtLimit) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.run_until(SimTime::from_ms(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunReturnsTimeOfLastEvent) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(42), [] {});
  EXPECT_EQ(s.run(), SimTime::from_ms(42));
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(SimTime::from_ms(1), recurse);
  };
  s.schedule_at(SimTime::zero(), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::from_ms(4));
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ExecutedEventsExcludesCancelled) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.schedule_at(SimTime::from_ms(2), [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Scheduler, CancelFromWithinEarlierEvent) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(SimTime::from_ms(20), [&] { fired = true; });
  s.schedule_at(SimTime::from_ms(10), [&] { h.cancel(); });
  s.run();
  EXPECT_FALSE(fired);
}

// Named SchedulerPool.* so CI's TSan job picks these up alongside the other
// event-pool semantics tests (see tests/harness/parallel_test.cpp).

TEST(SchedulerPool, CancelledEventSlotIsRecycled) {
  Scheduler s;
  // Cancelled events must hand their slot back through the same recycle
  // path as executed ones: churn cancel-heavy rounds and check the pool
  // does not grow.
  for (int round = 0; round < 2000; ++round) {
    auto keep = s.schedule_after(SimTime::from_ms(1), [] {});
    auto doomed = s.schedule_after(SimTime::from_ms(2), [] {});
    doomed.cancel();
    s.run();
    EXPECT_FALSE(keep.pending());
    EXPECT_FALSE(doomed.pending());
  }
  EXPECT_EQ(s.executed_events(), 2000u);
  EXPECT_LE(s.pool_slots(), 1024u);
  // Recycled slots are immediately reusable.
  bool fired = false;
  s.schedule_after(SimTime::from_ms(1), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerPool, QuiescentStateRoundTrip) {
  Scheduler a;
  a.schedule_at(SimTime::from_ms(5), [] {});
  a.schedule_at(SimTime::from_ms(9), [] {});
  a.run();
  const auto qs = a.quiescent_state();
  EXPECT_EQ(qs.now, SimTime::from_ms(9));
  EXPECT_EQ(qs.executed, 2u);

  Scheduler b;
  b.restore_quiescent(qs);
  EXPECT_EQ(b.now(), a.now());
  EXPECT_EQ(b.executed_events(), a.executed_events());
  EXPECT_TRUE(b.empty());

  // The restored clock drives subsequent scheduling: schedule_after lands
  // relative to the restored now, identically in both schedulers.
  SimTime fired_a;
  SimTime fired_b;
  a.schedule_after(SimTime::from_ms(3), [&] { fired_a = a.now(); });
  b.schedule_after(SimTime::from_ms(3), [&] { fired_b = b.now(); });
  a.run();
  b.run();
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(fired_b, SimTime::from_ms(12));
}

TEST(SchedulerPool, QuiescentStateThrowsWhilePending) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  EXPECT_THROW(s.quiescent_state(), std::logic_error);
  Scheduler other;
  other.schedule_at(SimTime::from_ms(1), [] {});
  Scheduler quiet;
  quiet.schedule_at(SimTime::from_ms(1), [] {});
  quiet.run();
  EXPECT_THROW(other.restore_quiescent(quiet.quiescent_state()), std::logic_error);
  h.cancel();
  s.run();
  EXPECT_NO_THROW(s.quiescent_state());
}

TEST(SchedulerPool, HandlesStaleAcrossQuiescentRestore) {
  Scheduler s;
  std::vector<EventHandle> old_handles;
  for (int i = 0; i < 10; ++i) {
    old_handles.push_back(s.schedule_after(SimTime::from_ms(1), [] {}));
    s.run();
  }
  const auto qs = s.quiescent_state();
  s.restore_quiescent(qs);
  // Handles minted before the restore stay stale: they must neither report
  // pending nor cancel events scheduled after the restore.
  int fired = 0;
  auto fresh = s.schedule_after(SimTime::from_ms(1), [&] { ++fired; });
  for (auto& h : old_handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // must be a no-op
  }
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace bgpsim::sim
