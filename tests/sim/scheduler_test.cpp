#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgpsim::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_ms(30));
}

TEST(Scheduler, SameTimeEventsFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelativeToNow) {
  Scheduler s;
  SimTime inner_fire;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_after(SimTime::from_ms(5), [&] { inner_fire = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner_fire, SimTime::from_ms(15));
}

TEST(Scheduler, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::from_ms(5), [] {}), std::logic_error);
}

TEST(Scheduler, SchedulingAtNowIsAllowed) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_at(s.now(), [&] { fired = true; });
  });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(SimTime::from_ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterRun) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
}

TEST(Scheduler, HandleReportsFiredEventsAsNotPending) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, RunUntilStopsAtLimit) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.run_until(SimTime::from_ms(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunReturnsTimeOfLastEvent) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(42), [] {});
  EXPECT_EQ(s.run(), SimTime::from_ms(42));
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(SimTime::from_ms(1), recurse);
  };
  s.schedule_at(SimTime::zero(), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::from_ms(4));
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ExecutedEventsExcludesCancelled) {
  Scheduler s;
  auto h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.schedule_at(SimTime::from_ms(2), [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Scheduler, CancelFromWithinEarlierEvent) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(SimTime::from_ms(20), [&] { fired = true; });
  s.schedule_at(SimTime::from_ms(10), [&] { h.cancel(); });
  s.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace bgpsim::sim
