#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace bgpsim::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, FactoryConversions) {
  EXPECT_EQ(SimTime::from_ms(25).ns(), 25'000'000);
  EXPECT_EQ(SimTime::from_us(3).ns(), 3'000);
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.25).to_seconds(), 2.25);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(30).to_millis(), 30.0);
}

TEST(SimTime, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::seconds(0.4e-9).ns(), 0);
  EXPECT_EQ(SimTime::seconds(0.6e-9).ns(), 1);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::from_ms(10);
  const auto b = SimTime::from_ms(3);
  EXPECT_EQ((a + b).ns(), 13'000'000);
  EXPECT_EQ((a - b).ns(), 7'000'000);
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimTime::from_ms(13));
}

TEST(SimTime, ScalingByDouble) {
  EXPECT_EQ((SimTime::seconds(2.0) * 0.75).ns(), 1'500'000'000);
  EXPECT_EQ((SimTime::from_ns(100) * 0.5).ns(), 50);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::from_ms(1), SimTime::from_ms(2));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
}

}  // namespace
}  // namespace bgpsim::sim
