#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bgpsim::sim {
namespace {

TEST(Rng, UniformRealInRange) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{2};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3}));
}

TEST(Rng, UniformTimeWithinBounds) {
  Rng rng{3};
  const auto lo = SimTime::from_ms(1);
  const auto hi = SimTime::from_ms(30);
  for (int i = 0; i < 1000; ++i) {
    const auto t = rng.uniform_time(lo, hi);
    EXPECT_GE(t, lo);
    EXPECT_LT(t, hi);
  }
}

TEST(Rng, JitterReducesByAtMostQuarter) {
  // RFC 1771 as applied in the paper: configured value scaled by U(0.75, 1).
  Rng rng{4};
  const auto base = SimTime::seconds(2.0);
  for (int i = 0; i < 1000; ++i) {
    const auto j = rng.jittered(base);
    EXPECT_GE(j, base * 0.75);
    EXPECT_LE(j, base);
  }
}

TEST(Rng, Determinism) {
  Rng a{77};
  Rng b{77};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng{5};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.bounded_pareto(1.5, 1, 100);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailedButMostlySmall) {
  Rng rng{6};
  int small = 0;
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.bounded_pareto(1.5, 1, 100);
    if (v <= 3) ++small;
    if (v >= 50) ++large;
  }
  EXPECT_GT(small, n / 2);  // most mass at the bottom
  EXPECT_GT(large, 0);      // but the tail is populated
}

TEST(Rng, BoundedParetoDegenerateRange) {
  Rng rng{7};
  EXPECT_EQ(rng.bounded_pareto(2.0, 5, 5), 5);
}

TEST(Rng, BoundedParetoRejectsBadBounds) {
  Rng rng{8};
  EXPECT_THROW(rng.bounded_pareto(1.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1.0, 10, 5), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{9};
  const std::vector<double> w{0.0, 10.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng{10};
  const std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng{11};
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{12};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{13};
  Rng child = a.fork();
  // The child must be deterministic given the parent seed.
  Rng b{13};
  Rng child2 = b.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.uniform_int(0, 1'000'000), child2.uniform_int(0, 1'000'000));
  }
}

}  // namespace
}  // namespace bgpsim::sim
