#include "harness/audit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::harness {
namespace {

using bgp::testing::deterministic_config;
using bgp::testing::line;

std::unique_ptr<bgp::Network> converged(const topo::Graph& g) {
  auto net = std::make_unique<bgp::Network>(
      g, deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  net->start();
  net->run_to_quiescence();
  return net;
}

TEST(Audit, PassesOnConvergedNetwork) {
  auto net = converged(line(5));
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST(Audit, PassesAfterFailureAndReconvergence) {
  auto net = converged(bgp::testing::clique(6));
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0, 1}); });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST(Audit, PassesOnPartitionedSurvivors) {
  auto net = converged(line(5));
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({2}); });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST(Audit, DetectsMidConvergenceInconsistency) {
  // Freeze the network mid-propagation: with a huge MRAI the star's leaves
  // have not yet learned each other's prefixes => "missing route".
  const auto g = bgp::testing::star(4);
  auto net = std::make_unique<bgp::Network>(
      g, deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(1000.0)), 1);
  net->start();
  net->scheduler().run_until(sim::SimTime::seconds(5.0));
  const auto verdict = audit_routes(*net);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("missing route"), std::string::npos);
}

TEST(Audit, PassesOnHierarchicalNetwork) {
  sim::Rng rng{3};
  topo::HierParams p;
  p.num_ases = 10;
  p.max_total_routers = 30;
  p.max_inter_as_degree = 5;
  const auto h = topo::hierarchical(p, rng);
  auto net = std::make_unique<bgp::Network>(
      h, deterministic_config(),
      std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  net->start();
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

}  // namespace
}  // namespace bgpsim::harness
