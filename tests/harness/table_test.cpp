#include "harness/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace bgpsim::harness {
namespace {

TEST(Table, PrintsHeaderSeparatorAndRows) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1.00"});
  t.add_row({"beta", "22.50"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAreAligned) {
  Table t{{"x", "longheader"}};
  t.add_row({"verylongcell", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is{os.str()};
  std::string header;
  std::string sep;
  std::string row;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not throw or crash
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, FmtFixesPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace bgpsim::harness
