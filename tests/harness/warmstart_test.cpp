// Warm-start identity (run from a snapshot == run that never stopped) and
// resumable-sweep journaling/recovery.
#include "harness/warmstart.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/parallel.hpp"
#include "harness/resume.hpp"

namespace bgpsim::harness {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.topology.n = 30;
  cfg.scheme = SchemeSpec::constant(0.5);
  cfg.failure_fraction = 0.10;
  cfg.seed = 3;
  return cfg;
}

/// Every simulated (deterministic) RunResult field; host timings excluded.
void expect_same_run(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.initial_convergence_s, b.initial_convergence_s) << what;
  EXPECT_EQ(a.convergence_delay_s, b.convergence_delay_s) << what;
  EXPECT_EQ(a.recovery_delay_s, b.recovery_delay_s) << what;
  EXPECT_EQ(a.messages_after_recovery, b.messages_after_recovery) << what;
  EXPECT_EQ(a.messages_after_failure, b.messages_after_failure) << what;
  EXPECT_EQ(a.adverts_after_failure, b.adverts_after_failure) << what;
  EXPECT_EQ(a.withdrawals_after_failure, b.withdrawals_after_failure) << what;
  EXPECT_EQ(a.messages_total, b.messages_total) << what;
  EXPECT_EQ(a.messages_processed, b.messages_processed) << what;
  EXPECT_EQ(a.batch_dropped, b.batch_dropped) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.routers, b.routers) << what;
  EXPECT_EQ(a.failed_routers, b.failed_routers) << what;
  EXPECT_EQ(a.routes_valid, b.routes_valid) << what;
  EXPECT_EQ(a.audit_error, b.audit_error) << what;
}

TEST(WarmStart, IdenticalToColdAcrossSchemes) {
  struct Case {
    const char* name;
    SchemeSpec scheme;
    bool damping = false;
    bool recovery = false;
  };
  const std::vector<Case> cases{
      {"constant", SchemeSpec::constant(0.5)},
      {"degree", SchemeSpec::degree_dependent(0.5, 2.25)},
      {"dynamic", SchemeSpec::dynamic_mrai()},
      {"extent", SchemeSpec::extent_mrai()},
      {"batching", SchemeSpec::constant(0.5, /*batch=*/true)},
      {"damping", SchemeSpec::constant(0.5), /*damping=*/true},
      {"recovery", SchemeSpec::dynamic_mrai(), /*damping=*/false, /*recovery=*/true},
  };
  for (const Case& c : cases) {
    ExperimentConfig cfg = base_config();
    cfg.scheme = c.scheme;
    cfg.bgp.damping.enabled = c.damping;
    cfg.measure_recovery = c.recovery;
    const RunResult cold = run_experiment(cfg);
    const Snapshot snap = converge_snapshot(cfg);
    const RunResult warm = run_experiment_from(cfg, snap);
    expect_same_run(cold, warm, c.name);
    EXPECT_GT(warm.events, 0u) << c.name;
  }
}

TEST(WarmStart, SnapshotSharedAcrossFailureScenariosOnly) {
  const ExperimentConfig cfg = base_config();
  ExperimentConfig other_fraction = cfg;
  other_fraction.failure_fraction = 0.25;
  ExperimentConfig other_recovery = cfg;
  other_recovery.measure_recovery = true;
  ExperimentConfig other_seed = cfg;
  other_seed.seed = 4;
  ExperimentConfig other_scheme = cfg;
  other_scheme.scheme = SchemeSpec::constant(2.25);
  ExperimentConfig other_bgp = cfg;
  other_bgp.bgp.jitter_timers = false;

  // Scenario-only changes share the converged state...
  EXPECT_EQ(converged_state_digest(cfg), converged_state_digest(other_fraction));
  EXPECT_EQ(converged_state_digest(cfg), converged_state_digest(other_recovery));
  // ...anything touching the converged state does not.
  EXPECT_NE(converged_state_digest(cfg), converged_state_digest(other_seed));
  EXPECT_NE(converged_state_digest(cfg), converged_state_digest(other_scheme));
  EXPECT_NE(converged_state_digest(cfg), converged_state_digest(other_bgp));
  // The run digest distinguishes scenarios on top of the shared state.
  EXPECT_NE(run_digest(cfg), run_digest(other_fraction));
  EXPECT_NE(run_digest(cfg), run_digest(other_recovery));

  // And a fraction-only sibling really can run from cfg's snapshot.
  const Snapshot snap = converge_snapshot(cfg);
  const RunResult cold = run_experiment(other_fraction);
  const RunResult warm = run_experiment_from(other_fraction, snap);
  expect_same_run(cold, warm, "shared snapshot, different fraction");
}

TEST(WarmStart, MismatchedSnapshotIsRejected) {
  const ExperimentConfig cfg = base_config();
  ExperimentConfig other = cfg;
  other.seed = 99;
  const Snapshot snap = converge_snapshot(cfg);
  EXPECT_THROW(run_experiment_from(other, snap), std::runtime_error);
}

TEST(WarmStart, SweepIdenticalToColdSweep) {
  // 2 schemes x 2 fractions x 2 seeds: 8 runs, 4 snapshot groups.
  std::vector<ExperimentConfig> configs;
  for (const double frac : {0.05, 0.15}) {
    for (const std::uint64_t seed : {3ull, 4ull}) {
      for (const bool dynamic : {false, true}) {
        ExperimentConfig cfg = base_config();
        cfg.failure_fraction = frac;
        cfg.seed = seed;
        if (dynamic) cfg.scheme = SchemeSpec::dynamic_mrai();
        configs.push_back(cfg);
      }
    }
  }
  const auto cold = run_sweep(configs);
  const auto warm = run_sweep_warm(configs);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_same_run(cold[i], warm[i], "run " + std::to_string(i));
  }
}

TEST(WarmStart, FileRoundTripSnapshotRunsIdentically) {
  const ExperimentConfig cfg = base_config();
  const RunResult cold = run_experiment(cfg);
  Snapshot snap = converge_snapshot(cfg);
  const std::string path = ::testing::TempDir() + "warmstart_test.bgck";
  bgp::write_checkpoint_file(path, snap.checkpoint);
  Snapshot loaded;
  loaded.checkpoint = bgp::read_checkpoint_file(path);
  std::remove(path.c_str());
  const RunResult warm = run_experiment_from(cfg, loaded);
  expect_same_run(cold, warm, "file round-trip");
}

// --- Resumable sweeps -----------------------------------------------------

std::vector<ExperimentConfig> small_grid() {
  std::vector<ExperimentConfig> configs;
  for (const double frac : {0.05, 0.10, 0.15}) {
    for (const std::uint64_t seed : {3ull, 4ull}) {
      ExperimentConfig cfg = base_config();
      cfg.failure_fraction = frac;
      cfg.seed = seed;
      configs.push_back(cfg);
    }
  }
  return configs;
}

std::string temp_journal(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> journal_lines(const std::string& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(Resumable, FreshSweepMatchesRunSweepAndJournalsEveryRun) {
  const auto configs = small_grid();
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_fresh.jsonl");
  const auto expected = run_sweep(configs);
  const auto got = run_sweep_resumable(configs, opt);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same_run(expected[i], got[i], "run " + std::to_string(i));
  }
  EXPECT_EQ(journal_lines(opt.journal_path).size(), configs.size());
  std::remove(opt.journal_path.c_str());
}

TEST(Resumable, ResumeExecutesOnlyMissingRuns) {
  const auto configs = small_grid();
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_partial.jsonl");
  const auto expected = run_sweep_resumable(configs, opt);

  // Simulate a mid-grid kill: keep the first 2 journal lines, drop the rest
  // and leave a torn (half-written) final line behind.
  const auto lines = journal_lines(opt.journal_path);
  ASSERT_EQ(lines.size(), configs.size());
  {
    std::ofstream out{opt.journal_path, std::ios::trunc};
    out << lines[0] << "\n" << lines[1] << "\n";
    out << lines[2].substr(0, lines[2].size() / 2);  // torn write
  }

  // Resume must re-run exactly the configs without a completed entry (the
  // torn line does not count), and reproduce the full sweep bit-identically.
  std::atomic<std::size_t> executed{0};
  auto counted = configs;
  for (auto& cfg : counted) {
    cfg.instrument = [&executed](bgp::Network&, std::uint64_t) { ++executed; };
  }
  opt.resume = true;
  const auto got = run_sweep_resumable(counted, opt);
  EXPECT_EQ(executed.load(), configs.size() - 2);
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same_run(expected[i], got[i], "run " + std::to_string(i));
  }
  // The journal is now complete; a further resume re-runs nothing.
  executed = 0;
  const auto again = run_sweep_resumable(counted, opt);
  EXPECT_EQ(executed.load(), 0u);
  for (std::size_t i = 0; i < again.size(); ++i) {
    expect_same_run(expected[i], again[i], "run " + std::to_string(i));
  }
  std::remove(opt.journal_path.c_str());
}

TEST(Resumable, FailedEntriesAreRetriedOnResume) {
  const auto configs = small_grid();
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_failed.jsonl");
  run_sweep_resumable(configs, opt);
  const auto expected = run_sweep(configs);

  // Rewrite run 0's entry as a recorded failure; resume must retry it (and
  // only it) and come back bit-identical.
  auto lines = journal_lines(opt.journal_path);
  ASSERT_EQ(lines.size(), configs.size());
  {
    std::ofstream out{opt.journal_path, std::ios::trunc};
    char buf[128];
    std::snprintf(buf, sizeof buf, "{\"run\":0,\"digest\":\"%016llx\",\"status\":\"failed\",\"error\":\"killed\"}",
                  static_cast<unsigned long long>(run_digest(configs[0])));
    out << buf << "\n";
    for (std::size_t i = 1; i < lines.size(); ++i) out << lines[i] << "\n";
  }
  std::atomic<std::size_t> executed{0};
  auto counted = configs;
  for (auto& cfg : counted) {
    cfg.instrument = [&executed](bgp::Network&, std::uint64_t) { ++executed; };
  }
  opt.resume = true;
  const auto got = run_sweep_resumable(counted, opt);
  EXPECT_EQ(executed.load(), 1u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same_run(expected[i], got[i], "run " + std::to_string(i));
  }
  std::remove(opt.journal_path.c_str());
}

TEST(Resumable, ForeignJournalEntriesAreIgnored) {
  const auto configs = small_grid();
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_foreign.jsonl");
  run_sweep_resumable(configs, opt);

  // A journal produced by a *different* grid (digests differ) must not
  // satisfy any of this grid's runs.
  auto other = configs;
  for (auto& cfg : other) cfg.pre_failure_gap = sim::SimTime::seconds(2.0);
  std::atomic<std::size_t> executed{0};
  for (auto& cfg : other) {
    cfg.instrument = [&executed](bgp::Network&, std::uint64_t) { ++executed; };
  }
  opt.resume = true;
  run_sweep_resumable(other, opt);
  EXPECT_EQ(executed.load(), other.size());
  std::remove(opt.journal_path.c_str());
}

TEST(Resumable, WarmModeMatchesCold) {
  const auto configs = small_grid();
  const auto expected = run_sweep(configs);
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_warm.jsonl");
  opt.warm = true;
  const auto got = run_sweep_resumable(configs, opt);
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same_run(expected[i], got[i], "run " + std::to_string(i));
  }
  std::remove(opt.journal_path.c_str());
}

TEST(Resumable, RequiresJournalPath) {
  EXPECT_THROW(run_sweep_resumable(small_grid(), ResumeOptions{}), std::invalid_argument);
}

TEST(Resumable, PersistentlyFailingRunThrowsButJournalsTheRest) {
  auto configs = small_grid();
  // Config 2 is invalid: policy routing on a hierarchical topology throws
  // inside run_experiment on every attempt.
  configs[2].topology.kind = TopologySpec::Kind::kHierarchical;
  configs[2].topology.policy_routing = true;
  ResumeOptions opt;
  opt.journal_path = temp_journal("resume_throw.jsonl");
  opt.max_attempts = 2;
  EXPECT_THROW(run_sweep_resumable(configs, opt), std::runtime_error);
  // Every other run was journaled as done; the bad one as failed.
  const auto lines = journal_lines(opt.journal_path);
  EXPECT_EQ(lines.size(), configs.size());
  std::size_t failed = 0;
  for (const auto& line : lines) {
    if (line.find("\"status\":\"failed\"") != std::string::npos) ++failed;
  }
  EXPECT_EQ(failed, 1u);
  std::remove(opt.journal_path.c_str());
}

}  // namespace
}  // namespace bgpsim::harness
