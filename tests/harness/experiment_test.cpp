#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace bgpsim::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.topology.n = 40;
  cfg.scheme = SchemeSpec::constant(0.5);
  cfg.failure_fraction = 0.10;
  cfg.seed = 1;
  return cfg;
}

TEST(Experiment, ProducesSaneResult) {
  const auto r = run_experiment(small_config());
  EXPECT_EQ(r.routers, 40u);
  EXPECT_EQ(r.failed_routers, 4u);
  EXPECT_GT(r.initial_convergence_s, 0.0);
  EXPECT_GT(r.convergence_delay_s, 0.0);
  EXPECT_GT(r.messages_after_failure, 0u);
  EXPECT_GE(r.messages_total, r.messages_after_failure);
  EXPECT_GT(r.withdrawals_after_failure, 0u);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
}

TEST(Experiment, DeterministicGivenSeed) {
  const auto a = run_experiment(small_config());
  const auto b = run_experiment(small_config());
  EXPECT_EQ(a.convergence_delay_s, b.convergence_delay_s);
  EXPECT_EQ(a.messages_after_failure, b.messages_after_failure);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.initial_convergence_s, b.initial_convergence_s);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = run_experiment(cfg);
  cfg.seed = 2;
  const auto b = run_experiment(cfg);
  // Different topology and timing draws: message counts almost surely
  // differ (they use different graphs).
  EXPECT_NE(a.messages_after_failure, b.messages_after_failure);
}

TEST(Experiment, ZeroFailureFractionMeansNoPostFailureActivity) {
  auto cfg = small_config();
  cfg.failure_fraction = 0.0;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.failed_routers, 0u);
  EXPECT_EQ(r.convergence_delay_s, 0.0);
  EXPECT_EQ(r.messages_after_failure, 0u);
  EXPECT_TRUE(r.routes_valid);
}

TEST(Experiment, BatchingSchemeReportsDrops) {
  auto cfg = small_config();
  cfg.scheme = SchemeSpec::constant(0.5, /*batch=*/true);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  // 10% failure at MRAI 0.5 s overloads nodes; batching must find stale
  // updates to delete.
  EXPECT_GT(r.batch_dropped, 0u);
}

TEST(Experiment, DynamicSchemeRuns) {
  auto cfg = small_config();
  cfg.scheme = SchemeSpec::dynamic_mrai();
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_GT(r.convergence_delay_s, 0.0);
}

TEST(Experiment, DegreeDependentSchemeRuns) {
  auto cfg = small_config();
  cfg.scheme = SchemeSpec::degree_dependent(0.5, 2.25, /*threshold=*/5);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
}

TEST(Experiment, HierarchicalTopologyRuns) {
  ExperimentConfig cfg;
  cfg.topology.kind = TopologySpec::Kind::kHierarchical;
  cfg.topology.hier.num_ases = 15;
  cfg.topology.hier.max_total_routers = 50;
  cfg.topology.hier.max_inter_as_degree = 6;
  cfg.scheme = SchemeSpec::constant(0.5);
  cfg.failure_fraction = 0.10;
  const auto r = run_experiment(cfg);
  EXPECT_GE(r.routers, 15u);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
}

TEST(Experiment, AllFlatGeneratorsRun) {
  for (const auto kind :
       {TopologySpec::Kind::kSkewed, TopologySpec::Kind::kInternetLike,
        TopologySpec::Kind::kWaxman, TopologySpec::Kind::kBarabasiAlbert,
        TopologySpec::Kind::kGlp}) {
    auto cfg = small_config();
    cfg.topology.kind = kind;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.routes_valid) << "kind " << static_cast<int>(kind) << ": " << r.audit_error;
  }
}

TEST(Stats, ComputesMoments) {
  const auto s = Stats::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Stats, EmptyIsZero) {
  const auto s = Stats::of({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(RunAveraged, AggregatesAcrossSeeds) {
  auto cfg = small_config();
  cfg.topology.n = 30;
  const auto a = run_averaged(cfg, 3);
  EXPECT_EQ(a.runs.size(), 3u);
  EXPECT_GE(a.delay.max, a.delay.mean);
  EXPECT_LE(a.delay.min, a.delay.mean);
  EXPECT_EQ(a.valid_fraction, 1.0);
}

TEST(BenchSeeds, ReadsEnvironment) {
  unsetenv("BGPSIM_SEEDS");
  EXPECT_EQ(bench_seeds(5), 5u);
  setenv("BGPSIM_SEEDS", "7", 1);
  EXPECT_EQ(bench_seeds(5), 7u);
  setenv("BGPSIM_SEEDS", "garbage", 1);
  EXPECT_EQ(bench_seeds(5), 5u);
  unsetenv("BGPSIM_SEEDS");
}

}  // namespace
}  // namespace bgpsim::harness
