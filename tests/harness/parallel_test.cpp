// Tests for the parallel harness (thread pool + run_sweep/run_averaged
// determinism) and the scheduler's pooled-slot handle semantics that the
// parallel rewrite must preserve.
#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/warmstart.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.topology.n = 30;
  cfg.scheme = SchemeSpec::constant(0.5);
  cfg.failure_fraction = 0.10;
  cfg.seed = 1;
  return cfg;
}

bool same_run(const RunResult& a, const RunResult& b) {
  return a.initial_convergence_s == b.initial_convergence_s &&
         a.convergence_delay_s == b.convergence_delay_s &&
         a.recovery_delay_s == b.recovery_delay_s &&
         a.messages_after_recovery == b.messages_after_recovery &&
         a.messages_after_failure == b.messages_after_failure &&
         a.adverts_after_failure == b.adverts_after_failure &&
         a.withdrawals_after_failure == b.withdrawals_after_failure &&
         a.messages_total == b.messages_total &&
         a.messages_processed == b.messages_processed &&
         a.batch_dropped == b.batch_dropped && a.events == b.events &&
         a.routers == b.routers && a.failed_routers == b.failed_routers &&
         a.routes_valid == b.routes_valid && a.audit_error == b.audit_error;
}

/// Restores BGPSIM_THREADS on scope exit so tests cannot leak the setting.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("BGPSIM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("BGPSIM_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      setenv("BGPSIM_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("BGPSIM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(HarnessThreads, ReadsEnvironment) {
  {
    ScopedThreads t{"4"};
    EXPECT_EQ(harness_threads(), 4u);
  }
  {
    ScopedThreads t{"1"};
    EXPECT_EQ(harness_threads(), 1u);
  }
  {
    ScopedThreads t{"garbage"};
    EXPECT_GE(harness_threads(), 1u);  // falls back to hardware_concurrency
  }
}

TEST(HarnessThreads, RejectsPartialAndOutOfRangeTokens) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw > 0 ? hw_raw : 1;
  // The whole token must parse: strtol's accepted prefix ("8" of "8x") must
  // NOT win. Same for empty, sign-only and non-positive values.
  for (const char* bad : {"8x", "", " ", "-", "0", "-3", "2.5"}) {
    ScopedThreads t{bad};
    EXPECT_EQ(harness_threads(), hw) << "token \"" << bad << "\"";
  }
  {
    // Overflowing long must not wrap into some huge/garbage degree.
    ScopedThreads t{"99999999999999999999999"};
    EXPECT_EQ(harness_threads(), hw);
  }
  {
    // In-range but absurd values are clamped to the 512-thread cap.
    ScopedThreads t{"100000"};
    EXPECT_EQ(harness_threads(), 512u);
  }
  {
    ScopedThreads t{"512"};
    EXPECT_EQ(harness_threads(), 512u);
  }
}

TEST(ThreadPool, RegionsParallelizeAgainAfterSpawnFailure) {
  auto& pool = ThreadPool::instance();
  // Force ensure_workers to actually spawn (the pool persists across tests,
  // so ask for more workers than it already has), with a hook that makes
  // the spawn throw -- the thread-creation-failure path.
  const std::size_t threads = pool.worker_count() + 3;
  pool.set_spawn_hook([] { throw std::runtime_error{"spawn failed"}; });
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.for_each_index(64, threads, [&](std::size_t) { ++ran; }),
               std::runtime_error);
  pool.set_spawn_hook({});

  // Regression: the failed region used to leak in_region=true, so every
  // later region took the can't-nest serial fallback -- which never calls
  // ensure_workers. A counting hook distinguishes the two paths without
  // depending on thread scheduling.
  std::atomic<std::size_t> spawns{0};
  pool.set_spawn_hook([&] { ++spawns; });
  std::atomic<std::size_t> count{0};
  const std::size_t threads2 = pool.worker_count() + 2;
  pool.for_each_index(64, threads2, [&](std::size_t) { ++count; });
  pool.set_spawn_hook({});
  EXPECT_EQ(count.load(), 64u);
  EXPECT_GT(spawns.load(), 0u) << "region ran in the serial fallback: in_region leaked";
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::instance().for_each_index(
      kN, 4, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialFallbackRunsInOrder) {
  std::vector<std::size_t> order;
  ThreadPool::instance().for_each_index(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  try {
    ThreadPool::instance().for_each_index(100, 4, [&](std::size_t i) {
      if (i == 7 || i == 93) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ThreadPool, UsableAgainAfterException) {
  try {
    ThreadPool::instance().for_each_index(4, 4,
                                          [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> count{0};
  ThreadPool::instance().for_each_index(50, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50u);
}

TEST(RunSweep, ParallelIdenticalToSerial) {
  // Three distinct configs so mixed results would be detected.
  std::vector<ExperimentConfig> configs(3, small_config());
  configs[1].seed = 17;
  configs[2].failure_fraction = 0.05;

  std::vector<RunResult> serial;
  std::vector<RunResult> parallel;
  {
    ScopedThreads t{"1"};
    serial = run_sweep(configs);
  }
  {
    ScopedThreads t{"4"};
    parallel = run_sweep(configs);
  }
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(same_run(serial[i], parallel[i])) << "config " << i;
  }
  // And the configs really were distinct.
  EXPECT_FALSE(same_run(serial[0], serial[1]));
}

TEST(RunAveraged, ParallelIdenticalToSerial) {
  const auto cfg = small_config();
  AveragedResult serial;
  AveragedResult parallel;
  {
    ScopedThreads t{"1"};
    serial = run_averaged(cfg, 4);
  }
  {
    ScopedThreads t{"4"};
    parallel = run_averaged(cfg, 4);
  }
  ASSERT_EQ(serial.runs.size(), 4u);
  ASSERT_EQ(parallel.runs.size(), 4u);
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_TRUE(same_run(serial.runs[i], parallel.runs[i])) << "seed replica " << i;
  }
  EXPECT_EQ(serial.delay.mean, parallel.delay.mean);
  EXPECT_EQ(serial.delay.stddev, parallel.delay.stddev);
  EXPECT_EQ(serial.messages.mean, parallel.messages.mean);
  EXPECT_EQ(serial.valid_fraction, parallel.valid_fraction);
}

TEST(RunSweep, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(run_sweep({}).empty());
}

TEST(RunSweep, DynamicSchemeParallelIdenticalToSerial) {
  // Each run must build its own DynamicMrai: a shared instance would trip
  // the controller's thread-ownership assertion (and, before that existed,
  // silently corrupt the per-node levels). Runs under TSan in CI.
  std::vector<ExperimentConfig> configs(4, small_config());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].scheme = SchemeSpec::dynamic_mrai();
    configs[i].seed = 10 + i;
  }
  std::vector<RunResult> serial;
  std::vector<RunResult> parallel;
  {
    ScopedThreads t{"1"};
    serial = run_sweep(configs);
  }
  {
    ScopedThreads t{"4"};
    parallel = run_sweep(configs);
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(same_run(serial[i], parallel[i])) << "config " << i;
  }
}

TEST(RunSweep, WarmSweepParallelIdenticalToSerial) {
  // Warm-start grouping (snapshot fan-out) under parallel execution; runs
  // under TSan in CI like the other RunSweep tests.
  std::vector<ExperimentConfig> configs(4, small_config());
  configs[1].failure_fraction = 0.20;
  configs[2].seed = 17;
  configs[3].scheme = SchemeSpec::dynamic_mrai();
  std::vector<RunResult> serial;
  std::vector<RunResult> parallel;
  {
    ScopedThreads t{"1"};
    serial = run_sweep_warm(configs);
  }
  {
    ScopedThreads t{"4"};
    parallel = run_sweep_warm(configs);
  }
  const auto cold = run_sweep(configs);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(same_run(serial[i], parallel[i])) << "config " << i;
    EXPECT_TRUE(same_run(cold[i], serial[i])) << "config " << i;
  }
}

}  // namespace
}  // namespace bgpsim::harness

namespace bgpsim::sim {
namespace {

// --- Scheduler event-pool semantics -------------------------------------

TEST(SchedulerPool, HandleToRecycledSlotIsStale) {
  Scheduler sched;
  int fired = 0;
  // First event occupies slot 0; after it fires the slot is recycled.
  auto h1 = sched.schedule_after(SimTime::seconds(1.0), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h1.pending());

  // Second event reuses the recycled slot but with a bumped generation, so
  // the stale handle must neither report pending nor cancel the new event.
  auto h2 = sched.schedule_after(SimTime::seconds(1.0), [&] { ++fired; });
  EXPECT_TRUE(h2.pending());
  EXPECT_FALSE(h1.pending());
  h1.cancel();  // stale: must be a no-op
  EXPECT_TRUE(h2.pending());
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerPool, CancelAfterRecycleDoesNotKillNewEvent) {
  Scheduler sched;
  std::vector<int> fired;
  std::vector<EventHandle> old_handles;
  // Churn through many schedule/fire cycles, keeping every old handle.
  for (int round = 0; round < 50; ++round) {
    old_handles.push_back(
        sched.schedule_after(SimTime::seconds(1.0), [&fired, round] { fired.push_back(round); }));
    sched.run();
  }
  EXPECT_EQ(fired.size(), 50u);

  // Cancelling every historical handle must not touch a freshly scheduled
  // event, whichever recycled slot it landed in.
  auto fresh = sched.schedule_after(SimTime::seconds(1.0), [&fired] { fired.push_back(-1); });
  for (auto& h : old_handles) h.cancel();
  EXPECT_TRUE(fresh.pending());
  sched.run();
  ASSERT_EQ(fired.size(), 51u);
  EXPECT_EQ(fired.back(), -1);
}

TEST(SchedulerPool, PendingEventsAccounting) {
  Scheduler sched;
  EXPECT_EQ(sched.pending_events(), 0u);
  auto h1 = sched.schedule_after(SimTime::seconds(1.0), [] {});
  auto h2 = sched.schedule_after(SimTime::seconds(2.0), [] {});
  auto h3 = sched.schedule_after(SimTime::seconds(3.0), [] {});
  EXPECT_EQ(sched.pending_events(), 3u);

  // Lazy cancellation: the heap entry stays until popped, but the count
  // drops as soon as the pop skips it.
  h2.cancel();
  sched.run_until(SimTime::seconds(2.5));
  EXPECT_EQ(sched.pending_events(), 1u);
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(h2.pending());
  EXPECT_TRUE(h3.pending());

  sched.run();
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.executed_events(), 2u);  // cancelled event not counted
}

TEST(SchedulerPool, SlotsAreRecycledNotGrown) {
  Scheduler sched;
  // Sequential schedule/fire cycles keep reusing the same slot, so the pool
  // must stay at its initial chunk size no matter how many events run.
  for (int i = 0; i < 10000; ++i) {
    sched.schedule_after(SimTime::seconds(1.0), [] {});
    sched.run();
  }
  EXPECT_EQ(sched.executed_events(), 10000u);
  EXPECT_LE(sched.pool_slots(), 1024u);
}

}  // namespace
}  // namespace bgpsim::sim
