// Per-prefix convergence analysis: the Tdown/Tup asymmetry made visible.
#include "harness/prefix_stats.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::harness {
namespace {

using bgp::testing::clique;
using bgp::testing::deterministic_config;

TEST(PrefixStats, CountsRibChangesSinceEpoch) {
  PrefixConvergenceSink sink;
  bgp::TraceEvent ev;
  ev.kind = bgp::TraceEvent::Kind::kRibChanged;
  ev.prefix = 7;
  ev.at = sim::SimTime::seconds(1.0);
  sink.set_epoch(sim::SimTime::seconds(2.0));
  sink.on_event(ev);  // before the epoch: ignored
  EXPECT_EQ(sink.rib_changes(7), 0u);
  ev.at = sim::SimTime::seconds(3.0);
  sink.on_event(ev);
  ev.at = sim::SimTime::seconds(5.0);
  sink.on_event(ev);
  EXPECT_EQ(sink.rib_changes(7), 2u);
  EXPECT_DOUBLE_EQ(sink.convergence_delay_s(7), 3.0);
  EXPECT_EQ(sink.touched_prefixes(), std::vector<bgp::Prefix>{7});
}

TEST(PrefixStats, IgnoresOtherEventKinds) {
  PrefixConvergenceSink sink;
  bgp::TraceEvent ev;
  ev.kind = bgp::TraceEvent::Kind::kUpdateSent;
  ev.prefix = 3;
  ev.at = sim::SimTime::seconds(1.0);
  sink.on_event(ev);
  EXPECT_TRUE(sink.touched_prefixes().empty());
}

TEST(PrefixStats, DeadOriginPrefixIsTheSlowest) {
  // In a clique withdrawal with rate-limited withdrawals the dead prefix
  // undergoes MRAI-paced exploration while the survivors' prefixes are
  // untouched: the slowest prefix must be the dead one (Tdown >> rest).
  auto cfg = deterministic_config();
  cfg.mrai_applies_to_withdrawals = true;
  const auto g = clique(6);
  bgp::Network net{g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(1.0)), 3};
  PrefixConvergenceSink sink;
  net.set_trace_sink(&sink);
  net.start();
  net.run_to_quiescence();
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  sink.reset();
  sink.set_epoch(t_fail);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  const auto [slowest_prefix, delay] = sink.slowest();
  EXPECT_EQ(slowest_prefix, 0u);
  EXPECT_GT(delay, 1.0);
  // And it matches the network-wide convergence delay.
  EXPECT_NEAR(delay, (net.metrics().last_rib_change - t_fail).to_seconds(), 1e-9);
  // Only the dead prefix was disturbed.
  EXPECT_EQ(sink.touched_prefixes(), std::vector<bgp::Prefix>{0});
}

TEST(PrefixStats, RecoveryTouchesRecoveredPrefixFast) {
  auto cfg = deterministic_config();
  const auto g = clique(6);
  bgp::Network net{g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(1.0)), 3};
  PrefixConvergenceSink sink;
  net.set_trace_sink(&sink);
  net.start();
  net.run_to_quiescence();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  const auto t_rec = net.scheduler().now() + sim::SimTime::seconds(1.0);
  sink.reset();
  sink.set_epoch(t_rec);
  net.scheduler().schedule_at(t_rec, [&] { net.recover_nodes({0}); });
  net.run_to_quiescence();
  // Tup: the recovered prefix reappears everywhere in ~2 propagation hops.
  EXPECT_GT(sink.rib_changes(0), 0u);
  EXPECT_LT(sink.convergence_delay_s(0), 1.0);
  EXPECT_GT(sink.mean_delay_s(), 0.0);
}

}  // namespace
}  // namespace bgpsim::harness
