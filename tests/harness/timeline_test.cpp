#include "harness/timeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "failure/failure.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::harness {
namespace {

using bgp::testing::deterministic_config;

TEST(Timeline, SamplesUntilQuiescenceAndStops) {
  const auto g = bgp::testing::line(4);
  bgp::Network net{g, deterministic_config(),
                   std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(2.0)), 1};
  net.start();
  TimelineRecorder rec{net, sim::SimTime::seconds(1.0)};
  rec.start();
  net.run_to_quiescence();
  ASSERT_FALSE(rec.samples().empty());
  // Samples are evenly spaced and strictly increasing in time.
  for (std::size_t i = 1; i < rec.samples().size(); ++i) {
    EXPECT_NEAR(rec.samples()[i].t_seconds - rec.samples()[i - 1].t_seconds, 1.0, 1e-9);
  }
  // The recorder stopped itself: the run terminated (we got here) and the
  // last sample is within one interval of the last event.
}

TEST(Timeline, IntervalDeltasSumToTotals) {
  const auto g = bgp::testing::clique(5);
  bgp::Network net{g, deterministic_config(),
                   std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  TimelineRecorder rec{net, sim::SimTime::seconds(0.5)};
  rec.start();
  net.run_to_quiescence();
  std::uint64_t sent = 0;
  std::uint64_t rib = 0;
  for (const auto& s : rec.samples()) {
    sent += s.updates_sent;
    rib += s.rib_changes;
  }
  // Everything after recorder start is covered by samples (the recorder
  // started at t=0 alongside origination).
  EXPECT_EQ(sent, net.metrics().updates_sent);
  EXPECT_EQ(rib, net.metrics().rib_changes);
}

TEST(Timeline, DetectsOverloadAfterFailure) {
  // A star hub bombarded by teardown + re-advertisement work shows a
  // non-zero queue at some sample when processing is slow.
  auto cfg = deterministic_config();
  cfg.proc_min = sim::SimTime::from_ms(50);
  cfg.proc_max = sim::SimTime::from_ms(50);
  const auto g = bgp::testing::clique(8);
  bgp::Network net{g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                 [&] { net.fail_nodes({0, 1, 2}); });
  TimelineRecorder rec{net, sim::SimTime::seconds(0.25),
                       /*overload_threshold=*/sim::SimTime::from_ms(100)};
  rec.start();
  net.run_to_quiescence();
  EXPECT_GT(rec.peak_queue(), 0u);
  EXPECT_GT(rec.peak_interval_updates(), 0u);
}

TEST(Timeline, PrintElidesLongSeries) {
  const auto g = bgp::testing::line(3);
  bgp::Network net{g, deterministic_config(),
                   std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(30.0)), 1};
  net.start();
  TimelineRecorder rec{net, sim::SimTime::seconds(0.5)};
  rec.start();
  net.run_to_quiescence();
  ASSERT_GT(rec.samples().size(), 8u);
  std::ostringstream os;
  rec.print(os, 8);
  EXPECT_NE(os.str().find("elided"), std::string::npos);
  std::ostringstream full;
  rec.print(full, 100000);
  EXPECT_EQ(full.str().find("elided"), std::string::npos);
}

}  // namespace
}  // namespace bgpsim::harness
