#include "harness/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace bgpsim::harness {
namespace {

ExperimentConfig small_config(std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topology.n = 30;
  cfg.scheme = SchemeSpec::constant(0.5);
  cfg.seed = seed;
  return cfg;
}

TEST(Hooks, FireInOrderWithTheNetworkAlive) {
  std::vector<std::string> log;
  auto cfg = small_config();
  cfg.measure_recovery = true;
  cfg.instrument = [&](bgp::Network& net, std::uint64_t seed) {
    EXPECT_EQ(seed, 1u);
    EXPECT_EQ(net.size(), 30u);
    log.push_back("instrument");
  };
  cfg.on_phase = [&](RunPhase phase) {
    switch (phase) {
      case RunPhase::kColdStart:
        log.push_back("phase:cold");
        break;
      case RunPhase::kFailure:
        log.push_back("phase:fail");
        break;
      case RunPhase::kRecovery:
        log.push_back("phase:recover");
        break;
    }
  };
  cfg.on_complete = [&](bgp::Network& net, std::uint64_t seed) {
    EXPECT_EQ(seed, 1u);
    EXPECT_EQ(net.size(), 30u);
    log.push_back("complete");
  };

  const auto result = run_experiment(cfg);
  EXPECT_TRUE(result.routes_valid) << result.audit_error;
  const std::vector<std::string> want = {"instrument", "phase:cold", "phase:fail",
                                         "phase:recover", "complete"};
  EXPECT_EQ(log, want);
}

TEST(Hooks, DoNotChangeTheResult) {
  auto plain = small_config();
  auto hooked = small_config();
  hooked.instrument = [](bgp::Network&, std::uint64_t) {};
  hooked.on_phase = [](RunPhase) {};
  hooked.on_complete = [](bgp::Network&, std::uint64_t) {};
  const auto a = run_experiment(plain);
  const auto b = run_experiment(hooked);
  EXPECT_EQ(a.convergence_delay_s, b.convergence_delay_s);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.events, b.events);
}

TEST(PhaseTimings, AreFilledAndConsistent) {
  auto cfg = small_config();
  cfg.measure_recovery = true;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.timing.total_s, 0.0);
  EXPECT_GT(r.timing.converge_s, 0.0);
  EXPECT_GT(r.timing.failure_s, 0.0);
  EXPECT_GE(r.timing.build_s, 0.0);
  // The phases partition the run (audit + build included), so their sum
  // cannot exceed the total.
  const double parts = r.timing.build_s + r.timing.converge_s + r.timing.failure_s +
                       r.timing.recovery_s + r.timing.audit_s;
  EXPECT_LE(parts, r.timing.total_s + 1e-6);
}

TEST(SweepProfile, MatchesRunSweepAndAggregates) {
  std::vector<ExperimentConfig> cfgs;
  for (std::uint64_t s = 1; s <= 4; ++s) cfgs.push_back(small_config(s));

  const auto plain = run_sweep(cfgs);
  SweepProfile profile;
  const auto profiled = run_sweep_profiled(cfgs, profile);

  ASSERT_EQ(profiled.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(profiled[i].convergence_delay_s, plain[i].convergence_delay_s);
    EXPECT_EQ(profiled[i].messages_total, plain[i].messages_total);
    EXPECT_EQ(profiled[i].events, plain[i].events);
  }

  EXPECT_EQ(profile.runs, cfgs.size());
  EXPECT_GT(profile.threads, 0u);
  EXPECT_GT(profile.wall_s, 0.0);
  EXPECT_GT(profile.busy_s, 0.0);
  std::uint64_t events = 0;
  for (const auto& r : plain) events += r.events;
  EXPECT_EQ(profile.events, events);
  EXPECT_GT(profile.events_per_s(), 0.0);
  EXPECT_GT(profile.utilization(), 0.0);
  EXPECT_GT(profile.phase_totals.total_s, 0.0);

  std::ostringstream os;
  profile.write_json(os);
  const auto json = os.str();
  for (const char* key : {"\"wall_s\"", "\"threads\"", "\"runs\"", "\"events\"",
                          "\"utilization\"", "\"events_per_s\"", "\"phase_totals_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(AggregateRuns, EquivalentToRunAveraged) {
  auto cfg = small_config();
  const auto averaged = run_averaged(cfg, 3);

  std::vector<ExperimentConfig> cfgs;
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto c = cfg;
    c.seed = cfg.seed + i;
    cfgs.push_back(c);
  }
  const auto manual = aggregate_runs(run_sweep(cfgs));

  EXPECT_EQ(manual.delay.mean, averaged.delay.mean);
  EXPECT_EQ(manual.messages.mean, averaged.messages.mean);
  EXPECT_EQ(manual.valid_fraction, averaged.valid_fraction);
  ASSERT_EQ(manual.runs.size(), averaged.runs.size());
  for (std::size_t i = 0; i < manual.runs.size(); ++i) {
    EXPECT_EQ(manual.runs[i].convergence_delay_s, averaged.runs[i].convergence_delay_s);
  }
}

}  // namespace
}  // namespace bgpsim::harness
