#include "harness/options.hpp"

#include <gtest/gtest.h>

namespace bgpsim::harness {
namespace {

Options parse(std::vector<const char*> args) {
  return Options::parse(static_cast<int>(args.size()), args.data());
}

TEST(Options, KeyValuePairs) {
  const auto o = parse({"--n", "120", "--failure", "0.1"});
  EXPECT_EQ(o.get_int("n", 0), 120);
  EXPECT_DOUBLE_EQ(o.get_double("failure", 0.0), 0.1);
}

TEST(Options, EqualsSyntax) {
  const auto o = parse({"--mrai=2.25", "--topo=hier"});
  EXPECT_DOUBLE_EQ(o.get_double("mrai", 0.0), 2.25);
  EXPECT_EQ(o.get_or("topo", ""), "hier");
}

TEST(Options, BareFlags) {
  const auto o = parse({"--batching", "--csv"});
  EXPECT_TRUE(o.flag("batching"));
  EXPECT_TRUE(o.flag("csv"));
  EXPECT_FALSE(o.flag("missing"));
}

TEST(Options, FlagFollowedByOption) {
  const auto o = parse({"--batching", "--n", "60"});
  EXPECT_TRUE(o.flag("batching"));
  EXPECT_EQ(o.get_int("n", 0), 60);
}

TEST(Options, ExplicitFalseDisablesFlag) {
  const auto o = parse({"--batching", "false"});
  EXPECT_FALSE(o.flag("batching"));
}

TEST(Options, Positional) {
  const auto o = parse({"run", "fast", "--n", "10"});
  EXPECT_EQ(o.positional(), (std::vector<std::string>{"run", "fast"}));
}

TEST(Options, Defaults) {
  const auto o = parse({});
  EXPECT_EQ(o.get_or("topo", "skew70-30"), "skew70-30");
  EXPECT_EQ(o.get_int("seeds", 3), 3);
  EXPECT_FALSE(o.get("anything").has_value());
}

TEST(Options, RejectsBadNumbers) {
  const auto o = parse({"--n", "abc"});
  EXPECT_THROW(o.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(o.get_double("n", 0.0), std::invalid_argument);
}

TEST(Options, RejectsStrayDoubleDash) {
  EXPECT_THROW(parse({"--n", "5", "--"}), std::invalid_argument);
  EXPECT_THROW(parse({"--n", "5", "stray"}), std::invalid_argument);
}

TEST(Options, UnknownKeys) {
  const auto o = parse({"--n", "5", "--bogus", "--csv"});
  const auto unknown = o.unknown_keys({"n", "csv"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
}

}  // namespace
}  // namespace bgpsim::harness
