// Cross-check of simulated clique withdrawals against the literature's
// analytic envelopes (Labovitz et al.; Pei et al.). Two regimes:
//  - MRAI applied to withdrawals (Labovitz's measured implementations):
//    MRAI-paced path exploration, delay ~ 2(n-3) x MRAI;
//  - RFC 1771 withdrawal exemption (this library's default): immediate
//    withdrawals + implicit-withdraw loop rejection collapse the
//    exploration to propagation time.
#include "harness/bounds.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::harness {
namespace {

using bgp::testing::clique;
using bgp::testing::deterministic_config;

double simulate_clique_withdrawal(std::size_t n, double mrai_s, bool withdrawal_mrai) {
  auto cfg = deterministic_config();
  cfg.mrai_applies_to_withdrawals = withdrawal_mrai;
  const auto g = clique(n);
  bgp::Network net{g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(mrai_s)), 7};
  net.start();
  net.run_to_quiescence();
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  return (net.metrics().last_rib_change - t_fail).to_seconds();
}

TEST(Bounds, FormulaBasics) {
  const auto b = clique_withdrawal_bounds(8, 2.0, /*jittered=*/false, 0.025, 0.001);
  EXPECT_DOUBLE_EQ(b.lower_s, 5 * 2.0);  // (n-3) rounds
  EXPECT_GT(b.upper_s, b.lower_s);
  const auto bj = clique_withdrawal_bounds(8, 2.0, /*jittered=*/true, 0.025, 0.001);
  EXPECT_DOUBLE_EQ(bj.lower_s, 5 * 1.5);
}

TEST(Bounds, SmallMeshesHaveNoExplorationFloor) {
  const auto b = clique_withdrawal_bounds(3, 2.0, false, 0.025, 0.001);
  EXPECT_DOUBLE_EQ(b.lower_s, 0.0);
  EXPECT_GT(b.upper_s, 0.0);
}

class CliqueEnvelope : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CliqueEnvelope, MraiPacedExplorationLandsInsideTheEnvelope) {
  const std::size_t n = GetParam();
  const double mrai = 2.0;
  const double measured = simulate_clique_withdrawal(n, mrai, /*withdrawal_mrai=*/true);
  const auto b = clique_withdrawal_bounds(n, mrai, /*jittered=*/false, 0.025, 0.001);
  EXPECT_GE(measured, b.lower_s) << "n=" << n;
  EXPECT_LE(measured, b.upper_s) << "n=" << n;
  // The observed law in this implementation is exactly Labovitz's best
  // case: (n-3) MRAI-paced rounds (plus ~30 ms of propagation).
  EXPECT_NEAR(measured, static_cast<double>(n - 3) * mrai, 0.2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, CliqueEnvelope, ::testing::Values(5, 6, 7, 8, 10));

TEST(Bounds, WithdrawalExemptionCollapsesExploration) {
  // RFC 1771 default: the same failure resolves in propagation time, far
  // below even one MRAI round.
  const double measured = simulate_clique_withdrawal(8, 2.0, /*withdrawal_mrai=*/false);
  EXPECT_LT(measured, 0.5);
}

TEST(Bounds, WithdrawalDelayGrowsWithMeshSize) {
  // Labovitz's core observation: exploration rounds grow with n.
  const double d6 = simulate_clique_withdrawal(6, 2.0, true);
  const double d10 = simulate_clique_withdrawal(10, 2.0, true);
  EXPECT_GT(d10, d6 + 2.0);
}

TEST(Bounds, WithdrawalDelayScalesWithMrai) {
  // Exploration is MRAI-paced: doubling the MRAI doubles the delay.
  const double d2 = simulate_clique_withdrawal(8, 2.0, true);
  const double d4 = simulate_clique_withdrawal(8, 4.0, true);
  EXPECT_NEAR(d4 / d2, 2.0, 0.15);
}

}  // namespace
}  // namespace bgpsim::harness
