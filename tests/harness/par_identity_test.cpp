// The parallel scheduler's identity guarantee: a run on the partitioned
// conservative-window scheduler produces bit-identical results at any
// thread count. par=1 is the serial identity oracle (the same partitioned
// code path, single-threaded); par=2 and par=4 must match it exactly --
// Loc-RIB content digest, every counter, every hexfloat delay, the total
// event count.
//
// These tests also run under TSan in CI (gtest_filter ParIdentity*): the
// window barrier protocol and the per-partition ownership argument get a
// real data-race check, not just a correctness one.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/network.hpp"
#include "bgp/router.hpp"
#include "harness/experiment.hpp"

namespace bgpsim {
namespace {

// FNV-1a over the full post-run Loc-RIB content (router, prefix,
// materialized hop sequence) -- same digest identity_check prints. Hops are
// materialized, so per-partition PathIds (which legitimately differ across
// thread counts) never leak into the digest.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

std::uint64_t rib_digest(bgp::Network& net) {
  std::uint64_t h = kFnvOffset;
  for (bgp::NodeId v = 0; v < net.size(); ++v) {
    const bgp::Router& r = net.router(v);
    if (!r.alive()) continue;
    for (const bgp::Prefix p : r.known_prefixes()) {
      const auto e = r.best(p);
      if (!e.has_value()) continue;
      mix(h, v);
      mix(h, p);
      mix(h, e->local ? 1 : 0);
      mix(h, e->learned_from);
      mix(h, e->path.length());
      for (const bgp::AsId as : e->path.hops()) mix(h, as);
    }
  }
  return h;
}

struct Outcome {
  harness::RunResult res;
  std::uint64_t digest = 0;
};

Outcome run_once(const harness::ExperimentConfig& base, std::size_t par) {
  harness::ExperimentConfig cfg = base;
  cfg.par_threads = par;
  Outcome out;
  cfg.on_complete = [&out](bgp::Network& net, std::uint64_t) {
    out.digest = rib_digest(net);
  };
  out.res = harness::run_experiment(cfg);
  return out;
}

void expect_identical(const Outcome& a, const Outcome& b, const char* what) {
  EXPECT_EQ(a.digest, b.digest) << what;
  const auto& x = a.res;
  const auto& y = b.res;
  // Hexfloat-exact double comparisons: identity means the bits, not "close".
  EXPECT_EQ(x.initial_convergence_s, y.initial_convergence_s) << what;
  EXPECT_EQ(x.convergence_delay_s, y.convergence_delay_s) << what;
  EXPECT_EQ(x.recovery_delay_s, y.recovery_delay_s) << what;
  EXPECT_EQ(x.messages_after_failure, y.messages_after_failure) << what;
  EXPECT_EQ(x.adverts_after_failure, y.adverts_after_failure) << what;
  EXPECT_EQ(x.withdrawals_after_failure, y.withdrawals_after_failure) << what;
  EXPECT_EQ(x.messages_total, y.messages_total) << what;
  EXPECT_EQ(x.messages_processed, y.messages_processed) << what;
  EXPECT_EQ(x.batch_dropped, y.batch_dropped) << what;
  EXPECT_EQ(x.events, y.events) << what;
  EXPECT_EQ(x.failed_routers, y.failed_routers) << what;
  EXPECT_EQ(x.routes_valid, y.routes_valid) << what;
}

harness::ExperimentConfig base_config(std::size_t n) {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = n;
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.failure_fraction = 0.05;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.seed = 3;
  return cfg;
}

TEST(ParIdentity, ThreadCountInvariant240) {
  const auto cfg = base_config(240);
  const Outcome serial = run_once(cfg, 1);
  const Outcome two = run_once(cfg, 2);
  const Outcome four = run_once(cfg, 4);
  ASSERT_TRUE(serial.res.routes_valid) << serial.res.audit_error;
  expect_identical(serial, two, "par=2 vs par=1");
  expect_identical(serial, four, "par=4 vs par=1");
  EXPECT_GT(serial.res.events, 0u);
}

TEST(ParIdentity, DynamicSchemeThreadCountInvariant) {
  auto cfg = base_config(120);
  cfg.scheme = harness::SchemeSpec::dynamic_mrai();
  const Outcome serial = run_once(cfg, 1);
  const Outcome four = run_once(cfg, 4);
  ASSERT_TRUE(serial.res.routes_valid) << serial.res.audit_error;
  expect_identical(serial, four, "dynamic par=4 vs par=1");
}

TEST(ParIdentity, RecoveryPhaseThreadCountInvariant) {
  auto cfg = base_config(120);
  cfg.measure_recovery = true;
  const Outcome serial = run_once(cfg, 1);
  const Outcome two = run_once(cfg, 2);
  expect_identical(serial, two, "recovery par=2 vs par=1");
  EXPECT_GT(serial.res.messages_after_recovery, 0u);
  EXPECT_EQ(serial.res.messages_after_recovery, two.res.messages_after_recovery);
}

TEST(ParIdentity, ParallelRunsAreValidAndNonTrivial) {
  // Sanity floor under the identity checks: the parallel path actually
  // simulates (events, messages, a failure) rather than short-circuiting.
  const Outcome four = run_once(base_config(240), 4);
  EXPECT_TRUE(four.res.routes_valid) << four.res.audit_error;
  EXPECT_GT(four.res.failed_routers, 0u);
  EXPECT_GT(four.res.messages_after_failure, 0u);
}

}  // namespace
}  // namespace bgpsim
