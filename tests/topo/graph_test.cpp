#include "topo/graph.hpp"

#include <gtest/gtest.h>

namespace bgpsim::topo {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g{4};
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, AddEdgeIsUndirected) {
  Graph g{3};
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, RejectsSelfLoops) {
  Graph g{3};
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, RejectsDuplicates) {
  Graph g{3};
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g{3};
  EXPECT_FALSE(g.add_edge(0, 3));
  EXPECT_FALSE(g.add_edge(7, 1));
}

TEST(Graph, RemoveEdge) {
  Graph g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
}

TEST(Graph, AverageAndMaxDegree) {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, ConnectivityDetection) {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph{0}.is_connected());
  EXPECT_TRUE(Graph{1}.is_connected());
}

TEST(Graph, EdgesListedOnceSorted) {
  Graph g{4};
  g.add_edge(2, 1);
  g.add_edge(3, 0);
  g.add_edge(0, 1);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(es[1], (std::pair<NodeId, NodeId>{0, 3}));
  EXPECT_EQ(es[2], (std::pair<NodeId, NodeId>{1, 2}));
}

TEST(Graph, RandomPlacementWithinBounds) {
  Graph g{50};
  sim::Rng rng{1};
  g.place_randomly(1000.0, 1000.0, rng);
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto p = g.position(v);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1000.0);
  }
}

TEST(Graph, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Point{1, 1}, Point{1, 1}), 0.0);
}

}  // namespace
}  // namespace bgpsim::topo
