#include "topo/hierarchical.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgpsim::topo {
namespace {

HierParams small_params() {
  HierParams p;
  p.num_ases = 30;
  p.max_total_routers = 120;
  p.max_inter_as_degree = 12;
  return p;
}

TEST(Hierarchical, BasicShape) {
  sim::Rng rng{1};
  const auto h = hierarchical(small_params(), rng);
  EXPECT_EQ(h.num_ases(), 30u);
  EXPECT_GE(h.num_routers(), 30u);
  EXPECT_LE(h.num_routers(), 121u);
  EXPECT_EQ(h.as_of_router.size(), h.num_routers());
  EXPECT_EQ(h.router_pos.size(), h.num_routers());
  EXPECT_TRUE(h.as_graph.is_connected());
}

TEST(Hierarchical, RouterAsMappingIsConsistent) {
  sim::Rng rng{2};
  const auto h = hierarchical(small_params(), rng);
  for (AsId as = 0; as < h.num_ases(); ++as) {
    EXPECT_GE(h.routers_of_as[as].size(), 1u);
    for (const auto r : h.routers_of_as[as]) EXPECT_EQ(h.as_of_router[r], as);
  }
}

TEST(Hierarchical, IbgpFullMeshWithinEveryAs) {
  sim::Rng rng{3};
  const auto h = hierarchical(small_params(), rng);
  // Count iBGP sessions per AS and compare with C(size, 2).
  std::vector<std::size_t> ibgp_count(h.num_ases(), 0);
  for (const auto& s : h.sessions) {
    if (!s.ebgp) {
      ASSERT_EQ(h.as_of_router[s.a], h.as_of_router[s.b]);
      ++ibgp_count[h.as_of_router[s.a]];
    }
  }
  for (AsId as = 0; as < h.num_ases(); ++as) {
    const auto k = h.routers_of_as[as].size();
    EXPECT_EQ(ibgp_count[as], k * (k - 1) / 2) << "AS " << as;
  }
}

TEST(Hierarchical, EbgpSessionsMatchAsGraph) {
  sim::Rng rng{4};
  const auto h = hierarchical(small_params(), rng);
  std::multiset<std::pair<AsId, AsId>> from_sessions;
  for (const auto& s : h.sessions) {
    if (s.ebgp) {
      AsId a = h.as_of_router[s.a];
      AsId b = h.as_of_router[s.b];
      ASSERT_NE(a, b) << "eBGP session within one AS";
      if (a > b) std::swap(a, b);
      from_sessions.insert({a, b});
    }
  }
  std::multiset<std::pair<AsId, AsId>> from_graph;
  for (const auto& [a, b] : h.as_graph.edges()) from_graph.insert({a, b});
  EXPECT_EQ(from_sessions, from_graph);
}

TEST(Hierarchical, LargestAsHasHighestInterAsDegree) {
  sim::Rng rng{5};
  const auto h = hierarchical(small_params(), rng);
  // ASes are sorted by size descending and degrees assigned descending, so
  // AS 0 must be at least as connected as the smallest AS.
  const auto last = static_cast<AsId>(h.num_ases() - 1);
  EXPECT_GE(h.as_graph.degree(0), h.as_graph.degree(last));
  EXPECT_GE(h.routers_of_as[0].size(), h.routers_of_as[last].size());
}

TEST(Hierarchical, OriginRouterBelongsToItsAs) {
  sim::Rng rng{6};
  const auto h = hierarchical(small_params(), rng);
  for (AsId as = 0; as < h.num_ases(); ++as) {
    EXPECT_EQ(h.as_of_router[h.origin_router[as]], as);
  }
}

TEST(Hierarchical, RoutersStayOnGrid) {
  sim::Rng rng{7};
  auto p = small_params();
  const auto h = hierarchical(p, rng);
  for (const auto& pos : h.router_pos) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LE(pos.x, p.grid);
    EXPECT_GE(pos.y, 0.0);
    EXPECT_LE(pos.y, p.grid);
  }
}

TEST(Hierarchical, TotalRouterCapRespected) {
  sim::Rng rng{8};
  HierParams p;
  p.num_ases = 50;
  p.max_total_routers = 150;
  p.max_as_size = 100;
  const auto h = hierarchical(p, rng);
  // Rescaling floors at 1 router per AS, so the bound holds up to rounding.
  EXPECT_LE(h.num_routers(), p.max_total_routers + p.num_ases);
}

TEST(Hierarchical, DeterministicGivenSeed) {
  sim::Rng rng1{9};
  sim::Rng rng2{9};
  const auto h1 = hierarchical(small_params(), rng1);
  const auto h2 = hierarchical(small_params(), rng2);
  EXPECT_EQ(h1.num_routers(), h2.num_routers());
  EXPECT_EQ(h1.as_of_router, h2.as_of_router);
  EXPECT_EQ(h1.as_graph.edges(), h2.as_graph.edges());
}

}  // namespace
}  // namespace bgpsim::topo
