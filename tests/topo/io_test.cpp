#include "topo/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/degree_sequence.hpp"

namespace bgpsim::topo {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  sim::Rng rng{1};
  auto degrees = skewed_sequence(40, SkewSpec::s70_30(), rng);
  auto g = realize_degree_sequence(std::move(degrees), rng);
  g.place_randomly(1000, 1000, rng);

  std::stringstream ss;
  save_graph(g, ss);
  const auto loaded = load_graph(ss);

  ASSERT_EQ(loaded.size(), g.size());
  EXPECT_EQ(loaded.edges(), g.edges());
  for (NodeId v = 0; v < g.size(); ++v) {
    EXPECT_NEAR(loaded.position(v).x, g.position(v).x, 1e-4);
    EXPECT_NEAR(loaded.position(v).y, g.position(v).y, 1e-4);
  }
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream ss{"not-a-graph v1 3\n"};
  EXPECT_THROW(load_graph(ss), std::invalid_argument);
  std::stringstream ss2{"bgpsim-graph v9 3\n"};
  EXPECT_THROW(load_graph(ss2), std::invalid_argument);
}

TEST(GraphIo, RejectsOutOfRangeAndDuplicates) {
  std::stringstream ss{"bgpsim-graph v1 2\nedge 0 5\n"};
  EXPECT_THROW(load_graph(ss), std::invalid_argument);
  std::stringstream ss2{"bgpsim-graph v1 2\nedge 0 1\nedge 1 0\n"};
  EXPECT_THROW(load_graph(ss2), std::invalid_argument);
  std::stringstream ss3{"bgpsim-graph v1 2\nbogus 1 2\n"};
  EXPECT_THROW(load_graph(ss3), std::invalid_argument);
}

constexpr const char* kAsRelSample = R"(# sample CAIDA-style as-rel
# provider|customer|-1  peer|peer|0
174|3356|0
174|1299|0
3356|64512|-1
1299|64512|-1
174|64513|-1
3356|64513|-1
)";

TEST(AsRel, ParsesRelationships) {
  std::stringstream ss{kAsRelSample};
  const auto ar = load_as_rel(ss);
  // ASes sorted: 174 -> 0, 1299 -> 1, 3356 -> 2, 64512 -> 3, 64513 -> 4.
  ASSERT_EQ(ar.graph.size(), 5u);
  EXPECT_EQ(ar.as_number, (std::vector<std::uint64_t>{174, 1299, 3356, 64512, 64513}));
  EXPECT_EQ(ar.graph.edge_count(), 6u);
  EXPECT_EQ(ar.relationship(0, 2), Relationship::kPeerPeer);        // 174 ~ 3356
  EXPECT_EQ(ar.relationship(2, 3), Relationship::kProviderCustomer);  // 3356 -> 64512
  EXPECT_TRUE(ar.is_provider(2, 3));
  EXPECT_FALSE(ar.is_provider(3, 2));
  EXPECT_TRUE(ar.is_provider(0, 4));  // 174 -> 64513
}

TEST(AsRel, SkipsCommentsAndBlankLines) {
  std::stringstream ss{"# comment only\n\n  \n1|2|0\n"};
  const auto ar = load_as_rel(ss);
  EXPECT_EQ(ar.graph.size(), 2u);
  EXPECT_EQ(ar.graph.edge_count(), 1u);
}

TEST(AsRel, RejectsMalformedLines) {
  std::stringstream ss{"1|2|7\n"};
  EXPECT_THROW(load_as_rel(ss), std::invalid_argument);
  std::stringstream ss2{"1|1|0\n"};
  EXPECT_THROW(load_as_rel(ss2), std::invalid_argument);
  std::stringstream ss3{"abc|2|0\n"};
  EXPECT_THROW(load_as_rel(ss3), std::invalid_argument);
}

TEST(AsRel, DuplicateLinksKeepFirstRelationship) {
  std::stringstream ss{"1|2|-1\n2|1|0\n"};
  const auto ar = load_as_rel(ss);
  EXPECT_EQ(ar.graph.edge_count(), 1u);
  EXPECT_EQ(ar.relationship(0, 1), Relationship::kProviderCustomer);
}

TEST(AsRel, DenseIdsAreDeterministic) {
  std::stringstream a{"99|5|0\n7|5|-1\n"};
  std::stringstream b{"7|5|-1\n99|5|0\n"};
  const auto ga = load_as_rel(a);
  const auto gb = load_as_rel(b);
  EXPECT_EQ(ga.as_number, gb.as_number);
  EXPECT_EQ(ga.graph.edges(), gb.graph.edges());
}

}  // namespace
}  // namespace bgpsim::topo
