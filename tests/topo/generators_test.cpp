#include "topo/generators.hpp"

#include <gtest/gtest.h>

namespace bgpsim::topo {
namespace {

TEST(Waxman, ProducesConnectedGraphOfRequestedSize) {
  sim::Rng rng{1};
  WaxmanParams p;
  p.n = 80;
  const auto g = waxman(p, rng);
  EXPECT_EQ(g.size(), 80u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.edge_count(), 79u);
}

TEST(Waxman, HigherAlphaMeansMoreEdges) {
  sim::Rng rng1{2};
  sim::Rng rng2{2};
  WaxmanParams sparse;
  sparse.n = 80;
  sparse.alpha = 0.05;
  WaxmanParams dense;
  dense.n = 80;
  dense.alpha = 0.5;
  EXPECT_LT(waxman(sparse, rng1).edge_count(), waxman(dense, rng2).edge_count());
}

TEST(Waxman, NodesArePlaced) {
  sim::Rng rng{3};
  WaxmanParams p;
  p.n = 20;
  const auto g = waxman(p, rng);
  bool any_nonzero = false;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (g.position(v).x != 0.0 || g.position(v).y != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(BarabasiAlbert, ConnectedWithExpectedEdgeCount) {
  sim::Rng rng{4};
  BaParams p;
  p.n = 100;
  p.m = 2;
  const auto g = barabasi_albert(p, rng);
  EXPECT_EQ(g.size(), 100u);
  EXPECT_TRUE(g.is_connected());
  // Seed clique C(3,2)=3 edges + 2 per added node.
  EXPECT_NEAR(static_cast<double>(g.edge_count()),
              3.0 + 2.0 * static_cast<double>(p.n - 3), 5.0);
}

TEST(BarabasiAlbert, ProducesHubs) {
  sim::Rng rng{5};
  BaParams p;
  p.n = 200;
  p.m = 2;
  const auto g = barabasi_albert(p, rng);
  // Preferential attachment must concentrate degree well above the mean.
  EXPECT_GE(g.max_degree(), 3 * static_cast<std::size_t>(g.average_degree()));
}

TEST(BarabasiAlbert, RejectsBadParams) {
  sim::Rng rng{6};
  BaParams p;
  p.n = 2;
  p.m = 2;
  EXPECT_THROW(barabasi_albert(p, rng), std::invalid_argument);
  p.n = 10;
  p.m = 0;
  EXPECT_THROW(barabasi_albert(p, rng), std::invalid_argument);
}

TEST(Glp, ConnectedAndGrowsToSize) {
  sim::Rng rng{7};
  GlpParams p;
  p.n = 100;
  const auto g = glp(p, rng);
  EXPECT_EQ(g.size(), 100u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Glp, ProducesHeavierTailThanUniform) {
  sim::Rng rng{8};
  GlpParams p;
  p.n = 200;
  const auto g = glp(p, rng);
  EXPECT_GE(g.max_degree(), 2 * static_cast<std::size_t>(g.average_degree()));
}

TEST(Glp, RejectsBadParams) {
  sim::Rng rng{9};
  GlpParams p;
  p.beta = 1.5;
  EXPECT_THROW(glp(p, rng), std::invalid_argument);
  p.beta = 0.5;
  p.n = 1;
  EXPECT_THROW(glp(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bgpsim::topo
