// Partitioner properties: balance, coverage, determinism, degenerate
// inputs. The parallel scheduler's identity guarantee rests on the
// assignment being a pure function of (adjacency, k) -- the same topology
// must land in the same partitions on every run and every machine.
#include "topo/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "topo/degree_sequence.hpp"
#include "topo/graph.hpp"

namespace bgpsim {
namespace {

std::vector<std::vector<std::uint32_t>> adjacency_of(const topo::Graph& g) {
  std::vector<std::vector<std::uint32_t>> adj(g.size());
  for (topo::NodeId v = 0; v < g.size(); ++v) {
    for (const topo::NodeId u : g.neighbors(v)) adj[v].push_back(u);
  }
  return adj;
}

topo::Graph make_skewed(std::size_t n, std::uint64_t seed) {
  sim::Rng rng{seed};
  auto degrees = topo::skewed_sequence(n, topo::SkewSpec::s70_30(), rng);
  return topo::realize_degree_sequence(std::move(degrees), rng);
}

void check_valid(const topo::PartitionResult& r, std::size_t n, std::size_t k) {
  ASSERT_EQ(r.part_of.size(), n);
  ASSERT_EQ(r.k, k);
  std::vector<std::size_t> sizes(k, 0);
  for (const std::uint32_t p : r.part_of) {
    ASSERT_LT(p, k);
    ++sizes[p];
  }
  for (std::size_t p = 0; p < k; ++p) EXPECT_GT(sizes[p], 0u) << "empty partition " << p;
  EXPECT_EQ(r.max_size, *std::max_element(sizes.begin(), sizes.end()));
  EXPECT_EQ(r.min_size, *std::min_element(sizes.begin(), sizes.end()));
}

TEST(PartitionContiguous, BalancedAndCovering) {
  for (const std::size_t n : {1u, 7u, 64u, 241u}) {
    for (std::size_t k = 1; k <= std::min<std::size_t>(n, 8); ++k) {
      const auto r = topo::partition_contiguous(n, k);
      check_valid(r, n, k);
      // Quota split: sizes differ by at most one (well under the 10% bound).
      EXPECT_LE(r.max_size - r.min_size, 1u) << "n=" << n << " k=" << k;
    }
  }
}

TEST(PartitionGreedy, BalancedWithinTenPercent) {
  const auto g = make_skewed(240, 7);
  const auto adj = adjacency_of(g);
  for (const std::size_t k : {2u, 3u, 4u, 8u}) {
    const auto r = topo::partition_greedy(adj, k);
    check_valid(r, g.size(), k);
    // Quota-driven growth keeps every partition within 10% of the ideal
    // n/k share (the ISSUE's balance requirement; quotas actually give
    // max-min <= 1, but assert the contract, not the implementation).
    const double ideal = static_cast<double>(g.size()) / static_cast<double>(k);
    EXPECT_LE(static_cast<double>(r.max_size), ideal * 1.10) << "k=" << k;
    EXPECT_GE(static_cast<double>(r.min_size), ideal * 0.90 - 1.0) << "k=" << k;
  }
}

TEST(PartitionGreedy, DeterministicAcrossCalls) {
  const auto g = make_skewed(180, 11);
  const auto adj = adjacency_of(g);
  const auto a = topo::partition_greedy(adj, 4);
  const auto b = topo::partition_greedy(adj, 4);
  EXPECT_EQ(a.part_of, b.part_of);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(PartitionGreedy, CutNoWorseThanContiguousOnCommunities) {
  // Two dense 30-node cliques joined by one bridge edge: the greedy
  // partitioner must find the obvious 2-cut; a contiguous split of a
  // scrambled id order generally does not.
  const std::size_t half = 30;
  std::vector<std::vector<std::uint32_t>> adj(2 * half);
  // Interleave ids across the cliques so contiguous ranges mix them.
  const auto id = [&](std::size_t clique, std::size_t i) {
    return static_cast<std::uint32_t>(2 * i + clique);
  };
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = i + 1; j < half; ++j) {
        adj[id(c, i)].push_back(id(c, j));
        adj[id(c, j)].push_back(id(c, i));
      }
    }
  }
  adj[id(0, 0)].push_back(id(1, 0));
  adj[id(1, 0)].push_back(id(0, 0));

  const auto greedy = topo::partition_greedy(adj, 2);
  check_valid(greedy, adj.size(), 2);
  EXPECT_EQ(greedy.cut_edges, 1u);
}

TEST(PartitionGreedy, CutEdgeCountMatchesAssignment) {
  const auto g = make_skewed(120, 3);
  const auto adj = adjacency_of(g);
  const auto r = topo::partition_greedy(adj, 4);
  std::size_t cut = 0;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    for (const std::uint32_t u : adj[v]) {
      if (v < u && r.part_of[v] != r.part_of[u]) ++cut;
    }
  }
  EXPECT_EQ(r.cut_edges, cut);
}

TEST(Partition, RejectsDegenerateK) {
  EXPECT_THROW(topo::partition_contiguous(10, 0), std::invalid_argument);
  EXPECT_THROW(topo::partition_contiguous(10, 11), std::invalid_argument);
  std::vector<std::vector<std::uint32_t>> adj(5);
  EXPECT_THROW(topo::partition_greedy(adj, 0), std::invalid_argument);
  EXPECT_THROW(topo::partition_greedy(adj, 6), std::invalid_argument);
}

TEST(Partition, KEqualsNIsSingletons) {
  std::vector<std::vector<std::uint32_t>> adj(6);
  const auto r = topo::partition_greedy(adj, 6);
  check_valid(r, 6, 6);
  EXPECT_EQ(r.max_size, 1u);
}

}  // namespace
}  // namespace bgpsim
