#include "topo/degree_sequence.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bgpsim::topo {
namespace {

TEST(SkewSpec, PresetAveragesMatchPaper) {
  // All three skews in Fig 4 share average degree 3.8; the dense 50-50 in
  // Fig 5 doubles it.
  EXPECT_NEAR(SkewSpec::s70_30().expected_average(), 3.8, 1e-9);
  EXPECT_NEAR(SkewSpec::s50_50().expected_average(), 3.8, 1e-9);
  EXPECT_NEAR(SkewSpec::s85_15().expected_average(), 3.8, 1e-9);
  EXPECT_NEAR(SkewSpec::s50_50_dense().expected_average(), 7.6, 1e-9);
}

TEST(SkewedSequence, CountsAndRanges) {
  sim::Rng rng{1};
  const auto spec = SkewSpec::s70_30();
  const auto seq = skewed_sequence(120, spec, rng);
  ASSERT_EQ(seq.size(), 120u);
  int low = 0;
  int high = 0;
  for (const int d : seq) {
    if (d >= 1 && d <= 3) {
      ++low;
    } else if (d == 8) {
      ++high;
    } else {
      FAIL() << "unexpected degree " << d;
    }
  }
  EXPECT_EQ(low, 84);   // 70% of 120
  EXPECT_EQ(high, 36);  // 30% of 120
}

TEST(SkewedSequence, EmpiricalAverageNearTarget) {
  sim::Rng rng{2};
  const auto seq = skewed_sequence(2000, SkewSpec::s85_15(), rng);
  const double avg = static_cast<double>(std::accumulate(seq.begin(), seq.end(), 0)) /
                     static_cast<double>(seq.size());
  EXPECT_NEAR(avg, 3.8, 0.15);
}

TEST(SkewedSequence, RejectsBadSpec) {
  sim::Rng rng{3};
  SkewSpec spec;
  spec.high_degrees.clear();
  spec.high_weights.clear();
  EXPECT_THROW(skewed_sequence(10, spec, rng), std::invalid_argument);
}

TEST(InternetLikeSequence, HitsTargetAverage) {
  sim::Rng rng{4};
  const auto seq = internet_like_sequence(5000, 40, 3.4, rng);
  const double avg = static_cast<double>(std::accumulate(seq.begin(), seq.end(), 0)) /
                     static_cast<double>(seq.size());
  EXPECT_NEAR(avg, 3.4, 0.2);
}

TEST(InternetLikeSequence, RespectsCapAndMirrorsInternetShape) {
  sim::Rng rng{5};
  const auto seq = internet_like_sequence(5000, 40, 3.4, rng);
  int below4 = 0;
  for (const int d : seq) {
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 40);
    if (d < 4) ++below4;
  }
  // Paper section 3.1: ~70% of real ASes connect to fewer than 4 others.
  EXPECT_NEAR(static_cast<double>(below4) / static_cast<double>(seq.size()), 0.7, 0.12);
}

TEST(InternetLikeSequence, RejectsUnreachableTarget) {
  sim::Rng rng{6};
  EXPECT_THROW(internet_like_sequence(100, 40, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(internet_like_sequence(100, 40, 39.0, rng), std::invalid_argument);
}

TEST(RealizeDegreeSequence, ExactDegreesSimpleConnected) {
  sim::Rng rng{7};
  const std::vector<int> degrees{3, 2, 2, 2, 1, 2};  // sum 12, even
  RealizeStats stats;
  const auto g = realize_degree_sequence(degrees, rng, &stats);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(stats.dropped_stubs, 0u);
  for (NodeId v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.degree(v), static_cast<std::size_t>(degrees[v])) << "node " << v;
  }
}

TEST(RealizeDegreeSequence, PaperScaleTopologyIsFaithful) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng{seed};
    auto degrees = skewed_sequence(120, SkewSpec::s70_30(), rng);
    RealizeStats stats;
    const auto g = realize_degree_sequence(degrees, rng, &stats);
    EXPECT_TRUE(g.is_connected()) << "seed " << seed;
    EXPECT_NEAR(g.average_degree(), 3.8, 0.25) << "seed " << seed;
    // Degree shortfall must be negligible.
    EXPECT_LE(stats.dropped_stubs, 2u) << "seed " << seed;
  }
}

TEST(RealizeDegreeSequence, OddTotalIsRepaired) {
  sim::Rng rng{8};
  const auto g = realize_degree_sequence({2, 2, 1, 2}, rng);  // sum 7 -> bumped
  EXPECT_TRUE(g.is_connected());
  std::size_t total = 0;
  for (NodeId v = 0; v < g.size(); ++v) total += g.degree(v);
  EXPECT_EQ(total % 2, 0u);
}

TEST(RealizeDegreeSequence, ZeroDegreesRaisedToOne) {
  sim::Rng rng{9};
  const auto g = realize_degree_sequence({0, 3, 2, 3, 2}, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.degree(0), 1u);
}

TEST(RealizeDegreeSequence, RejectsInfeasible) {
  sim::Rng rng{10};
  EXPECT_THROW(realize_degree_sequence({1}, rng), std::invalid_argument);
  // Degree larger than n-1 cannot be simple.
  EXPECT_THROW(realize_degree_sequence({5, 1, 1, 1, 2}, rng), std::invalid_argument);
  // Sum below 2(n-1) cannot be connected.
  EXPECT_THROW(realize_degree_sequence({1, 1, 1, 1}, rng), std::invalid_argument);
}

TEST(RealizeDegreeSequence, HighSkewStillExact) {
  // 85-15 has degree-14 hubs in a 120-node graph; rewiring must cope.
  sim::Rng rng{11};
  auto degrees = skewed_sequence(120, SkewSpec::s85_15(), rng);
  RealizeStats stats;
  const auto g = realize_degree_sequence(degrees, rng, &stats);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(stats.dropped_stubs, 2u);
  EXPECT_EQ(g.max_degree(), 14u);
}

TEST(RealizeDegreeSequence, DeterministicGivenSeed) {
  sim::Rng rng1{12};
  sim::Rng rng2{12};
  const std::vector<int> degrees{3, 3, 2, 2, 2, 2, 1, 1};
  const auto g1 = realize_degree_sequence(degrees, rng1);
  const auto g2 = realize_degree_sequence(degrees, rng2);
  EXPECT_EQ(g1.edges(), g2.edges());
}

}  // namespace
}  // namespace bgpsim::topo
