#include "topo/metrics.hpp"

#include <gtest/gtest.h>

#include "topo/degree_sequence.hpp"
#include "topo/generators.hpp"

namespace bgpsim::topo {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Metrics, DegreeHistogram) {
  const auto g = triangle_plus_tail();
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 4u);  // max degree 3
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 1u);  // node 3
  EXPECT_EQ(h[2], 2u);  // nodes 0, 1
  EXPECT_EQ(h[3], 1u);  // node 2
}

TEST(Metrics, ClusteringCoefficient) {
  const auto g = triangle_plus_tail();
  // Nodes 0 and 1: k=2, 1 link between neighbors => 1.0 each.
  // Node 2: k=3, 1 of 3 possible links => 1/3. Node 3: k=1 => 0.
  EXPECT_NEAR(clustering_coefficient(g), (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(Metrics, CliqueClusteringIsOne) {
  Graph g{4};
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b);
  }
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(Metrics, TreeClusteringIsZero) {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
}

TEST(Metrics, DiameterOfLine) {
  Graph g{5};
  for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Metrics, DiameterDisconnectedIsMax) {
  Graph g{3};
  g.add_edge(0, 1);
  EXPECT_EQ(diameter(g), SIZE_MAX);
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Metrics, AveragePathLengthOfLine) {
  Graph g{3};  // distances: 0-1:1, 0-2:2, 1-2:1 => mean 4/3
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_NEAR(average_path_length(g), 4.0 / 3.0, 1e-12);
}

TEST(Metrics, AssortativityOfRegularGraphIsZero) {
  // Every node degree 2 (a ring): zero degree variance => defined as 0.
  Graph g{5};
  for (NodeId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
}

TEST(Metrics, StarIsDisassortative) {
  Graph g{6};
  for (NodeId v = 1; v < 6; ++v) g.add_edge(0, v);
  EXPECT_LT(degree_assortativity(g), 0.0);
}

TEST(Metrics, SkewedTopologiesAreSmallWorldish) {
  sim::Rng rng{3};
  auto degrees = skewed_sequence(120, SkewSpec::s70_30(), rng);
  const auto g = realize_degree_sequence(std::move(degrees), rng);
  EXPECT_EQ(num_components(g), 1u);
  const auto d = diameter(g);
  EXPECT_GE(d, 3u);
  EXPECT_LE(d, 15u);
  const auto apl = average_path_length(g);
  EXPECT_GT(apl, 1.5);
  EXPECT_LT(apl, 8.0);
}

TEST(Metrics, BaHubsMakeNegativeAssortativity) {
  sim::Rng rng{4};
  BaParams p;
  p.n = 200;
  const auto g = barabasi_albert(p, rng);
  // Preferential attachment yields disassortative (hub-leaf) mixing.
  EXPECT_LT(degree_assortativity(g), 0.1);
}

}  // namespace
}  // namespace bgpsim::topo
