#include "schemes/dynamic_mrai.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "bgp/network.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::schemes {
namespace {

using bgp::testing::deterministic_config;
using bgp::testing::star;

/// Builds a network whose routers can be handed to the controller; the
/// controller under test is NOT installed so we can drive it manually.
struct ControllerHarness {
  ControllerHarness()
      : graph{star(3)},
        net{graph, deterministic_config(), std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(1.0)),
            1} {}
  topo::Graph graph;
  bgp::Network net;
};

TEST(DynamicMrai, StartsAtLowestLevel) {
  ControllerHarness h;
  DynamicMrai ctl{DynamicMraiParams{}};
  EXPECT_EQ(ctl.interval(h.net.router(0), 1), sim::SimTime::seconds(0.5));
  EXPECT_EQ(ctl.level(0), 0u);
}

TEST(DynamicMrai, StepsUpWhenUnfinishedWorkExceedsUpTh) {
  ControllerHarness h;
  DynamicMrai ctl{DynamicMraiParams{}};
  // upTh = 0.65 s; mean processing delay is 1 ms in the deterministic
  // config, so > 650 queued messages trip the threshold.
  auto& r = h.net.router(0);
  for (int i = 0; i < 700; ++i) {
    bgp::UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    r.deliver(m);
  }
  EXPECT_GT(r.unfinished_work(), sim::SimTime::seconds(0.65));
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(1.25));
  EXPECT_EQ(ctl.level(0), 1u);
  EXPECT_EQ(ctl.ups(), 1u);
  // Still overloaded at the next restart: one more step, then saturate.
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(2.25));
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(2.25));
  EXPECT_EQ(ctl.level(0), 2u);
}

TEST(DynamicMrai, StepsDownWhenIdle) {
  ControllerHarness h;
  DynamicMraiParams p;
  DynamicMrai ctl{p};
  auto& r = h.net.router(0);
  for (int i = 0; i < 700; ++i) {
    bgp::UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    r.deliver(m);
  }
  ctl.interval(r, 1);
  ASSERT_EQ(ctl.level(0), 1u);
  // Drain the queue (fresh router in a fresh harness would be cleaner, but
  // running the network empties the CPU queue).
  h.net.run_to_quiescence();
  EXPECT_EQ(r.input_queue_length(), 0u);
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(0.5));
  EXPECT_EQ(ctl.downs(), 1u);
  // Already at the bottom: stays there.
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(0.5));
}

TEST(DynamicMrai, DeadBandHoldsLevel) {
  ControllerHarness h;
  DynamicMraiParams p;  // upTh 0.65 s, downTh 0.05 s
  DynamicMrai ctl{p};
  auto& r = h.net.router(0);
  auto deliver_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      bgp::UpdateMessage m;
      m.from = 1;
      m.to = 0;
      m.prefix = 1;
      r.deliver(m);
    }
  };
  // Step up to level 1 under heavy load, then drain completely.
  deliver_n(700);
  ctl.interval(r, 1);
  ASSERT_EQ(ctl.level(0), 1u);
  h.net.run_to_quiescence();
  // Refill to ~100 ms of unfinished work: inside the (downTh, upTh) band.
  deliver_n(100);
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(1.25));  // held at level 1
  EXPECT_EQ(ctl.level(0), 1u);
  EXPECT_EQ(ctl.downs(), 0u);
}

TEST(DynamicMrai, ResetReturnsAllNodesToLevelZero) {
  ControllerHarness h;
  DynamicMrai ctl{DynamicMraiParams{}};
  auto& r = h.net.router(0);
  for (int i = 0; i < 700; ++i) {
    bgp::UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    r.deliver(m);
  }
  ctl.interval(r, 1);
  ASSERT_GT(ctl.level(0), 0u);
  ctl.reset();
  EXPECT_EQ(ctl.level(0), 0u);
  EXPECT_EQ(ctl.ups(), 0u);
}

TEST(DynamicMrai, MinDegreeGateKeepsLowDegreeNodesAtBase) {
  ControllerHarness h;
  DynamicMraiParams p;
  p.min_degree = 3;  // hub (degree 3) adapts, leaves (degree 1) do not
  DynamicMrai ctl{p};
  auto& leaf = h.net.router(1);
  for (int i = 0; i < 700; ++i) {
    bgp::UpdateMessage m;
    m.from = 0;
    m.to = 1;
    m.prefix = 2;
    leaf.deliver(m);
  }
  EXPECT_EQ(ctl.interval(leaf, 0), sim::SimTime::seconds(0.5));
  EXPECT_EQ(ctl.level(1), 0u);
}

TEST(DynamicMrai, ValidatesParams) {
  DynamicMraiParams empty;
  empty.levels.clear();
  EXPECT_THROW(DynamicMrai{empty}, std::invalid_argument);

  DynamicMraiParams unsorted;
  unsorted.levels = {sim::SimTime::seconds(1.0), sim::SimTime::seconds(0.5)};
  EXPECT_THROW(DynamicMrai{unsorted}, std::invalid_argument);

  DynamicMraiParams crossed;
  crossed.down_th = sim::SimTime::seconds(1.0);
  crossed.up_th = sim::SimTime::seconds(0.5);
  EXPECT_THROW(DynamicMrai{crossed}, std::invalid_argument);
}

TEST(DynamicMrai, UtilizationMonitorVariant) {
  ControllerHarness h;
  DynamicMraiParams p;
  p.monitor = DynamicMraiParams::Monitor::kUtilization;
  p.up_util = 0.0;  // any recorded busy time trips it
  DynamicMrai ctl{p};
  auto& r = h.net.router(0);
  bgp::UpdateMessage m;
  m.from = 1;
  m.to = 0;
  m.prefix = 1;
  r.deliver(m);
  h.net.run_to_quiescence();
  EXPECT_GT(r.recent_utilization(), 0.0);
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(1.25));
}

TEST(DynamicMrai, MessageRateMonitorVariant) {
  ControllerHarness h;
  DynamicMraiParams p;
  p.monitor = DynamicMraiParams::Monitor::kMessageRate;
  p.up_rate = 10.0;
  DynamicMrai ctl{p};
  auto& r = h.net.router(0);
  for (int i = 0; i < 200; ++i) {
    bgp::UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    r.deliver(m);
  }
  EXPECT_GT(r.recent_message_rate(), 10.0);
  EXPECT_EQ(ctl.interval(r, 1), sim::SimTime::seconds(1.25));
}

TEST(DynamicMraiThreading, CrossThreadUseThrows) {
  // One controller per run is the contract (build_scheme constructs one per
  // experiment); a shared instance across parallel sweep runs must fail
  // loudly instead of silently corrupting the per-node levels.
  DynamicMrai ctl{DynamicMraiParams{}};
  ctl.reset();  // pins the instance to this thread
  std::exception_ptr err;
  std::thread t{[&] {
    try {
      ctl.reset();
    } catch (...) {
      err = std::current_exception();
    }
  }};
  t.join();
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), std::logic_error);
  // The pinned thread keeps working.
  EXPECT_NO_THROW(ctl.reset());
}

TEST(DynamicMraiCheckpoint, SaveLoadRoundTripsAdaptiveState) {
  ControllerHarness h;
  DynamicMraiParams params;
  // Rate monitor with an always-exceeded threshold: every restart steps up.
  params.monitor = DynamicMraiParams::Monitor::kMessageRate;
  params.up_rate = -1.0;
  params.down_rate = -2.0;
  DynamicMrai a{params};
  auto& r = h.net.router(0);
  a.interval(r, 1);  // level 0 -> 1
  ASSERT_GE(a.ups(), 1u);

  std::string blob;
  a.save_state(blob);
  DynamicMrai b{params};
  b.load_state(blob);
  EXPECT_EQ(b.ups(), a.ups());
  EXPECT_EQ(b.downs(), a.downs());
  EXPECT_EQ(b.level(0), a.level(0));

  // Corrupted/mismatched state is refused.
  DynamicMrai c{params};
  EXPECT_THROW(c.load_state(blob.substr(0, blob.size() - 1)), std::runtime_error);
  EXPECT_THROW(c.load_state("garbage"), std::runtime_error);
  // The base controller (stateless schemes) refuses a non-empty blob.
  bgp::FixedMrai fixed{sim::SimTime::seconds(1.0)};
  EXPECT_NO_THROW(fixed.load_state(""));
  EXPECT_THROW(fixed.load_state(blob), std::runtime_error);
}

}  // namespace
}  // namespace bgpsim::schemes
