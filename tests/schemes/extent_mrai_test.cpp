#include "schemes/extent_mrai.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::schemes {
namespace {

using bgp::testing::deterministic_config;

TEST(ExtentMrai, ValidatesParams) {
  ExtentMraiParams no_levels;
  no_levels.levels.clear();
  no_levels.loss_thresholds.clear();
  EXPECT_THROW(ExtentMrai{no_levels}, std::invalid_argument);

  ExtentMraiParams mismatched;
  mismatched.loss_thresholds = {1.0};  // 3 levels need 2 thresholds
  EXPECT_THROW(ExtentMrai{mismatched}, std::invalid_argument);

  ExtentMraiParams unsorted;
  unsorted.loss_thresholds = {8.0, 3.0};
  EXPECT_THROW(ExtentMrai{unsorted}, std::invalid_argument);
}

TEST(ExtentMrai, NoLossesMeansLowestLevel) {
  const auto g = bgp::testing::line(2);
  bgp::Network net{g, deterministic_config(),
                   std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(1.0)), 1};
  ExtentMrai ctl{ExtentMraiParams{}};
  EXPECT_EQ(ctl.interval(net.router(0), 1), sim::SimTime::seconds(0.5));
  EXPECT_EQ(ctl.level_for(net.router(0)), 0u);
}

TEST(ExtentMrai, LargeFailureJumpsStraightToTopLevel) {
  // Star with many leaves; kill most of them at once. The hub loses many
  // selected routes in one teardown wave and must jump to the top level
  // without stepping through intermediate ones.
  const auto g = bgp::testing::star(12);
  auto ctl = std::make_shared<ExtentMrai>(ExtentMraiParams{});
  bgp::Network net{g, deterministic_config(), ctl, 1};
  net.start();
  net.run_to_quiescence();
  EXPECT_EQ(ctl->level_for(net.router(0)), 0u);
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net.fail_nodes({2, 3, 4, 5, 6, 7, 8, 9, 10});
  });
  net.run_to_quiescence();
  // Right after the teardown the hub's loss count exceeded the top
  // threshold (8): check the signal was recorded (it decays afterwards, so
  // assert on the router's counter having moved rather than current level).
  EXPECT_GE(net.router(0).recent_route_losses(), 0.0);
  EXPECT_FALSE(net.router(1).best(5).has_value());
}

TEST(ExtentMrai, LevelTracksRecentLossCount) {
  // Drive level_for directly through a scripted mid-simulation check.
  const auto g = bgp::testing::star(12);
  auto ctl = std::make_shared<ExtentMrai>(ExtentMraiParams{});
  bgp::Network net{g, deterministic_config(), ctl, 1};
  net.start();
  net.run_to_quiescence();
  std::size_t level_at_teardown = 0;
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net.fail_nodes({2, 3, 4, 5, 6, 7, 8, 9, 10});
  });
  // Probe shortly after the teardown work is processed (9 peer-down items
  // at 1 ms each).
  net.scheduler().schedule_after(sim::SimTime::seconds(1.1), [&] {
    level_at_teardown = ctl->level_for(net.router(0));
  });
  net.run_to_quiescence();
  EXPECT_EQ(level_at_teardown, 2u);  // 9 losses >= threshold 8 => top level
}

TEST(ExtentMrai, EndToEndExperimentConverges) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 40;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::extent_mrai();
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_GT(r.convergence_delay_s, 0.0);
}

}  // namespace
}  // namespace bgpsim::schemes
