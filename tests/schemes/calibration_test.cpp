#include "schemes/calibration.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace bgpsim::schemes {
namespace {

TEST(EstimateOptimalMrai, ScalesWithAllFactors) {
  const auto base =
      estimate_optimal_mrai(8, 120, 0.05, sim::SimTime::from_us(15500));
  // Twice the hub degree -> twice the knee; same for failure size and
  // processing delay.
  EXPECT_EQ(estimate_optimal_mrai(16, 120, 0.05, sim::SimTime::from_us(15500)).ns(),
            2 * base.ns());
  EXPECT_EQ(estimate_optimal_mrai(8, 120, 0.10, sim::SimTime::from_us(15500)).ns(),
            2 * base.ns());
  EXPECT_EQ(estimate_optimal_mrai(8, 120, 0.05, sim::SimTime::from_us(31000)).ns(),
            2 * base.ns());
}

TEST(EstimateOptimalMrai, PaperRegimeValues) {
  // 70-30 topology: hubs of degree 8, 120 prefixes, E[proc]=15.5 ms.
  const auto proc = sim::SimTime::from_us(15500);
  // 1%: well under the deployable floor -- the measured optimum is 0.5 s.
  EXPECT_LT(estimate_optimal_mrai(8, 120, 0.01, proc), sim::SimTime::seconds(0.5));
  // 15%: ~2.2 s, right at the paper's 2.25 s level for 10-20% failures.
  const auto large = estimate_optimal_mrai(8, 120, 0.15, proc);
  EXPECT_GT(large, sim::SimTime::seconds(1.8));
  EXPECT_LT(large, sim::SimTime::seconds(2.7));
}

TEST(SuggestDynamicParams, ProducesValidControllerParams) {
  CalibrationInput input;  // paper defaults
  const auto params = suggest_dynamic_params(input);
  ASSERT_EQ(params.levels.size(), 3u);
  EXPECT_LT(params.levels[0], params.levels[1]);
  EXPECT_LT(params.levels[1], params.levels[2]);
  EXPECT_LT(params.down_th, params.up_th);
  EXPECT_GE(params.levels[0], sim::SimTime::seconds(0.5));
  // The constructor validates too -- must not throw.
  DynamicMrai controller{params};
}

TEST(SuggestDynamicParams, LevelsNearThePapersChoice) {
  // For the paper's 120-node 70-30 setup the suggested set should resemble
  // {0.5, 1.25, 2.25} s: same floor, same order of magnitude steps.
  const auto params = suggest_dynamic_params(CalibrationInput{});
  EXPECT_EQ(params.levels[0], sim::SimTime::seconds(0.5));
  EXPECT_GT(params.levels[1], sim::SimTime::seconds(0.5));
  EXPECT_LT(params.levels[1], sim::SimTime::seconds(1.6));
  EXPECT_GT(params.levels[2], sim::SimTime::seconds(1.5));
  EXPECT_LT(params.levels[2], sim::SimTime::seconds(3.0));
}

TEST(SuggestDynamicParams, GraphOverloadReadsTopology) {
  sim::Rng rng{3};
  auto degrees = topo::skewed_sequence(120, topo::SkewSpec::s85_15(), rng);
  const auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  const auto params = suggest_dynamic_params(g, sim::SimTime::from_us(15500));
  // Degree-14 hubs => larger knees than the 70-30 defaults.
  const auto base = suggest_dynamic_params(CalibrationInput{});
  EXPECT_GT(params.levels[2], base.levels[2]);
}

TEST(SuggestDynamicParams, CalibratedControllerWorksEndToEnd) {
  // Use the analytic parameters (no measurement campaign) in a real run:
  // it must stay near the lower envelope like the hand-tuned set.
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.10;
  CalibrationInput input;
  input.num_prefixes = 60;
  cfg.scheme = harness::SchemeSpec::dynamic_mrai(suggest_dynamic_params(input));
  const auto calibrated = harness::run_experiment(cfg);
  EXPECT_TRUE(calibrated.routes_valid) << calibrated.audit_error;

  cfg.scheme = harness::SchemeSpec::constant(0.5);
  const auto low = harness::run_experiment(cfg);
  EXPECT_LT(calibrated.convergence_delay_s, low.convergence_delay_s);
}

}  // namespace
}  // namespace bgpsim::schemes
