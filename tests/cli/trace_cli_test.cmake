# End-to-end CLI test: capture a dynamic-MRAI run with bgpsim_run, then
# drive every trace_inspect subcommand over the artifacts. Run by ctest as
#   cmake -DBGPSIM_RUN=... -DTRACE_INSPECT=... -DWORK_DIR=... -P this_file
#
# Fails (FATAL_ERROR) on any nonzero exit or missing output marker.

foreach(var BGPSIM_RUN TRACE_INSPECT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace "${WORK_DIR}/run.bgtr")
set(telemetry "${WORK_DIR}/run.bgtl")
set(profile "${WORK_DIR}/run_profile.json")
set(perfetto "${WORK_DIR}/run_perfetto.json")

function(run_checked label expect_substring)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: exit ${rc}\nstdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT expect_substring STREQUAL "")
    string(FIND "${out}" "${expect_substring}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "${label}: expected '${expect_substring}' in output:\n${out}")
    endif()
  endif()
endfunction()

# A small but fig07-shaped capture: dynamic MRAI, 20% failure, one seed.
run_checked("bgpsim_run capture" "" "${BGPSIM_RUN}"
  --n 60 --scheme dynamic --failure 0.2 --seeds 1 --no-jitter
  --trace "${trace}" --telemetry "${telemetry}" --profile "${profile}")
foreach(artifact "${trace}" "${telemetry}" "${profile}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bgpsim_run did not produce ${artifact}")
  endif()
endforeach()

# summary understands both formats by magic.
run_checked("summary trace" "update-sent" "${TRACE_INSPECT}" summary "${trace}")
run_checked("summary telemetry" "peak overloaded routers" "${TRACE_INSPECT}" summary "${telemetry}")

# filter narrows by kind/router/time window.
run_checked("filter" "mrai-started" "${TRACE_INSPECT}" filter "${trace}"
  --kind mrai-started --limit 3)

# jsonl export (to a file -- stdout would be megabytes), perfetto export
# merges the telemetry counters.
set(jsonl "${WORK_DIR}/run.jsonl")
run_checked("export jsonl" "" "${TRACE_INSPECT}" export "${trace}" --out "${jsonl}")
file(READ "${jsonl}" jsonl_head LIMIT 200)
string(FIND "${jsonl_head}" "\"kind\":" found)
if(found EQUAL -1)
  message(FATAL_ERROR "jsonl export missing \"kind\": in first bytes: ${jsonl_head}")
endif()
run_checked("export perfetto" "" "${TRACE_INSPECT}" export "${trace}"
  --format perfetto --telemetry "${telemetry}" --out "${perfetto}")
file(READ "${perfetto}" perfetto_json)
foreach(marker "\"traceEvents\"" "\"cat\":\"mrai\"" "\"cat\":\"batch\"" "\"name\":\"network\"")
  string(FIND "${perfetto_json}" "${marker}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "perfetto export missing ${marker}")
  endif()
endforeach()

# A trace always matches itself; diff exits 0 and says so.
run_checked("diff self" "traces match" "${TRACE_INSPECT}" diff "${trace}" "${trace}")

# Series extraction: the fig. 7 question from the command line.
run_checked("telemetry series" "t_s,unfinished_work" "${TRACE_INSPECT}" telemetry "${telemetry}"
  --router 0 --metric unfinished_work --format csv)

message(STATUS "trace CLI end-to-end: all checks passed")
