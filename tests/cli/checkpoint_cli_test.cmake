# End-to-end checkpoint CLI test: write a snapshot with bgpsim_run
# --checkpoint, restore it with --restore, run the sweep warm, inspect and
# diff the .bgck artifacts, and exercise the journal/resume path including a
# genuine mid-grid kill (BGPSIM_TEST_KILL_AFTER). Run by ctest as
#   cmake -DBGPSIM_RUN=... -DCHECKPOINT_INSPECT=... -DWORK_DIR=... -P this_file
#
# Every mode's CSV output must be byte-identical to the cold reference run:
# checkpoint/restore may never change a simulated result.

foreach(var BGPSIM_RUN CHECKPOINT_INSPECT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(snap "${WORK_DIR}/base.bgck")
set(snap2 "${WORK_DIR}/other.bgck")
set(journal "${WORK_DIR}/sweep.jsonl")
set(grid --n 40 --failure 0.10 --seeds 3 --csv)

# Runs a command, requires exit code `expect_rc`, optionally requires a
# substring in stdout+stderr, and stores stdout in `outvar`.
function(run_expect label expect_rc expect_substring outvar)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "${label}: exit ${rc} (expected ${expect_rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT expect_substring STREQUAL "")
    string(FIND "${out}${err}" "${expect_substring}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "${label}: expected '${expect_substring}' in output:\nstdout: ${out}\nstderr: ${err}")
    endif()
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

function(require_identical label got want)
  if(NOT got STREQUAL want)
    message(FATAL_ERROR "${label}: output differs from the cold reference\ngot:\n${got}\nwant:\n${want}")
  endif()
endfunction()

# Cold reference sweep.
run_expect("cold reference" 0 "" cold ${BGPSIM_RUN} ${grid})

# --checkpoint writes the base seed's snapshot and still reports the full
# (bit-identical) sweep.
run_expect("checkpoint write" 0 "checkpoint:" ck_out ${BGPSIM_RUN} ${grid} --checkpoint "${snap}")
require_identical("checkpoint write results" "${ck_out}" "${cold}")
if(NOT EXISTS "${snap}")
  message(FATAL_ERROR "bgpsim_run --checkpoint did not produce ${snap}")
endif()

# --restore warm-starts the base seed from the snapshot.
run_expect("restore" 0 "" restore_out ${BGPSIM_RUN} ${grid} --restore "${snap}")
require_identical("restore results" "${restore_out}" "${cold}")

# --warm runs the whole sweep from grouped snapshots.
run_expect("warm sweep" 0 "" warm_out ${BGPSIM_RUN} ${grid} --warm)
require_identical("warm sweep results" "${warm_out}" "${cold}")

# inspect prints the header and content summary; a snapshot diffs equal to
# itself and unequal to a different seed's.
run_expect("inspect" 0 "checkpoint v1" inspect_out ${CHECKPOINT_INSPECT} inspect "${snap}")
string(FIND "${inspect_out}" "rib digest:" found)
if(found EQUAL -1)
  message(FATAL_ERROR "inspect output missing rib digest:\n${inspect_out}")
endif()
run_expect("diff self" 0 "identical" diff_out ${CHECKPOINT_INSPECT} diff "${snap}" "${snap}")
run_expect("other-seed snapshot" 0 "" ck2_out
  ${BGPSIM_RUN} ${grid} --seed 2 --checkpoint "${snap2}")
run_expect("diff other" 1 "differ" diff2_out ${CHECKPOINT_INSPECT} diff "${snap}" "${snap2}")

# Corrupt snapshots are rejected cleanly (exit 2, no crash): a missing file
# and a non-checkpoint file here; the truncated-at-every-offset matrix lives
# in Checkpoint.DecodeRejectsCorruption.
run_expect("restore missing file" 2 "error:" miss_out
  ${BGPSIM_RUN} ${grid} --restore "${WORK_DIR}/nope.bgck")
file(WRITE "${WORK_DIR}/garbage.bgck" "this is not a checkpoint file")
run_expect("restore garbage" 2 "error:" garbage_out
  ${BGPSIM_RUN} ${grid} --restore "${WORK_DIR}/garbage.bgck")
run_expect("inspect garbage" 2 "error:" garbage_inspect
  ${CHECKPOINT_INSPECT} inspect "${WORK_DIR}/garbage.bgck")

# Conflicting/invalid flag combinations are refused up front.
run_expect("resume without journal" 2 "--resume requires --journal" usage_out
  ${BGPSIM_RUN} ${grid} --resume)
run_expect("trace with warm" 2 "cannot be combined" trace_out
  ${BGPSIM_RUN} ${grid} --warm --trace "${WORK_DIR}/x.bgtr")

# Journaled sweep: kill the process mid-grid after the first journal append
# (the test hook calls _Exit(42)), then --resume completes only the missing
# runs and reproduces the cold results.
run_expect("killed sweep" 42 "" kill_out ${CMAKE_COMMAND} -E env BGPSIM_TEST_KILL_AFTER=1
  ${BGPSIM_RUN} ${grid} --journal "${journal}")
file(STRINGS "${journal}" journal_lines)
list(LENGTH journal_lines n_lines)
if(NOT n_lines EQUAL 1)
  message(FATAL_ERROR "killed sweep journaled ${n_lines} runs (expected 1)")
endif()
run_expect("resume after kill" 0 "" resume_out ${BGPSIM_RUN} ${grid} --journal "${journal}" --resume)
require_identical("resume results" "${resume_out}" "${cold}")
file(STRINGS "${journal}" journal_lines)
list(LENGTH journal_lines n_lines)
if(NOT n_lines EQUAL 3)
  message(FATAL_ERROR "resumed journal has ${n_lines} lines (expected 3)")
endif()
# A second resume has nothing left to do and still reports the full sweep.
run_expect("resume no-op" 0 "" resume2_out ${BGPSIM_RUN} ${grid} --journal "${journal}" --resume)
require_identical("resume no-op results" "${resume2_out}" "${cold}")

message(STATUS "checkpoint CLI end-to-end: all checks passed")
