// Route-flap damping (RFC 2439): penalty accumulation, suppression,
// exponential decay and reuse.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;

BgpConfig damped_config(double half_life_s = 5.0) {
  auto cfg = deterministic_config();
  cfg.damping.enabled = true;
  cfg.damping.half_life_s = half_life_s;
  cfg.damping.suppress_threshold = 3.0;
  cfg.damping.reuse_threshold = 1.0;
  return cfg;
}

/// Drives a flapping prefix into router 0 (line 0-1) by alternating
/// adverts and withdrawals from peer 1.
struct FlapHarness {
  explicit FlapHarness(BgpConfig cfg)
      : graph{testing::line(2)},
        net{graph, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.1)), 1} {}

  /// Queues `times` advert+withdraw pairs and processes them. Runs for a
  /// bounded time (not to quiescence) so a scheduled far-future reuse check
  /// does not release the suppression under test.
  void flap(Prefix p, int times) {
    for (int i = 0; i < times; ++i) {
      UpdateMessage adv;
      adv.from = 1;
      adv.to = 0;
      adv.prefix = p;
      adv.path = path_make(net.paths(), AsPath{{1, static_cast<AsId>(100 + i)}});
      net.router(0).deliver(adv);
      UpdateMessage wdr = adv;
      wdr.withdraw = true;
      net.router(0).deliver(wdr);
    }
    net.scheduler().run_until(net.scheduler().now() + sim::SimTime::seconds(1.0));
  }

  topo::Graph graph;
  Network net;
};

TEST(Damping, FlappingRouteGetsSuppressed) {
  FlapHarness h{damped_config(/*half_life_s=*/1000.0)};  // negligible decay
  CountingSink sink;
  h.net.set_trace_sink(&sink);
  h.flap(5, 4);  // 4 x (attr change? + withdrawal): plenty of penalty
  EXPECT_GE(sink.count(TraceEvent::Kind::kRouteSuppressed), 1u);
  // A fresh advert is applied to the Adj-RIB-In but stays ineligible.
  UpdateMessage adv;
  adv.from = 1;
  adv.to = 0;
  adv.prefix = 5;
  adv.path = path_make(h.net.paths(), AsPath{{1, 99}});
  h.net.router(0).deliver(adv);
  h.net.scheduler().run_until(h.net.scheduler().now() + sim::SimTime::seconds(1.0));
  EXPECT_TRUE(h.net.router(0).adj_in(1, 5).has_value());
  EXPECT_FALSE(h.net.router(0).best(5).has_value());  // suppressed
}

TEST(Damping, SuppressedRouteIsReusedAfterDecay) {
  FlapHarness h{damped_config(/*half_life_s=*/2.0)};
  CountingSink sink;
  h.net.set_trace_sink(&sink);
  h.flap(5, 4);
  // Leave a valid route in the Adj-RIB-In.
  UpdateMessage adv;
  adv.from = 1;
  adv.to = 0;
  adv.prefix = 5;
  adv.path = path_make(h.net.paths(), AsPath{{1, 99}});
  h.net.router(0).deliver(adv);
  h.net.run_to_quiescence();  // runs through the reuse timer
  EXPECT_GE(sink.count(TraceEvent::Kind::kRouteReused), 1u);
  const auto best = h.net.router(0).best(5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->path, AsPath({1, 99}));
}

TEST(Damping, StableRoutesAreNeverSuppressed) {
  auto cfg = damped_config();
  const auto g = testing::line(4);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  CountingSink sink;
  net.set_trace_sink(&sink);
  net.start();
  net.run_to_quiescence();
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRouteSuppressed), 0u);
  for (NodeId v = 0; v < 4; ++v) {
    for (Prefix p = 0; p < 4; ++p) EXPECT_TRUE(net.router(v).best(p).has_value());
  }
}

TEST(Damping, DisabledByDefault) {
  BgpConfig cfg;
  EXPECT_FALSE(cfg.damping.enabled);
  FlapHarness h{deterministic_config()};
  CountingSink sink;
  h.net.set_trace_sink(&sink);
  h.flap(5, 10);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRouteSuppressed), 0u);
}

TEST(Damping, PrunesExplorationMessages) {
  // Suppressing flapping alternatives cuts the update volume of the
  // post-failure exploration substantially (robust across seeds).
  // Exploration-heavy regime: low MRAI + sizeable failure, where backup
  // paths churn enough to accumulate penalties.
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.15;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  const auto plain = harness::run_averaged(cfg, 3);
  cfg.bgp.damping.enabled = true;
  cfg.bgp.damping.half_life_s = 10.0;
  const auto damped = harness::run_averaged(cfg, 3);
  EXPECT_LT(damped.messages.mean, plain.messages.mean);
  EXPECT_EQ(damped.valid_fraction, 1.0);
}

TEST(Damping, SuppressingTheLastRouteDelaysReachability) {
  // Mao et al.'s damping penalty: when the only remaining route to a
  // prefix has been suppressed, the prefix stays unreachable until the
  // penalty decays to the reuse threshold -- long after the route itself
  // is stable.
  FlapHarness h{damped_config(/*half_life_s=*/4.0)};
  h.flap(5, 4);  // suppress (prefix 5 via peer 1)
  // The route stabilises now: one final advert.
  UpdateMessage adv;
  adv.from = 1;
  adv.to = 0;
  adv.prefix = 5;
  adv.path = path_make(h.net.paths(), AsPath{{1, 99}});
  h.net.router(0).deliver(adv);
  const auto t_stable = h.net.scheduler().now();
  h.net.run_to_quiescence();
  const auto best = h.net.router(0).best(5);
  ASSERT_TRUE(best.has_value());
  // Reachability returned only after the reuse delay (penalty ~4 with
  // reuse threshold 1 and half-life 4s => ~8s), not at t_stable.
  const double gap = (h.net.metrics().last_rib_change - t_stable).to_seconds();
  EXPECT_GT(gap, 2.0);
}

TEST(Damping, NetworkStillConvergesToValidRoutes) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 40;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(1.25);
  cfg.bgp.damping.enabled = true;
  cfg.bgp.damping.half_life_s = 5.0;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
}

}  // namespace
}  // namespace bgpsim::bgp
