// Protocol-behaviour tests on tiny hand-built topologies with fully
// deterministic timing (1 ms processing, 25 ms links, no jitter), so exact
// event times and RIB contents can be asserted.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::line;
using testing::star;

std::unique_ptr<Network> make_net(const topo::Graph& g, double mrai_s,
                                  BgpConfig cfg = deterministic_config()) {
  return std::make_unique<Network>(
      g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(mrai_s)), /*seed=*/1);
}

TEST(NetworkBasic, TwoNodesLearnEachOther) {
  const auto g = line(2);
  auto net = make_net(g, 10.0);
  net->start();
  net->run_to_quiescence();
  // Node 1 learned prefix 0 with the path node 0 sent: [0].
  const auto r = net->router(1).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, AsPath({0}));
  EXPECT_EQ(r->learned_from, 0u);
  EXPECT_TRUE(r->ebgp_learned);
  // And symmetrically.
  ASSERT_TRUE(net->router(0).best(1).has_value());
  // Local routes stay local.
  EXPECT_TRUE(net->router(0).best(0)->local);
}

TEST(NetworkBasic, FirstAdvertisementIsImmediate) {
  // Origination at t=0, link 25 ms, processing 1 ms: the neighbor's RIB
  // change lands at exactly 26 ms even with a huge MRAI.
  const auto g = line(2);
  auto net = make_net(g, 1000.0);
  net->start();
  net->run_to_quiescence();
  EXPECT_EQ(net->metrics().last_rib_change, sim::SimTime::from_ms(26));
}

TEST(NetworkBasic, PathsArePrependedHopByHop) {
  const auto g = line(4);  // 0-1-2-3
  auto net = make_net(g, 0.1);
  net->start();
  net->run_to_quiescence();
  const auto r = net->router(3).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, AsPath({2, 1, 0}));
  EXPECT_EQ(r->learned_from, 2u);
}

TEST(NetworkBasic, NoAdvertisementBackToTheSender) {
  const auto g = line(2);
  auto net = make_net(g, 0.1);
  net->start();
  net->run_to_quiescence();
  // Node 1's best route for prefix 0 came from node 0; node 1 must not have
  // advertised anything for prefix 0 back to node 0.
  EXPECT_FALSE(net->router(1).adj_out(0, 0).has_value());
  EXPECT_FALSE(net->router(0).adj_in(1, 0).has_value());
}

TEST(NetworkBasic, AdjInNeverContainsOwnAs) {
  const auto g = testing::clique(5);
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  for (NodeId v = 0; v < 5; ++v) {
    for (const auto peer : net->router(v).peers()) {
      for (Prefix p = 0; p < 5; ++p) {
        const auto path = net->router(v).adj_in(peer, p);
        if (path) {
          EXPECT_FALSE(path->contains(v)) << "router " << v << " stored a looped path";
        }
      }
    }
  }
}

TEST(NetworkBasic, MraiHoldsSubsequentAdvertisements) {
  // Hub-and-spoke: the hub's first update to each leaf (its own prefix, at
  // t=0) starts the per-peer timer; the leaf prefixes it learns at ~26 ms
  // must wait for the timer. With MRAI=10 s the leaves learn each other's
  // prefixes only after ~10 s.
  const auto g = star(4);
  auto net = make_net(g, 10.0);
  net->start();
  net->scheduler().run_until(sim::SimTime::seconds(5.0));
  // Mid-flight: leaf 1 knows its own prefix and the hub's, nothing else.
  EXPECT_TRUE(net->router(1).best(1)->local);
  EXPECT_TRUE(net->router(1).best(0).has_value());
  EXPECT_FALSE(net->router(1).best(2).has_value());
  EXPECT_FALSE(net->router(1).best(3).has_value());
  net->run_to_quiescence();
  // After the timers expire everyone knows everything.
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    for (Prefix p = 0; p <= 4; ++p) {
      EXPECT_TRUE(net->router(leaf).best(p).has_value()) << "leaf " << leaf << " prefix " << p;
    }
  }
  const auto t = net->metrics().last_rib_change;
  EXPECT_GT(t, sim::SimTime::seconds(10.0));
  EXPECT_LT(t, sim::SimTime::seconds(10.5));
}

TEST(NetworkBasic, ZeroMraiDisablesRateLimiting) {
  const auto g = star(4);
  auto net = make_net(g, 0.0);
  net->start();
  net->run_to_quiescence();
  // Everything propagates in a few link+processing hops.
  EXPECT_LT(net->metrics().last_rib_change, sim::SimTime::from_ms(200));
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_TRUE(net->router(leaf).best(2).has_value());
  }
}

TEST(NetworkBasic, AdjOutDeduplicatesIdenticalContent) {
  const auto g = line(3);
  auto net = make_net(g, 0.1);
  net->start();
  net->run_to_quiescence();
  const auto sent_once = net->metrics().updates_sent;
  // Quiescent network: no pending changes anywhere, so nothing more is sent.
  net->run_to_quiescence();
  EXPECT_EQ(net->metrics().updates_sent, sent_once);
  // Each advertisement was counted.
  EXPECT_GT(sent_once, 0u);
  EXPECT_EQ(net->metrics().adverts_sent + net->metrics().withdrawals_sent, sent_once);
}

TEST(NetworkBasic, TimerJitterShortensIntervals) {
  // With jitter on, the star scenario's held advertisements flush earlier
  // than the configured MRAI but no earlier than 75% of it.
  auto cfg = deterministic_config();
  cfg.jitter_timers = true;
  const auto g = star(4);
  auto net = make_net(g, 10.0, cfg);
  net->start();
  net->run_to_quiescence();
  const auto t = net->metrics().last_rib_change;
  EXPECT_GT(t, sim::SimTime::seconds(7.5));
  EXPECT_LT(t, sim::SimTime::seconds(10.5));
}

TEST(NetworkBasic, ShortestPathWinsOverLonger) {
  // Square with a chord: 0-1-2-3-0. Node 2 reaches prefix 0 via 1 or 3
  // (both length 2); node 1 is the lower sender id and wins the tie.
  topo::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  auto net = make_net(g, 0.1);
  net->start();
  net->run_to_quiescence();
  const auto r = net->router(2).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path.length(), 2u);
  EXPECT_EQ(r->learned_from, 1u);
}

TEST(NetworkBasic, OriginationSpreadStaysWithinWindow) {
  auto cfg = deterministic_config();
  cfg.origination_spread = sim::SimTime::seconds(1.0);
  const auto g = line(2);
  auto net = make_net(g, 10.0, cfg);
  net->start();
  // Originations (the only initial events) all land within the window.
  net->scheduler().run_until(sim::SimTime::seconds(1.0));
  EXPECT_TRUE(net->router(0).best(0).has_value());
  EXPECT_TRUE(net->router(1).best(1).has_value());
}

TEST(NetworkBasic, MessageCountsAreConsistent) {
  const auto g = testing::ring(6);
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  const auto& m = net->metrics();
  EXPECT_EQ(m.updates_sent, m.adverts_sent + m.withdrawals_sent);
  EXPECT_EQ(m.withdrawals_sent, 0u);  // nothing failed
  EXPECT_GE(m.messages_processed, 1u);
  EXPECT_GT(m.rib_changes, 0u);
}

TEST(NetworkBasic, RejectsNullController) {
  const auto g = line(2);
  EXPECT_THROW(Network(g, deterministic_config(), nullptr, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bgpsim::bgp
