// Gao-Rexford policy routing: customer-preference selection, valley-free
// export, and end-to-end valley-freeness of every converged path.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "bgp/network.hpp"
#include "topo/degree_sequence.hpp"
#include "topo/relations.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;

TEST(RelationRank, CustomerBeforePeerBeforeProvider) {
  EXPECT_LT(relation_rank(PeerRelation::kCustomer), relation_rank(PeerRelation::kPeer));
  EXPECT_LT(relation_rank(PeerRelation::kPeer), relation_rank(PeerRelation::kProvider));
  EXPECT_EQ(relation_rank(PeerRelation::kNone), relation_rank(PeerRelation::kPeer));
}

TEST(BetterRoute, CustomerRouteBeatsShorterProviderRoute) {
  RouteEntry customer;
  customer.path = AsPath{{1, 2, 3}};
  customer.learned_from = 9;
  customer.ebgp_learned = true;
  customer.learned_rel = PeerRelation::kCustomer;
  RouteEntry provider;
  provider.path = AsPath{{4}};
  provider.learned_from = 1;
  provider.ebgp_learned = true;
  provider.learned_rel = PeerRelation::kProvider;
  EXPECT_TRUE(better_route(customer, provider));
  EXPECT_FALSE(better_route(provider, customer));
}

/// Diamond: 0 is the top provider; 1 and 2 are its customers; 3 is a
/// customer of both 1 and 2; 1-2 are peers.
topo::AsRelGraph diamond() {
  std::stringstream ss{
      "0|1|-1\n"
      "0|2|-1\n"
      "1|3|-1\n"
      "2|3|-1\n"
      "1|2|0\n"};
  return topo::load_as_rel(ss);
}

std::unique_ptr<Network> policy_net(const topo::AsRelGraph& ar) {
  auto net = std::make_unique<Network>(
      ar, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.2)),
      1);
  net->start();
  net->run_to_quiescence();
  return net;
}

TEST(Policy, CustomerRoutePreferred) {
  const auto ar = diamond();
  auto net = policy_net(ar);
  // Node 1 can reach prefix 3 via its customer 3 directly (and only so).
  const auto r13 = net->router(1).best(3);
  ASSERT_TRUE(r13.has_value());
  EXPECT_EQ(r13->learned_rel, PeerRelation::kCustomer);
  EXPECT_EQ(r13->learned_from, 3u);
  // Node 0 reaches 3 via one of its customers, never via a peer of a peer.
  const auto r03 = net->router(0).best(3);
  ASSERT_TRUE(r03.has_value());
  EXPECT_EQ(r03->learned_rel, PeerRelation::kCustomer);
}

TEST(Policy, PeerRoutesNotExportedToPeersOrProviders) {
  const auto ar = diamond();
  auto net = policy_net(ar);
  // Node 1 learns prefix 2 from its peer 2; it must not have advertised it
  // to its provider 0 (0 reaches 2 via its own customer session).
  EXPECT_FALSE(net->router(1).adj_out(0, 2).has_value());
  // But it does advertise the peer route down to its customer 3.
  EXPECT_TRUE(net->router(1).adj_out(3, 2).has_value());
}

TEST(Policy, ProviderRoutesOnlyGoDown) {
  const auto ar = diamond();
  auto net = policy_net(ar);
  // Node 1 learns prefix 0 from its provider 0; it exports it to customer 3
  // but not to peer 2.
  EXPECT_TRUE(net->router(1).adj_out(3, 0).has_value());
  EXPECT_FALSE(net->router(1).adj_out(2, 0).has_value());
}

TEST(Policy, FullReachabilityInADiamond) {
  // Despite the export restrictions, this hierarchy leaves everyone
  // reachable from everyone (customer chains + one peering level).
  const auto ar = diamond();
  auto net = policy_net(ar);
  for (NodeId v = 0; v < 4; ++v) {
    for (Prefix p = 0; p < 4; ++p) {
      EXPECT_TRUE(net->router(v).best(p).has_value()) << v << " -> " << p;
    }
  }
}

/// Checks valley-freeness of the converged next-hop chain for (router,
/// prefix): at every intermediate node, either the route was learned from a
/// customer, or it is being passed to a customer.
void expect_valley_free(Network& net, const topo::AsRelGraph& ar, NodeId v, Prefix p) {
  std::vector<NodeId> chain{v};
  NodeId cur = v;
  while (true) {
    const auto e = net.router(cur).best(p);
    ASSERT_TRUE(e.has_value());
    if (e->local) break;
    cur = e->learned_from;
    chain.push_back(cur);
    ASSERT_LE(chain.size(), net.size());
  }
  // chain = v0 (=v) ... vk (origin). Advertisement flowed vk -> ... -> v0.
  for (std::size_t i = 1; i + 1 < chain.size(); ++i) {
    const NodeId vi = chain[i];
    const NodeId from = chain[i + 1];   // vi learned the route from here
    const NodeId to = chain[i - 1];     // and exported it to here
    const bool learned_from_customer = ar.is_provider(vi, from);
    const bool exported_to_customer = ar.is_provider(vi, to);
    EXPECT_TRUE(learned_from_customer || exported_to_customer)
        << "valley at node " << vi << " (prefix " << p << ")";
  }
}

TEST(Policy, AllConvergedPathsAreValleyFree) {
  // A 40-node skewed graph with degree-inferred relations.
  sim::Rng rng{5};
  auto degrees = topo::skewed_sequence(40, topo::SkewSpec::s70_30(), rng);
  auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  g.place_randomly(1000, 1000, rng);
  const auto ar = topo::infer_relations(g, /*peer_tolerance=*/0);
  auto net = policy_net(ar);
  for (NodeId v = 0; v < net->size(); ++v) {
    // Tier-1 completion makes every prefix reachable over valley-free paths.
    EXPECT_EQ(net->router(v).known_prefixes().size(), net->size()) << "router " << v;
    for (const auto p : net->router(v).known_prefixes()) {
      expect_valley_free(*net, ar, v, p);
    }
  }
}

TEST(Policy, ConvergesAfterFailureWithValidChains) {
  sim::Rng rng{6};
  auto degrees = topo::skewed_sequence(40, topo::SkewSpec::s70_30(), rng);
  auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  g.place_randomly(1000, 1000, rng);
  const auto ar = topo::infer_relations(g);
  auto net = policy_net(ar);
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net->fail_nodes({0, 1, 2, 3});
  });
  net->run_to_quiescence();
  // No routes to dead prefixes; all chains valley-free and terminating.
  for (const auto v : net->alive_nodes()) {
    for (const auto p : net->router(v).known_prefixes()) {
      EXPECT_GE(p, 4u) << "route to dead prefix at router " << v;
      expect_valley_free(*net, ar, v, p);
    }
  }
}

TEST(Policy, InferRelationsIsAcyclicAndComplete) {
  sim::Rng rng{7};
  auto degrees = topo::skewed_sequence(60, topo::SkewSpec::s70_30(), rng);
  const auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  const auto ar = topo::infer_relations(g, /*peer_tolerance=*/1);
  // Every original edge survives; the only additions are the tier-1 mesh.
  for (const auto& [a, b] : g.edges()) EXPECT_TRUE(ar.graph.has_edge(a, b));
  EXPECT_GE(ar.graph.edge_count(), g.edge_count());
  // Provider edges point "up" a strict order: no 2-cycles possible, and
  // every provider has at least the degree of its customer.
  for (const auto& [key, provider] : ar.provider) {
    const auto a = static_cast<topo::NodeId>(key >> 32);
    const auto b = static_cast<topo::NodeId>(key & 0xFFFFFFFF);
    const auto customer = provider == a ? b : a;
    EXPECT_GE(g.degree(provider) + 1, g.degree(customer));
  }
  // After tier-1 completion, every AS either has a provider or is in the
  // (mutually peered) top mesh, so valley-free reachability is complete.
}

}  // namespace
}  // namespace bgpsim::bgp
