#include "bgp/types.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(AsPath, EmptyPath) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_FALSE(p.contains(1));
  EXPECT_EQ(p.to_string(), "[]");
}

TEST(AsPath, ContainsAndLength) {
  AsPath p{{3, 7, 9}};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_TRUE(p.contains(7));
  EXPECT_FALSE(p.contains(4));
}

TEST(AsPath, PrependedDoesNotMutate) {
  AsPath p{{5}};
  const AsPath q = p.prepended(2);
  EXPECT_EQ(p.length(), 1u);
  EXPECT_EQ(q.hops(), (std::vector<AsId>{2, 5}));
}

TEST(AsPath, EqualityIsStructural) {
  EXPECT_EQ(AsPath({1, 2}), AsPath({1, 2}));
  EXPECT_NE(AsPath({1, 2}), AsPath({2, 1}));
  EXPECT_NE(AsPath({1}), AsPath{});
}

TEST(AsPath, ToString) {
  EXPECT_EQ(AsPath({10, 20}).to_string(), "[10 20]");
}

RouteEntry learned(std::vector<AsId> hops, NodeId from, bool ebgp) {
  RouteEntry e;
  e.path = AsPath{std::move(hops)};
  e.learned_from = from;
  e.ebgp_learned = ebgp;
  return e;
}

TEST(BetterRoute, LocalBeatsEverything) {
  RouteEntry local;
  local.local = true;
  EXPECT_TRUE(better_route(local, learned({1}, 5, true)));
  EXPECT_FALSE(better_route(learned({1}, 5, true), local));
}

TEST(BetterRoute, ShorterPathWins) {
  EXPECT_TRUE(better_route(learned({1}, 9, true), learned({2, 3}, 1, true)));
  EXPECT_FALSE(better_route(learned({2, 3}, 1, true), learned({1}, 9, true)));
}

TEST(BetterRoute, EbgpBreaksLengthTie) {
  EXPECT_TRUE(better_route(learned({1, 2}, 9, true), learned({3, 4}, 1, false)));
}

TEST(BetterRoute, LowestSenderBreaksFinalTie) {
  EXPECT_TRUE(better_route(learned({1, 2}, 3, true), learned({5, 6}, 7, true)));
  EXPECT_FALSE(better_route(learned({1, 2}, 7, true), learned({5, 6}, 3, true)));
}

TEST(BetterRoute, IsAStrictOrder) {
  const auto a = learned({1, 2}, 3, true);
  EXPECT_FALSE(better_route(a, a));
}

TEST(RouteEntry, AsHopsCountsLocalAsZero) {
  RouteEntry local;
  local.local = true;
  local.path = AsPath{{1, 2, 3}};  // ignored for local routes
  EXPECT_EQ(local.as_hops(), 0u);
  EXPECT_EQ(learned({4, 5}, 0, true).as_hops(), 2u);
}

}  // namespace
}  // namespace bgpsim::bgp
