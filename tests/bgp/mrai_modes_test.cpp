// MRAI policy plumbing: per-node overrides (degree-dependent scheme) and
// the per-destination timer mode kept for ablation.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "schemes/degree_mrai.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::star;

TEST(FixedMrai, PerNodeOverrides) {
  const auto g = star(2);
  std::vector<sim::SimTime> per_node{sim::SimTime::seconds(5.0), sim::SimTime::seconds(1.0),
                                     sim::SimTime::seconds(1.0)};
  auto ctl = std::make_shared<FixedMrai>(sim::SimTime::seconds(9.0), per_node);
  Network net{g, deterministic_config(), ctl, 1};
  EXPECT_EQ(ctl->interval(net.router(0), 1), sim::SimTime::seconds(5.0));
  EXPECT_EQ(ctl->interval(net.router(1), 0), sim::SimTime::seconds(1.0));
}

TEST(FixedMrai, FallsBackToDefaultBeyondVector) {
  const auto g = star(2);
  auto ctl = std::make_shared<FixedMrai>(sim::SimTime::seconds(9.0),
                                         std::vector<sim::SimTime>{sim::SimTime::seconds(5.0)});
  Network net{g, deterministic_config(), ctl, 1};
  EXPECT_EQ(ctl->interval(net.router(2), 0), sim::SimTime::seconds(9.0));
}

TEST(DegreeDependentMrai, AssignsByThreshold) {
  // Star: hub has degree 4, leaves degree 1.
  const auto g = star(4);
  auto ctl = schemes::degree_dependent_mrai(g, /*threshold=*/4, sim::SimTime::seconds(0.5),
                                            sim::SimTime::seconds(2.25));
  Network net{g, deterministic_config(), ctl, 1};
  EXPECT_EQ(ctl->interval(net.router(0), 1), sim::SimTime::seconds(2.25));
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_EQ(ctl->interval(net.router(leaf), 0), sim::SimTime::seconds(0.5));
  }
}

TEST(PerDestinationMrai, IndependentTimersPerPrefix) {
  // In per-destination mode the hub's first advertisement of *each* prefix
  // goes out immediately (separate timers), unlike the per-peer mode where
  // later prefixes wait for the shared timer (NetworkBasic test).
  auto cfg = deterministic_config();
  cfg.per_destination_mrai = true;
  const auto g = star(4);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(10.0)), 1};
  net.start();
  net.run_to_quiescence();
  // Everything converges in tens of milliseconds despite MRAI=10 s.
  EXPECT_LT(net.metrics().last_rib_change, sim::SimTime::from_ms(200));
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    for (Prefix p = 0; p <= 4; ++p) {
      EXPECT_TRUE(net.router(leaf).best(p).has_value());
    }
  }
}

TEST(PerDestinationMrai, RepeatedChangesForOnePrefixAreHeld) {
  // Ring of 4, fail one node: the re-routing churn for a single prefix is
  // paced by that prefix's own timer. The network still converges.
  auto cfg = deterministic_config();
  cfg.per_destination_mrai = true;
  topo::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(1.0)), 1};
  net.start();
  net.run_to_quiescence();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net.fail_nodes({1}); });
  net.run_to_quiescence();
  EXPECT_EQ(net.router(2).best(0)->path, AsPath({3, 0}));
}

TEST(PerDestinationMrai, ConvergesOnCliqueFailure) {
  auto cfg = deterministic_config();
  cfg.per_destination_mrai = true;
  const auto g = testing::clique(5);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_FALSE(net.router(v).best(0).has_value());
    for (Prefix p = 1; p <= 4; ++p) EXPECT_TRUE(net.router(v).best(p).has_value());
  }
}

}  // namespace
}  // namespace bgpsim::bgp
