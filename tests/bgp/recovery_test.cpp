// Node recovery: failed routers come back with cold RIBs, sessions
// re-establish with a full table exchange, prefixes re-originate, and the
// whole network re-absorbs them.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/audit.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::line;

std::unique_ptr<Network> make_net(const topo::Graph& g, double mrai_s = 0.5) {
  return std::make_unique<Network>(
      g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(mrai_s)),
      1);
}

TEST(Recovery, FailedRouterComesBackAndRelearnsEverything) {
  const auto g = line(4);
  auto net = make_net(g);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({1}); });
  net->run_to_quiescence();
  ASSERT_FALSE(net->router(1).alive());
  ASSERT_FALSE(net->router(0).best(2).has_value());  // partitioned

  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&] { net->recover_nodes({1}); });
  net->run_to_quiescence();
  EXPECT_TRUE(net->router(1).alive());
  // Everyone knows everyone again, including across the healed cut.
  for (NodeId v = 0; v < 4; ++v) {
    for (Prefix p = 0; p < 4; ++p) {
      EXPECT_TRUE(net->router(v).best(p).has_value()) << "router " << v << " prefix " << p;
    }
  }
  EXPECT_EQ(harness::audit_routes(*net), std::nullopt);
}

TEST(Recovery, SessionsComeBackUp) {
  const auto g = line(3);
  auto net = make_net(g);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({1}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(0).peer_session_up(1));
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&] { net->recover_nodes({1}); });
  net->run_to_quiescence();
  EXPECT_TRUE(net->router(0).peer_session_up(1));
  EXPECT_TRUE(net->router(1).peer_session_up(0));
  EXPECT_TRUE(net->router(1).peer_session_up(2));
}

TEST(Recovery, SessionsToStillDeadPeersStayDown) {
  const auto g = line(4);
  auto net = make_net(g);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&] { net->fail_nodes({1, 2}); });
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&] { net->recover_nodes({1}); });  // 2 stays dead
  net->run_to_quiescence();
  EXPECT_TRUE(net->router(1).alive());
  EXPECT_TRUE(net->router(1).peer_session_up(0));
  EXPECT_FALSE(net->router(1).peer_session_up(2));
  EXPECT_TRUE(net->router(0).best(1).has_value());
  EXPECT_FALSE(net->router(0).best(3).has_value());  // still partitioned
  EXPECT_EQ(harness::audit_routes(*net), std::nullopt);
}

TEST(Recovery, TraceShowsRecoveryEvents) {
  const auto g = line(3);
  auto net = make_net(g);
  CountingSink sink;
  net->set_trace_sink(&sink);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&] { net->recover_nodes({0}); });
  net->run_to_quiescence();
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRouterRecovered), 1u);
  // Both sides of the healed session report establishment.
  EXPECT_EQ(sink.count(TraceEvent::Kind::kSessionEstablished), 2u);
}

TEST(Recovery, RecoverIsIdempotentAndAliveSafe) {
  const auto g = line(2);
  auto net = make_net(g);
  net->start();
  net->run_to_quiescence();
  net->recover_nodes({0});  // never failed: no-op
  net->run_to_quiescence();
  EXPECT_TRUE(net->router(0).alive());
  EXPECT_TRUE(net->router(1).best(0).has_value());
}

TEST(Recovery, HarnessMeasuresRecoveryFlood) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 48;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.measure_recovery = true;
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.recovery_delay_s, 0.0);
  EXPECT_GT(r.messages_after_recovery, 0u);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;  // audited after full recovery
}

TEST(Recovery, RecoveryFasterThanFailureConvergence) {
  // The Tup/Tdown asymmetry (Labovitz): absorbing good news is faster than
  // withdrawing bad news under the same overload conditions.
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.measure_recovery = true;
  const auto avg = harness::run_averaged(cfg, 3);
  double mean_recovery = 0.0;
  for (const auto& r : avg.runs) mean_recovery += r.recovery_delay_s;
  mean_recovery /= static_cast<double>(avg.runs.size());
  EXPECT_LT(mean_recovery, avg.delay.mean);
}

}  // namespace
}  // namespace bgpsim::bgp
