// Quiescent checkpoint/restore: round-trip byte identity, continuation
// identity through failure/recovery, and rejection of corrupted, truncated
// or mismatched checkpoints.
#include "bgp/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "bgp/mrai.hpp"
#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

constexpr std::uint64_t kDigest = 0xfeedfacecafe1234ull;

std::unique_ptr<Network> make_net(const topo::Graph& g, const BgpConfig& cfg,
                                  std::uint64_t seed = 7) {
  return std::make_unique<Network>(g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)),
                                   seed);
}

std::unique_ptr<Network> converged_net(const topo::Graph& g, const BgpConfig& cfg,
                                       std::uint64_t seed = 7) {
  auto net = make_net(g, cfg, seed);
  net->start();
  net->run_to_quiescence();
  return net;
}

/// Full simulated-state equality: same Loc-RIB selections everywhere, same
/// metrics, same clock/counters. (Byte-level equality is asserted separately
/// via capture_checkpoint.)
void expect_same_state(Network& a, Network& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.scheduler().now().ns(), b.scheduler().now().ns());
  EXPECT_EQ(a.scheduler().executed_events(), b.scheduler().executed_events());
  EXPECT_EQ(a.metrics().updates_sent, b.metrics().updates_sent);
  EXPECT_EQ(a.metrics().messages_processed, b.metrics().messages_processed);
  EXPECT_EQ(a.metrics().last_rib_change.ns(), b.metrics().last_rib_change.ns());
  for (NodeId v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a.router(v).alive(), b.router(v).alive()) << "router " << v;
    for (Prefix p = 0; p < a.prefix_space(); ++p) {
      const auto ra = a.router(v).best(p);
      const auto rb = b.router(v).best(p);
      ASSERT_EQ(ra.has_value(), rb.has_value()) << "router " << v << " prefix " << p;
      if (ra) {
        EXPECT_EQ(ra->path.hops(), rb->path.hops()) << "router " << v << " prefix " << p;
        EXPECT_EQ(ra->learned_from, rb->learned_from);
      }
    }
  }
}

TEST(Checkpoint, CaptureRequiresQuiescence) {
  auto net = make_net(bgp::testing::ring(6), bgp::testing::deterministic_config());
  net->start();  // origination events pending => not quiescent
  EXPECT_THROW(capture_checkpoint(*net, kDigest, 0.0), std::logic_error);
  net->run_to_quiescence();
  EXPECT_NO_THROW(capture_checkpoint(*net, kDigest, 0.0));
}

TEST(Checkpoint, RoundTripStateIsByteIdentical) {
  const auto g = bgp::testing::clique(8);
  const auto cfg = bgp::testing::deterministic_config();
  auto a = converged_net(g, cfg);
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 1.25);
  EXPECT_FALSE(ck.state.empty());

  // Restore into a freshly built (never started) replica and re-capture:
  // save(load(x)) must be byte-identical to x.
  auto b = make_net(g, cfg);
  restore_checkpoint(*b, ck, kDigest);
  const Checkpoint again = capture_checkpoint(*b, kDigest, 1.25);
  EXPECT_EQ(ck.state, again.state);
  expect_same_state(*a, *b);
}

TEST(Checkpoint, RestoreIntoConvergedNetworkIsAllowed) {
  // A network that already ran to quiescence has an empty heap too; restore
  // must overwrite its state completely.
  const auto g = bgp::testing::star(6);
  const auto cfg = bgp::testing::deterministic_config();
  auto a = converged_net(g, cfg, 7);
  auto b = converged_net(g, cfg, 7);
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 0.0);
  restore_checkpoint(*b, ck, kDigest);
  EXPECT_EQ(capture_checkpoint(*b, kDigest, 0.0).state, ck.state);
}

TEST(Checkpoint, RestoredRunContinuesIdenticallyThroughFailure) {
  const auto g = bgp::testing::clique(8);
  const auto cfg = bgp::testing::deterministic_config();
  const std::vector<NodeId> victims{0, 1};

  auto inject = [&victims](Network& net) {
    const sim::SimTime t = net.scheduler().now() + sim::SimTime::seconds(1.0);
    net.scheduler().schedule_at(t, [&net, &victims] { net.fail_nodes(victims); });
    net.run_to_quiescence();
  };

  // Uninterrupted reference run.
  auto a = converged_net(g, cfg);
  inject(*a);

  // Checkpointed run: converge, capture, restore into a fresh network, then
  // inject the identical failure.
  auto src = converged_net(g, cfg);
  const Checkpoint ck = capture_checkpoint(*src, kDigest, 0.0);
  auto c = make_net(g, cfg);
  restore_checkpoint(*c, ck, kDigest);
  inject(*c);

  expect_same_state(*a, *c);
  // The post-failure states must agree byte-for-byte, not just field-wise.
  EXPECT_EQ(capture_checkpoint(*a, kDigest, 0.0).state,
            capture_checkpoint(*c, kDigest, 0.0).state);
}

TEST(Checkpoint, MidRunQuiescenceWithJitterAndDamping) {
  // Checkpoint at a *mid-run* quiescent point: after a failure already
  // happened, with RFC 1771 jitter (mid-stream RNG) and flap damping
  // (non-trivial per-session penalty state) enabled.
  auto g = bgp::testing::clique(7);
  auto cfg = bgp::testing::deterministic_config();
  cfg.jitter_timers = true;
  cfg.damping.enabled = true;
  cfg.damping.suppress_threshold = 1.5;  // make suppression actually trigger
  const std::vector<NodeId> victims{2};

  auto fail_then_quiesce = [&victims](Network& net) {
    const sim::SimTime t = net.scheduler().now() + sim::SimTime::seconds(1.0);
    net.scheduler().schedule_at(t, [&net, &victims] { net.fail_nodes(victims); });
    net.run_to_quiescence();
  };
  auto recover_then_quiesce = [&victims](Network& net) {
    const sim::SimTime t = net.scheduler().now() + sim::SimTime::seconds(1.0);
    net.scheduler().schedule_at(t, [&net, &victims] { net.recover_nodes(victims); });
    net.run_to_quiescence();
  };

  auto a = converged_net(g, cfg);
  fail_then_quiesce(*a);

  auto src = converged_net(g, cfg);
  fail_then_quiesce(*src);
  const Checkpoint ck = capture_checkpoint(*src, kDigest, 0.0);

  auto c = make_net(g, cfg);
  restore_checkpoint(*c, ck, kDigest);
  EXPECT_EQ(capture_checkpoint(*c, kDigest, 0.0).state, ck.state);

  // Continue both runs through recovery: the restored network must track
  // the uninterrupted one exactly (same RNG draws, same damping decays).
  recover_then_quiesce(*a);
  recover_then_quiesce(*c);
  expect_same_state(*a, *c);
  EXPECT_EQ(capture_checkpoint(*a, kDigest, 0.0).state,
            capture_checkpoint(*c, kDigest, 0.0).state);
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  auto net = converged_net(bgp::testing::ring(5), bgp::testing::deterministic_config());
  const Checkpoint ck = capture_checkpoint(*net, kDigest, 2.5);
  const std::string bytes = encode_checkpoint(ck);
  const Checkpoint back = decode_checkpoint(bytes);
  EXPECT_EQ(back.config_digest, ck.config_digest);
  EXPECT_EQ(back.initial_convergence_s, ck.initial_convergence_s);
  EXPECT_EQ(back.state, ck.state);
}

TEST(Checkpoint, DecodeRejectsCorruption) {
  auto net = converged_net(bgp::testing::ring(5), bgp::testing::deterministic_config());
  const std::string bytes = encode_checkpoint(capture_checkpoint(*net, kDigest, 0.0));

  {
    std::string bad = bytes;
    bad[0] = 'X';  // magic
    EXPECT_THROW(decode_checkpoint(bad), std::runtime_error);
  }
  {
    std::string bad = bytes;
    bad[4] = char(0x7F);  // version
    EXPECT_THROW(decode_checkpoint(bad), std::runtime_error);
  }
  {
    std::string bad = bytes;
    bad[6] = char(bad[6] ^ 1);  // flags bit 0: cross path-storage mode
    EXPECT_THROW(decode_checkpoint(bad), std::runtime_error);
  }
  // Truncation anywhere -- inside the header, at the state-length prefix,
  // mid-state -- must be detected, never half-applied.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{10}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(decode_checkpoint(std::string_view{bytes}.substr(0, len)), std::runtime_error)
        << "accepted a checkpoint truncated to " << len << " bytes";
  }
  EXPECT_NO_THROW(decode_checkpoint(bytes));
}

TEST(Checkpoint, RestoreRejectsDigestMismatch) {
  const auto g = bgp::testing::ring(5);
  const auto cfg = bgp::testing::deterministic_config();
  auto a = converged_net(g, cfg);
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 0.0);
  auto b = make_net(g, cfg);
  EXPECT_THROW(restore_checkpoint(*b, ck, kDigest + 1), std::runtime_error);
}

TEST(Checkpoint, RestoreRejectsStructuralMismatch) {
  auto a = converged_net(bgp::testing::clique(8), bgp::testing::deterministic_config());
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 0.0);
  // Same digest claimed, different topology actually built: the router
  // layout check must catch it before any state is touched.
  auto b = make_net(bgp::testing::line(5), bgp::testing::deterministic_config());
  EXPECT_THROW(restore_checkpoint(*b, ck, kDigest), std::runtime_error);
  // b is still a valid, runnable network.
  b->start();
  b->run_to_quiescence();
  EXPECT_TRUE(b->scheduler().empty());
}

TEST(Checkpoint, RestoreRejectsNonQuiescentTarget) {
  const auto g = bgp::testing::ring(5);
  const auto cfg = bgp::testing::deterministic_config();
  auto a = converged_net(g, cfg);
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 0.0);
  auto b = make_net(g, cfg);
  b->start();  // events pending
  EXPECT_THROW(restore_checkpoint(*b, ck, kDigest), std::logic_error);
}

TEST(Checkpoint, FileRoundTrip) {
  auto net = converged_net(bgp::testing::star(5), bgp::testing::deterministic_config());
  const Checkpoint ck = capture_checkpoint(*net, kDigest, 3.5);
  const std::string path = ::testing::TempDir() + "checkpoint_test.bgck";
  write_checkpoint_file(path, ck);
  const Checkpoint back = read_checkpoint_file(path);
  EXPECT_EQ(back.config_digest, ck.config_digest);
  EXPECT_EQ(back.initial_convergence_s, ck.initial_convergence_s);
  EXPECT_EQ(back.state, ck.state);
  std::remove(path.c_str());
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
}

TEST(Checkpoint, InspectReportsContents) {
  const auto g = bgp::testing::clique(6);
  const auto cfg = bgp::testing::deterministic_config();
  auto a = converged_net(g, cfg, 7);
  const Checkpoint ck = capture_checkpoint(*a, kDigest, 1.5);
  const CheckpointInfo info = inspect_checkpoint(encode_checkpoint(ck));
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.config_digest, kDigest);
  EXPECT_EQ(info.initial_convergence_s, 1.5);
  EXPECT_EQ(info.routers, 6u);
  EXPECT_EQ(info.alive_routers, 6u);
  EXPECT_EQ(info.sessions, 30u);  // clique(6): 15 links, a session per side
  EXPECT_EQ(info.loc_rib_routes, 36u);
  EXPECT_EQ(info.state_bytes, ck.state.size());
  EXPECT_NE(info.rib_digest, 0u);
  EXPECT_EQ(info.sim_now_ns, a->scheduler().now().ns());
  EXPECT_EQ(info.executed_events, a->scheduler().executed_events());

  // Identical converged state (same seed) => identical rib digest; a
  // different seed's convergence differs.
  auto same = converged_net(g, cfg, 7);
  const auto same_info = inspect_checkpoint(encode_checkpoint(capture_checkpoint(*same, kDigest, 1.5)));
  EXPECT_EQ(same_info.rib_digest, info.rib_digest);
  EXPECT_EQ(same_info.state_digest, info.state_digest);
}

}  // namespace
}  // namespace bgpsim::bgp
