// Router introspection surface used by the schemes: queue length,
// unfinished work, load trackers, degree, RIB queries.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::star;

TEST(RouterIntrospection, DegreeCountsSessions) {
  const auto g = star(3);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(1)), 1};
  EXPECT_EQ(net.router(0).degree(), 3u);
  EXPECT_EQ(net.router(1).degree(), 1u);
}

TEST(RouterIntrospection, UnfinishedWorkIsQueueTimesMeanDelay) {
  // Deterministic config: proc delay exactly 1 ms, so mean is 1 ms.
  const auto g = star(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(1)), 1};
  auto& hub = net.router(0);
  EXPECT_EQ(hub.unfinished_work(), sim::SimTime::zero());
  for (int i = 0; i < 10; ++i) {
    UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    hub.deliver(m);
  }
  // The first delivery went straight into service on the idle CPU, so the
  // *queue* holds the other nine.
  EXPECT_EQ(hub.input_queue_length(), 9u);
  EXPECT_EQ(hub.unfinished_work(), sim::SimTime::from_ms(9));
}

TEST(RouterIntrospection, PaperDefaultMeanProcessingDelay) {
  BgpConfig cfg;  // U(1, 30) ms
  EXPECT_EQ(cfg.mean_processing_delay(), sim::SimTime::from_us(15500));
}

TEST(RouterIntrospection, UtilizationRisesWithProcessing) {
  const auto g = star(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(1)), 1};
  auto& hub = net.router(0);
  EXPECT_DOUBLE_EQ(hub.recent_utilization(), 0.0);
  for (int i = 0; i < 50; ++i) {
    UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    hub.deliver(m);
  }
  net.run_to_quiescence();
  EXPECT_GT(hub.recent_utilization(), 0.0);
}

TEST(RouterIntrospection, MessageRateTracksDeliveries) {
  const auto g = star(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(1)), 1};
  auto& hub = net.router(0);
  EXPECT_DOUBLE_EQ(hub.recent_message_rate(), 0.0);
  for (int i = 0; i < 100; ++i) {
    UpdateMessage m;
    m.from = 1;
    m.to = 0;
    m.prefix = 1;
    hub.deliver(m);
  }
  EXPECT_GT(hub.recent_message_rate(), 0.0);
}

TEST(RouterIntrospection, KnownPrefixesSortedAndComplete) {
  const auto g = testing::line(3);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.1)), 1};
  net.start();
  net.run_to_quiescence();
  EXPECT_EQ(net.router(1).known_prefixes(), (std::vector<Prefix>{0, 1, 2}));
}

TEST(RouterIntrospection, BestReturnsNulloptForUnknownPrefix) {
  const auto g = testing::line(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.1)), 1};
  net.start();
  net.run_to_quiescence();
  EXPECT_FALSE(net.router(0).best(99).has_value());
}

TEST(RouterIntrospection, AdjQueriesForUnknownPeerAreEmpty) {
  const auto g = testing::line(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.1)), 1};
  EXPECT_FALSE(net.router(0).adj_in(42, 0).has_value());
  EXPECT_FALSE(net.router(0).adj_out(42, 0).has_value());
  EXPECT_FALSE(net.router(0).peer_session_up(42));
}

TEST(RouterIntrospection, DeadRouterDropsDeliveries) {
  const auto g = testing::line(2);
  Network net{g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.1)), 1};
  net.router(0).fail();
  UpdateMessage m;
  m.from = 1;
  m.to = 0;
  m.prefix = 1;
  net.router(0).deliver(m);
  EXPECT_EQ(net.router(0).input_queue_length(), 0u);
  EXPECT_FALSE(net.router(0).alive());
}

}  // namespace
}  // namespace bgpsim::bgp
