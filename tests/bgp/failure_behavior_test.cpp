// Failure semantics: session teardown, withdrawal propagation, path
// exploration, and the RFC 1771 withdrawal/MRAI interaction.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::clique;
using testing::deterministic_config;
using testing::line;

std::unique_ptr<Network> make_net(const topo::Graph& g, double mrai_s,
                                  BgpConfig cfg = deterministic_config()) {
  return std::make_unique<Network>(
      g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(mrai_s)), /*seed=*/1);
}

TEST(FailureBehavior, DeadRouterStopsAndSessionsDrop) {
  const auto g = line(3);
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(0).alive());
  EXPECT_FALSE(net->router(1).peer_session_up(0));
  EXPECT_TRUE(net->router(1).peer_session_up(2));
  EXPECT_EQ(net->alive_nodes(), (std::vector<NodeId>{1, 2}));
}

TEST(FailureBehavior, WithdrawalPropagatesDownALine) {
  const auto g = line(4);
  auto net = make_net(g, /*mrai=*/100.0);
  net->start();
  net->run_to_quiescence();
  const auto t_fail = net->scheduler().now() + sim::SimTime::seconds(1.0);
  net->scheduler().schedule_at(t_fail, [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  // No survivor keeps a route to the dead prefix; withdrawals are exempt
  // from the (huge) MRAI, so this resolves in milliseconds, not 100 s.
  for (NodeId v = 1; v <= 3; ++v) EXPECT_FALSE(net->router(v).best(0).has_value());
  EXPECT_GT(net->metrics().withdrawals_sent, 0u);
  EXPECT_LT((net->metrics().last_rib_change - t_fail).to_seconds(), 1.0);
}

TEST(FailureBehavior, SurvivorsKeepRoutesAmongThemselves) {
  const auto g = line(4);
  auto net = make_net(g, 1.0);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  for (NodeId v = 1; v <= 3; ++v) {
    for (Prefix p = 1; p <= 3; ++p) {
      EXPECT_TRUE(net->router(v).best(p).has_value()) << "router " << v << " prefix " << p;
    }
  }
}

TEST(FailureBehavior, PartitionDropsRoutesAcrossTheCut) {
  const auto g = line(5);  // failing node 2 partitions {0,1} from {3,4}
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({2}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(0).best(3).has_value());
  EXPECT_FALSE(net->router(0).best(4).has_value());
  EXPECT_FALSE(net->router(4).best(1).has_value());
  EXPECT_TRUE(net->router(0).best(1).has_value());
  EXPECT_TRUE(net->router(3).best(4).has_value());
}

TEST(FailureBehavior, ReroutingFindsTheBackupPath) {
  // Triangle: after 0-1's common neighbor dies, the long way around is used.
  topo::Graph g{4};  // 0-1, 1-2, 2-3, 3-0: ring of 4
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  // Before: node 2 reaches prefix 0 in two hops via node 1.
  ASSERT_EQ(net->router(2).best(0)->path.length(), 2u);
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({1}); });
  net->run_to_quiescence();
  const auto r = net->router(2).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, AsPath({3, 0}));
  EXPECT_EQ(r->learned_from, 3u);
}

TEST(FailureBehavior, CliqueWithdrawalExploresAndConverges) {
  // The Labovitz scenario: withdrawal in a clique triggers path exploration
  // over ever-longer backup paths, paced by the MRAI.
  const auto g = clique(6);
  const double mrai = 2.0;
  auto net = make_net(g, mrai);
  net->start();
  net->run_to_quiescence();
  const auto t_fail = net->scheduler().now() + sim::SimTime::seconds(1.0);
  net->scheduler().schedule_at(t_fail, [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  for (NodeId v = 1; v <= 5; ++v) {
    EXPECT_FALSE(net->router(v).best(0).has_value()) << "router " << v;
    for (Prefix p = 1; p <= 5; ++p) {
      EXPECT_TRUE(net->router(v).best(p).has_value());
    }
  }
  const double delay = (net->metrics().last_rib_change - t_fail).to_seconds();
  EXPECT_GT(delay, 0.0);
  EXPECT_LT(delay, 6 * mrai);  // exploration is MRAI-paced and bounded
}

TEST(FailureBehavior, PerPrefixTeardownMatchesPerPeerOutcome) {
  for (const auto teardown : {TeardownCost::kPerPeer, TeardownCost::kPerPrefix}) {
    auto cfg = deterministic_config();
    cfg.teardown = teardown;
    const auto g = clique(5);
    auto net = make_net(g, 0.5, cfg);
    net->start();
    net->run_to_quiescence();
    net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
    net->run_to_quiescence();
    for (NodeId v = 1; v <= 4; ++v) {
      EXPECT_FALSE(net->router(v).best(0).has_value());
      for (Prefix p = 1; p <= 4; ++p) EXPECT_TRUE(net->router(v).best(p).has_value());
    }
  }
}

TEST(FailureBehavior, WithdrawalsBypassTheMraiByDefault) {
  // Node 1 is connected to 0, 3 (both will die) and 2. The two withdrawals
  // to node 2 are generated 1 ms apart; with the RFC exemption both arrive
  // immediately.
  topo::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  auto net = make_net(g, /*mrai=*/100.0);
  net->start();
  net->run_to_quiescence();
  const auto t_fail = net->scheduler().now() + sim::SimTime::seconds(1.0);
  net->scheduler().schedule_at(t_fail, [&] { net->fail_nodes({0, 3}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(2).best(0).has_value());
  EXPECT_FALSE(net->router(2).best(3).has_value());
  EXPECT_LT((net->metrics().last_rib_change - t_fail).to_seconds(), 1.0);
}

TEST(FailureBehavior, MraiCanBeAppliedToWithdrawals) {
  // Same scenario with mrai_applies_to_withdrawals=true: the first
  // withdrawal to node 2 starts the 100 s timer, the second waits for it.
  auto cfg = deterministic_config();
  cfg.mrai_applies_to_withdrawals = true;
  topo::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  auto net = make_net(g, 100.0, cfg);
  net->start();
  net->run_to_quiescence();
  const auto t_fail = net->scheduler().now() + sim::SimTime::seconds(1.0);
  net->scheduler().schedule_at(t_fail, [&] { net->fail_nodes({0, 3}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(2).best(0).has_value());
  EXPECT_FALSE(net->router(2).best(3).has_value());
  // The second withdrawal was MRAI-delayed.
  EXPECT_GT((net->metrics().last_rib_change - t_fail).to_seconds(), 75.0);
}

TEST(FailureBehavior, InFlightAdvertisementsFromTheDeadAreDropped) {
  // Fail a node immediately after origination: its in-flight announcements
  // arrive at peers whose session is already down and must be ignored.
  const auto g = line(2);
  auto net = make_net(g, 0.5);
  net->start();
  net->scheduler().schedule_at(sim::SimTime::from_ms(10), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(1).best(0).has_value());
}

TEST(FailureBehavior, FailingAllNeighborsIsolatesARouter) {
  const auto g = testing::star(3);  // hub 0, leaves 1..3
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  // Leaves only keep their own prefixes.
  for (NodeId leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_EQ(net->router(leaf).known_prefixes(), std::vector<Prefix>{leaf});
  }
}

TEST(FailureBehavior, DoubleFailureIsIdempotent) {
  const auto g = line(3);
  auto net = make_net(g, 0.5);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net->fail_nodes({0});
    net->fail_nodes({0});  // second call must be harmless
  });
  net->run_to_quiescence();
  EXPECT_FALSE(net->router(1).best(0).has_value());
  EXPECT_TRUE(net->router(1).best(2).has_value());
}

}  // namespace
}  // namespace bgpsim::bgp
