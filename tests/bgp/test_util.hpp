// Shared helpers for BGP protocol tests: tiny hand-built topologies and a
// fully deterministic configuration (no timer jitter, fixed 1 ms processing
// delay, synchronized originations) so event times can be asserted exactly.
#pragma once

#include <initializer_list>
#include <utility>

#include "bgp/config.hpp"
#include "bgp/network.hpp"
#include "topo/graph.hpp"

namespace bgpsim::bgp::testing {

inline topo::Graph make_graph(std::size_t n,
                              std::initializer_list<std::pair<int, int>> edges) {
  topo::Graph g{n};
  for (const auto& [a, b] : edges) {
    g.add_edge(static_cast<topo::NodeId>(a), static_cast<topo::NodeId>(b));
  }
  return g;
}

inline BgpConfig deterministic_config() {
  BgpConfig cfg;
  cfg.jitter_timers = false;
  cfg.proc_min = sim::SimTime::from_ms(1);
  cfg.proc_max = sim::SimTime::from_ms(1);  // degenerate range => exactly 1 ms
  cfg.origination_spread = sim::SimTime::zero();
  return cfg;
}

inline topo::Graph line(std::size_t n) {
  topo::Graph g{n};
  for (topo::NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

inline topo::Graph ring(std::size_t n) {
  auto g = line(n);
  g.add_edge(static_cast<topo::NodeId>(n - 1), 0);
  return g;
}

inline topo::Graph star(std::size_t leaves) {
  topo::Graph g{leaves + 1};  // node 0 is the hub
  for (topo::NodeId v = 1; v <= leaves; ++v) g.add_edge(0, v);
  return g;
}

inline topo::Graph clique(std::size_t n) {
  topo::Graph g{n};
  for (topo::NodeId a = 0; a < n; ++a) {
    for (topo::NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

}  // namespace bgpsim::bgp::testing
