// Tests for the future-work extensions on the BGP core: the redundant-
// update pre-filter (improved batching) and the Deshpande/Sikdar-style
// change-count gating of the per-destination MRAI.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;

TEST(FreeRedundantUpdates, OutcomeMatchesPlainBatching) {
  // The pre-filter only changes *costs*, never results: final RIBs must be
  // identical in content to a plain batched run.
  for (const bool free_redundant : {false, true}) {
    harness::ExperimentConfig cfg;
    cfg.topology.n = 40;
    cfg.failure_fraction = 0.10;
    cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/true);
    cfg.bgp.free_redundant_updates = free_redundant;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.routes_valid) << r.audit_error;
  }
}

TEST(FreeRedundantUpdates, NeverSlowerUnderOverload) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/true);
  const auto plain = harness::run_averaged(cfg, 3);
  cfg.bgp.free_redundant_updates = true;
  const auto filtered = harness::run_averaged(cfg, 3);
  EXPECT_LE(filtered.delay.mean, plain.delay.mean * 1.10);
}

TEST(DestMraiGating, StableRoutesSkipTheTimer) {
  // Hub-and-spoke with a huge per-destination MRAI and gating at 3 changes:
  // during cold start every prefix changes only once or twice at the hub,
  // so everything propagates immediately despite the 50 s MRAI.
  auto cfg = deterministic_config();
  cfg.per_destination_mrai = true;
  cfg.dest_mrai_min_changes = 3;
  const auto g = testing::star(4);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(50.0)), 1};
  net.start();
  net.run_to_quiescence();
  EXPECT_LT(net.metrics().last_rib_change, sim::SimTime::seconds(1.0));
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    for (Prefix p = 0; p <= 4; ++p) EXPECT_TRUE(net.router(leaf).best(p).has_value());
  }
}

TEST(DestMraiGating, ConvergesAfterFailure) {
  auto cfg = deterministic_config();
  cfg.per_destination_mrai = true;
  cfg.dest_mrai_min_changes = 2;
  const auto g = testing::clique(5);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(1.0)), 1};
  net.start();
  net.run_to_quiescence();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_FALSE(net.router(v).best(0).has_value());
    for (Prefix p = 1; p <= 4; ++p) EXPECT_TRUE(net.router(v).best(p).has_value());
  }
}

TEST(DestMraiGating, GatingIncreasesMessageCountUnderChurn) {
  // Deshpande/Sikdar's reported trade-off: delay drops but message count
  // rises, because flapping destinations get extra immediate updates.
  harness::ExperimentConfig base;
  base.topology.n = 60;
  base.failure_fraction = 0.10;
  base.scheme = harness::SchemeSpec::constant(1.0);
  base.bgp.per_destination_mrai = true;

  auto gated = base;
  gated.bgp.dest_mrai_min_changes = 4;

  const auto plain = harness::run_averaged(base, 3);
  const auto fast = harness::run_averaged(gated, 3);
  EXPECT_GE(fast.messages.mean, plain.messages.mean * 0.9);
  EXPECT_EQ(fast.valid_fraction, 1.0);
}

}  // namespace
}  // namespace bgpsim::bgp
