// Multiple prefixes per origin: table-size scaling (the paper's closing
// discussion about the real Internet's ~200k destinations).
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::line;

TEST(MultiPrefix, EveryPrefixOfTheRangePropagates) {
  auto cfg = deterministic_config();
  cfg.prefixes_per_origin = 3;
  const auto g = line(3);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.2)), 1};
  net.start();
  net.run_to_quiescence();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(net.router(v).known_prefixes().size(), 9u);
    for (NodeId origin = 0; origin < 3; ++origin) {
      for (Prefix k = 0; k < 3; ++k) {
        const auto best = net.router(v).best(origin * 3 + k);
        ASSERT_TRUE(best.has_value()) << "router " << v << " prefix " << origin * 3 + k;
        if (origin != v) {
          // All prefixes of one origin share the same AS path.
          EXPECT_EQ(best->path, net.router(v).best(origin * 3)->path);
        }
      }
    }
  }
}

TEST(MultiPrefix, OriginRangeIsReported) {
  auto cfg = deterministic_config();
  cfg.prefixes_per_origin = 4;
  const auto g = line(2);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.2)), 1};
  EXPECT_EQ(net.router(1).origin_range(), (std::pair<Prefix, std::uint32_t>{4, 4}));
}

TEST(MultiPrefix, MessageLoadScalesWithTableSize) {
  harness::ExperimentConfig small;
  small.topology.n = 40;
  small.failure_fraction = 0.10;
  small.scheme = harness::SchemeSpec::constant(0.5);
  auto big = small;
  big.bgp.prefixes_per_origin = 4;
  const auto r1 = harness::run_experiment(small);
  const auto r4 = harness::run_experiment(big);
  EXPECT_GT(r4.messages_after_failure, 2 * r1.messages_after_failure);
  EXPECT_TRUE(r4.routes_valid) << r4.audit_error;
}

TEST(MultiPrefix, AuditCoversAllPrefixesAfterFailure) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 36;
  cfg.failure_fraction = 0.15;
  cfg.scheme = harness::SchemeSpec::constant(1.25);
  cfg.bgp.prefixes_per_origin = 3;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
}

TEST(MultiPrefix, BatchingBenefitGrowsWithTableSize) {
  // More destinations => more same-destination collisions in overloaded
  // queues => batching saves relatively more (the paper's argument for why
  // the scheme matters at Internet scale).
  harness::ExperimentConfig cfg;
  cfg.topology.n = 40;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.bgp.prefixes_per_origin = 4;
  const auto fifo = harness::run_experiment(cfg);
  cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/true);
  const auto batched = harness::run_experiment(cfg);
  EXPECT_LT(2 * batched.convergence_delay_s, fifo.convergence_delay_s);
  EXPECT_GT(batched.batch_dropped, 0u);
}

TEST(MultiPrefix, HierarchicalOriginsUseAsRanges) {
  sim::Rng rng{5};
  topo::HierParams p;
  p.num_ases = 8;
  p.max_total_routers = 24;
  p.max_inter_as_degree = 4;
  const auto h = topo::hierarchical(p, rng);
  auto cfg = deterministic_config();
  cfg.prefixes_per_origin = 2;
  Network net{h, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.2)), 1};
  net.start();
  net.run_to_quiescence();
  for (NodeId v = 0; v < net.size(); ++v) {
    EXPECT_EQ(net.router(v).known_prefixes().size(), 16u) << "router " << v;
  }
}

}  // namespace
}  // namespace bgpsim::bgp
