// The kTcpBatch queue discipline: the coarse per-peer batching deployed in
// real routers, which the paper's per-destination scheme is contrasted
// against (section 4.4, last paragraph).
#include <gtest/gtest.h>

#include <memory>

#include "bgp/input_queue.hpp"
#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

WorkItem update(NodeId from, Prefix prefix) {
  WorkItem w;
  w.from = from;
  w.prefix = prefix;
  return w;
}

TEST(TcpBatchQueue, BatchesConsecutiveUpdatesOfOnePeer) {
  InputQueue q{QueueDiscipline::kTcpBatch, 16};
  q.push(update(1, 10));
  q.push(update(1, 20));
  q.push(update(1, 30));
  std::uint64_t dropped = 0;
  const auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 3u);
  for (const auto& item : b) EXPECT_EQ(item.from, 1u);
  EXPECT_EQ(dropped, 0u);  // TCP batching never deletes anything
}

TEST(TcpBatchQueue, RespectsBufferLimit) {
  InputQueue q{QueueDiscipline::kTcpBatch, 2};
  for (int i = 0; i < 5; ++i) q.push(update(1, static_cast<Prefix>(i)));
  std::uint64_t dropped = 0;
  EXPECT_EQ(q.pop_batch(dropped).size(), 2u);
  EXPECT_EQ(q.pop_batch(dropped).size(), 2u);
  EXPECT_EQ(q.pop_batch(dropped).size(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(TcpBatchQueue, ServesPeersRoundRobin) {
  InputQueue q{QueueDiscipline::kTcpBatch, 2};
  for (int i = 0; i < 4; ++i) q.push(update(1, static_cast<Prefix>(i)));
  for (int i = 0; i < 2; ++i) q.push(update(2, static_cast<Prefix>(i)));
  std::uint64_t dropped = 0;
  EXPECT_EQ(q.pop_batch(dropped)[0].from, 1u);  // peer 1's first buffer
  EXPECT_EQ(q.pop_batch(dropped)[0].from, 2u);  // then peer 2
  EXPECT_EQ(q.pop_batch(dropped)[0].from, 1u);  // back to peer 1's remainder
  EXPECT_TRUE(q.empty());
}

TEST(TcpBatchQueue, PreservesPerPeerOrder) {
  InputQueue q{QueueDiscipline::kTcpBatch, 16};
  q.push(update(1, 10));
  q.push(update(2, 99));
  q.push(update(1, 20));
  std::uint64_t dropped = 0;
  const auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].prefix, 10u);
  EXPECT_EQ(b[1].prefix, 20u);
}

TEST(TcpBatchQueue, ZeroLimitIsClampedToOne) {
  InputQueue q{QueueDiscipline::kTcpBatch, 0};
  q.push(update(1, 10));
  q.push(update(1, 20));
  std::uint64_t dropped = 0;
  EXPECT_EQ(q.pop_batch(dropped).size(), 1u);
}

TEST(TcpBatchNetwork, ConvergesAndPassesAudit) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 48;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.bgp.queue = QueueDiscipline::kTcpBatch;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_EQ(r.batch_dropped, 0u);
}

TEST(TcpBatchNetwork, WeakerThanPerDestinationBatchingUnderOverload) {
  // The paper's argument for its scheme: for large failures the chance of
  // two same-destination updates sharing a TCP batch shrinks, so
  // per-destination batching must do at least as well.
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.15;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.bgp.queue = QueueDiscipline::kTcpBatch;
  const auto tcp = harness::run_averaged(cfg, 3);
  cfg.bgp.queue = QueueDiscipline::kFifo;
  cfg.scheme = harness::SchemeSpec::constant(0.5, /*batch=*/true);
  const auto perdest = harness::run_averaged(cfg, 3);
  EXPECT_LE(perdest.delay.mean, tcp.delay.mean * 1.10);
}

}  // namespace
}  // namespace bgpsim::bgp
