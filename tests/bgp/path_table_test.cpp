// PathTable: hash-consing identity, prepend round-trips, chunked-arena
// span stability and capacity guards, epoch reclamation, and a
// golden-value cross-check that the path-storage mode (interned vs
// -DBGPSIM_DEEP_COPY_PATHS=ON deep copies) is invisible to the protocol.
// See also tools/identity_check.cpp, which CI diffs across both builds
// over a full parameter grid.
#include "bgp/path_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/experiment.hpp"

namespace bgpsim::bgp {
namespace {

TEST(PathTable, InternIdentity) {
  PathTable t;
  EXPECT_EQ(t.size(), 1u);  // canonical empty path
  EXPECT_EQ(t.intern(AsPath{}), kEmptyPathId);
  EXPECT_TRUE(t.empty(kEmptyPathId));

  const AsPath a{{3, 2, 1}};
  const AsPath b{{3, 2, 1}};
  const AsPath c{{1, 2, 3}};
  const PathId ia = t.intern(a);
  EXPECT_EQ(t.intern(b), ia) << "equal hop sequences must intern to one id";
  EXPECT_NE(t.intern(c), ia) << "order matters: reversed path is distinct";
  EXPECT_EQ(t.size(), 3u);  // empty, {3,2,1}, {1,2,3}

  // Interning is idempotent and id equality is path equality.
  EXPECT_EQ(t.intern(a), t.intern(b));
  EXPECT_EQ(t.as_path(ia), a);
}

TEST(PathTable, PrependRoundTrips) {
  PathTable t;
  // Build 5 -> 4 -> ... -> 1 one hop at a time, as eBGP export does.
  PathId id = kEmptyPathId;
  for (AsId as = 1; as <= 5; ++as) id = t.prepend(id, as);
  EXPECT_EQ(t.as_path(id), AsPath({5, 4, 3, 2, 1}));
  EXPECT_EQ(t.length(id), 5u);

  // The incremental build must land on the same id as a direct intern.
  EXPECT_EQ(t.intern(AsPath{{5, 4, 3, 2, 1}}), id);
  // And prepending again from the shared prefix reuses the table.
  const PathId from_four = t.prepend(t.intern(AsPath{{4, 3, 2, 1}}), 5);
  EXPECT_EQ(from_four, id);
}

TEST(PathTable, ContainsAndLength) {
  PathTable t;
  const PathId id = t.intern(AsPath{{7, 5, 3}});
  EXPECT_TRUE(t.contains(id, 7));
  EXPECT_TRUE(t.contains(id, 3));
  EXPECT_FALSE(t.contains(id, 4));
  EXPECT_FALSE(t.contains(kEmptyPathId, 7));
  EXPECT_EQ(t.length(kEmptyPathId), 0u);
  EXPECT_EQ(t.length(id), 3u);
}

TEST(PathTable, ClearReclaimsBetweenRuns) {
  PathTable t;
  for (AsId as = 1; as <= 100; ++as) t.intern(AsPath{{as, 0}});
  EXPECT_EQ(t.size(), 101u);
  EXPECT_GT(t.arena_hops(), 0u);

  t.clear();
  EXPECT_EQ(t.size(), 1u) << "clear() keeps only the canonical empty path";
  EXPECT_EQ(t.arena_hops(), 0u);
  EXPECT_EQ(t.intern(AsPath{}), kEmptyPathId);

  // A fresh epoch hands out dense ids again, starting right after empty.
  const PathId first = t.intern(AsPath{{42}});
  EXPECT_EQ(first, PathId{1});
  EXPECT_EQ(t.as_path(first), AsPath({42}));
}

TEST(PathTable, SurvivesRehashAndArenaGrowth) {
  PathTable t;
  std::vector<PathId> ids;
  // Enough distinct multi-hop paths to force several index rehashes and
  // arena reallocations; prepend reads hops out of the arena it appends
  // to, so this exercises the alias-safety of that fast path too.
  for (AsId as = 0; as < 5000; ++as) {
    ids.push_back(t.prepend(t.intern(AsPath{{as, as, as}}), as + 1));
  }
  EXPECT_EQ(t.size(), 1u + 2 * 5000u);
  for (AsId as = 0; as < 5000; ++as) {
    EXPECT_EQ(t.as_path(ids[as]), AsPath({static_cast<AsId>(as + 1), as, as, as}));
    EXPECT_EQ(t.intern(AsPath{{static_cast<AsId>(as + 1), as, as, as}}), ids[as]);
  }
}

// Regression for the pre-chunking UB: interning a span that aliases the
// table's own arena while the insert reallocates. Blocks never move now,
// so re-interning subspans read straight out of the arena -- each a NEW
// path, forcing an insert from aliased memory -- must be clean under ASan.
TEST(PathTable, InternAliasedSpanFromOwnArena) {
  PathTable t;
  std::vector<PathId> ids;
  for (AsId as = 0; as < 2000; ++as) {
    ids.push_back(t.intern(AsPath{{as, as + 1, as + 2, as + 3, as + 4}}));
  }
  for (AsId as = 0; as < 2000; ++as) {
    // Full-span self-intern hits the index and returns the same id...
    EXPECT_EQ(t.intern(t.hops(ids[as])), ids[as]);
    // ...while the suffix is a distinct path whose source bytes live in
    // the arena being appended to.
    const PathId suffix = t.intern(t.hops(ids[as]).subspan(1));
    EXPECT_EQ(t.as_path(suffix),
              AsPath({as + 1, as + 2, as + 3, as + 4}));
  }
}

TEST(PathTable, SpansStableAcrossGrowth) {
  PathTable t;
  const PathId early = t.intern(AsPath{{9, 8, 7}});
  const auto span_before = t.hops(early);
  const AsId* data_before = span_before.data();
  // Grow through many blocks and index rehashes.
  for (AsId as = 0; as < 300000; ++as) t.prepend(t.intern(AsPath{{as}}), as + 1);
  ASSERT_GT(t.chunk_count(), 1u) << "growth should have spilled into new blocks";
  const auto span_after = t.hops(early);
  EXPECT_EQ(span_after.data(), data_before) << "hops() spans must never move";
  EXPECT_EQ(t.as_path(early), AsPath({9, 8, 7}));
}

TEST(PathTable, ChunkBoundaryPathsStayContiguous) {
  // Tiny geometry: 8-hop blocks. A path that would straddle a block edge
  // starts a fresh block instead, and earlier spans stay valid.
  PathTable t(/*chunk_hop_bits=*/3, /*max_chunks=*/0);
  const PathId a = t.intern(AsPath{{1, 2, 3, 4, 5}});  // block 0, 3 hops left
  const AsId* a_data = t.hops(a).data();
  const PathId b = t.intern(AsPath{{6, 7, 8, 9}});     // does not fit: block 1
  EXPECT_EQ(t.chunk_count(), 2u);
  const auto bh = t.hops(b);
  EXPECT_TRUE(std::equal(bh.begin(), bh.end(), std::vector<AsId>{6, 7, 8, 9}.begin()))
      << "a would-be straddling path must still be one contiguous span";
  EXPECT_EQ(t.hops(a).data(), a_data);
  EXPECT_EQ(t.as_path(a), AsPath({1, 2, 3, 4, 5}));
  // The retired 3-hop tail of block 0 is unused but still addressable
  // accounting-wise: arena_hops counts stored hops only.
  EXPECT_EQ(t.arena_hops(), 9u);
}

TEST(PathTable, OverlongPathFailsLoudly) {
  PathTable t(/*chunk_hop_bits=*/3, /*max_chunks=*/0);  // 8 hops per block
  EXPECT_THROW(t.intern(AsPath{{1, 2, 3, 4, 5, 6, 7, 8, 9}}), std::length_error);
  // The failed intern must not have corrupted the table.
  const PathId ok = t.intern(AsPath{{1, 2}});
  EXPECT_EQ(t.as_path(ok), AsPath({1, 2}));
}

TEST(PathTable, ArenaCapFailsLoudlyInsteadOfWrapping) {
  // 2 blocks x 8 hops: the 32-bit packed (chunk, offset) cap scaled down
  // to test size. Before the chunked arena this overflow wrapped
  // Slot::offset silently and hops() returned the wrong path.
  PathTable t(/*chunk_hop_bits=*/3, /*max_chunks=*/2);
  std::vector<PathId> ids;
  for (AsId as = 0; as < 4; ++as) {
    ids.push_back(t.intern(AsPath{{as, as + 100, as + 200, as + 300}}));
  }
  EXPECT_EQ(t.chunk_count(), 2u);
  EXPECT_THROW(t.intern(AsPath{{99, 98, 97, 96}}), std::length_error);
  EXPECT_THROW(t.prepend(ids[0], 77), std::length_error);
  // Everything interned before the cap is still intact.
  for (AsId as = 0; as < 4; ++as) {
    EXPECT_EQ(t.as_path(ids[as]), AsPath({as, as + 100, as + 200, as + 300}));
  }
}

TEST(PathTable, MemoryBytesIsChunkGranular) {
  PathTable t(/*chunk_hop_bits=*/4, /*max_chunks=*/0);  // 16-hop blocks
  const std::size_t chunk_bytes = t.chunk_hops() * sizeof(AsId);
  EXPECT_EQ(t.chunk_count(), 0u) << "blocks are allocated lazily";
  const std::size_t empty_bytes = t.memory_bytes();

  t.intern(AsPath{{1}});
  EXPECT_EQ(t.chunk_count(), 1u);
  EXPECT_GE(t.memory_bytes(), empty_bytes + chunk_bytes)
      << "a partially filled block is charged whole";

  // Filling within the block allocates nothing new...
  for (AsId as = 2; as <= 8; ++as) t.intern(AsPath{{as, as}});
  EXPECT_EQ(t.chunk_count(), 1u);
  // ...and spilling past it costs exactly one more block.
  const std::size_t before = t.memory_bytes();
  t.intern(AsPath{{50, 51, 52}});
  EXPECT_EQ(t.chunk_count(), 2u);
  EXPECT_GE(t.memory_bytes(), before + chunk_bytes);
}

TEST(PathTable, ClearReleasesBlocksAndShrinkTrimsIndex) {
  PathTable t;
  for (AsId as = 0; as < 100000; ++as) t.intern(AsPath{{as, as + 1, as + 2}});
  ASSERT_GT(t.chunk_count(), 0u);
  const std::size_t grown = t.memory_bytes();

  t.clear();
  EXPECT_EQ(t.chunk_count(), 0u) << "clear() releases every hop block";
  EXPECT_EQ(t.arena_hops(), 0u);
  // The hash index keeps its grown capacity for cheap reuse...
  EXPECT_LT(t.memory_bytes(), grown);
  const std::size_t after_clear = t.memory_bytes();

  // ...until shrink_to_fit rehashes it down and releases the overshoot
  // (the pre-fix shrink_to_fit forgot index_ entirely).
  t.shrink_to_fit();
  EXPECT_LT(t.memory_bytes(), after_clear);
  EXPECT_LT(t.memory_bytes(), 64 * 1024u)
      << "an empty shrunk table should be back to its initial footprint";

  // Clear-then-reuse round-trip: the table is fully functional afterwards.
  const PathId id = t.prepend(t.intern(AsPath{{5, 6}}), 4);
  EXPECT_EQ(t.as_path(id), AsPath({4, 5, 6}));
  EXPECT_EQ(t.intern(AsPath{{4, 5, 6}}), id);
}

TEST(PathTable, EpochCompactionReclaimsBlocks) {
  // Mimics Network::compact_paths: a churned epoch holds millions of dead
  // hops; re-interning the small live set into a fresh table and retiring
  // the old one must actually drop memory_bytes() block-by-block.
  PathTable old;
  std::vector<PathId> live;
  for (AsId as = 0; as < 400000; ++as) {
    const PathId id = old.intern(AsPath{{as, as + 1, as + 2, as + 3}});
    if (as % 1000 == 0) live.push_back(id);
  }
  const std::size_t churned = old.memory_bytes();

  PathTable fresh;
  std::vector<PathId> remapped;
  for (const PathId id : live) remapped.push_back(fresh.intern(old.hops(id)));
  fresh.shrink_to_fit();
  const std::size_t compacted = fresh.memory_bytes();
  EXPECT_LT(compacted * 10, churned)
      << "compaction should reclaim the dead epoch's blocks";

  old = std::move(fresh);  // retire the churned epoch wholesale
  EXPECT_EQ(old.memory_bytes(), compacted);
  for (std::size_t i = 0; i < live.size(); ++i) {
    const AsId as = static_cast<AsId>(i * 1000);
    EXPECT_EQ(old.as_path(remapped[i]), AsPath({as, as + 1, as + 2, as + 3}));
  }
}

TEST(PathTable, HelpersWorkInEitherStorageMode) {
  // The path_* helpers are the only way protocol code touches PathRef;
  // this must compile and behave the same under BGPSIM_DEEP_COPY_PATHS.
  PathTable t;
  PathRef r = path_make(t, AsPath{{2, 1}});
  r = path_prepend(t, r, 3);
  EXPECT_EQ(path_length(t, r), 3u);
  EXPECT_TRUE(path_contains(t, r, 1));
  EXPECT_FALSE(path_contains(t, r, 9));
  EXPECT_EQ(path_materialize(t, r), AsPath({3, 2, 1}));
  EXPECT_EQ(path_length(t, path_empty()), 0u);
}

// Golden cross-check: a 240-node fig01-style run (70-30 skewed topology,
// 1% failure, 2.25 s MRAI, seed 1) must produce these exact results in
// BOTH path-storage modes -- the same constants are compiled into the
// deep-copy build, so a divergence in either mode fails here. The values
// are machine-independent (fixed-seed mt19937_64 + a deterministic event
// loop); they change only if the simulated protocol changes, which is
// exactly what this test exists to flag.
TEST(PathTableCrossCheck, Fig01RunMatchesGoldenNetMetrics) {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = 240;
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.failure_fraction = 0.01;
  cfg.scheme = harness::SchemeSpec::constant(2.25);
  cfg.seed = 1;

  const harness::RunResult r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_EQ(r.routers, 240u);
  EXPECT_EQ(r.failed_routers, 2u);
  EXPECT_EQ(r.messages_total, UINT64_C(352053));
  EXPECT_EQ(r.messages_after_failure, UINT64_C(76065));
  EXPECT_EQ(r.adverts_after_failure, UINT64_C(59411));
  EXPECT_EQ(r.withdrawals_after_failure, UINT64_C(16654));
  EXPECT_EQ(r.events, UINT64_C(762179));
  EXPECT_DOUBLE_EQ(r.initial_convergence_s, 0x1.9eaab111d2b2cp+5);
  EXPECT_DOUBLE_EQ(r.convergence_delay_s, 0x1.c931003472116p+6);
}

}  // namespace
}  // namespace bgpsim::bgp
