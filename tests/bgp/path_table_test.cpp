// PathTable: hash-consing identity, prepend round-trips, epoch
// reclamation, and a golden-value cross-check that the path-storage mode
// (interned vs -DBGPSIM_DEEP_COPY_PATHS=ON deep copies) is invisible to
// the protocol. See also tools/identity_check.cpp, which CI diffs across
// both builds over a full parameter grid.
#include "bgp/path_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"

namespace bgpsim::bgp {
namespace {

TEST(PathTable, InternIdentity) {
  PathTable t;
  EXPECT_EQ(t.size(), 1u);  // canonical empty path
  EXPECT_EQ(t.intern(AsPath{}), kEmptyPathId);
  EXPECT_TRUE(t.empty(kEmptyPathId));

  const AsPath a{{3, 2, 1}};
  const AsPath b{{3, 2, 1}};
  const AsPath c{{1, 2, 3}};
  const PathId ia = t.intern(a);
  EXPECT_EQ(t.intern(b), ia) << "equal hop sequences must intern to one id";
  EXPECT_NE(t.intern(c), ia) << "order matters: reversed path is distinct";
  EXPECT_EQ(t.size(), 3u);  // empty, {3,2,1}, {1,2,3}

  // Interning is idempotent and id equality is path equality.
  EXPECT_EQ(t.intern(a), t.intern(b));
  EXPECT_EQ(t.as_path(ia), a);
}

TEST(PathTable, PrependRoundTrips) {
  PathTable t;
  // Build 5 -> 4 -> ... -> 1 one hop at a time, as eBGP export does.
  PathId id = kEmptyPathId;
  for (AsId as = 1; as <= 5; ++as) id = t.prepend(id, as);
  EXPECT_EQ(t.as_path(id), AsPath({5, 4, 3, 2, 1}));
  EXPECT_EQ(t.length(id), 5u);

  // The incremental build must land on the same id as a direct intern.
  EXPECT_EQ(t.intern(AsPath{{5, 4, 3, 2, 1}}), id);
  // And prepending again from the shared prefix reuses the table.
  const PathId from_four = t.prepend(t.intern(AsPath{{4, 3, 2, 1}}), 5);
  EXPECT_EQ(from_four, id);
}

TEST(PathTable, ContainsAndLength) {
  PathTable t;
  const PathId id = t.intern(AsPath{{7, 5, 3}});
  EXPECT_TRUE(t.contains(id, 7));
  EXPECT_TRUE(t.contains(id, 3));
  EXPECT_FALSE(t.contains(id, 4));
  EXPECT_FALSE(t.contains(kEmptyPathId, 7));
  EXPECT_EQ(t.length(kEmptyPathId), 0u);
  EXPECT_EQ(t.length(id), 3u);
}

TEST(PathTable, ClearReclaimsBetweenRuns) {
  PathTable t;
  for (AsId as = 1; as <= 100; ++as) t.intern(AsPath{{as, 0}});
  EXPECT_EQ(t.size(), 101u);
  EXPECT_GT(t.arena_hops(), 0u);

  t.clear();
  EXPECT_EQ(t.size(), 1u) << "clear() keeps only the canonical empty path";
  EXPECT_EQ(t.arena_hops(), 0u);
  EXPECT_EQ(t.intern(AsPath{}), kEmptyPathId);

  // A fresh epoch hands out dense ids again, starting right after empty.
  const PathId first = t.intern(AsPath{{42}});
  EXPECT_EQ(first, PathId{1});
  EXPECT_EQ(t.as_path(first), AsPath({42}));
}

TEST(PathTable, SurvivesRehashAndArenaGrowth) {
  PathTable t;
  std::vector<PathId> ids;
  // Enough distinct multi-hop paths to force several index rehashes and
  // arena reallocations; prepend reads hops out of the arena it appends
  // to, so this exercises the alias-safety of that fast path too.
  for (AsId as = 0; as < 5000; ++as) {
    ids.push_back(t.prepend(t.intern(AsPath{{as, as, as}}), as + 1));
  }
  EXPECT_EQ(t.size(), 1u + 2 * 5000u);
  for (AsId as = 0; as < 5000; ++as) {
    EXPECT_EQ(t.as_path(ids[as]), AsPath({static_cast<AsId>(as + 1), as, as, as}));
    EXPECT_EQ(t.intern(AsPath{{static_cast<AsId>(as + 1), as, as, as}}), ids[as]);
  }
}

TEST(PathTable, HelpersWorkInEitherStorageMode) {
  // The path_* helpers are the only way protocol code touches PathRef;
  // this must compile and behave the same under BGPSIM_DEEP_COPY_PATHS.
  PathTable t;
  PathRef r = path_make(t, AsPath{{2, 1}});
  r = path_prepend(t, r, 3);
  EXPECT_EQ(path_length(t, r), 3u);
  EXPECT_TRUE(path_contains(t, r, 1));
  EXPECT_FALSE(path_contains(t, r, 9));
  EXPECT_EQ(path_materialize(t, r), AsPath({3, 2, 1}));
  EXPECT_EQ(path_length(t, path_empty()), 0u);
}

// Golden cross-check: a 240-node fig01-style run (70-30 skewed topology,
// 1% failure, 2.25 s MRAI, seed 1) must produce these exact results in
// BOTH path-storage modes -- the same constants are compiled into the
// deep-copy build, so a divergence in either mode fails here. The values
// are machine-independent (fixed-seed mt19937_64 + a deterministic event
// loop); they change only if the simulated protocol changes, which is
// exactly what this test exists to flag.
TEST(PathTableCrossCheck, Fig01RunMatchesGoldenNetMetrics) {
  harness::ExperimentConfig cfg;
  cfg.topology.kind = harness::TopologySpec::Kind::kSkewed;
  cfg.topology.n = 240;
  cfg.topology.skew = topo::SkewSpec::s70_30();
  cfg.failure_fraction = 0.01;
  cfg.scheme = harness::SchemeSpec::constant(2.25);
  cfg.seed = 1;

  const harness::RunResult r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_EQ(r.routers, 240u);
  EXPECT_EQ(r.failed_routers, 2u);
  EXPECT_EQ(r.messages_total, UINT64_C(352053));
  EXPECT_EQ(r.messages_after_failure, UINT64_C(76065));
  EXPECT_EQ(r.adverts_after_failure, UINT64_C(59411));
  EXPECT_EQ(r.withdrawals_after_failure, UINT64_C(16654));
  EXPECT_EQ(r.events, UINT64_C(762179));
  EXPECT_DOUBLE_EQ(r.initial_convergence_s, 0x1.9eaab111d2b2cp+5);
  EXPECT_DOUBLE_EQ(r.convergence_delay_s, 0x1.c931003472116p+6);
}

}  // namespace
}  // namespace bgpsim::bgp
