// Session-level options: sender-side loop detection and hold-timer-based
// failure detection delay.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;

TEST(Ssld, SuppressesAdvertisementsThePeerWouldReject) {
  // Triangle 0-1-2: node 1's best route to prefix 0 is direct; without
  // SSLD it advertises [1 0] to node 2 and node 2 stores it. The
  // interesting suppression: node 2's route to 0 goes through... check
  // adj_out of 1 towards 0 for prefix 2: path [2] learned FROM 2 is never
  // advertised back (split horizon), so use a 4-node line + chord to get a
  // path containing the peer's AS.
  //
  // Topology: 0-1, 1-2, 0-2 (triangle). Node 2's best for prefix 0 is
  // direct [0]; its alternative via 1 is [1 0]. After node 0 dies, node 2
  // would advertise its (stale) path via 1 = [2 1 0] to node 1 -- a path
  // containing AS 1. With SSLD that message is never sent.
  auto cfg = deterministic_config();
  cfg.sender_side_loop_detection = true;
  const auto g = testing::clique(3);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();
  // Steady state: node 2 must not have advertised any path containing AS 1
  // to node 1 (and vice versa).
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 0; b < 3; ++b) {
      if (a == b || !net.router(a).peer_session_up(b)) continue;
      for (Prefix p = 0; p < 3; ++p) {
        const auto out = net.router(a).adj_out(b, p);
        if (out) {
          EXPECT_FALSE(out->contains(b)) << a << "->" << b << " prefix " << p;
        }
      }
    }
  }
}

TEST(Ssld, ReducesMessagesDuringPathExploration) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  const auto plain = harness::run_averaged(cfg, 3);
  cfg.bgp.sender_side_loop_detection = true;
  const auto ssld = harness::run_averaged(cfg, 3);
  EXPECT_LT(ssld.messages.mean, plain.messages.mean);
  EXPECT_EQ(ssld.valid_fraction, 1.0);
}

TEST(DetectionDelay, PostponesWithdrawals) {
  auto cfg = deterministic_config();
  cfg.failure_detection_delay = sim::SimTime::seconds(10.0);
  const auto g = testing::line(3);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes({0}); });
  // Shortly after the failure, node 1 still believes in the dead route --
  // the hold timer has not expired yet.
  net.scheduler().run_until(t_fail + sim::SimTime::seconds(3.0));
  EXPECT_TRUE(net.router(1).best(0).has_value());
  net.run_to_quiescence();
  EXPECT_FALSE(net.router(1).best(0).has_value());
  // Detection happened within [5, 10] s of the failure.
  const double delay = (net.metrics().last_rib_change - t_fail).to_seconds();
  EXPECT_GE(delay, 5.0);
  EXPECT_LE(delay, 10.5);
}

TEST(DetectionDelay, ZeroMeansImmediate) {
  auto cfg = deterministic_config();
  const auto g = testing::line(3);
  Network net{g, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1};
  net.start();
  net.run_to_quiescence();
  const auto t_fail = net.scheduler().now() + sim::SimTime::seconds(1.0);
  net.scheduler().schedule_at(t_fail, [&] { net.fail_nodes({0}); });
  net.run_to_quiescence();
  EXPECT_LT((net.metrics().last_rib_change - t_fail).to_seconds(), 0.2);
}

TEST(DetectionDelay, ConvergesCorrectlyWithStaggeredDetection) {
  harness::ExperimentConfig cfg;
  cfg.topology.n = 48;
  cfg.failure_fraction = 0.10;
  cfg.scheme = harness::SchemeSpec::constant(0.5);
  cfg.bgp.failure_detection_delay = sim::SimTime::seconds(2.0);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_GE(r.convergence_delay_s, 1.0);  // at least the minimum detection time
}

}  // namespace
}  // namespace bgpsim::bgp
