#include "bgp/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;
using testing::line;

std::unique_ptr<Network> traced_net(const topo::Graph& g, TraceSink* sink) {
  auto net = std::make_unique<Network>(
      g, deterministic_config(), std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), 1);
  net->set_trace_sink(sink);
  return net;
}

TEST(Trace, CountsMatchMetrics) {
  CountingSink sink;
  auto net = traced_net(line(4), &sink);
  net->start();
  net->run_to_quiescence();
  const auto& m = net->metrics();
  EXPECT_EQ(sink.count(TraceEvent::Kind::kUpdateSent), m.updates_sent);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRibChanged), m.rib_changes);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kOriginated), 4u);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRouterFailed), 0u);
  EXPECT_GT(sink.total(), 0u);
}

TEST(Trace, SentEventuallyReceived) {
  CountingSink sink;
  auto net = traced_net(line(3), &sink);
  net->start();
  net->run_to_quiescence();
  // Nothing failed: every sent update is delivered and received.
  EXPECT_EQ(sink.count(TraceEvent::Kind::kUpdateSent),
            sink.count(TraceEvent::Kind::kUpdateReceived));
}

TEST(Trace, FailureEventsAppear) {
  CountingSink sink;
  auto net = traced_net(line(3), &sink);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({0}); });
  net->run_to_quiescence();
  EXPECT_EQ(sink.count(TraceEvent::Kind::kRouterFailed), 1u);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kPeerDown), 1u);  // node 1's session to 0
}

TEST(Trace, RecordingSinkKeepsChronologicalEvents) {
  RecordingSink sink{100000};
  auto net = traced_net(line(3), &sink);
  net->start();
  net->run_to_quiescence();
  ASSERT_FALSE(sink.events().empty());
  for (std::size_t i = 1; i < sink.events().size(); ++i) {
    EXPECT_LE(sink.events()[i - 1].at, sink.events()[i].at);
  }
  EXPECT_EQ(sink.overflow(), 0u);
}

TEST(Trace, RecordingSinkOverflowIsBounded) {
  RecordingSink sink{5};
  auto net = traced_net(line(4), &sink);
  net->start();
  net->run_to_quiescence();
  EXPECT_EQ(sink.events().size(), 5u);
  EXPECT_GT(sink.overflow(), 0u);
}

TEST(Trace, RecordingSinkDropOldestKeepsTheTail) {
  RecordingSink full{100000};
  RecordingSink ring{5, RecordingSink::Overflow::kDropOldest};
  TeeSink tee{{&full, &ring}};
  auto net = traced_net(line(4), &tee);
  net->start();
  net->run_to_quiescence();

  ASSERT_GT(full.events().size(), 5u);
  EXPECT_EQ(ring.events().size(), 5u);
  EXPECT_EQ(ring.overflow(), full.events().size() - 5);
  // The ring holds exactly the last 5 events, in order.
  const auto tail = ring.snapshot();
  ASSERT_EQ(tail.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& want = full.events()[full.events().size() - 5 + i];
    EXPECT_EQ(tail[i].kind, want.kind);
    EXPECT_EQ(tail[i].at, want.at);
    EXPECT_EQ(tail[i].router, want.router);
  }
}

TEST(Trace, RecordingSinkRingWrapAndClear) {
  RecordingSink ring{3, RecordingSink::Overflow::kDropOldest};
  for (int i = 0; i < 7; ++i) {
    TraceEvent e;
    e.prefix = static_cast<Prefix>(i);
    e.at = sim::SimTime::from_ms(i);
    ring.on_event(e);
  }
  EXPECT_EQ(ring.overflow(), 4u);
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].prefix, 4u);
  EXPECT_EQ(kept[1].prefix, 5u);
  EXPECT_EQ(kept[2].prefix, 6u);

  ring.clear();
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.overflow(), 0u);
  TraceEvent e;
  e.prefix = 42;
  ring.on_event(e);  // reusable after clear
  ASSERT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].prefix, 42u);
}

TEST(Trace, StreamSinkFormatsAndFilters) {
  std::ostringstream all;
  std::ostringstream only_rib;
  StreamSink sink_all{all};
  StreamSink sink_rib{only_rib, TraceEvent::Kind::kRibChanged};
  TeeSink tee{{&sink_all, &sink_rib}};
  auto net = traced_net(line(2), &tee);
  net->start();
  net->run_to_quiescence();
  EXPECT_NE(all.str().find("update-sent"), std::string::npos);
  EXPECT_NE(all.str().find("originated"), std::string::npos);
  EXPECT_NE(only_rib.str().find("rib-changed"), std::string::npos);
  EXPECT_EQ(only_rib.str().find("update-sent"), std::string::npos);
}

TEST(Trace, EventToStringIsReadable) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kUpdateSent;
  ev.at = sim::SimTime::seconds(1.5);
  ev.router = 3;
  ev.peer = 7;
  ev.prefix = 11;
  ev.withdraw = true;
  const auto s = ev.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("r3"), std::string::npos);
  EXPECT_NE(s.find("withdraw"), std::string::npos);
  EXPECT_NE(s.find("prefix 11"), std::string::npos);
  EXPECT_NE(s.find("peer 7"), std::string::npos);
}

TEST(Trace, DisabledByDefaultAndDetachable) {
  CountingSink sink;
  auto net = traced_net(line(2), &sink);
  net->set_trace_sink(nullptr);  // detach again
  net->start();
  net->run_to_quiescence();
  EXPECT_EQ(sink.total(), 0u);
  EXPECT_FALSE(net->tracing());
}

TEST(Trace, KindNamesAreUnique) {
  std::set<std::string> names;
  for (std::size_t k = 0; k < TraceEvent::kNumKinds; ++k) {
    names.insert(to_string(static_cast<TraceEvent::Kind>(k)));
  }
  EXPECT_EQ(names.size(), TraceEvent::kNumKinds);
}

}  // namespace
}  // namespace bgpsim::bgp
