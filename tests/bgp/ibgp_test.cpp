// iBGP semantics on hand-built hierarchical topologies: no-prepend inside
// an AS, prepend-once at AS exit, no reflection of iBGP-learned routes.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "test_util.hpp"

namespace bgpsim::bgp {
namespace {

using testing::deterministic_config;

/// AS0 = routers {0,1,2} in full iBGP mesh, AS1 = router {3}.
/// eBGP session between router 2 (AS0 border) and router 3 (AS1).
topo::HierTopology two_as_topology() {
  topo::HierTopology h;
  h.as_of_router = {0, 0, 0, 1};
  h.routers_of_as = {{0, 1, 2}, {3}};
  h.router_pos = {{0, 0}, {10, 0}, {20, 0}, {500, 0}};
  h.sessions = {
      {0, 1, false}, {0, 2, false}, {1, 2, false},  // iBGP mesh in AS0
      {2, 3, true},                                 // eBGP
  };
  h.origin_router = {0, 3};
  return h;
}

std::unique_ptr<Network> make_net(const topo::HierTopology& h,
                                  BgpConfig cfg = deterministic_config()) {
  return std::make_unique<Network>(
      h, cfg, std::make_shared<FixedMrai>(sim::SimTime::seconds(0.5)), /*seed=*/1);
}

TEST(Ibgp, LocalPrefixSpreadsThroughTheMeshWithEmptyPath) {
  const auto h = two_as_topology();
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // Routers 1 and 2 learn AS0's prefix from router 0 via iBGP: empty path.
  for (NodeId v : {1u, 2u}) {
    const auto r = net->router(v).best(0);
    ASSERT_TRUE(r.has_value()) << "router " << v;
    EXPECT_TRUE(r->path.empty());
    EXPECT_EQ(r->learned_from, 0u);
    EXPECT_FALSE(r->ebgp_learned);
  }
}

TEST(Ibgp, PrependHappensOnceAtAsExit) {
  const auto h = two_as_topology();
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // Router 3 (AS1) sees AS0's prefix as [0]: one hop, not three routers.
  const auto r = net->router(3).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, AsPath({0}));
  EXPECT_TRUE(r->ebgp_learned);
}

TEST(Ibgp, EbgpLearnedRouteReachesAllMeshMembers) {
  const auto h = two_as_topology();
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // AS1's prefix (1) enters at border router 2 and spreads over iBGP.
  for (NodeId v : {0u, 1u}) {
    const auto r = net->router(v).best(1);
    ASSERT_TRUE(r.has_value()) << "router " << v;
    EXPECT_EQ(r->path, AsPath({1}));
    EXPECT_EQ(r->learned_from, 2u);
    EXPECT_FALSE(r->ebgp_learned);
  }
}

TEST(Ibgp, IbgpLearnedRoutesAreNotReflected) {
  const auto h = two_as_topology();
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // Router 0 learned prefix 1 from router 2 via iBGP; router 1 must not
  // have received it from router 0 (only from router 2 directly).
  EXPECT_FALSE(net->router(1).adj_in(0, 1).has_value());
  EXPECT_TRUE(net->router(1).adj_in(2, 1).has_value());
}

TEST(Ibgp, NonOriginBorderFailureReroutesViaOtherBorder) {
  // Two ASes joined by two eBGP links; kill one border, traffic shifts.
  topo::HierTopology h;
  h.as_of_router = {0, 0, 1, 1};
  h.routers_of_as = {{0, 1}, {2, 3}};
  h.router_pos = {{0, 0}, {10, 0}, {500, 0}, {510, 0}};
  h.sessions = {
      {0, 1, false},  // AS0 mesh
      {2, 3, false},  // AS1 mesh
      {0, 2, true},   // border pair A
      {1, 3, true},   // border pair B
  };
  h.origin_router = {0, 2};
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // Router 3 initially reaches AS0's prefix via its own eBGP session or
  // via iBGP from router 2; either way path is [0].
  ASSERT_TRUE(net->router(3).best(0).has_value());
  EXPECT_EQ(net->router(3).best(0)->path, AsPath({0}));
  // Kill border router 2 (the AS1 origin is router 2 -- so check prefix 0
  // from router 3's perspective only).
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] { net->fail_nodes({2}); });
  net->run_to_quiescence();
  const auto r = net->router(3).best(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, AsPath({0}));
  EXPECT_TRUE(r->ebgp_learned);  // now necessarily via its own eBGP session
}

TEST(Ibgp, HierarchicalNetworkFromGeneratorConverges) {
  sim::Rng rng{11};
  topo::HierParams p;
  p.num_ases = 12;
  p.max_total_routers = 40;
  p.max_inter_as_degree = 6;
  const auto h = topo::hierarchical(p, rng);
  auto net = make_net(h);
  net->start();
  net->run_to_quiescence();
  // Every router must know every AS prefix.
  for (NodeId v = 0; v < net->size(); ++v) {
    for (Prefix as = 0; as < p.num_ases; ++as) {
      EXPECT_TRUE(net->router(v).best(as).has_value())
          << "router " << v << " missing AS " << as;
    }
  }
}

}  // namespace
}  // namespace bgpsim::bgp
