#include "bgp/metrics.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(DecayingRate, StartsAtZero) {
  DecayingRate r{2.0};
  EXPECT_DOUBLE_EQ(r.rate(sim::SimTime::zero()), 0.0);
}

TEST(DecayingRate, RateIsAmountOverTau) {
  DecayingRate r{2.0};
  r.add(sim::SimTime::zero(), 4.0);
  EXPECT_DOUBLE_EQ(r.rate(sim::SimTime::zero()), 2.0);
}

TEST(DecayingRate, DecaysExponentially) {
  DecayingRate r{2.0};
  r.add(sim::SimTime::zero(), 4.0);
  const double after_tau = r.rate(sim::SimTime::seconds(2.0));
  EXPECT_NEAR(after_tau, 2.0 * std::exp(-1.0), 1e-9);
  const double after_two_tau = r.rate(sim::SimTime::seconds(4.0));
  EXPECT_NEAR(after_two_tau, 2.0 * std::exp(-2.0), 1e-9);
}

TEST(DecayingRate, AccumulatesAdds) {
  DecayingRate r{1.0};
  r.add(sim::SimTime::zero(), 1.0);
  r.add(sim::SimTime::zero(), 1.0);
  EXPECT_DOUBLE_EQ(r.rate(sim::SimTime::zero()), 2.0);
}

TEST(DecayingRate, SteadyStreamApproachesSteadyRate) {
  // Adding 1 unit every 0.1 s => 10 units/s; the decayed estimate should
  // settle near that.
  DecayingRate r{2.0};
  for (int i = 0; i <= 200; ++i) {
    r.add(sim::SimTime::seconds(0.1 * i), 1.0);
  }
  EXPECT_NEAR(r.rate(sim::SimTime::seconds(20.0)), 10.0, 1.0);
}

TEST(DecayingRate, TimeNeverRunsBackwards) {
  DecayingRate r{1.0};
  r.add(sim::SimTime::seconds(5.0), 1.0);
  // Querying an earlier time does not decay (dt <= 0 is ignored).
  EXPECT_DOUBLE_EQ(r.rate(sim::SimTime::seconds(1.0)), 1.0);
}

TEST(NetMetrics, DefaultsAreZero) {
  NetMetrics m;
  EXPECT_EQ(m.updates_sent, 0u);
  EXPECT_EQ(m.rib_changes, 0u);
  EXPECT_EQ(m.last_rib_change, sim::SimTime::zero());
}

}  // namespace
}  // namespace bgpsim::bgp
