#include "bgp/input_queue.hpp"

#include <gtest/gtest.h>

#include "bgp/path_table.hpp"

namespace bgpsim::bgp {
namespace {

/// Shared intern table for test-built WorkItems (the queue itself never
/// looks inside a path, so one table for the whole file is fine).
PathTable& table() {
  static PathTable t;
  return t;
}

WorkItem update(NodeId from, Prefix prefix, std::vector<AsId> hops = {}) {
  WorkItem w;
  w.from = from;
  w.prefix = prefix;
  w.path = path_make(table(), std::move(hops));
  return w;
}

WorkItem withdrawal(NodeId from, Prefix prefix) {
  auto w = update(from, prefix);
  w.withdraw = true;
  return w;
}

WorkItem teardown(NodeId from) {
  WorkItem w;
  w.kind = WorkItem::Kind::kPeerDown;
  w.from = from;
  w.prefix = kTeardownKey;
  return w;
}

TEST(FifoQueue, PopsOneItemInArrivalOrder) {
  InputQueue q{QueueDiscipline::kFifo};
  q.push(update(1, 10));
  q.push(update(2, 20));
  std::uint64_t dropped = 0;
  auto b1 = q.pop_batch(dropped);
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_EQ(b1[0].from, 1u);
  auto b2 = q.pop_batch(dropped);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_EQ(b2[0].from, 2u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(dropped, 0u);
}

TEST(FifoQueue, NeverCollapses) {
  InputQueue q{QueueDiscipline::kFifo};
  q.push(update(1, 10, {5}));
  q.push(update(1, 10, {6}));
  std::uint64_t dropped = 0;
  EXPECT_EQ(q.pop_batch(dropped).size(), 1u);
  EXPECT_EQ(q.pop_batch(dropped).size(), 1u);
  EXPECT_EQ(dropped, 0u);
}

TEST(BatchedQueue, GroupsByDestination) {
  // Paper section 4.4 example: updates X, Y, X, Y in the queue. Batched
  // processing must hand out both X updates together, then both Y updates.
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, /*X=*/10, {1}));
  q.push(update(2, /*Y=*/20, {2}));
  q.push(update(3, 10, {3}));
  q.push(update(4, 20, {4}));
  std::uint64_t dropped = 0;
  auto bx = q.pop_batch(dropped);
  ASSERT_EQ(bx.size(), 2u);
  EXPECT_EQ(bx[0].prefix, 10u);
  EXPECT_EQ(bx[1].prefix, 10u);
  auto by = q.pop_batch(dropped);
  ASSERT_EQ(by.size(), 2u);
  EXPECT_EQ(by[0].prefix, 20u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(BatchedQueue, DropsStaleUpdatesFromSameNeighbor) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, 10, {1}));
  q.push(update(1, 10, {2}));
  q.push(update(1, 10, {3}));
  q.push(update(2, 10, {9}));
  std::uint64_t dropped = 0;
  auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 2u);  // newest from neighbor 1, plus neighbor 2's
  EXPECT_EQ(b[0].from, 1u);
  EXPECT_EQ(path_materialize(table(), b[0].path), AsPath({3}));
  EXPECT_EQ(b[1].from, 2u);
  EXPECT_EQ(dropped, 2u);
}

TEST(BatchedQueue, WithdrawalSupersedesEarlierAdvert) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, 10, {1}));
  q.push(withdrawal(1, 10));
  std::uint64_t dropped = 0;
  auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b[0].withdraw);
  EXPECT_EQ(dropped, 1u);
}

TEST(BatchedQueue, HeadDestinationOrderIsArrivalOrder) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, 30));
  q.push(update(1, 10));
  q.push(update(1, 20));
  std::uint64_t dropped = 0;
  EXPECT_EQ(q.pop_batch(dropped)[0].prefix, 30u);
  EXPECT_EQ(q.pop_batch(dropped)[0].prefix, 10u);
  EXPECT_EQ(q.pop_batch(dropped)[0].prefix, 20u);
}

TEST(BatchedQueue, DestinationReentersOrderAfterDrain) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, 10));
  std::uint64_t dropped = 0;
  q.pop_batch(dropped);
  EXPECT_TRUE(q.empty());
  q.push(update(2, 10));
  auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].from, 2u);
}

TEST(BatchedQueue, TeardownsShareThePseudoDestination) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(teardown(1));
  q.push(teardown(2));
  std::uint64_t dropped = 0;
  auto b = q.pop_batch(dropped);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].kind, WorkItem::Kind::kPeerDown);
  EXPECT_EQ(b[1].from, 2u);
  EXPECT_EQ(dropped, 0u);
}

TEST(BatchedQueue, SizeTracksAllQueuedItems) {
  InputQueue q{QueueDiscipline::kBatched};
  q.push(update(1, 10));
  q.push(update(1, 10));
  q.push(update(2, 20));
  EXPECT_EQ(q.size(), 3u);
  std::uint64_t dropped = 0;
  q.pop_batch(dropped);
  EXPECT_EQ(q.size(), 1u);
}

TEST(InputQueue, ClearEmptiesEverything) {
  for (const auto mode : {QueueDiscipline::kFifo, QueueDiscipline::kBatched,
                          QueueDiscipline::kTcpBatch}) {
    InputQueue q{mode};
    q.push(update(1, 10));
    q.push(update(2, 20));
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
  }
}

TEST(InputQueue, PopFromEmptyReturnsNothing) {
  for (const auto mode : {QueueDiscipline::kFifo, QueueDiscipline::kBatched,
                          QueueDiscipline::kTcpBatch}) {
    InputQueue q{mode};
    std::uint64_t dropped = 0;
    EXPECT_TRUE(q.pop_batch(dropped).empty());
  }
}

}  // namespace
}  // namespace bgpsim::bgp
