// Property sweep: after any failure, on any topology, under any scheme, the
// converged Loc-RIBs must be mutually consistent (see harness/audit.hpp).
// This is the end-to-end safety property of the whole simulator.
#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hpp"

namespace bgpsim::harness {
namespace {

struct Case {
  std::string name;
  TopologySpec::Kind kind;
  std::size_t n;
  double failure;
  std::string scheme;  // "const0.5" | "const2.25" | "batch" | "dynamic" | "degree" | "both"
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  auto s = info.param.name + "_s" + std::to_string(info.param.seed);
  for (auto& c : s) {
    if (c == '.' || c == '-') c = '_';
  }
  return s;
}

SchemeSpec scheme_from(const std::string& name) {
  if (name == "const0.5") return SchemeSpec::constant(0.5);
  if (name == "const2.25") return SchemeSpec::constant(2.25);
  if (name == "batch") return SchemeSpec::constant(0.5, /*batch=*/true);
  if (name == "dynamic") return SchemeSpec::dynamic_mrai();
  if (name == "both") return SchemeSpec::dynamic_mrai({}, /*batch=*/true);
  if (name == "degree") return SchemeSpec::degree_dependent(0.5, 2.25);
  if (name == "extent") return SchemeSpec::extent_mrai();
  if (name == "tcp" || name == "policy" || name == "multiprefix" || name == "ssld") {
    return SchemeSpec::constant(0.5);  // knob set in the test body
  }
  throw std::invalid_argument{"unknown scheme " + name};
}

class RouteValidity : public ::testing::TestWithParam<Case> {};

TEST_P(RouteValidity, ConvergedRibsAreConsistent) {
  const auto& c = GetParam();
  ExperimentConfig cfg;
  cfg.topology.kind = c.kind;
  cfg.topology.n = c.n;
  if (c.kind == TopologySpec::Kind::kHierarchical) {
    cfg.topology.hier.num_ases = c.n / 3;
    cfg.topology.hier.max_total_routers = c.n;
    cfg.topology.hier.max_inter_as_degree = 8;
  }
  cfg.scheme = scheme_from(c.scheme);
  if (c.scheme == "tcp") cfg.bgp.queue = bgp::QueueDiscipline::kTcpBatch;
  if (c.scheme == "policy") cfg.topology.policy_routing = true;
  if (c.scheme == "multiprefix") cfg.bgp.prefixes_per_origin = 3;
  if (c.scheme == "ssld") cfg.bgp.sender_side_loop_detection = true;
  cfg.failure_fraction = c.failure;
  cfg.seed = c.seed;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.routes_valid) << r.audit_error;
  EXPECT_GE(r.convergence_delay_s, 0.0);
  EXPECT_GT(r.initial_convergence_s, 0.0);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  // Schemes x failure sizes on the paper's skewed topology.
  for (const auto* scheme : {"const0.5", "const2.25", "batch", "dynamic", "degree", "both"}) {
    for (const double failure : {0.02, 0.10}) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        cases.push_back({std::string{"skew_"} + scheme + "_f" +
                             std::to_string(static_cast<int>(failure * 100)),
                         TopologySpec::Kind::kSkewed, 48, failure, scheme, seed});
      }
    }
  }
  // Every topology family under the default scheme.
  for (const auto kind :
       {TopologySpec::Kind::kInternetLike, TopologySpec::Kind::kWaxman,
        TopologySpec::Kind::kBarabasiAlbert, TopologySpec::Kind::kGlp,
        TopologySpec::Kind::kHierarchical}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      cases.push_back({"kind" + std::to_string(static_cast<int>(kind)),
                       kind, 45, 0.10, "const0.5", seed});
    }
  }
  // Large failure stress (20%, the paper's maximum).
  for (std::uint64_t seed : {1ull, 2ull}) {
    cases.push_back({"skew_large", TopologySpec::Kind::kSkewed, 48, 0.20, "const0.5", seed});
    cases.push_back({"skew_large_batch", TopologySpec::Kind::kSkewed, 48, 0.20, "batch", seed});
  }
  // Protocol-knob variants (TCP batching, policy routing, multi-prefix,
  // SSLD, extent-MRAI) under a sizeable failure.
  for (const auto* knob : {"tcp", "policy", "multiprefix", "ssld", "extent"}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      cases.push_back({std::string{"knob_"} + knob, TopologySpec::Kind::kSkewed, 48, 0.10,
                       knob, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RouteValidity, ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace bgpsim::harness
