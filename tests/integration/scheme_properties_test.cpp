// Statistical properties of the paper's schemes, checked on fixed seeds so
// the tests are deterministic. Tolerances are deliberately loose: these
// guard the *direction* of each effect, the benches measure magnitudes.
#include <gtest/gtest.h>

#include "failure/failure.hpp"
#include "harness/experiment.hpp"

namespace bgpsim::harness {
namespace {

ExperimentConfig base(double failure, std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topology.n = 60;
  cfg.failure_fraction = failure;
  cfg.seed = seed;
  return cfg;
}

class BatchingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchingProperty, NeverGeneratesMoreMessagesUnderOverload) {
  // Paper Fig 11: batching's whole purpose is to cut the update count of
  // overloaded nodes. At MRAI=0.5 s and 10% failure the FIFO network is
  // deeply overloaded; batching must not do worse.
  auto cfg = base(0.10, GetParam());
  cfg.scheme = SchemeSpec::constant(0.5, /*batch=*/false);
  const auto fifo = run_experiment(cfg);
  cfg.scheme = SchemeSpec::constant(0.5, /*batch=*/true);
  const auto batched = run_experiment(cfg);
  EXPECT_LE(batched.messages_after_failure, fifo.messages_after_failure);
  EXPECT_LE(batched.convergence_delay_s, fifo.convergence_delay_s * 1.05);
  EXPECT_TRUE(batched.routes_valid) << batched.audit_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(BatchingProperty, SubstantialReductionForLargeFailures) {
  // Paper abstract: "reduce the convergence delays (by a factor of 3 or
  // more)" for large failures at low MRAI.
  auto cfg = base(0.15);
  cfg.topology.n = 80;
  cfg.scheme = SchemeSpec::constant(0.5, false);
  const auto fifo = run_averaged(cfg, 3);
  cfg.scheme = SchemeSpec::constant(0.5, true);
  const auto batched = run_averaged(cfg, 3);
  EXPECT_LT(batched.delay.mean * 3.0, fifo.delay.mean);
}

TEST(BatchingProperty, NoEffectWithoutOverload) {
  // Paper Fig 12: above the optimal MRAI there is nothing to batch; the
  // queues stay short and the delta is small.
  auto cfg = base(0.02);
  cfg.scheme = SchemeSpec::constant(3.0, false);
  const auto fifo = run_averaged(cfg, 3);
  cfg.scheme = SchemeSpec::constant(3.0, true);
  const auto batched = run_averaged(cfg, 3);
  EXPECT_NEAR(batched.delay.mean, fifo.delay.mean, 0.5 * fifo.delay.mean + 1.0);
}

class DynamicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicProperty, LargeFailureDelayFarBelowLowConstantMrai) {
  // Paper Fig 7: for large failures the dynamic scheme is "much less than"
  // MRAI=0.5 s.
  auto cfg = base(0.10, GetParam());
  cfg.scheme = SchemeSpec::constant(0.5);
  const auto low = run_experiment(cfg);
  cfg.scheme = SchemeSpec::dynamic_mrai();
  const auto dyn = run_experiment(cfg);
  EXPECT_LT(dyn.convergence_delay_s, 0.75 * low.convergence_delay_s);
  EXPECT_TRUE(dyn.routes_valid) << dyn.audit_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicProperty, ::testing::Values(1, 2, 3));

TEST(DynamicProperty, SmallFailureDelayStaysNearLowMrai) {
  // Paper Fig 7: for small failures the dynamic scheme tracks (or beats)
  // the small constant MRAI; it must not behave like constant-2.25 s.
  auto cfg = base(0.02);
  cfg.scheme = SchemeSpec::constant(0.5);
  const auto low = run_averaged(cfg, 4);
  cfg.scheme = SchemeSpec::dynamic_mrai();
  const auto dyn = run_averaged(cfg, 4);
  EXPECT_LT(dyn.delay.mean, 2.0 * low.delay.mean);
}

TEST(DynamicProperty, LevelsActuallyMove) {
  // The adaptive controller must engage under a large failure.
  schemes::DynamicMraiParams p;
  auto controller = std::make_shared<schemes::DynamicMrai>(p);
  topo::SkewSpec skew = topo::SkewSpec::s70_30();
  sim::Rng rng{9};
  auto degrees = topo::skewed_sequence(60, skew, rng);
  auto g = topo::realize_degree_sequence(degrees, rng);
  g.place_randomly(1000, 1000, rng);
  bgp::BgpConfig cfg;
  bgp::Network net{g, cfg, controller, 9};
  net.start();
  net.run_to_quiescence();
  controller->reset();
  net.scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net.fail_nodes(failure::geographic_fraction(net.positions(), 0.10, {500, 500}));
  });
  net.run_to_quiescence();
  EXPECT_GT(controller->ups(), 0u);
}

class DegreeDependentProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DegreeDependentProperty, BeatsReversedAssignmentForLargeFailures) {
  // Paper Fig 6: (low 0.5, high 2.25) has much lower large-failure delay
  // than the reversed (low 2.25, high 0.5) -- the high-degree nodes drive
  // convergence.
  auto cfg = base(0.10, GetParam());
  cfg.scheme = SchemeSpec::degree_dependent(0.5, 2.25);
  const auto good = run_experiment(cfg);
  cfg.scheme = SchemeSpec::degree_dependent(2.25, 0.5);  // reversed
  const auto reversed = run_experiment(cfg);
  EXPECT_LT(good.convergence_delay_s, reversed.convergence_delay_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeDependentProperty, ::testing::Values(1, 2, 3));

TEST(CombinedProperty, BatchingPlusDynamicIsNoWorseThanDynamicAlone) {
  // Paper Fig 10: combining the two schemes decreases delays further.
  auto cfg = base(0.10);
  cfg.scheme = SchemeSpec::dynamic_mrai();
  const auto dyn = run_averaged(cfg, 4);
  cfg.scheme = SchemeSpec::dynamic_mrai({}, /*batch=*/true);
  const auto both = run_averaged(cfg, 4);
  EXPECT_LE(both.delay.mean, dyn.delay.mean * 1.1);
}

}  // namespace
}  // namespace bgpsim::harness
