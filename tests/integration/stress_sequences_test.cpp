// Adversarial event sequences: failures during convergence, overlapping
// failure waves, recovery racing new failures. The invariant under test is
// always the same -- once the network quiesces, the audit must hold.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/network.hpp"
#include "failure/failure.hpp"
#include "harness/audit.hpp"
#include "topo/degree_sequence.hpp"
#include "../bgp/test_util.hpp"

namespace bgpsim::harness {
namespace {

std::unique_ptr<bgp::Network> skewed_net(std::size_t n, std::uint64_t seed,
                                         double mrai = 0.5,
                                         bgp::QueueDiscipline queue =
                                             bgp::QueueDiscipline::kFifo) {
  sim::Rng rng{seed};
  auto degrees = topo::skewed_sequence(n, topo::SkewSpec::s70_30(), rng);
  auto g = topo::realize_degree_sequence(std::move(degrees), rng);
  g.place_randomly(1000, 1000, rng);
  bgp::BgpConfig cfg;
  cfg.queue = queue;
  return std::make_unique<bgp::Network>(
      g, cfg, std::make_shared<bgp::FixedMrai>(sim::SimTime::seconds(mrai)), seed);
}

class StressSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeed, FailureDuringInitialConvergence) {
  // The region dies while the cold-start flood is still in progress.
  auto net = skewed_net(48, GetParam());
  net->start();
  net->scheduler().schedule_at(sim::SimTime::seconds(2.0), [&] {
    net->fail_nodes(failure::geographic_fraction(net->positions(), 0.10, {500, 500}));
  });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST_P(StressSeed, TwoOverlappingFailureWaves) {
  // A second, disjoint region fails while the network is still digesting
  // the first failure.
  auto net = skewed_net(60, GetParam());
  net->start();
  net->run_to_quiescence();
  const auto wave1 = failure::geographic_fraction(net->positions(), 0.08, {500, 500});
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&, wave1] { net->fail_nodes(wave1); });
  net->scheduler().schedule_after(sim::SimTime::seconds(3.0), [&] {
    // Corner region; skip nodes already dead.
    auto wave2 = failure::geographic_fraction(net->positions(), 0.25, {0, 0});
    std::vector<topo::NodeId> alive_victims;
    for (const auto v : wave2) {
      if (net->router(v).alive()) alive_victims.push_back(v);
    }
    net->fail_nodes(alive_victims);
  });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST_P(StressSeed, RecoveryWhileStillConverging) {
  // The region comes back up only two seconds after it failed -- long
  // before the withdrawal storm has settled.
  auto net = skewed_net(48, GetParam());
  net->start();
  net->run_to_quiescence();
  const auto victims = failure::geographic_fraction(net->positions(), 0.15, {500, 500});
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                  [&, victims] { net->fail_nodes(victims); });
  net->scheduler().schedule_after(sim::SimTime::seconds(3.0),
                                  [&, victims] { net->recover_nodes(victims); });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
  // Everything is back: full reachability.
  for (const auto v : net->alive_nodes()) {
    EXPECT_EQ(net->router(v).known_prefixes().size(), net->size()) << "router " << v;
  }
}

TEST_P(StressSeed, RepeatedFailRecoverCycles) {
  auto net = skewed_net(36, GetParam(), /*mrai=*/0.5, bgp::QueueDiscipline::kBatched);
  net->start();
  net->run_to_quiescence();
  const auto victims = failure::geographic_fraction(net->positions(), 0.15, {500, 500});
  for (int cycle = 0; cycle < 3; ++cycle) {
    net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                    [&, victims] { net->fail_nodes(victims); });
    net->run_to_quiescence();
    net->scheduler().schedule_after(sim::SimTime::seconds(1.0),
                                    [&, victims] { net->recover_nodes(victims); });
    net->run_to_quiescence();
  }
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

TEST_P(StressSeed, EverythingDiesExceptOneComponent) {
  // Fail 60% of the network -- far beyond the paper's 20% -- and check the
  // survivors still sort themselves out.
  auto net = skewed_net(40, GetParam());
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    net->fail_nodes(failure::geographic_fraction(net->positions(), 0.60, {500, 500}));
  });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed, ::testing::Values(1, 2, 3, 4));

TEST(Stress, ScatteredRandomFailure) {
  // The paper focuses on contiguous failures; scattered ones must still
  // satisfy the audit.
  auto net = skewed_net(60, 9);
  net->start();
  net->run_to_quiescence();
  net->scheduler().schedule_after(sim::SimTime::seconds(1.0), [&] {
    sim::Rng frng{99};
    net->fail_nodes(failure::random_nodes(net->size(), 9, frng));
  });
  net->run_to_quiescence();
  EXPECT_EQ(audit_routes(*net), std::nullopt);
}

}  // namespace
}  // namespace bgpsim::harness
